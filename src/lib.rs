//! # mttkrp
//!
//! Umbrella crate for the Ballard/Knight/Rouse (IPDPS 2018) MTTKRP
//! reproduction. It re-exports the workspace crates so the repository-level
//! integration tests (`tests/`) and examples (`examples/`) have a single
//! front door, and so downstream users can depend on one crate:
//!
//! - [`tensor`] — dense tensors, matrices, the MTTKRP oracle;
//! - [`memsim`] — strict two-level memory simulator;
//! - [`netsim`] — distributed machine simulator;
//! - [`core`] — the paper's bounds, algorithms, and cost models;
//! - [`exec`] — the execution subsystem: cost-model-driven planner plus
//!   simulator and native (rayon) backends;
//! - [`als`] — the CP-ALS factorization engine driving the planner and
//!   every backend (N plan-cached MTTKRPs per sweep);
//! - [`serve`] — plan-cached, request-batching serving layer over the
//!   executor (single MTTKRPs and whole factorizations);
//! - [`bench`](mod@bench) — benchmark helpers and the CLI driver.

pub use mttkrp_als as als;
pub use mttkrp_bench as bench;
pub use mttkrp_core as core;
pub use mttkrp_exec as exec;
pub use mttkrp_memsim as memsim;
pub use mttkrp_netsim as netsim;
pub use mttkrp_serve as serve;
pub use mttkrp_tensor as tensor;
