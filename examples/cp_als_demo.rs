//! CP decomposition of a synthetic signal tensor via CP-ALS — the workload
//! whose bottleneck motivates the whole paper (Section II-A).
//!
//! We build a rank-3 ground-truth tensor (three separable "sources"), add
//! noise, and recover the sources with sequential CP-ALS; then run the
//! *distributed* CP-ALS (Algorithm 3 inside every mode update) on a
//! simulated 8-processor machine and report how many words each sweep
//! moved.
//!
//! Run with: `cargo run --release -p mttkrp-core --example cp_als_demo`

use mttkrp_core::{cp_als, par::dist_cp_als, CpAlsOptions};
use mttkrp_tensor::{DenseTensor, KruskalTensor, Matrix, Shape};

fn main() {
    // Ground truth: a 16 x 12 x 8 rank-3 tensor with smooth factor columns
    // (sinusoids of different frequencies), mimicking a multichannel signal.
    let dims = [16usize, 12, 8];
    let rank = 3;
    let factors: Vec<Matrix> = dims
        .iter()
        .map(|&d| {
            Matrix::from_fn(d, rank, |i, r| {
                let t = i as f64 / d as f64;
                ((r + 1) as f64 * std::f64::consts::PI * t).sin() + 1.5
            })
        })
        .collect();
    let truth = KruskalTensor::from_factors(factors);
    let clean = truth.full();

    // Add 1% relative noise.
    let noise = DenseTensor::random(Shape::new(&dims), 7);
    let sigma = 0.01 * clean.frob_norm() / noise.frob_norm();
    let x = DenseTensor::from_vec(
        clean.shape().clone(),
        clean
            .data()
            .iter()
            .zip(noise.data())
            .map(|(&c, &n)| c + sigma * n)
            .collect(),
    );

    println!("CP-ALS demo: {}, rank {rank}, 1% noise\n", clean.shape());

    // Sequential fit.
    let opts = CpAlsOptions {
        max_iters: 60,
        tol: 1e-9,
        seed: 3,
    };
    let run = cp_als(&x, rank, &opts);
    println!("sequential CP-ALS:");
    for (it, fit) in run.fit_history.iter().enumerate() {
        if it < 5 || it + 1 == run.fit_history.len() {
            println!("  sweep {:>2}: fit = {:.6}", it + 1, fit);
        } else if it == 5 {
            println!("  ...");
        }
    }
    let final_fit = *run.fit_history.last().unwrap();
    println!(
        "  converged = {} after {} sweeps; final fit {:.4} (noise floor ~0.99)\n",
        run.converged, run.iterations, final_fit
    );
    assert!(final_fit > 0.98, "should fit to the noise floor");

    // Distributed fit on a 2 x 2 x 2 simulated machine.
    let drun = dist_cp_als(&x, rank, &[2, 2, 2], &opts);
    let dfit = *drun.fit_history.last().unwrap();
    println!("distributed CP-ALS (P = 8, grid 2x2x2):");
    println!(
        "  final fit {:.4} after {} sweeps (matches sequential: {})",
        dfit,
        drun.iterations,
        (dfit - final_fit).abs() < 1e-3
    );
    println!(
        "  communication: max {} words on one rank, {} words machine-wide",
        drun.summary.max_words, drun.summary.total_words
    );
    let per_sweep = drun.summary.max_words as f64 / drun.iterations as f64;
    println!(
        "  ~{per_sweep:.0} words/rank/sweep across all {} modes",
        dims.len()
    );
}
