//! Strong scaling of the parallel algorithms on the simulated machine:
//! a miniature, *measured* version of the paper's Figure 4.
//!
//! For a fixed problem we sweep the processor count, run Algorithm 3,
//! Algorithm 4 (with its best grid), and the matmul baseline for real, and
//! print measured words/rank next to the memory-independent lower bound.
//!
//! Run with: `cargo run --release -p mttkrp-core --example strong_scaling`

use mttkrp_core::{bounds, grid_opt, model, par, Problem};
use mttkrp_tensor::{DenseTensor, Matrix, Shape};

fn main() {
    // 16 x 16 x 16 tensor, R = 16: large enough rank that Algorithm 4's
    // rank-partitioning pays off at the top of the sweep.
    let dims = [16usize, 16, 16];
    let rank = 16;
    let n = 0;
    let shape = Shape::new(&dims);
    let x = DenseTensor::random(shape.clone(), 1);
    let factors: Vec<Matrix> = dims
        .iter()
        .enumerate()
        .map(|(k, &d)| Matrix::random(d, rank, 10 + k as u64))
        .collect();
    let refs: Vec<&Matrix> = factors.iter().collect();
    let problem = Problem::from_shape(&shape, rank);
    let oracle = mttkrp_tensor::mttkrp_reference(&x, &refs, n);

    println!("measured strong scaling: I = 16^3, R = {rank}, mode {n}");
    println!(
        "{:>5} {:>14} {:>14} {:>14} {:>12} {:>10}",
        "P", "alg3 w/rank", "alg4 w/rank", "matmul w/rank", "lower bnd", "alg4 grid"
    );

    for log_p in 0..=6 {
        let p = 1usize << log_p;

        // Algorithm 3: best grid whose factors divide the dims.
        let (grid3, _) = grid_opt::optimize_alg3_grid_dividing(&problem, p as u64)
            .expect("power-of-two grids divide power-of-two dims");
        let g3: Vec<usize> = grid3.iter().map(|&g| g as usize).collect();
        let run3 = par::mttkrp_stationary(&x, &refs, n, &g3);
        assert!(run3.output.max_abs_diff(&oracle) < 1e-9);

        // Algorithm 4: best (P0, grid) by model, restricted to dividing
        // factorizations.
        let (p0, g4, _) = grid_opt::optimize_alg4_grid_dividing(&problem, p as u64)
            .expect("some factorization divides");
        let g4u: Vec<usize> = g4.iter().map(|&g| g as usize).collect();
        let run4 = par::mttkrp_general(&x, &refs, n, p0 as usize, &g4u);
        assert!(run4.output.max_abs_diff(&oracle) < 1e-9);

        // Matmul baseline (1D over the last non-n mode, extent 16).
        let mm_words = if dims[2].is_multiple_of(p) {
            let run = par::mttkrp_par_matmul(&x, &refs, n, p);
            assert!(run.output.max_abs_diff(&oracle) < 1e-9);
            format!("{}", run.max_recv_words())
        } else {
            format!("{:.0}*", model::mm_baseline_cost(&problem, n, p as u64))
        };

        let lb = bounds::par_best_mi(&problem, p as u64);
        println!(
            "{:>5} {:>14} {:>14} {:>14} {:>12.0} {:>4}x{:?}",
            p,
            run3.max_recv_words(),
            run4.max_recv_words(),
            mm_words,
            lb,
            p0,
            g4u
        );
    }
    println!("\n(* = modeled CARMA cost where the 1D baseline's divisibility fails)");
    println!("all executed runs verified against the oracle");
}
