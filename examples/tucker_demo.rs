//! Tucker decomposition demo (Section VII: "other decompositions"):
//! compress a smooth synthetic field with ST-HOSVD and refine with HOOI.
//! The bottleneck kernel here is the TTM chain — the Tucker analog of
//! MTTKRP that the paper's lower-bound machinery extends to.
//!
//! Run with: `cargo run --release -p mttkrp-core --example tucker_demo`

use mttkrp_core::tucker::{hooi, st_hosvd};
use mttkrp_tensor::{DenseTensor, Shape};

fn main() {
    // A smooth separable-plus-noise field: low multilinear rank by
    // construction (three slowly-varying harmonics per mode).
    let dims = [20usize, 18, 16];
    let shape = Shape::new(&dims);
    let smooth = DenseTensor::from_fn(shape.clone(), |idx| {
        let t0 = idx[0] as f64 / dims[0] as f64;
        let t1 = idx[1] as f64 / dims[1] as f64;
        let t2 = idx[2] as f64 / dims[2] as f64;
        (std::f64::consts::PI * t0).sin() * (2.0 * std::f64::consts::PI * t1).cos()
            + 0.5 * (2.0 * std::f64::consts::PI * t0).cos() * (std::f64::consts::PI * t2).sin()
            + 0.25 * t1 * t2
    });
    let noise = DenseTensor::random(shape.clone(), 4);
    let sigma = 0.02 * smooth.frob_norm() / noise.frob_norm();
    let x = DenseTensor::from_vec(
        shape.clone(),
        smooth
            .data()
            .iter()
            .zip(noise.data())
            .map(|(&s, &n)| s + sigma * n)
            .collect(),
    );

    println!("Tucker demo: {} field, 2% noise\n", shape);
    println!(
        "{:>12} {:>10} {:>12} {:>12} {:>12}",
        "ranks", "core size", "compression", "HOSVD fit", "HOOI fit"
    );
    let total: usize = dims.iter().product();
    for ranks in [[2usize, 2, 2], [3, 3, 3], [5, 5, 5], [8, 8, 8]] {
        let t = st_hosvd(&x, &ranks);
        let h = hooi(&x, &ranks, 2);
        let stored: usize = ranks.iter().product::<usize>()
            + dims.iter().zip(&ranks).map(|(&d, &r)| d * r).sum::<usize>();
        println!(
            "{:>12} {:>10} {:>11.1}x {:>12.5} {:>12.5}",
            format!("{}x{}x{}", ranks[0], ranks[1], ranks[2]),
            ranks.iter().product::<usize>(),
            total as f64 / stored as f64,
            t.fit_to(&x),
            h.fit_to(&x)
        );
    }
    println!("\nthe 3x3x3 core already captures the smooth field (fit ~ noise");
    println!("floor); HOOI refines HOSVD slightly. The multi-TTM inside each");
    println!("HOOI sweep is the Tucker analog of MTTKRP.");
}
