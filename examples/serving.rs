//! Serving MTTKRP as a long-lived service: plan caching + batching.
//!
//! A `Server` owns a plan cache, a batching queue, and a pool of executor
//! workers. Submitting many same-shape requests shows the serving story:
//! the first request of each shape pays for a planner sweep (cache miss);
//! every later one reuses the cached plan, and concurrent same-shape
//! requests coalesce into batches that share one executor.
//!
//! Run with: `cargo run --release --example serving`

use mttkrp::exec::MachineSpec;
use mttkrp::serve::{MttkrpRequest, Server, ServerConfig};
use mttkrp::tensor::{mttkrp_reference, DenseTensor, Matrix, Shape};
use std::sync::Arc;

fn operands(dims: &[usize], r: usize, seed: u64) -> (Arc<DenseTensor>, Arc<Vec<Matrix>>) {
    let shape = Shape::new(dims);
    let x = Arc::new(DenseTensor::random(shape, seed));
    let factors = Arc::new(
        dims.iter()
            .enumerate()
            .map(|(k, &d)| Matrix::random(d, r, seed + k as u64))
            .collect::<Vec<Matrix>>(),
    );
    (x, factors)
}

fn main() {
    let server = Server::start(ServerConfig {
        machine: MachineSpec::shared(2, 1 << 14),
        workers: 2,
        cache_capacity: 32,
        max_batch: 16,
        ..ServerConfig::default()
    });

    // Two request shapes; 20 requests each, interleaved, distinct data.
    let shapes: [&[usize]; 2] = [&[24, 24, 24], &[16, 32, 8]];
    let mut handles = Vec::new();
    for round in 0..20u64 {
        for (s, &dims) in shapes.iter().enumerate() {
            let (x, f) = operands(dims, 8, 10 * round + s as u64);
            let handle = server.submit(MttkrpRequest::new(x.clone(), f.clone(), 0));
            handles.push((x, f, handle));
        }
    }

    // Every response carries its (shared) plan, so "why this algorithm?"
    // is answerable per request; spot-check the first one and verify it.
    let mut first = true;
    for (x, f, handle) in handles {
        let response = handle.wait();
        if first {
            println!("{}\n", response.plan.explain());
            first = false;
        }
        let refs: Vec<&Matrix> = f.iter().collect();
        let oracle = mttkrp_reference(&x, &refs, 0);
        assert!(response.report.output.max_abs_diff(&oracle) < 1e-10);
    }

    let stats = server.shutdown();
    println!("{stats}");
    println!(
        "\n2 shapes -> exactly {} planner sweeps; everything else hit the cache",
        stats.cache.misses
    );
}
