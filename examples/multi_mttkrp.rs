//! Multi-mode MTTKRP with intermediate reuse (Section VII of the paper):
//! a CP-ALS sweep needs MTTKRP in *every* mode; a dimension tree shares
//! partial contractions across modes.
//!
//! This example measures the arithmetic savings (counted multiplies) of
//! the tree over N independent MTTKRPs, across tensor orders.
//!
//! Run with: `cargo run --release -p mttkrp-core --example multi_mttkrp`

use mttkrp_core::multi::{mttkrp_all_modes_naive, mttkrp_all_modes_tree};
use mttkrp_tensor::{mttkrp_reference, DenseTensor, Matrix, Shape};

fn main() {
    println!("multi-mode MTTKRP: dimension-tree reuse vs N independent runs\n");
    println!(
        "{:>3} {:>12} {:>6} {:>14} {:>14} {:>8}",
        "N", "dims", "R", "naive muls", "tree muls", "speedup"
    );

    for order in 3..=6usize {
        // Keep |X| roughly constant (~4096) as the order grows.
        let dim = (4096f64.powf(1.0 / order as f64)).round() as usize;
        let dims = vec![dim; order];
        let r = 8;
        let shape = Shape::new(&dims);
        let x = DenseTensor::random(shape.clone(), 1);
        let factors: Vec<Matrix> = dims
            .iter()
            .enumerate()
            .map(|(k, &d)| Matrix::random(d, r, 50 + k as u64))
            .collect();
        let refs: Vec<&Matrix> = factors.iter().collect();

        let (tree_out, tree_flops) = mttkrp_all_modes_tree(&x, &refs);
        let (naive_out, naive_flops) = mttkrp_all_modes_naive(&x, &refs);

        // Verify both against the oracle for every mode.
        for n in 0..order {
            let oracle = mttkrp_reference(&x, &refs, n);
            assert!(tree_out[n].max_abs_diff(&oracle) < 1e-9);
            assert!(naive_out[n].max_abs_diff(&oracle) < 1e-9);
        }

        println!(
            "{:>3} {:>12} {:>6} {:>14} {:>14} {:>7.2}x",
            order,
            format!("{dim}^{order}"),
            r,
            naive_flops.muls,
            tree_flops.muls,
            naive_flops.muls as f64 / tree_flops.muls as f64
        );
    }

    println!("\nthe naive cost grows ~N^2*I*R while the tree stays ~O(N*I*R):");
    println!("exactly the cross-mode reuse Section VII says saves computation.");

    // And the communication half of the claim, on the simulated machine:
    // an all-modes sweep gathers each factor once instead of N-1 times.
    println!("\ndistributed sweep on a 2x2x2 machine (16^3 tensor, R = 8):");
    let dims = [16usize, 16, 16];
    let x = DenseTensor::random(Shape::new(&dims), 9);
    let factors: Vec<Matrix> = dims
        .iter()
        .enumerate()
        .map(|(k, &d)| Matrix::random(d, 8, 70 + k as u64))
        .collect();
    let refs: Vec<&Matrix> = factors.iter().collect();
    let all = mttkrp_core::par::mttkrp_all_modes_stationary(&x, &refs, &[2, 2, 2]);
    let per_mode: u64 = (0..3)
        .map(|n| {
            mttkrp_core::par::mttkrp_stationary(&x, &refs, n, &[2, 2, 2])
                .summary
                .max_words
        })
        .sum();
    for n in 0..3 {
        let oracle = mttkrp_reference(&x, &refs, n);
        assert!(all.outputs[n].max_abs_diff(&oracle) < 1e-9);
    }
    println!(
        "  per-mode sweep (3x Algorithm 3): {per_mode} words/rank\n  \
         all-modes sweep (shared gathers): {} words/rank ({:.2}x less)",
        all.summary.max_words,
        per_mode as f64 / all.summary.max_words as f64
    );
}
