//! The sequential story of the paper, measured: how blocking (Algorithm 2)
//! drives MTTKRP I/O down to the lower bound as fast memory grows, while
//! the unblocked Algorithm 1 cannot exploit memory at all.
//!
//! Run with: `cargo run --release -p mttkrp-core --example cache_blocking`

use mttkrp_core::{bounds, seq, Problem};
use mttkrp_tensor::{DenseTensor, Matrix, Shape};

fn main() {
    let dims = [24usize, 24, 24];
    let rank = 6;
    let n = 1;
    let shape = Shape::new(&dims);
    let x = DenseTensor::random(shape.clone(), 5);
    let factors: Vec<Matrix> = dims
        .iter()
        .enumerate()
        .map(|(k, &d)| Matrix::random(d, rank, 200 + k as u64))
        .collect();
    let refs: Vec<&Matrix> = factors.iter().collect();
    let problem = Problem::from_shape(&shape, rank);
    let oracle = mttkrp_tensor::mttkrp_reference(&x, &refs, n);

    println!(
        "cache blocking sweep: X is 24^3 (I = {}), R = {rank}",
        24 * 24 * 24
    );
    println!(
        "{:>7} {:>3} {:>12} {:>12} {:>12} {:>12} {:>8}",
        "M", "b", "alg1 words", "alg2 words", "matmul", "lower bnd", "alg2/lb"
    );

    for &m in &[8usize, 32, 128, 512, 2048, 8192] {
        let b = seq::choose_block_size(m, 3);
        let a1 = seq::mttkrp_unblocked(&x, &refs, n, m);
        let a2 = seq::mttkrp_blocked(&x, &refs, n, m, b);
        let mm = seq::mttkrp_seq_matmul(&x, &refs, n, m);
        assert!(a1.output.max_abs_diff(&oracle) < 1e-10);
        assert!(a2.output.max_abs_diff(&oracle) < 1e-10);
        assert!(mm.output.max_abs_diff(&oracle) < 1e-10);

        let lb = bounds::seq_best(&problem, m as u64).max(1.0);
        println!(
            "{:>7} {:>3} {:>12} {:>12} {:>12} {:>12.0} {:>8.2}",
            m,
            b,
            a1.stats.total(),
            a2.stats.total(),
            mm.total_stats().total(),
            lb,
            a2.stats.total() as f64 / lb
        );
    }

    println!("\nAlgorithm 1's traffic is flat in M; Algorithm 2 tracks the lower");
    println!("bound within a constant factor (Theorem 6.1), and beats the matmul");
    println!("baseline once the factor-matrix traffic dominates (NR vs M^(1-1/N)).");
}
