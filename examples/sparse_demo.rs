//! Sparse MTTKRP (Section VII of the paper): same stationary-tensor
//! distribution and collectives as Algorithm 3, COO storage and
//! nonzero-only arithmetic locally.
//!
//! The demo builds a sparse synthetic "user x item x time" interaction
//! tensor, runs the medium-grained parallel sparse MTTKRP, and shows that
//! (a) results match the dense oracle, (b) communication equals the dense
//! algorithm's (block distributions are structure-oblivious), while
//! (c) local arithmetic scales with nnz, not I.
//!
//! Run with: `cargo run --release -p mttkrp-core --example sparse_demo`

use mttkrp_core::par::{mttkrp_sparse_stationary, mttkrp_stationary};
use mttkrp_tensor::{mttkrp_reference, CooTensor, Matrix, Shape};

fn main() {
    // A 32 x 24 x 16 interaction tensor at 2% density.
    let dims = [32usize, 24, 16];
    let rank = 4;
    let n = 0;
    let shape = Shape::new(&dims);
    let x = CooTensor::random(shape.clone(), 0.02, 9);
    let dense = x.to_dense();
    let total: usize = dims.iter().product();
    println!(
        "sparse MTTKRP demo: {}x{}x{} tensor, nnz = {} ({:.1}% dense), R = {rank}\n",
        dims[0],
        dims[1],
        dims[2],
        x.nnz(),
        100.0 * x.nnz() as f64 / total as f64
    );

    let factors: Vec<Matrix> = dims
        .iter()
        .enumerate()
        .map(|(k, &d)| Matrix::random(d, rank, 60 + k as u64))
        .collect();
    let refs: Vec<&Matrix> = factors.iter().collect();

    let grid = [2usize, 2, 2];
    let sparse_run = mttkrp_sparse_stationary(&x, &refs, n, &grid);
    let dense_run = mttkrp_stationary(&dense, &refs, n, &grid);
    let oracle = mttkrp_reference(&dense, &refs, n);

    println!("parallel run on a 2x2x2 grid (P = 8):");
    println!(
        "  sparse result vs oracle: max |diff| = {:.2e}",
        sparse_run.output.max_abs_diff(&oracle)
    );
    assert!(sparse_run.output.max_abs_diff(&oracle) < 1e-10);
    println!(
        "  communication: sparse {} words/rank, dense {} words/rank (equal: {})",
        sparse_run.summary.max_words,
        dense_run.summary.max_words,
        sparse_run.summary.max_words == dense_run.summary.max_words
    );

    // Arithmetic comparison: nonzero-only multiplies.
    let sparse_muls = x.nnz() * rank * (dims.len() - 1);
    let dense_muls = total * rank * (dims.len() - 1);
    println!("\nlocal arithmetic (whole machine):");
    println!("  dense kernel:  {dense_muls:>9} multiplies");
    println!(
        "  sparse kernel: {sparse_muls:>9} multiplies ({:.0}x fewer)",
        dense_muls as f64 / sparse_muls as f64
    );
    println!("\nblock distributions are structure-oblivious: sparsity saves");
    println!("arithmetic but not words; structure-aware (hypergraph) partitioning");
    println!("— the paper's cited future work — is what would cut communication.");
}
