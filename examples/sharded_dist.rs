//! The sharded multi-rank runtime executing a planned MTTKRP for real.
//!
//! The planner picks the communication-optimal algorithm and grid for a
//! 4-rank cluster; `mttkrp-dist` then shards the operands (each rank owns
//! only its block), runs the schedule with real ring collectives over an
//! instrumented transport, and the example cross-checks the measured
//! per-rank traffic against the netsim-predicted schedule — collective by
//! collective — and the output against the single-node executor, bit for
//! bit. The same run then repeats over loopback TCP sockets (the
//! machine's `TransportSpec::Tcp`): identical rank programs, identical
//! bits, identical ledgers — only the fabric changes.
//!
//! Run with: `cargo run --release --example sharded_dist`

use mttkrp_core::Problem;
use mttkrp_dist::DistBackend;
use mttkrp_exec::{plan_and_execute, MachineSpec, Planner, TransportSpec};
use mttkrp_tensor::{DenseTensor, Matrix, Shape};

fn main() {
    let dims = [16usize, 16, 16];
    let rank = 8;
    let mode = 0;

    let shape = Shape::new(&dims);
    let x = DenseTensor::random(shape.clone(), 7);
    let factors: Vec<Matrix> = dims
        .iter()
        .enumerate()
        .map(|(k, &d)| Matrix::random(d, rank, 200 + k as u64))
        .collect();
    let refs: Vec<&Matrix> = factors.iter().collect();
    let problem = Problem::from_shape(&shape, rank);

    // Plan for a 4-rank cluster; the plan itself names the distribution.
    let machine = MachineSpec::cluster(4, 1, 1 << 16);
    let plan = Planner::new(machine.clone()).plan_executable(&problem, mode);
    println!("{plan}\n");

    // Execute for real: one thread per rank, owned shards, real messages.
    let out = DistBackend::new().run_instrumented(&plan, &x, &refs);

    // Each rank's measured traffic vs. the netsim-predicted schedule.
    let predicted = DistBackend::predicted_schedule(&plan).expect("parallel plan");
    println!("measured vs predicted per-rank traffic:");
    for (me, ledger) in out.ledgers.iter().enumerate() {
        print!("  rank {me}:");
        for (got, want) in ledger.phases().iter().zip(&predicted.ranks[me].phases) {
            assert_eq!(got, want, "rank {me} deviates from the schedule");
            print!("  {} {}w", got.phase, got.words_sent);
        }
        println!();
    }

    // And the result is bit-identical to the single-node executor.
    let (_, single) = plan_and_execute(&machine, &x, &refs, mode);
    assert_eq!(
        out.report.output.data(),
        single.output.data(),
        "dist output must be bit-identical to the single-node executor"
    );
    println!("\ndist output bit-identical to single-node execution; schedule word-exact");

    // Same plan, same rank programs — over real loopback TCP sockets.
    let tcp_machine = machine.with_transport(TransportSpec::Tcp);
    let tcp_plan = Planner::new(tcp_machine).plan_executable(&problem, mode);
    let tcp = DistBackend::new().run_instrumented(&tcp_plan, &x, &refs);
    assert_eq!(
        tcp.report.output.data(),
        out.report.output.data(),
        "tcp output must be bit-identical to the channel run"
    );
    assert_eq!(
        tcp.ledgers, out.ledgers,
        "tcp ledgers must equal channel ledgers"
    );
    println!("tcp loopback run bit-identical to channels, ledgers equal word for word");
}
