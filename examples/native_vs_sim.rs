//! The same planned MTTKRP on both execution backends.
//!
//! The planner chooses one algorithm from the paper's cost models; the
//! simulator backend then reports what the plan *costs in words* (the
//! quantity the paper's lower bounds govern), while the native backend
//! reports what it *costs in time* at hardware speed — single-threaded and
//! with all cores.
//!
//! Run with: `cargo run --release --example native_vs_sim`

use mttkrp_core::{bounds, Problem};
use mttkrp_exec::{Backend, ExecCost, MachineSpec, NativeBackend, Planner, SimBackend};
use mttkrp_tensor::{mttkrp_reference, DenseTensor, Matrix, Shape};

fn main() {
    let dims = [32usize, 32, 32];
    let rank = 16;
    let mode = 0;
    let m = 2048; // planner's fast-memory budget (words)

    let shape = Shape::new(&dims);
    let x = DenseTensor::random(shape.clone(), 7);
    let factors: Vec<Matrix> = dims
        .iter()
        .enumerate()
        .map(|(k, &d)| Matrix::random(d, rank, 100 + k as u64))
        .collect();
    let refs: Vec<&Matrix> = factors.iter().collect();
    let problem = Problem::from_shape(&shape, rank);

    let cores = MachineSpec::detect_threads();
    let machine = MachineSpec::shared(cores, m);
    let plan = Planner::new(machine).plan(&problem, mode);
    println!("{plan}\n");

    // --- simulator: exact word counts --------------------------------------
    let sim_report = SimBackend::new().execute(&plan, &x, &refs);
    if let ExecCost::SeqIo { loads, stores, .. } = sim_report.cost {
        let measured = loads + stores;
        println!(
            "simulator:   {measured} words moved (model predicted {:.0})",
            plan.predicted_cost
        );
        println!(
            "lower bound: {:.0} words (best sequential bound at M = {m})",
            bounds::seq_best(&problem, m as u64)
        );
    }

    // --- native: wall-clock, 1 thread vs all cores -------------------------
    let single = NativeBackend::new(1, m);
    let multi = NativeBackend::new(cores, m);
    let r1 = single.execute(&plan, &x, &refs);
    let rn = multi.execute(&plan, &x, &refs);
    let (t1, tn) = match (&r1.cost, &rn.cost) {
        (ExecCost::Native { elapsed: e1, .. }, ExecCost::Native { elapsed: en, .. }) => {
            (e1.as_secs_f64(), en.as_secs_f64())
        }
        _ => unreachable!("native backend always reports Native cost"),
    };
    println!("\nnative, 1 thread:    {:.3} ms", t1 * 1e3);
    println!("native, {cores} thread(s): {:.3} ms", tn * 1e3);
    if cores > 1 {
        println!("speedup: {:.2}x", t1 / tn);
    }

    // --- everyone agrees with the oracle -----------------------------------
    let oracle = mttkrp_reference(&x, &refs, mode);
    for (name, out) in [
        ("sim", &sim_report.output),
        ("native x1", &r1.output),
        ("native xN", &rn.output),
    ] {
        let diff = out.max_abs_diff(&oracle);
        assert!(diff < 1e-10, "{name} diverged from the oracle: {diff}");
        println!("{name:<10} matches oracle (max |diff| = {diff:.2e})");
    }
}
