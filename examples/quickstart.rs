//! Quickstart: compute an MTTKRP four ways and check the communication
//! counts against the paper's lower bounds.
//!
//! Run with: `cargo run --release -p mttkrp-core --example quickstart`

use mttkrp_core::{bounds, model, par, seq, Problem};
use mttkrp_tensor::{mttkrp_reference, DenseTensor, Matrix, Shape};

fn main() {
    // An 8 x 8 x 8 tensor, rank-4 factors, mode n = 0.
    let dims = [8usize, 8, 8];
    let rank = 4;
    let n = 0;
    let shape = Shape::new(&dims);
    let x = DenseTensor::random(shape.clone(), 42);
    let factors: Vec<Matrix> = dims
        .iter()
        .enumerate()
        .map(|(k, &d)| Matrix::random(d, rank, 100 + k as u64))
        .collect();
    let refs: Vec<&Matrix> = factors.iter().collect();
    let problem = Problem::from_shape(&shape, rank);

    println!("MTTKRP quickstart: X is {shape}, R = {rank}, mode n = {n}\n");

    // 1. Reference (oracle) result.
    let oracle = mttkrp_reference(&x, &refs, n);
    println!("oracle:              B[0,0] = {:+.6}", oracle[(0, 0)]);

    // 2. Sequential algorithms on the two-level memory simulator.
    let m = 64; // fast memory: 64 words
    let unblocked = seq::mttkrp_unblocked(&x, &refs, n, m);
    let b = seq::choose_block_size(m, 3);
    let blocked = seq::mttkrp_blocked(&x, &refs, n, m, b);
    let matmul = seq::mttkrp_seq_matmul(&x, &refs, n, m);
    let lb = bounds::seq_best(&problem, m as u64);

    println!("\nsequential model (M = {m} words, block size b = {b}):");
    println!(
        "  Algorithm 1 (unblocked): {:>7} words moved  (model: {})",
        unblocked.stats.total(),
        model::alg1_cost(&problem)
    );
    println!(
        "  Algorithm 2 (blocked):   {:>7} words moved  (model: {})",
        blocked.stats.total(),
        model::alg2_cost_exact(&problem, n, b as u64)
    );
    println!(
        "  matmul baseline:         {:>7} words moved",
        matmul.total_stats().total()
    );
    println!("  lower bound (Thm 4.1 / Fact 4.1): {lb:.0} words");
    assert!(blocked.output.max_abs_diff(&oracle) < 1e-10);
    assert!(unblocked.output.max_abs_diff(&oracle) < 1e-10);
    assert!(matmul.output.max_abs_diff(&oracle) < 1e-10);
    assert!(blocked.stats.total() as f64 >= lb);

    // 3. Parallel algorithms on the distributed-machine simulator.
    let grid = [2usize, 2, 2];
    let p = 8u64;
    let stationary = par::mttkrp_stationary(&x, &refs, n, &grid);
    let general = par::mttkrp_general(&x, &refs, n, 2, &[2, 2, 1]);
    let mm = par::mttkrp_par_matmul(&x, &refs, n, 8);
    let plb = bounds::par_best_mi(&problem, p);

    println!("\nparallel model (P = {p}):");
    println!(
        "  Algorithm 3 (stationary, grid 2x2x2):    max {:>5} words/rank",
        stationary.max_recv_words()
    );
    println!(
        "  Algorithm 4 (general, P0=2, grid 2x2x1): max {:>5} words/rank",
        general.max_recv_words()
    );
    println!(
        "  matmul baseline (1D):                    max {:>5} words/rank",
        mm.max_recv_words()
    );
    println!("  lower bound (Thms 4.2/4.3): {plb:.0} words");
    assert!(stationary.output.max_abs_diff(&oracle) < 1e-10);
    assert!(general.output.max_abs_diff(&oracle) < 1e-10);
    assert!(mm.output.max_abs_diff(&oracle) < 1e-10);

    println!("\nall four implementations agree with the oracle");
}
