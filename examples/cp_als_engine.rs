//! The CP-ALS engine end-to-end: one factorization driven through the
//! planner, the plan cache, and three execution fabrics — then served as a
//! `Factorize` request through the batch server.
//!
//! This is the workload the paper optimizes for: `N` MTTKRPs per ALS
//! sweep, with everything else (Gram-Hadamard, R x R Cholesky,
//! normalization) lower order. The engine plans each mode once, hits the
//! cache every later sweep, and reads the fit off the last MTTKRP for
//! free.
//!
//! Run with: `cargo run --release --example cp_als_engine`

use mttkrp::als::{cp_als, AlsConfig, BackendChoice};
use mttkrp::exec::MachineSpec;
use mttkrp::serve::{FactorizeRequest, Server, ServerConfig};
use mttkrp::tensor::{DenseTensor, KruskalTensor, Shape};
use std::sync::Arc;

fn main() {
    // A 16 x 12 x 8 rank-3 ground truth with 1% noise.
    let dims = [16usize, 12, 8];
    let rank = 3;
    let truth = KruskalTensor::random(&Shape::new(&dims), rank, 42);
    let clean = truth.full();
    let noise = DenseTensor::random(Shape::new(&dims), 43);
    let sigma = 0.01 * clean.frob_norm() / noise.frob_norm();
    let x = DenseTensor::from_vec(
        clean.shape().clone(),
        clean
            .data()
            .iter()
            .zip(noise.data())
            .map(|(&c, &n)| c + sigma * n)
            .collect(),
    );

    // 1. Native: the fast path. One planner sweep per mode, ever.
    let native = cp_als(
        &x,
        &AlsConfig::new(rank)
            .with_machine(MachineSpec::shared(2, 1 << 14))
            .with_backend(BackendChoice::Native)
            .with_sweeps(80)
            .with_tol(1e-10)
            .with_seed(7),
    );
    println!("=== native engine run ===\n{}\n", native.explain());

    // 2. The same factorization on an 8-rank cluster: every per-mode
    // MTTKRP executes the paper's distributed schedule on the sharded
    // runtime (in-process channel transport here; TCP is one
    // `with_transport` away).
    let dist = cp_als(
        &x,
        &AlsConfig::new(rank)
            .with_machine(MachineSpec::cluster(8, 1, 1 << 16))
            .with_backend(BackendChoice::Dist)
            .with_sweeps(80)
            .with_tol(1e-10)
            .with_seed(7),
    );
    println!("=== dist engine run (P = 8) ===\n{}\n", dist.explain());
    println!(
        "fit agreement: native {:.9} vs dist {:.9}\n",
        native.fit(),
        dist.fit()
    );

    // 3. Served: the batch server takes whole factorizations next to
    // single MTTKRPs, resolving their plans through its shared cache.
    let server = Server::start(ServerConfig {
        machine: MachineSpec::shared(2, 1 << 14),
        workers: 2,
        ..ServerConfig::default()
    });
    let config = AlsConfig::new(rank)
        .with_machine(MachineSpec::shared(2, 1 << 14))
        .with_backend(BackendChoice::Native)
        .with_sweeps(80)
        .with_tol(1e-10)
        .with_seed(7);
    let tensor = Arc::new(x);
    let first = server.call_factorize(FactorizeRequest::new(tensor.clone(), config.clone()));
    let second = server.call_factorize(FactorizeRequest::new(tensor, config));
    println!("=== served factorizations ===");
    println!(
        "first:  fit {:.9}, plan-cache misses {} (cold cache)",
        first.run.fit(),
        first.run.cache_misses()
    );
    println!(
        "second: fit {:.9}, plan-cache misses {} (plans reused across requests)",
        second.run.fit(),
        second.run.cache_misses()
    );
    let stats = server.shutdown();
    println!("\n{stats}");

    assert!(native.fit() > 0.98, "native fit {}", native.fit());
    assert!(dist.fit() > 0.98, "dist fit {}", dist.fit());
    assert_eq!(second.run.cache_misses(), 0);
}
