#![allow(clippy::needless_range_loop)]

//! Integration: the Section VII extensions working together — multi-mode
//! reuse inside CP-ALS-shaped workloads, sparse + dense parity across the
//! parallel stack, and Tucker/TTM on top of the same substrates.

use mttkrp_bench::setup_problem;
use mttkrp_core::multi::{mttkrp_all_modes_naive, mttkrp_all_modes_tree};
use mttkrp_core::par::{mttkrp_sparse_stationary, mttkrp_stationary, ttm_compress_stationary};
use mttkrp_core::tucker::{hooi, st_hosvd};
use mttkrp_tensor::{mttkrp_reference, ttm_chain, CooTensor, DenseTensor, Matrix, Shape};

#[test]
fn tree_outputs_feed_cp_als_normal_equations() {
    // A full CP-ALS sweep computed with the dimension tree produces the
    // same mode updates as oracle MTTKRPs (Jacobi-style: all B's from the
    // same factor snapshot).
    let dims = [6usize, 5, 4];
    let (x, factors) = setup_problem(&dims, 3, 1);
    let refs: Vec<&Matrix> = factors.iter().collect();
    let (tree, _) = mttkrp_all_modes_tree(&x, &refs);
    for n in 0..3 {
        let oracle = mttkrp_reference(&x, &refs, n);
        assert!(tree[n].max_abs_diff(&oracle) < 1e-10);
    }
}

#[test]
fn tree_and_naive_agree_bitwise_tolerance_on_many_shapes() {
    for dims in [
        vec![2usize, 2],
        vec![3, 4, 5],
        vec![2, 3, 2, 4],
        vec![2, 2, 2, 2, 3],
    ] {
        let (x, factors) = setup_problem(&dims, 2, 2);
        let refs: Vec<&Matrix> = factors.iter().collect();
        let (tree, tf) = mttkrp_all_modes_tree(&x, &refs);
        let (naive, nf) = mttkrp_all_modes_naive(&x, &refs);
        for (t, v) in tree.iter().zip(&naive) {
            assert!(t.max_abs_diff(v) < 1e-9 * (1.0 + v.frob_norm()));
        }
        if dims.len() >= 4 {
            assert!(tf.muls < nf.muls, "{dims:?}");
        }
    }
}

#[test]
fn sparse_and_dense_parallel_agree_on_sparsified_tensor() {
    let shape = Shape::new(&[8, 8, 8]);
    let coo = CooTensor::random(shape.clone(), 0.15, 3);
    let dense = coo.to_dense();
    let factors: Vec<Matrix> = (0..3).map(|k| Matrix::random(8, 3, 40 + k)).collect();
    let refs: Vec<&Matrix> = factors.iter().collect();
    for n in 0..3 {
        let s = mttkrp_sparse_stationary(&coo, &refs, n, &[2, 2, 2]);
        let d = mttkrp_stationary(&dense, &refs, n, &[2, 2, 2]);
        assert!(s.output.max_abs_diff(&d.output) < 1e-10, "mode {n}");
        assert_eq!(s.summary.total_words, d.summary.total_words);
    }
}

#[test]
fn parallel_ttm_reproduces_hooi_inner_kernel() {
    // The HOOI mode update's multi-TTM, computed in parallel, matches the
    // sequential chain used by the `tucker` module.
    let dims = [6usize, 6, 4];
    let x = DenseTensor::random(Shape::new(&dims), 4);
    let t = st_hosvd(&x, &[2, 3, 2]);
    let refs: Vec<&Matrix> = t.factors.iter().collect();
    for n in 0..3 {
        let run = ttm_compress_stationary(&x, &refs, n, &[2, 3, 2]);
        let transposed: Vec<(usize, Matrix)> = (0..3)
            .filter(|&k| k != n)
            .map(|k| (k, t.factors[k].transpose()))
            .collect();
        let chain: Vec<(usize, &Matrix)> = transposed.iter().map(|(k, m)| (*k, m)).collect();
        let oracle = ttm_chain(&x, &chain);
        assert!(
            run.output.frob_dist(&oracle) < 1e-9 * (1.0 + oracle.frob_norm()),
            "mode {n}"
        );
    }
}

#[test]
fn tucker_on_cp_structured_data() {
    // A rank-R CP tensor has multilinear ranks <= R in every mode, so a
    // Tucker-(R,R,R) decomposition must capture it exactly.
    let kt = mttkrp_tensor::KruskalTensor::random(&Shape::new(&[7, 6, 5]), 2, 5);
    let x = kt.full();
    let t = st_hosvd(&x, &[2, 2, 2]);
    assert!(t.fit_to(&x) > 1.0 - 1e-7, "fit {}", t.fit_to(&x));
    let h = hooi(&x, &[2, 2, 2], 2);
    assert!(h.fit_to(&x) > 1.0 - 1e-7);
}

#[test]
fn ttm_traffic_cheaper_than_mttkrp_for_small_tucker_ranks() {
    // Tucker factors are I_k x R_k with small R_k: the stationary TTM
    // should move fewer words than MTTKRP with CP rank R = prod-ish.
    let dims = [8usize, 8, 8];
    let x = DenseTensor::random(Shape::new(&dims), 6);
    let us: Vec<Matrix> = (0..3).map(|k| Matrix::random(8, 2, 50 + k)).collect();
    let urefs: Vec<&Matrix> = us.iter().collect();
    let cp_factors: Vec<Matrix> = (0..3).map(|k| Matrix::random(8, 8, 60 + k)).collect();
    let crefs: Vec<&Matrix> = cp_factors.iter().collect();
    let ttm_run = ttm_compress_stationary(&x, &urefs, 0, &[2, 2, 2]);
    let mttkrp_run = mttkrp_stationary(&x, &crefs, 0, &[2, 2, 2]);
    assert!(ttm_run.summary.max_words < mttkrp_run.summary.max_words);
}
