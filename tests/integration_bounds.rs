//! Integration: every *executed* algorithm respects every applicable
//! *lower bound* — the end-to-end statement of the paper. Measured
//! communication (simulators) must dominate the theorems' formulas, and
//! the optimal algorithms must sit within a modest constant of them.

use mttkrp_bench::setup_problem;
use mttkrp_core::{bounds, grid_opt, model, par, seq, Problem};
use mttkrp_tensor::Matrix;

#[test]
fn sequential_measured_respects_theorem_41_and_fact_41() {
    for (dims, r, m) in [
        (vec![8usize, 8, 8], 4usize, 32usize),
        (vec![12, 10, 8], 3, 64),
        (vec![6, 6, 6, 6], 2, 48),
    ] {
        let (x, factors) = setup_problem(&dims, r, 1);
        let refs: Vec<&Matrix> = factors.iter().collect();
        let p = Problem::new(
            &dims.iter().map(|&d| d as u64).collect::<Vec<u64>>(),
            r as u64,
        );
        let lb = bounds::seq_best(&p, m as u64);
        for n in 0..dims.len() {
            let b = seq::choose_block_size(m, dims.len());
            let run = seq::mttkrp_blocked(&x, &refs, n, m, b);
            assert!(
                run.stats.total() as f64 >= lb,
                "blocked W = {} < lower bound {lb} (dims {dims:?}, n {n})",
                run.stats.total()
            );
            let run1 = seq::mttkrp_unblocked(&x, &refs, n, m);
            assert!(run1.stats.total() as f64 >= lb);
            let runm = seq::mttkrp_seq_matmul(&x, &refs, n, m);
            // The matmul baseline breaks atomicity, so Theorem 4.1 does not
            // bind it -- but Fact 4.1 (touch all I/O) still must hold.
            let trivial = bounds::seq_trivial(&p, m as u64);
            assert!(runm.total_stats().total() as f64 >= trivial);
        }
    }
}

#[test]
fn blocked_algorithm_is_within_constant_of_bound() {
    // Theorem 6.1 at an executable scale: ratio bounded by a modest
    // constant in the regime where the bounds are non-vacuous. (At tiny M
    // the integer block size is far from (alpha*M)^(1/N) -- e.g. M = 32
    // forces b = 2 when b = 3 needs 36 words -- so the constant is looser
    // than the asymptotic one.)
    let dims = vec![16usize, 16, 16];
    let r = 8usize;
    let (x, factors) = setup_problem(&dims, r, 2);
    let refs: Vec<&Matrix> = factors.iter().collect();
    let p = Problem::new(&[16, 16, 16], r as u64);
    for &m in &[32usize, 128, 512] {
        let b = seq::choose_block_size(m, 3);
        let run = seq::mttkrp_blocked(&x, &refs, 0, m, b);
        let lb = bounds::seq_best(&p, m as u64);
        assert!(lb > 0.0, "bound should be non-vacuous at M = {m}");
        let ratio = run.stats.total() as f64 / lb;
        assert!(
            ratio < 12.0,
            "optimality ratio {ratio:.2} too large at M = {m}"
        );
    }
}

#[test]
fn parallel_measured_respects_memory_independent_bounds() {
    let dims = vec![8usize, 8, 8];
    let r = 4usize;
    let (x, factors) = setup_problem(&dims, r, 3);
    let refs: Vec<&Matrix> = factors.iter().collect();
    let p = Problem::new(&[8, 8, 8], r as u64);
    for grid in [[2usize, 2, 2], [4, 2, 1], [2, 1, 2]] {
        let procs: usize = grid.iter().product();
        let run = par::mttkrp_stationary(&x, &refs, 0, &grid);
        let lb = bounds::par_best_mi(&p, procs as u64);
        assert!(
            run.summary.max_words as f64 >= lb,
            "grid {grid:?}: measured {} < bound {lb}",
            run.summary.max_words
        );
    }
}

#[test]
fn general_algorithm_respects_bounds_with_p0() {
    let dims = vec![8usize, 8, 8];
    let r = 8usize;
    let (x, factors) = setup_problem(&dims, r, 4);
    let refs: Vec<&Matrix> = factors.iter().collect();
    let p = Problem::new(&[8, 8, 8], r as u64);
    let run = par::mttkrp_general(&x, &refs, 0, 2, &[2, 2, 2]);
    let lb = bounds::par_best_mi(&p, 16);
    assert!(run.summary.max_words as f64 >= lb);
}

#[test]
fn modeled_optimal_grids_sit_between_bounds_and_2x_bounds_figure4_scale() {
    // At the paper's Figure 4 scale, the best Eq. (14)/(18) grids must
    // dominate Corollary 4.2 and stay within a small constant of it.
    let p = Problem::cubical(3, 1 << 15, 1 << 15);
    for &log_p in &[5u32, 10, 15, 20, 25, 30] {
        let procs = 1u64 << log_p;
        let (_, _, cost) = grid_opt::optimize_alg4_grid(&p, procs);
        let lb = bounds::par_best_mi(&p, procs);
        if lb > 0.0 {
            assert!(
                cost >= lb * 0.49,
                "P=2^{log_p}: cost {cost:.3e} far below bound {lb:.3e}"
            );
            assert!(
                cost <= 8.0 * bounds::par_combined_cor42(&p, procs),
                "P=2^{log_p}: cost {cost:.3e} too far above Cor 4.2"
            );
        }
    }
}

#[test]
fn executed_segments_respect_theorem_41_proof_bound() {
    // The proof device of Theorem 4.1, verified on real executions: in any
    // window of M loads/stores, no algorithm can complete more than
    // (3M)^{2-1/N}/N atomic N-ary multiplies. The simulator records the
    // per-segment iteration counts; every one must obey the cap.
    for (dims, r, m, b) in [
        (vec![8usize, 8, 8], 4usize, 16usize, 2usize),
        (vec![8, 8, 8], 4, 40, 3),
        (vec![12, 10, 8], 3, 80, 4),
        (vec![6, 6, 6, 6], 2, 32, 2),
    ] {
        let (x, factors) = setup_problem(&dims, r, 77);
        let refs: Vec<&Matrix> = factors.iter().collect();
        let order = dims.len();
        let cap = mttkrp_core::hbl::segment_iteration_bound(order, m as u64);
        for n in 0..order {
            for run in [
                seq::mttkrp_blocked(&x, &refs, n, m, b),
                seq::mttkrp_unblocked(&x, &refs, n, m),
            ] {
                assert!(!run.segments.is_empty());
                let total: u64 = run.segments.iter().sum();
                assert_eq!(
                    total as u128,
                    Problem::new(
                        &dims.iter().map(|&d| d as u64).collect::<Vec<u64>>(),
                        r as u64,
                    )
                    .iteration_space(),
                    "all iterations accounted"
                );
                for (s, &iters) in run.segments.iter().enumerate() {
                    assert!(
                        (iters as f64) <= cap + 1e-9,
                        "dims {dims:?} n {n} segment {s}: {iters} iterations > cap {cap:.1}"
                    );
                }
            }
        }
    }
}

#[test]
fn hbl_segment_bound_dominates_any_executed_segment() {
    // The segment-counting heart of Theorem 4.1: no M-load/store segment
    // can evaluate more than (3M)^(2-1/N)/N iterations. The blocked
    // algorithm's per-block work must respect it with M = b^N + N*b.
    let p = Problem::new(&[16, 16, 16], 4);
    for &b in &[2u64, 4] {
        let m = b.pow(3) + 3 * b;
        let per_block_iterations = (b.pow(3) * p.rank) as f64;
        let segment_cap = mttkrp_core::hbl::segment_iteration_bound(3, m);
        // One block's r-loop performs b^3 * R iterations while moving
        // ~b^3 + (N+1) b R words; scaled to M-word segments the HBL cap
        // must dominate. Conservative check: iterations per (3M)-word
        // window <= cap.
        let words_per_block = (b.pow(3) + 4 * b * p.rank) as f64;
        let segments = (words_per_block / m as f64).ceil();
        assert!(
            per_block_iterations <= segments * segment_cap,
            "b = {b}: {per_block_iterations} iterations exceed HBL cap"
        );
    }
}

#[test]
fn model_asymptotics_agree_with_exact_models() {
    // Eq. (14)'s asymptotic form NR(I/P)^{1/N} matches the exact even-case
    // expression within 2x for cubical grids.
    let p = Problem::cubical(3, 1 << 6, 16);
    for &procs in &[8u64, 64, 512] {
        let side = (procs as f64).cbrt().round() as u64;
        let grid = vec![side; 3];
        let exact = model::alg3_cost(&p, &grid);
        let asym = model::alg3_cost_asymptotic(&p, procs);
        assert!(
            exact <= asym,
            "exact {exact} should be below asymptotic {asym}"
        );
        assert!(exact >= asym * 0.4, "exact {exact} too far below {asym}");
    }
}
