//! Cross-crate integration: the sharded multi-rank runtime against the
//! whole stack — planner, simulator, native executor, and the netsim
//! schedule predictions.

use mttkrp_core::Problem;
use mttkrp_dist::DistBackend;
use mttkrp_exec::{plan_and_execute, Backend, ExecCost, MachineSpec, Planner, SimBackend};
use mttkrp_tensor::{mttkrp_reference, DenseTensor, Matrix, Shape};

fn setup(dims: &[usize], r: usize, seed: u64) -> (DenseTensor, Vec<Matrix>) {
    let shape = Shape::new(dims);
    let x = DenseTensor::random(shape.clone(), seed);
    let factors = dims
        .iter()
        .enumerate()
        .map(|(k, &d)| Matrix::random(d, r, seed + 300 + k as u64))
        .collect();
    (x, factors)
}

/// The acceptance criterion, end to end: a >= 4-rank dist run is
/// bit-identical to the single-node executor and word-exact against the
/// netsim prediction, for every output mode.
#[test]
fn dist_run_is_bit_identical_and_word_exact_all_modes() {
    let (x, factors) = setup(&[16, 16, 16], 16, 5);
    let refs: Vec<&Matrix> = factors.iter().collect();
    let problem = Problem::from_shape(x.shape(), 16);
    let machine = MachineSpec::cluster(8, 1, 1 << 16);
    for mode in 0..3 {
        let plan = Planner::new(machine.clone()).plan_executable(&problem, mode);
        assert!(!plan.algorithm.is_sequential(), "mode {mode}");

        let out = DistBackend::new().run_instrumented(&plan, &x, &refs);
        let (_, single) = plan_and_execute(&machine, &x, &refs, mode);
        assert_eq!(
            out.report.output.data(),
            single.output.data(),
            "mode {mode}: dist differs from the single-node executor"
        );

        let predicted = DistBackend::predicted_schedule(&plan).unwrap();
        for (me, ledger) in out.ledgers.iter().enumerate() {
            assert_eq!(
                ledger.phases(),
                &predicted.ranks[me].phases[..],
                "mode {mode} rank {me}"
            );
        }

        let oracle = mttkrp_reference(&x, &refs, mode);
        assert!(out.report.output.max_abs_diff(&oracle) < 1e-10);
    }
}

/// The dist backend's reported cost agrees with the simulator's for the
/// same plan — the words are not merely equal in total but observed by two
/// independent accounting mechanisms (transport ledger vs. sim counters).
#[test]
fn dist_cost_agrees_with_sim_cost() {
    let (x, factors) = setup(&[8, 8, 8], 8, 6);
    let refs: Vec<&Matrix> = factors.iter().collect();
    let problem = Problem::from_shape(x.shape(), 8);
    let plan = Planner::new(MachineSpec::distributed(8)).plan_executable(&problem, 1);
    let dist = DistBackend::new().execute(&plan, &x, &refs);
    let sim = SimBackend::new().execute(&plan, &x, &refs);
    match (&dist.cost, &sim.cost) {
        (
            ExecCost::ParComm {
                max_recv_words: dr,
                max_sent_words: ds,
                total_words: dt,
                ranks: dk,
            },
            ExecCost::ParComm {
                max_recv_words: sr,
                max_sent_words: ss,
                total_words: st,
                ranks: sk,
            },
        ) => {
            assert_eq!((dr, ds, dt, dk), (sr, ss, st, sk));
        }
        other => panic!("expected ParComm costs, got {other:?}"),
    }
}

/// When no clean data distribution exists, the planner's sequential
/// fallback must still execute on the dist backend — and stay within
/// tolerance of the oracle.
#[test]
fn dist_backend_handles_sequential_fallback() {
    // Prime dims and a prime rank: no dividing grid, no dividing slab,
    // P0 cannot divide R.
    let (x, factors) = setup(&[7, 5, 11], 5, 7);
    let refs: Vec<&Matrix> = factors.iter().collect();
    let problem = Problem::from_shape(x.shape(), 5);
    let plan = Planner::new(MachineSpec::cluster(13, 1, 1 << 12)).plan_executable(&problem, 0);
    assert!(plan.algorithm.is_sequential());
    assert!(
        plan.note.is_some(),
        "fallback must be explained on the plan"
    );

    let out = DistBackend::new().run_instrumented(&plan, &x, &refs);
    assert!(out.ledgers.is_empty());
    let oracle = mttkrp_reference(&x, &refs, 0);
    assert!(out.report.output.max_abs_diff(&oracle) < 1e-10);
}

/// `Plan::explain` names the distribution for cluster plans, so "4 ranks,
/// 2x2x1 grid, Algorithm N" is visible before anything executes — and the
/// transport the machine wires those ranks with.
#[test]
fn cluster_plan_explains_its_distribution() {
    let problem = Problem::new(&[64, 64, 64], 64);
    let plan = Planner::new(MachineSpec::cluster(8, 2, 1 << 16)).plan_executable(&problem, 0);
    let text = plan.explain();
    assert!(!plan.algorithm.is_sequential());
    assert!(text.contains("distribution: 8 ranks"), "{text}");
    assert!(text.contains("grid"), "{text}");
    assert!(text.contains("transport: in-process channels"), "{text}");
}

/// The acceptance criterion over the wire: a TCP-machine plan executes the
/// identical rank programs over loopback sockets, and both gates (bitwise
/// output, schedule word-exactness) hold exactly as they do over channels.
#[test]
fn tcp_machine_is_bit_identical_and_word_exact() {
    use mttkrp_exec::TransportSpec;
    let (x, factors) = setup(&[16, 16, 16], 8, 8);
    let refs: Vec<&Matrix> = factors.iter().collect();
    let problem = Problem::from_shape(x.shape(), 8);
    let machine = MachineSpec::cluster(4, 1, 1 << 16).with_transport(TransportSpec::Tcp);
    let plan = Planner::new(machine.clone()).plan_executable(&problem, 0);
    assert!(!plan.algorithm.is_sequential());
    assert!(plan.explain().contains("transport: tcp sockets"));

    let out = DistBackend::new().run_instrumented(&plan, &x, &refs);
    let (_, single) = plan_and_execute(&machine, &x, &refs, 0);
    assert_eq!(
        out.report.output.data(),
        single.output.data(),
        "tcp run differs from the single-node executor"
    );
    let predicted = DistBackend::predicted_schedule(&plan).unwrap();
    for (me, ledger) in out.ledgers.iter().enumerate() {
        assert!(
            ledger.matches(&predicted.ranks[me].phases),
            "rank {me} deviates from the schedule over tcp:\n{}",
            ledger.diff_table(&predicted.ranks[me].phases)
        );
    }
}
