//! Cross-crate integration: the mttkrp-obs spine under the serving layer's
//! worker pool — concurrent span emission from many threads, span
//! parentage across the layers, and the agreement between the server's
//! own [`MetricsRegistry`] view (`stats()`) and the captured trace.

use mttkrp_als::AlsConfig;
use mttkrp_exec::MachineSpec;
use mttkrp_serve::{FactorizeRequest, MttkrpRequest, Server, ServerConfig};
use mttkrp_tensor::{DenseTensor, KruskalTensor, Matrix, Shape};
use std::collections::HashMap;
use std::sync::Arc;

fn server(workers: usize) -> Server {
    Server::start(ServerConfig {
        machine: MachineSpec::shared(1, 1 << 16),
        workers,
        cache_capacity: 16,
        max_batch: 8,
        ..ServerConfig::default()
    })
}

fn request(dims: &[usize], r: usize, seed: u64, mode: usize) -> MttkrpRequest {
    let shape = Shape::new(dims);
    let x = DenseTensor::random(shape, seed);
    let factors: Vec<Matrix> = dims
        .iter()
        .enumerate()
        .map(|(k, &d)| Matrix::random(d, r, seed + 40 + k as u64))
        .collect();
    MttkrpRequest::new(Arc::new(x), Arc::new(factors), mode)
}

/// Four workers serving two interleaved shapes: every request gets exactly
/// one `request` span, each with its `kernel` child on the same thread —
/// concurrent emission corrupts neither the span stack nor the parentage.
#[test]
fn worker_pool_emits_one_well_parented_span_tree_per_request() {
    let total = 24;
    let cap = mttkrp_obs::capture();
    let stats = {
        let server = server(4);
        let handles: Vec<_> = (0..total)
            .map(|i| {
                let dims: &[usize] = if i % 2 == 0 { &[8, 7, 6] } else { &[6, 8, 7] };
                server.submit(request(dims, 4, 3 + (i % 2) as u64, 0))
            })
            .collect();
        for h in handles {
            h.wait();
        }
        server.shutdown()
    };
    let rec = cap.finish();
    let nodes = rec.nodes();

    let requests: HashMap<u64, _> = nodes
        .iter()
        .filter(|n| n.name == "request")
        .map(|n| (n.id, n))
        .collect();
    assert_eq!(requests.len(), total, "one request span per request");
    assert_eq!(stats.requests_served, total as u64);
    for r in requests.values() {
        assert_eq!(r.parent, None, "worker request spans are roots");
        assert_eq!(r.field_str("kind"), Some("mttkrp"));
        assert!(r.field_u64("batch_size").is_some());
    }

    // Every kernel span hangs off a request span *on the same thread*: the
    // thread-local stacks never leak parents across the worker pool.
    let kernels: Vec<_> = nodes.iter().filter(|n| n.name == "kernel").collect();
    assert_eq!(kernels.len(), total, "one kernel execution per request");
    for k in &kernels {
        let parent = k
            .parent
            .and_then(|id| requests.get(&id))
            .expect("kernel span parented under a request span");
        assert_eq!(parent.thread, k.thread);
    }
}

/// Four threads, held at a barrier, emit nested spans simultaneously: ids
/// stay unique, every parent edge stays within its own thread, and no
/// event is lost — the collector's locking and the thread-local stacks
/// hold up under genuine concurrency (which the worker pool above only
/// provides when the scheduler cooperates).
#[test]
fn simultaneous_emission_from_many_threads_stays_consistent() {
    use std::sync::Barrier;
    const THREADS: usize = 4;
    const SPANS_PER_THREAD: usize = 50;

    let cap = mttkrp_obs::capture();
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                for i in 0..SPANS_PER_THREAD {
                    let _outer = mttkrp_obs::span("request").with("i", i);
                    let _inner = mttkrp_obs::span("kernel");
                    mttkrp_obs::counter_add("test.emissions", 1);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let rec = cap.finish();
    let nodes = rec.nodes();
    assert_eq!(nodes.len(), 2 * THREADS * SPANS_PER_THREAD);

    let mut ids = std::collections::HashSet::new();
    assert!(
        nodes.iter().all(|n| ids.insert(n.id)),
        "span ids are unique"
    );
    let by_id: HashMap<u64, _> = nodes.iter().map(|n| (n.id, n)).collect();
    for n in nodes.iter().filter(|n| n.name == "kernel") {
        let parent = by_id[&n.parent.expect("kernel spans nest")];
        assert_eq!(parent.name, "request");
        assert_eq!(parent.thread, n.thread, "parent edges never cross threads");
    }
    let threads: std::collections::HashSet<u64> = nodes.iter().map(|n| n.thread).collect();
    assert_eq!(threads.len(), THREADS);
    let emissions = rec
        .metrics
        .iter()
        .find(|m| m.name == "test.emissions")
        .unwrap();
    assert_eq!(
        emissions.value,
        mttkrp_obs::MetricValue::Counter((THREADS * SPANS_PER_THREAD) as u64)
    );
}

/// A factorization request nests the whole ALS span tree (factorize →
/// sweep → mode → planner/kernel) under the serve-side `request` root.
#[test]
fn factorization_request_nests_the_als_span_tree() {
    let cap = mttkrp_obs::capture();
    {
        let server = server(1);
        let shape = Shape::new(&[8, 7, 6]);
        let x = Arc::new(KruskalTensor::random(&shape, 3, 11).full());
        let config = AlsConfig::new(3)
            .with_sweeps(2)
            .with_machine(MachineSpec::shared(1, 1 << 16));
        let response = server.call_factorize(FactorizeRequest::new(x, config));
        assert_eq!(response.run.sweeps(), 2);
    }
    let rec = cap.finish();
    let nodes = rec.nodes();
    let by_id: HashMap<u64, _> = nodes.iter().map(|n| (n.id, n)).collect();
    let root_of = |mut id: u64| {
        while let Some(parent) = by_id[&id].parent {
            id = parent;
        }
        by_id[&id]
    };

    let request = nodes
        .iter()
        .find(|n| n.name == "request")
        .expect("request span");
    assert_eq!(request.field_str("kind"), Some("factorize"));
    for name in ["factorize", "sweep", "mode", "planner", "kernel"] {
        let spans: Vec<_> = nodes.iter().filter(|n| n.name == name).collect();
        assert!(!spans.is_empty(), "expected {name} spans in the trace");
        for s in spans {
            assert_eq!(
                root_of(s.id).id,
                request.id,
                "{name} not under the request root"
            );
        }
    }
}

/// `Server::stats()` is a thin view over the metrics registry, and the
/// captured global metrics mirror it: three accounts of the same run agree.
#[test]
fn stats_registry_and_capture_agree() {
    let cap = mttkrp_obs::capture();
    let server = server(2);
    let handles: Vec<_> = (0..10)
        .map(|_| server.submit(request(&[8, 7, 6], 4, 3, 0)))
        .collect();
    for h in handles {
        h.wait();
    }
    let stats = server.stats();
    assert_eq!(stats.requests_submitted, 10);
    assert_eq!(stats.requests_served, 10);
    assert_eq!(stats.queue_depth, 0, "all answered, nothing in flight");
    assert_eq!(stats.exec_us.count, 10);
    let total_backend_runs: u64 = stats.backend_runs.iter().map(|(_, n)| n).sum();
    assert_eq!(total_backend_runs, 10);

    let registry = server.metrics();
    assert_eq!(registry.counter_value("serve.requests_served"), 10);
    assert_eq!(registry.gauge_value("serve.queue_depth"), 0);

    drop(server);
    let rec = cap.finish();
    let mirrored: Vec<_> = rec
        .metrics
        .iter()
        .filter(|m| m.name.starts_with("serve."))
        .collect();
    assert!(
        !mirrored.is_empty(),
        "serve metrics mirrored into the capture"
    );
    let served = rec
        .metrics
        .iter()
        .find(|m| m.name == "serve.requests_served")
        .expect("captured serve.requests_served");
    assert_eq!(served.value, mttkrp_obs::MetricValue::Counter(10));
}
