//! Integration: the parallel algorithms, the network simulator, the grid
//! optimizer, and the cost models agree end-to-end — and the paper's
//! Section VI-B comparison reproduces at executable scale.

use mttkrp_bench::setup_problem;
use mttkrp_core::{grid_opt, model, par, Problem};
use mttkrp_tensor::{mttkrp_reference, Matrix};

#[test]
fn parallel_algorithms_agree_with_oracle_across_grids() {
    let dims = vec![4usize, 6, 4];
    let r = 4usize;
    let (x, factors) = setup_problem(&dims, r, 13);
    let refs: Vec<&Matrix> = factors.iter().collect();
    for n in 0..3 {
        let oracle = mttkrp_reference(&x, &refs, n);
        for grid in [[1usize, 1, 1], [2, 1, 1], [2, 3, 2], [4, 2, 4]] {
            let run = par::mttkrp_stationary(&x, &refs, n, &grid);
            assert!(
                run.output.max_abs_diff(&oracle) < 1e-10,
                "alg3 grid {grid:?} mode {n}"
            );
        }
        for (p0, grid) in [(2usize, [2usize, 1, 2]), (4, [1, 3, 1]), (2, [1, 1, 1])] {
            let run = par::mttkrp_general(&x, &refs, n, p0, &grid);
            assert!(
                run.output.max_abs_diff(&oracle) < 1e-10,
                "alg4 p0 {p0} grid {grid:?} mode {n}"
            );
        }
    }
}

#[test]
fn optimizer_grid_is_no_worse_than_naive_grids_when_executed() {
    let dims = vec![16usize, 8, 8];
    let r = 4usize;
    let procs = 16u64;
    let p = Problem::new(&[16, 8, 8], r as u64);
    let (x, factors) = setup_problem(&dims, r, 14);
    let refs: Vec<&Matrix> = factors.iter().collect();

    let (best_grid, best_cost) = grid_opt::optimize_alg3_grid_dividing(&p, procs).unwrap();
    let gb: Vec<usize> = best_grid.iter().map(|&g| g as usize).collect();
    let best_run = par::mttkrp_stationary(&x, &refs, 0, &gb);

    for grid in [[16usize, 1, 1], [1, 4, 4], [4, 4, 1]] {
        let run = par::mttkrp_stationary(&x, &refs, 0, &grid);
        assert!(
            best_run.summary.max_words <= run.summary.max_words,
            "optimizer grid {gb:?} ({}) worse than {grid:?} ({})",
            best_run.summary.max_words,
            run.summary.max_words
        );
    }
    // The model agrees with the measurement ordering.
    assert!(best_cost <= model::alg3_cost(&p, &[16, 1, 1]));
}

#[test]
fn alg4_beats_alg3_exactly_when_model_says_so() {
    // Large-rank problem at P = 16: the model picks P0 > 1; execution
    // confirms the ordering.
    let dims = vec![4usize, 4, 4];
    let r = 32usize;
    let p = Problem::new(&[4, 4, 4], r as u64);
    let (x, factors) = setup_problem(&dims, r, 15);
    let refs: Vec<&Matrix> = factors.iter().collect();

    let (p0, grid4, cost4) = grid_opt::optimize_alg4_grid(&p, 16);
    assert!(p0 > 1, "model should choose rank partitioning here");
    let (grid3, cost3) = grid_opt::optimize_alg3_grid_dividing(&p, 16).unwrap();
    assert!(cost4 < cost3);

    let g4: Vec<usize> = grid4.iter().map(|&g| g as usize).collect();
    let g3: Vec<usize> = grid3.iter().map(|&g| g as usize).collect();
    let run4 = par::mttkrp_general(&x, &refs, 0, p0 as usize, &g4);
    let run3 = par::mttkrp_stationary(&x, &refs, 0, &g3);
    assert!(
        run4.summary.max_words < run3.summary.max_words,
        "alg4 {} !< alg3 {}",
        run4.summary.max_words,
        run3.summary.max_words
    );
}

#[test]
fn strong_scaling_reduces_per_rank_words() {
    // Note: per-rank words are not monotone between adjacent small P (a
    // P=2 grid gathers only two modes fully; a 2x2x2 grid touches all
    // three), but the asymptotic NR(I/P)^(1/N) decay shows by P=64.
    let dims = vec![16usize, 16, 16];
    let r = 8usize;
    let (x, factors) = setup_problem(&dims, r, 16);
    let refs: Vec<&Matrix> = factors.iter().collect();
    let w2 = par::mttkrp_stationary(&x, &refs, 0, &[2, 1, 1])
        .summary
        .max_words;
    let w8 = par::mttkrp_stationary(&x, &refs, 0, &[2, 2, 2])
        .summary
        .max_words;
    let w64 = par::mttkrp_stationary(&x, &refs, 0, &[4, 4, 4])
        .summary
        .max_words;
    assert!(w64 < w8, "P=64 ({w64}) should be below P=8 ({w8})");
    assert!(w64 < w2, "P=64 ({w64}) should be below P=2 ({w2})");
}

#[test]
fn total_words_conservation() {
    // Every word sent is received exactly once: global sent == received.
    let dims = vec![8usize, 8, 8];
    let (x, factors) = setup_problem(&dims, 4, 17);
    let refs: Vec<&Matrix> = factors.iter().collect();
    for grid in [[2usize, 2, 2], [4, 1, 2]] {
        let run = par::mttkrp_stationary(&x, &refs, 1, &grid);
        let sent: u64 = run.stats.iter().map(|s| s.words_sent).sum();
        let recv: u64 = run.stats.iter().map(|s| s.words_received).sum();
        assert_eq!(sent, recv, "conservation violated on grid {grid:?}");
    }
}

#[test]
fn matmul_baseline_flat_vs_stationary_falling() {
    // The Figure 4 shape at executable scale. The stationary advantage
    // over the *best* CARMA regime needs (I/P)^(1/6) > 3, i.e. I/P > 729:
    // use a 64^3 tensor so that P = 64 leaves I/P = 4096.
    let dims = vec![64usize, 64, 64];
    let r = 4usize;
    let (x, factors) = setup_problem(&dims, r, 18);
    let refs: Vec<&Matrix> = factors.iter().collect();

    // Executed 1D baseline: per-rank words grow toward I_n R = 256 with P.
    let mm2 = par::mttkrp_par_matmul(&x, &refs, 0, 2).max_recv_words();
    let mm8 = par::mttkrp_par_matmul(&x, &refs, 0, 8).max_recv_words();
    let mm64 = par::mttkrp_par_matmul(&x, &refs, 0, 64).max_recv_words();
    assert_eq!(mm2, 64 * 4 / 2);
    assert!(mm8 > mm2 && mm64 > mm8, "1D baseline flattens upward");

    // Stationary: per-rank words fall with P.
    let st64 = par::mttkrp_stationary(&x, &refs, 0, &[4, 4, 4]).max_recv_words();
    assert_eq!(st64, 3 * 15 * 4, "even-case Eq. (14) value");
    assert!(
        st64 < mm64,
        "stationary {st64} should beat executed 1D {mm64}"
    );

    // ... and beats even the best modeled CARMA regime at this scale.
    let mm64_model = model::mm_baseline_cost(&Problem::new(&[64, 64, 64], 4), 0, 64);
    assert!(
        (st64 as f64) < mm64_model,
        "at P=64 stationary {st64} should beat modeled matmul {mm64_model}"
    );
}
