//! Integration: the sequential algorithms, the memory simulator, and the
//! cost models agree end-to-end — and the paper's Section VI-A comparison
//! (Algorithm 2 vs the matmul approach) reproduces at executable scale.

use mttkrp_bench::setup_problem;
use mttkrp_core::{model, seq, Problem};
use mttkrp_memsim::LruMemory;
use mttkrp_tensor::{mttkrp_reference, Matrix};

#[test]
fn all_sequential_algorithms_agree_with_oracle_across_shapes() {
    for (dims, r) in [
        (vec![2usize, 2], 1usize),
        (vec![5, 3], 4),
        (vec![4, 5, 3], 2),
        (vec![3, 3, 3, 3], 3),
        (vec![2, 3, 2, 3, 2], 2),
    ] {
        let (x, factors) = setup_problem(&dims, r, 7);
        let refs: Vec<&Matrix> = factors.iter().collect();
        let order = dims.len();
        let m = 3usize.pow(order as u32) + order * 3 + 8;
        for n in 0..order {
            let oracle = mttkrp_reference(&x, &refs, n);
            let a1 = seq::mttkrp_unblocked(&x, &refs, n, m);
            let a2 = seq::mttkrp_blocked(&x, &refs, n, m, 2);
            let mm = seq::mttkrp_seq_matmul(&x, &refs, n, m);
            assert!(
                a1.output.max_abs_diff(&oracle) < 1e-10,
                "{dims:?} n={n} alg1"
            );
            assert!(
                a2.output.max_abs_diff(&oracle) < 1e-10,
                "{dims:?} n={n} alg2"
            );
            assert!(mm.output.max_abs_diff(&oracle) < 1e-10, "{dims:?} n={n} mm");
        }
    }
}

#[test]
fn measured_io_equals_models_everywhere() {
    for (dims, r) in [(vec![6usize, 9, 4], 3usize), (vec![5, 5, 5, 5], 2)] {
        let (x, factors) = setup_problem(&dims, r, 8);
        let refs: Vec<&Matrix> = factors.iter().collect();
        let p = Problem::new(
            &dims.iter().map(|&d| d as u64).collect::<Vec<u64>>(),
            r as u64,
        );
        let order = dims.len();
        for n in 0..order {
            let a1 = seq::mttkrp_unblocked(&x, &refs, n, order + 1);
            assert_eq!(a1.stats.total() as u128, model::alg1_cost(&p));
            for b in [1usize, 2, 3] {
                let m = b.pow(order as u32) + order * b;
                let a2 = seq::mttkrp_blocked(&x, &refs, n, m, b);
                assert_eq!(
                    a2.stats.total() as u128,
                    model::alg2_cost_exact(&p, n, b as u64),
                    "{dims:?} n={n} b={b}"
                );
            }
        }
    }
}

#[test]
fn blocked_beats_matmul_when_factor_traffic_dominates() {
    // Section VI-A: when N*R = Omega(M^{1-1/N}), Algorithm 2 communicates
    // less than the matmul approach. Take R large, M small.
    let dims = vec![12usize, 12, 12];
    let r = 32;
    let m = 76; // b = 4: 64 + 12 = 76
    let (x, factors) = setup_problem(&dims, r, 9);
    let refs: Vec<&Matrix> = factors.iter().collect();
    let a2 = seq::mttkrp_blocked(&x, &refs, 0, m, 4);
    let mm = seq::mttkrp_seq_matmul(&x, &refs, 0, m);
    assert!(
        a2.stats.total() < mm.total_stats().total(),
        "alg2 {} !< matmul {}",
        a2.stats.total(),
        mm.total_stats().total()
    );
}

#[test]
fn matmul_competitive_when_tensor_traffic_dominates() {
    // Section VI-A, other regime: R small relative to sqrt(M) -- both
    // approaches are dominated by the I term; they should be within ~2x.
    let dims = vec![12usize, 12, 12];
    let r = 2;
    let m = 300;
    let (x, factors) = setup_problem(&dims, r, 10);
    let refs: Vec<&Matrix> = factors.iter().collect();
    let b = seq::choose_block_size(m, 3);
    let a2 = seq::mttkrp_blocked(&x, &refs, 0, m, b);
    let mm = seq::mttkrp_seq_matmul(&x, &refs, 0, m);
    let ratio = mm.total_stats().total() as f64 / a2.stats.total() as f64;
    assert!(
        (0.5..=2.5).contains(&ratio),
        "expected comparable costs, ratio = {ratio:.2}"
    );
}

#[test]
fn lru_cache_runs_plain_loop_nest_with_more_io_than_blocked() {
    // An unannotated Algorithm-1-style loop nest on an automatically
    // managed (LRU) fast memory: correct, but far more traffic than the
    // explicitly blocked algorithm with the same capacity.
    let dims = [6usize, 6, 6];
    let r = 4;
    let (x, factors) = setup_problem(&dims, r, 11);
    let refs: Vec<&Matrix> = factors.iter().collect();
    let n = 0;
    let m = 39; // b=3 fits: 27 + 9 = 36 <= 39

    let mut mem = LruMemory::new(m);
    let x_id = mem.alloc(x.data().to_vec());
    let a_ids: Vec<_> = factors
        .iter()
        .map(|f| mem.alloc(f.data().to_vec()))
        .collect();
    let b_id = mem.alloc_zeros(dims[n] * r);
    let shape = x.shape().clone();
    let mut idx = vec![0usize; 3];
    for lin in 0..shape.num_entries() {
        shape.delinearize_into(lin, &mut idx);
        let xv = mem.read(x_id, lin);
        for rr in 0..r {
            let mut prod = xv;
            for (k, f) in factors.iter().enumerate() {
                if k != n {
                    prod *= mem.read(a_ids[k], idx[k] * f.cols() + rr);
                }
            }
            let off = idx[n] * r + rr;
            let cur = mem.read(b_id, off);
            mem.write(b_id, off, cur + prod);
        }
    }
    mem.flush();
    let lru_io = mem.stats().total();

    // Correctness of the LRU run.
    let oracle = mttkrp_reference(&x, &refs, n);
    let got = Matrix::from_rows_vec(dims[n], r, mem.slow_data(b_id).to_vec());
    assert!(got.max_abs_diff(&oracle) < 1e-10);

    let blocked = seq::mttkrp_blocked(&x, &refs, n, m, 3);
    assert!(
        blocked.stats.total() * 2 < lru_io,
        "explicit blocking {} should be far below LRU streaming {lru_io}",
        blocked.stats.total()
    );
}

#[test]
fn unblocked_io_is_memory_insensitive() {
    let dims = vec![8usize, 8, 8];
    let (x, factors) = setup_problem(&dims, 4, 12);
    let refs: Vec<&Matrix> = factors.iter().collect();
    let small = seq::mttkrp_unblocked(&x, &refs, 0, 4);
    let large = seq::mttkrp_unblocked(&x, &refs, 0, 4096);
    assert_eq!(small.stats.total(), large.stats.total());
}
