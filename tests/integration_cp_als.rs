//! Integration: CP-ALS end-to-end — the application whose bottleneck
//! motivates the paper. Sequential and distributed runs must agree, fit
//! exact low-rank tensors, and the distributed version's communication
//! must be dominated by its MTTKRP collectives (Eq. (14) per mode).

use mttkrp_core::{cp_als, model, par::dist_cp_als, CpAlsOptions, Problem};
use mttkrp_tensor::{DenseTensor, KruskalTensor, Shape};

#[test]
fn sequential_and_distributed_agree_on_noisy_data() {
    let truth = KruskalTensor::random(&Shape::new(&[8, 8, 8]), 2, 100);
    let clean = truth.full();
    let noise = DenseTensor::random(Shape::new(&[8, 8, 8]), 101);
    let sigma = 0.05 * clean.frob_norm() / noise.frob_norm();
    let x = DenseTensor::from_vec(
        clean.shape().clone(),
        clean
            .data()
            .iter()
            .zip(noise.data())
            .map(|(&c, &n)| c + sigma * n)
            .collect(),
    );
    let opts = CpAlsOptions {
        max_iters: 40,
        tol: 1e-9,
        seed: 5,
    };
    let s = cp_als(&x, 2, &opts);
    let d = dist_cp_als(&x, 2, &[2, 2, 2], &opts);
    let sf = *s.fit_history.last().unwrap();
    let df = *d.fit_history.last().unwrap();
    assert!(sf > 0.9, "sequential fit {sf}");
    assert!((sf - df).abs() < 1e-3, "fits diverged: {sf} vs {df}");
}

#[test]
fn distributed_model_reconstructs_like_sequential_model() {
    let truth = KruskalTensor::random(&Shape::new(&[6, 4, 4]), 3, 200);
    let x = truth.full();
    let opts = CpAlsOptions {
        max_iters: 500,
        tol: 1e-13,
        seed: 11,
    };
    let d = dist_cp_als(&x, 3, &[2, 2, 1], &opts);
    let fit = d.model.fit_to(&x);
    assert!(fit > 0.999, "assembled distributed model fit {fit}");
}

#[test]
fn per_sweep_communication_tracks_mttkrp_model() {
    // One CP-ALS sweep does one Algorithm-3 MTTKRP per mode plus
    // lower-order (R^2-sized) reductions. Measured per-sweep max words
    // should be close to sum over modes of Eq. (14) + small overhead.
    let dims = [8usize, 8, 8];
    let r = 4usize;
    let truth = KruskalTensor::random(&Shape::new(&dims), r, 300);
    let x = truth.full();
    let sweeps = 3usize;
    let run = dist_cp_als(
        &x,
        r,
        &[2, 2, 2],
        &CpAlsOptions {
            max_iters: sweeps,
            tol: 0.0,
            seed: 1,
        },
    );
    assert_eq!(run.iterations, sweeps);

    let p = Problem::new(&[8, 8, 8], r as u64);
    let per_mode = model::alg3_cost(&p, &[2, 2, 2]); // one-way words
    let mttkrp_words = 3.0 * per_mode * sweeps as f64;
    let max_received = run.stats.iter().map(|s| s.words_received).max().unwrap() as f64;
    // Received >= the MTTKRP traffic, and the overhead (grams, norms,
    // fit scalars, initial setup) stays within ~3x for this tiny R.
    assert!(
        max_received >= mttkrp_words,
        "{max_received} < {mttkrp_words}"
    );
    assert!(
        max_received < 4.0 * mttkrp_words,
        "overhead too large: {max_received} vs {mttkrp_words}"
    );
}

#[test]
fn rank_one_tensor_recovered_quickly() {
    let truth = KruskalTensor::random(&Shape::new(&[10, 6, 4]), 1, 400);
    let x = truth.full();
    let run = cp_als(
        &x,
        1,
        &CpAlsOptions {
            max_iters: 100,
            tol: 1e-12,
            seed: 2,
        },
    );
    assert!(run.converged);
    assert!(*run.fit_history.last().unwrap() > 0.99999);
}

#[test]
fn over_ranked_fit_does_not_degrade() {
    // Fitting rank 4 to a rank-2 tensor should reach (essentially) perfect
    // fit — extra components decay to ~zero weight.
    let truth = KruskalTensor::random(&Shape::new(&[6, 6, 6]), 2, 500);
    let x = truth.full();
    let run = cp_als(
        &x,
        4,
        &CpAlsOptions {
            max_iters: 200,
            tol: 1e-12,
            seed: 3,
        },
    );
    assert!(*run.fit_history.last().unwrap() > 0.999);
}

#[test]
fn factor_shapes_roundtrip() {
    let x = DenseTensor::random(Shape::new(&[5, 7, 3]), 600);
    let run = cp_als(&x, 2, &CpAlsOptions::default());
    assert_eq!(run.model.order(), 3);
    assert_eq!(run.model.rank(), 2);
    assert_eq!(run.model.shape().dims(), &[5, 7, 3]);
}
