//! Cross-crate integration tests for the execution subsystem: the planner's
//! model predictions, the simulator's measured word counts, and the native
//! backend's outputs must all tell one consistent story.

use mttkrp_core::Problem;
use mttkrp_exec::{
    execute, plan_and_execute, Algorithm, Backend, ExecCost, MachineSpec, NativeBackend, Planner,
    SimBackend,
};
use mttkrp_tensor::{mttkrp_reference, DenseTensor, Matrix, Shape};

fn build(dims: &[usize], r: usize, seed: u64) -> (DenseTensor, Vec<Matrix>) {
    let shape = Shape::new(dims);
    let x = DenseTensor::random(shape, seed);
    let factors = dims
        .iter()
        .enumerate()
        .map(|(k, &d)| Matrix::random(d, r, seed + 400 + k as u64))
        .collect();
    (x, factors)
}

/// The load-bearing cross-layer identity: for a blocked sequential plan,
/// the planner's *predicted* cost (Eq. (12) exact form) equals the strict
/// memory simulator's *measured* loads + stores, word for word.
#[test]
fn planned_cost_equals_simulated_cost_for_blocked_plan() {
    let (x, factors) = build(&[8, 8, 8], 3, 11);
    let refs: Vec<&Matrix> = factors.iter().collect();
    let problem = Problem::from_shape(x.shape(), 3);
    for mode in 0..3 {
        let plan = Planner::new(MachineSpec::sequential(256)).plan(&problem, mode);
        assert!(
            matches!(plan.algorithm, Algorithm::SeqBlocked { .. }),
            "mode {mode}: expected a blocked plan, got {}",
            plan.algorithm
        );
        let report = SimBackend::new().execute(&plan, &x, &refs);
        match report.cost {
            ExecCost::SeqIo { loads, stores, .. } => {
                assert_eq!(
                    (loads + stores) as f64,
                    plan.predicted_cost,
                    "mode {mode}: model and simulator disagree"
                );
            }
            other => panic!("expected SeqIo, got {other:?}"),
        }
    }
}

#[test]
fn front_door_native_run_matches_oracle() {
    let (x, factors) = build(&[10, 6, 8], 4, 21);
    let refs: Vec<&Matrix> = factors.iter().collect();
    let machine = MachineSpec::shared(2, 1 << 12);
    for mode in 0..3 {
        let (plan, report) = plan_and_execute(&machine, &x, &refs, mode);
        assert_eq!(report.backend, "native");
        assert!(plan.algorithm.is_sequential());
        let oracle = mttkrp_reference(&x, &refs, mode);
        assert!(
            report.output.max_abs_diff(&oracle) < 1e-10,
            "mode {mode}: diff {}",
            report.output.max_abs_diff(&oracle)
        );
    }
}

#[test]
fn front_door_distributed_run_matches_oracle_and_rank_count() {
    let (x, factors) = build(&[8, 8, 8], 4, 31);
    let refs: Vec<&Matrix> = factors.iter().collect();
    let machine = MachineSpec::distributed(8);
    let (plan, report) = plan_and_execute(&machine, &x, &refs, 0);
    assert_eq!(report.backend, "sim");
    assert!(!plan.algorithm.is_sequential());
    match report.cost {
        ExecCost::ParComm { ranks, .. } => assert_eq!(ranks, 8),
        other => panic!("expected ParComm, got {other:?}"),
    }
    let oracle = mttkrp_reference(&x, &refs, 0);
    assert!(report.output.max_abs_diff(&oracle) < 1e-10);
}

#[test]
fn explicit_stationary_plan_matches_eq14_on_simulator() {
    // Hand-build an Algorithm 3 plan (even distributions) and check the
    // simulator's per-rank received words equal the Eq. (14) model.
    let (x, factors) = build(&[8, 8, 8], 4, 41);
    let refs: Vec<&Matrix> = factors.iter().collect();
    let problem = Problem::from_shape(x.shape(), 4);
    let planner = Planner::new(MachineSpec::distributed(8));
    let mut plan = planner.plan(&problem, 0);
    plan.algorithm = Algorithm::ParStationary {
        grid: vec![2, 2, 2],
    };
    plan.predicted_cost = mttkrp_core::model::alg3_cost(&problem, &[2, 2, 2]);
    let report = SimBackend::new().execute(&plan, &x, &refs);
    match report.cost {
        ExecCost::ParComm { max_recv_words, .. } => {
            assert_eq!(max_recv_words as f64, plan.predicted_cost);
        }
        other => panic!("expected ParComm, got {other:?}"),
    }
    let oracle = mttkrp_reference(&x, &refs, 0);
    assert!(report.output.max_abs_diff(&oracle) < 1e-10);
}

#[test]
fn execute_front_door_picks_backend_by_plan() {
    let (x, factors) = build(&[6, 6, 6], 2, 51);
    let refs: Vec<&Matrix> = factors.iter().collect();
    let problem = Problem::from_shape(x.shape(), 2);

    let seq_plan = Planner::new(MachineSpec::sequential(128)).plan(&problem, 0);
    assert_eq!(execute(&seq_plan, &x, &refs, 0).backend, "native");

    let par_plan = Planner::new(MachineSpec::distributed(4)).plan_executable(&problem, 0);
    assert_eq!(execute(&par_plan, &x, &refs, 0).backend, "sim");
}

#[test]
fn native_backend_handles_skewed_and_4way_problems() {
    for (dims, r) in [
        (vec![2usize, 31, 5], 7usize),
        (vec![17, 2, 3, 5], 3),
        (vec![1, 9, 4], 2),
    ] {
        let (x, factors) = build(&dims, r, 61);
        let refs: Vec<&Matrix> = factors.iter().collect();
        let backend = NativeBackend::new(3, 1 << 10);
        for mode in 0..dims.len() {
            let got = backend.run(&x, &refs, mode);
            let want = mttkrp_reference(&x, &refs, mode);
            assert!(
                got.max_abs_diff(&want) < 1e-10,
                "dims {dims:?}, mode {mode}"
            );
        }
    }
}
