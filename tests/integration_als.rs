//! Integration: the `mttkrp-als` engine end-to-end through the umbrella
//! crate — fit behavior on random tensors (property-tested), synthetic
//! rank-R recovery, and cross-backend bitwise identity.

use mttkrp::als::{cp_als, AlsConfig, BackendChoice};
use mttkrp::exec::MachineSpec;
use mttkrp::tensor::{DenseTensor, KruskalTensor, Shape};
use proptest::prelude::*;

fn native_config(rank: usize) -> AlsConfig {
    AlsConfig::new(rank)
        .with_machine(MachineSpec::shared(2, 1 << 12))
        .with_backend(BackendChoice::Native)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// ALS never increases the residual: the fit trace is monotone
    /// non-decreasing (tiny float slack) on arbitrary random dense
    /// tensors, across shapes, ranks, and init seeds.
    #[test]
    fn fit_is_monotone_nondecreasing_per_sweep(
        dims in prop::collection::vec(2usize..7, 3..=4),
        r in 1usize..5,
        data_seed in 0u64..500,
        init_seed in 0u64..500,
    ) {
        let x = DenseTensor::random(Shape::new(&dims), data_seed);
        let run = cp_als(
            &x,
            &native_config(r).with_sweeps(10).with_tol(0.0).with_seed(init_seed),
        );
        prop_assert_eq!(run.sweeps(), 10);
        for w in run.fit_history().windows(2) {
            prop_assert!(w[1] >= w[0] - 1e-10, "fit decreased: {:?}", w);
        }
        // The cache amortization invariant holds on every configuration.
        prop_assert_eq!(run.cache_misses(), dims.len());
    }

    /// A synthetic rank-R Kruskal tensor is recovered to fit >= 0.999.
    /// ALS is a local method, so the engine is given the standard
    /// multi-start treatment: up to three deterministic init seeds, pass
    /// if any restart reaches the target (almost always the first).
    #[test]
    fn synthetic_rank_r_tensor_is_recovered(
        r in 1usize..4,
        data_seed in 0u64..200,
    ) {
        let x = KruskalTensor::random(&Shape::new(&[8, 7, 6]), r, data_seed).full();
        let best = (0..3)
            .map(|restart| {
                cp_als(
                    &x,
                    &native_config(r)
                        .with_sweeps(500)
                        .with_tol(1e-13)
                        .with_seed(data_seed.wrapping_add(1000 + 77 * restart)),
                )
                .fit()
            })
            .fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(best >= 0.999, "best fit over 3 restarts = {best}");
    }
}

/// The engine is deterministic across the native and dist backends on a
/// shared sequential machine: both execute the identical single-thread
/// kernel, so the factor matrices agree bit for bit.
#[test]
fn native_and_dist_channel_backends_are_bitwise_identical() {
    let x = KruskalTensor::random(&Shape::new(&[9, 8, 7]), 3, 50).full();
    let base = AlsConfig::new(3)
        .with_machine(MachineSpec::shared(1, 1 << 12))
        .with_sweeps(25)
        .with_tol(0.0)
        .with_seed(4);
    let native = cp_als(&x, &base.clone().with_backend(BackendChoice::Native));
    let dist = cp_als(&x, &base.with_backend(BackendChoice::Dist));
    assert_eq!(native.backend_names, vec!["native"; 3]);
    assert_eq!(dist.backend_names, vec!["dist"; 3]);
    assert_eq!(native.model.weights, dist.model.weights);
    for (a, b) in native.model.factors.iter().zip(&dist.model.factors) {
        assert_eq!(a.data(), b.data());
    }
    assert_eq!(native.fit_history(), dist.fit_history());
}

/// On a cluster machine the same comparison runs the *distributed*
/// schedules: the dist-channel runtime must track the word-exact
/// simulator bit for bit through every sweep of the factorization.
#[test]
fn sim_and_dist_channel_are_bitwise_identical_on_cluster_plans() {
    let x = KruskalTensor::random(&Shape::new(&[8, 8, 8]), 4, 51).full();
    let base = AlsConfig::new(4)
        .with_machine(MachineSpec::cluster(8, 1, 1 << 16))
        .with_sweeps(8)
        .with_tol(0.0)
        .with_seed(5);
    let sim = cp_als(&x, &base.clone().with_backend(BackendChoice::Sim));
    let dist = cp_als(&x, &base.with_backend(BackendChoice::Dist));
    for plan in &dist.plans {
        assert!(
            !plan.algorithm.is_sequential(),
            "cluster plans must be distributed, got {}",
            plan.algorithm
        );
    }
    for (a, b) in sim.model.factors.iter().zip(&dist.model.factors) {
        assert_eq!(a.data(), b.data());
    }
    assert_eq!(sim.model.weights, dist.model.weights);
}

/// The fit identity the engine tracks (off the last mode's MTTKRP) agrees
/// with a materialized `|X - M|` computation.
#[test]
fn identity_fit_matches_materialized_fit() {
    let x = DenseTensor::random(Shape::new(&[7, 6, 5]), 60);
    let run = cp_als(&x, &native_config(3).with_sweeps(30).with_tol(1e-11));
    let direct = run.model.fit_to(&x);
    assert!(
        (direct - run.fit()).abs() < 1e-6,
        "identity fit {} vs materialized {direct}",
        run.fit()
    );
}
