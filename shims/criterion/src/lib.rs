//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! Real timing, simple statistics: each benchmark is auto-calibrated so a
//! sample takes a measurable slice of the measurement budget, then
//! `sample_size` samples are taken and mean / min / max per-iteration times
//! are printed. No HTML reports, no outlier analysis, no state directory —
//! just honest numbers on stdout, which is what the workspace's benches are
//! read for.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Benchmark identifier: `function_id/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_id: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function_id}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    /// Iterations per sample (set by calibration before the closure runs).
    iters_per_sample: u64,
    samples: usize,
    /// Mean per-iteration times of each sample, filled by `iter`.
    sample_means: Vec<f64>,
}

impl Bencher {
    /// Times `routine`, keeping its output alive so the optimizer cannot
    /// delete the work.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.sample_means.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                std::hint::black_box(routine());
            }
            let dt = start.elapsed().as_secs_f64();
            self.sample_means.push(dt / self.iters_per_sample as f64);
        }
    }
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

#[derive(Clone, Debug)]
struct Settings {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Settings {
    fn default() -> Settings {
        Settings {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }
}

fn run_benchmark(full_id: &str, settings: &Settings, f: &mut dyn FnMut(&mut Bencher)) {
    // Calibration doubles as warm-up: run single iterations until the
    // warm-up budget is spent, estimating the per-iteration time.
    let calib_start = Instant::now();
    let mut calib_iters = 0u64;
    let mut bench = Bencher {
        iters_per_sample: 1,
        samples: 1,
        sample_means: Vec::new(),
    };
    let mut per_iter = 0.0f64;
    while calib_start.elapsed() < settings.warm_up_time && calib_iters < 1_000_000 {
        f(&mut bench);
        per_iter = bench.sample_means.first().copied().unwrap_or(0.0);
        calib_iters += 1;
        if per_iter > settings.warm_up_time.as_secs_f64() {
            break; // one iteration already exceeds the budget
        }
    }
    let per_sample_budget = settings.measurement_time.as_secs_f64() / settings.sample_size as f64;
    let iters = if per_iter > 0.0 {
        ((per_sample_budget / per_iter).round() as u64).clamp(1, 10_000_000)
    } else {
        1
    };

    bench.iters_per_sample = iters;
    bench.samples = settings.sample_size;
    f(&mut bench);

    let n = bench.sample_means.len().max(1) as f64;
    let mean = bench.sample_means.iter().sum::<f64>() / n;
    let min = bench
        .sample_means
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min);
    let max = bench.sample_means.iter().copied().fold(0.0f64, f64::max);
    println!(
        "bench {full_id:<48} mean {:>12}  (min {}, max {}, {} samples x {} iters)",
        format_time(mean),
        format_time(min),
        format_time(max),
        bench.samples,
        iters
    );
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.settings.sample_size = n;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.settings.warm_up_time = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        run_benchmark(&full, &self.settings, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        run_benchmark(&full, &self.settings, &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            settings: Settings::default(),
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into().id, &Settings::default(), &mut f);
        self
    }

    /// Kept for API compatibility with `criterion_group!`'s expansion.
    pub fn configure_from_args(self) -> Criterion {
        self
    }
}

/// Re-export of `std::hint::black_box`, criterion-style.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_selftest");
        group.sample_size(3);
        group.warm_up_time(Duration::from_millis(5));
        group.measurement_time(Duration::from_millis(20));
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| std::hint::black_box(1 + 1));
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
