//! Offline stand-in for the subset of `rayon` this workspace uses.
//!
//! Real multithreading, simple machinery: every parallel iterator here is
//! *indexed* (knows its length and can split at an index). Driving an
//! iterator splits it into one contiguous piece per worker and runs the
//! pieces on `std::thread::scope` threads, preserving piece order for
//! order-sensitive operations (`collect`, `zip`). That reproduces rayon's
//! semantics (including `fold`/`reduce` per-piece accumulators) for the
//! combinators used in this workspace, without work stealing.
//!
//! Threads are spawned per driven call rather than pooled; for the
//! millisecond-scale kernels this workspace parallelizes, the ~tens of
//! microseconds of spawn overhead is noise.

use std::cell::Cell;
use std::sync::Arc;

pub mod prelude {
    pub use crate::{
        FromParallelIterator, IndexedParallelIterator, IntoParallelIterator, ParallelSlice,
        ParallelSliceMut,
    };
}

// ---------------------------------------------------------------------------
// Thread-count plumbing
// ---------------------------------------------------------------------------

thread_local! {
    static INSTALLED_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The worker count the current context would use: the innermost
/// [`ThreadPool::install`] if any, otherwise all available cores.
pub fn current_num_threads() -> usize {
    INSTALLED_THREADS.with(|c| c.get()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Error building a [`ThreadPool`] (never actually produced by the shim;
/// kept for signature compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A scoped worker count: [`ThreadPool::install`] makes parallel calls in
/// the closure use exactly this many workers.
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }

    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        INSTALLED_THREADS.with(|c| {
            let prev = c.replace(Some(self.threads));
            let out = f();
            c.set(prev);
            out
        })
    }
}

#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    threads: Option<usize>,
}

impl ThreadPoolBuilder {
    pub fn new() -> ThreadPoolBuilder {
        ThreadPoolBuilder::default()
    }

    /// `0` means "default" (all cores), as in real rayon.
    pub fn num_threads(mut self, n: usize) -> ThreadPoolBuilder {
        self.threads = Some(n);
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = match self.threads {
            None | Some(0) => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            Some(n) => n,
        };
        Ok(ThreadPool { threads })
    }
}

// ---------------------------------------------------------------------------
// The parallel-iterator trait and the drive machinery
// ---------------------------------------------------------------------------

/// An indexed (splittable, length-aware) parallel iterator. One trait plays
/// the role of rayon's `ParallelIterator` + `IndexedParallelIterator` pair;
/// only the combinators this workspace uses are provided.
pub trait IndexedParallelIterator: Sized + Send {
    type Item: Send;

    /// Number of items.
    fn len(&self) -> usize;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Splits into `[0, index)` and `[index, len)`.
    fn split_at(self, index: usize) -> (Self, Self);

    /// A sequential iterator over the items (runs on whichever worker owns
    /// this piece).
    fn seq_iter(self) -> impl Iterator<Item = Self::Item>;

    // -- combinators -------------------------------------------------------

    fn map<U, F>(self, f: F) -> Map<Self, F>
    where
        U: Send,
        F: Fn(Self::Item) -> U + Sync + Send,
    {
        Map {
            base: self,
            f: Arc::new(f),
        }
    }

    fn enumerate(self) -> Enumerate<Self> {
        Enumerate {
            base: self,
            offset: 0,
        }
    }

    fn zip<B>(self, other: B) -> Zip<Self, B>
    where
        B: IndexedParallelIterator,
    {
        Zip { a: self, b: other }
    }

    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        run_pieces(self, &|piece: Self| piece.seq_iter().for_each(&f));
    }

    /// Per-piece accumulators, rayon-style: each worker folds its
    /// contiguous piece starting from `identity()`. Combine the partials
    /// with [`Fold::reduce`].
    fn fold<A, ID, F>(self, identity: ID, fold_op: F) -> Fold<Self, ID, F>
    where
        A: Send,
        ID: Fn() -> A + Sync + Send,
        F: Fn(A, Self::Item) -> A + Sync + Send,
    {
        Fold {
            base: self,
            identity,
            fold_op,
        }
    }

    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Sync + Send,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync + Send,
    {
        let partials = run_pieces(self, &|piece: Self| piece.seq_iter().fold(identity(), &op));
        partials.into_iter().fold(identity(), op)
    }

    fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<Self::Item> + std::iter::Sum<S>,
    {
        run_pieces(self, &|piece: Self| piece.seq_iter().sum::<S>())
            .into_iter()
            .sum()
    }

    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }
}

/// Splits `it` into at most `k` non-empty contiguous pieces of near-equal
/// length, in order.
fn split_pieces<I: IndexedParallelIterator>(it: I, k: usize, out: &mut Vec<I>) {
    if k <= 1 || it.len() <= 1 {
        out.push(it);
        return;
    }
    let k1 = k / 2;
    let mid = it.len() * k1 / k;
    if mid == 0 || mid == it.len() {
        out.push(it);
        return;
    }
    let (a, b) = it.split_at(mid);
    split_pieces(a, k1, out);
    split_pieces(b, k - k1, out);
}

/// Runs `worker` over the pieces of `it` on scoped threads, returning the
/// per-piece results in piece order.
fn run_pieces<I, R>(it: I, worker: &(dyn Fn(I) -> R + Sync)) -> Vec<R>
where
    I: IndexedParallelIterator,
    R: Send,
{
    let threads = current_num_threads();
    let mut pieces = Vec::new();
    split_pieces(it, threads, &mut pieces);
    if threads <= 1 || pieces.len() <= 1 {
        return pieces.into_iter().map(worker).collect();
    }
    let n = pieces.len();
    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    std::thread::scope(|s| {
        for (slot, piece) in results.iter_mut().zip(pieces) {
            s.spawn(move || {
                *slot = Some(worker(piece));
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("worker thread panicked"))
        .collect()
}

/// Conversion out of a parallel iterator (rayon's `FromParallelIterator`).
pub trait FromParallelIterator<T: Send>: Sized {
    fn from_par_iter<I>(it: I) -> Self
    where
        I: IndexedParallelIterator<Item = T>;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I>(it: I) -> Vec<T>
    where
        I: IndexedParallelIterator<Item = T>,
    {
        let chunks = run_pieces(it, &|piece: I| piece.seq_iter().collect::<Vec<T>>());
        let mut out = Vec::with_capacity(chunks.iter().map(Vec::len).sum());
        for c in chunks {
            out.extend(c);
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Sources
// ---------------------------------------------------------------------------

/// `IntoParallelIterator` for ranges (and anything else added later).
pub trait IntoParallelIterator {
    type Item: Send;
    type Iter: IndexedParallelIterator<Item = Self::Item>;
    fn into_par_iter(self) -> Self::Iter;
}

/// Parallel iterator over `Range<usize>`.
pub struct RangeIter {
    range: std::ops::Range<usize>,
}

impl IndexedParallelIterator for RangeIter {
    type Item = usize;

    fn len(&self) -> usize {
        self.range.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let mid = self.range.start + index;
        (
            RangeIter {
                range: self.range.start..mid,
            },
            RangeIter {
                range: mid..self.range.end,
            },
        )
    }

    fn seq_iter(self) -> impl Iterator<Item = usize> {
        self.range
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = RangeIter;
    fn into_par_iter(self) -> RangeIter {
        RangeIter { range: self }
    }
}

/// `slice.par_chunks(n)`.
pub trait ParallelSlice<T: Sync> {
    fn par_chunks(&self, chunk_size: usize) -> Chunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> Chunks<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        Chunks {
            slice: self,
            chunk_size,
        }
    }
}

/// `slice.par_chunks_mut(n)`.
pub trait ParallelSliceMut<T: Send> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ChunksMut {
            slice: self,
            chunk_size,
        }
    }
}

pub struct Chunks<'a, T> {
    slice: &'a [T],
    chunk_size: usize,
}

impl<'a, T: Sync> IndexedParallelIterator for Chunks<'a, T> {
    type Item = &'a [T];

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk_size)
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let pos = (index * self.chunk_size).min(self.slice.len());
        let (a, b) = self.slice.split_at(pos);
        (
            Chunks {
                slice: a,
                chunk_size: self.chunk_size,
            },
            Chunks {
                slice: b,
                chunk_size: self.chunk_size,
            },
        )
    }

    fn seq_iter(self) -> impl Iterator<Item = &'a [T]> {
        self.slice.chunks(self.chunk_size)
    }
}

pub struct ChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send> IndexedParallelIterator for ChunksMut<'a, T> {
    type Item = &'a mut [T];

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk_size)
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let pos = (index * self.chunk_size).min(self.slice.len());
        let (a, b) = self.slice.split_at_mut(pos);
        (
            ChunksMut {
                slice: a,
                chunk_size: self.chunk_size,
            },
            ChunksMut {
                slice: b,
                chunk_size: self.chunk_size,
            },
        )
    }

    fn seq_iter(self) -> impl Iterator<Item = &'a mut [T]> {
        self.slice.chunks_mut(self.chunk_size)
    }
}

// ---------------------------------------------------------------------------
// Combinator types
// ---------------------------------------------------------------------------

pub struct Map<I, F: ?Sized> {
    base: I,
    f: Arc<F>,
}

impl<I, U, F> IndexedParallelIterator for Map<I, F>
where
    I: IndexedParallelIterator,
    U: Send,
    F: Fn(I::Item) -> U + Sync + Send,
{
    type Item = U;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(index);
        (
            Map {
                base: a,
                f: Arc::clone(&self.f),
            },
            Map { base: b, f: self.f },
        )
    }

    fn seq_iter(self) -> impl Iterator<Item = U> {
        let f = self.f;
        self.base.seq_iter().map(move |x| f(x))
    }
}

pub struct Enumerate<I> {
    base: I,
    offset: usize,
}

impl<I> IndexedParallelIterator for Enumerate<I>
where
    I: IndexedParallelIterator,
{
    type Item = (usize, I::Item);

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(index);
        (
            Enumerate {
                base: a,
                offset: self.offset,
            },
            Enumerate {
                base: b,
                offset: self.offset + index,
            },
        )
    }

    fn seq_iter(self) -> impl Iterator<Item = (usize, I::Item)> {
        let offset = self.offset;
        self.base
            .seq_iter()
            .enumerate()
            .map(move |(i, x)| (offset + i, x))
    }
}

pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A, B> IndexedParallelIterator for Zip<A, B>
where
    A: IndexedParallelIterator,
    B: IndexedParallelIterator,
{
    type Item = (A::Item, B::Item);

    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (a1, a2) = self.a.split_at(index);
        let (b1, b2) = self.b.split_at(index);
        (Zip { a: a1, b: b1 }, Zip { a: a2, b: b2 })
    }

    fn seq_iter(self) -> impl Iterator<Item = (A::Item, B::Item)> {
        self.a.seq_iter().zip(self.b.seq_iter())
    }
}

/// The pending state of `.fold(id, f)`: finish it with [`Fold::reduce`].
pub struct Fold<I, ID, F> {
    base: I,
    identity: ID,
    fold_op: F,
}

impl<I, A, ID, F> Fold<I, ID, F>
where
    I: IndexedParallelIterator,
    A: Send,
    ID: Fn() -> A + Sync + Send,
    F: Fn(A, I::Item) -> A + Sync + Send,
{
    /// Folds each contiguous piece on its own worker, then combines the
    /// per-piece accumulators with `op` on the calling thread.
    pub fn reduce<ID2, OP>(self, identity2: ID2, op: OP) -> A
    where
        ID2: Fn() -> A + Sync + Send,
        OP: Fn(A, A) -> A + Sync + Send,
    {
        let (id, f) = (&self.identity, &self.fold_op);
        let partials = run_pieces(self.base, &|piece: I| piece.seq_iter().fold(id(), f));
        partials.into_iter().fold(identity2(), op)
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn range_map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_chunks_mut_disjoint_writes() {
        let mut data = vec![0u64; 103];
        data.par_chunks_mut(10).enumerate().for_each(|(c, chunk)| {
            for v in chunk.iter_mut() {
                *v = c as u64;
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, (i / 10) as u64);
        }
    }

    #[test]
    fn zip_aligns_same_split() {
        let a = vec![1.0f64; 64];
        let mut b = vec![0.0f64; 64];
        b.par_chunks_mut(8)
            .zip(a.par_chunks(8))
            .for_each(|(dst, src)| dst.copy_from_slice(src));
        assert_eq!(a, b);
    }

    #[test]
    fn fold_reduce_sums() {
        let total: u64 = (0..10_000usize)
            .into_par_iter()
            .map(|i| i as u64)
            .fold(|| 0u64, |a, b| a + b)
            .reduce(|| 0u64, |a, b| a + b);
        assert_eq!(total, 9999 * 10_000 / 2);
    }

    #[test]
    fn reduce_direct() {
        let m = (0..257usize).into_par_iter().reduce(|| 0, |a, b| a.max(b));
        assert_eq!(m, 256);
    }

    #[test]
    fn pool_install_controls_width() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        let n = pool.install(current_num_threads);
        assert_eq!(n, 3);
    }

    #[test]
    fn parallelism_actually_engages_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let ids = Mutex::new(HashSet::new());
        pool.install(|| {
            (0..64usize).into_par_iter().for_each(|_| {
                ids.lock().unwrap().insert(std::thread::current().id());
                std::thread::sleep(std::time::Duration::from_millis(1));
            });
        });
        // With 4 requested workers and 64 sleepy items, more than one OS
        // thread must have participated.
        assert!(ids.lock().unwrap().len() > 1);
    }
}
