//! Offline stand-in for the subset of `rand` 0.8 this workspace uses.
//!
//! Deterministic (seeded) pseudo-randomness built on SplitMix64. The stream
//! differs from the real `rand::StdRng` (ChaCha12), which is fine here: the
//! workspace pins only statistical and algebraic properties of random data,
//! never exact values.

/// A source of random `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (the only constructor the workspace uses).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling conveniences, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A value of a [`StandardSample`]-able type (`f64` in `[0, 1)`, full
    /// range integers, fair `bool`).
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Uniform value in `range` (half-open `lo..hi` or inclusive `lo..=hi`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable "from the standard distribution" via [`Rng::gen`].
pub trait StandardSample {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can produce one uniform sample (the `gen_range` argument).
pub trait SampleRange<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

fn uniform_u64_below<R: RngCore>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    // Multiply-shift rejection-free mapping is biased for huge n; the
    // workspace only draws from small ranges, where the bias of a simple
    // modulo after one 64-bit draw is negligible. Keep it simple.
    rng.next_u64() % n
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_u64_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range in gen_range");
        let u = f64::sample_standard(rng) as f32;
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range in gen_range");
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

impl SampleRange<f32> for core::ops::RangeInclusive<f32> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f32 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range in gen_range");
        lo + f64::sample_standard(rng) as f32 * (hi - lo)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic generator: SplitMix64 (Steele, Lea, Flood 2014).
    /// Passes the usual uniformity smoke tests; one u64 of state.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut rng = StdRng { state: seed };
            // Warm up so that nearby seeds decorrelate immediately.
            let _ = rng.next_u64();
            rng
        }
    }
}

pub mod distributions {
    use super::{RngCore, SampleRange};

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        fn sample<R: RngCore>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over `[lo, hi)`.
    #[derive(Clone, Copy, Debug)]
    pub struct Uniform<T> {
        lo: T,
        hi: T,
    }

    impl<T: Copy + PartialOrd> Uniform<T> {
        pub fn new(lo: T, hi: T) -> Uniform<T> {
            assert!(lo < hi, "Uniform::new requires lo < hi");
            Uniform { lo, hi }
        }
    }

    impl<T> Distribution<T> for Uniform<T>
    where
        T: Copy,
        core::ops::Range<T>: SampleRange<T>,
    {
        fn sample<R: RngCore>(&self, rng: &mut R) -> T {
            (self.lo..self.hi).sample_single(rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&v));
            let i = rng.gen_range(0usize..6);
            assert!(i < 6);
            let k = rng.gen_range(3i32..=5);
            assert!((3..=5).contains(&k));
        }
    }

    #[test]
    fn standard_f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn uniform_distribution_matches_range() {
        let dist = Uniform::new(-2.0, 3.0);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let v: f64 = dist.sample(&mut rng);
            assert!((-2.0..3.0).contains(&v));
        }
    }

    #[test]
    fn gen_bool_probabilities() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }
}
