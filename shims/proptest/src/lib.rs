//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! Same surface syntax (`proptest! { #![proptest_config(..)] #[test] fn
//! f(x in strategy, ..) { .. } }`, range / tuple / `collection::vec` /
//! `any::<bool>()` strategies, `prop_assert!`/`prop_assert_eq!`), different
//! engine: deterministic seeded sampling with a fixed case count and **no
//! shrinking** — on failure the panic message reports the case number so
//! the deterministic stream can be replayed under a debugger.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// The RNG handed to strategies (re-exported so generated code can name it).
pub type TestRng = StdRng;

/// Deterministic RNG constructor used by the `proptest!` expansion (kept
/// here so expanded code never needs a direct `rand` dependency).
pub fn new_test_rng(seed: u64) -> TestRng {
    StdRng::seed_from_u64(seed)
}

/// Something that can produce one value per test case.
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! { (A) (A, B) (A, B, C) (A, B, C, D) (A, B, C, D, E) }

/// A constant strategy (proptest's `Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen::<bool>()
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.gen::<$t>()
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// `any::<T>()`: the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

#[derive(Clone, Copy, Debug)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Sizes accepted by [`vec()`]: a fixed length or a (half-open or
    /// inclusive) range of lengths.
    pub trait SizeRange {
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// `prop::collection::vec(element_strategy, size)`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample_len(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };

    /// The `prop::` namespace (`prop::collection::vec(...)`).
    pub mod prop {
        pub use crate::collection;
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// The `proptest!` test-suite macro: runs each body `config.cases` times
/// with freshly sampled inputs. Deterministic: the RNG seed is fixed, so a
/// failing case number identifies an exact input.
#[macro_export]
macro_rules! proptest {
    // With a leading #![proptest_config(...)].
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            @internal ($config)
            $(
                $(#[$meta])*
                fn $name($($arg in $strategy),*) $body
            )*
        }
    };

    // Without a config: default.
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            @internal ($crate::ProptestConfig::default())
            $(
                $(#[$meta])*
                fn $name($($arg in $strategy),*) $body
            )*
        }
    };

    (
        @internal ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng: $crate::TestRng = $crate::new_test_rng(
                    0x5EED_0000u64 ^ stringify!($name).len() as u64,
                );
                for case in 0..config.cases {
                    $(
                        let $arg = $crate::Strategy::sample(&($strategy), &mut rng);
                    )*
                    let result = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| { $body })
                    );
                    if let Err(payload) = result {
                        eprintln!(
                            "proptest shim: case {} of {} failed in {}",
                            case + 1, config.cases, stringify!($name)
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_sample_in_bounds(x in 3usize..9, y in -2.0f64..2.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_strategy_sizes(v in prop::collection::vec((0usize..4, any::<bool>()), 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
            for (n, _flag) in v {
                prop_assert!(n < 4);
            }
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u64..10) {
            prop_assert!(x < 10);
        }
    }
}
