//! Offline stand-in for the subset of `crossbeam` this workspace uses:
//! `channel::{unbounded, Sender, Receiver}` with blocking `recv`,
//! non-blocking `try_recv`, and disconnect detection — built on
//! `Mutex<VecDeque>` + `Condvar`.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    // Match the real crate's opaque Debug output so user types can derive.
    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "Sender {{ .. }}")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "Receiver {{ .. }}")
        }
    }

    /// Send on a channel with no receivers left; carries the message back.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Blocking receive on an empty channel with no senders left.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    /// Timed receive that ran out of time, or found the channel empty and
    /// disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => write!(f, "timed out waiting on receive operation"),
                RecvTimeoutError::Disconnected => {
                    write!(f, "receiving on an empty, disconnected channel")
                }
            }
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.inner.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            self.inner
                .queue
                .lock()
                .expect("channel mutex poisoned")
                .push_back(value);
            self.inner.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.inner.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake blocked receivers so they observe
                // the disconnect. The notify must happen while holding the
                // queue mutex — otherwise a receiver that has already read
                // senders > 0 but not yet parked in wait() misses the
                // wakeup and blocks forever (classic lost-wakeup race).
                let _guard = self.inner.queue.lock().expect("channel mutex poisoned");
                self.inner.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.inner.queue.lock().expect("channel mutex poisoned");
            loop {
                if let Some(v) = queue.pop_front() {
                    return Ok(v);
                }
                if self.inner.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .inner
                    .ready
                    .wait(queue)
                    .expect("channel mutex poisoned");
            }
        }

        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut queue = self.inner.queue.lock().expect("channel mutex poisoned");
            loop {
                if let Some(v) = queue.pop_front() {
                    return Ok(v);
                }
                if self.inner.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                let Some(remaining) = deadline
                    .checked_duration_since(now)
                    .filter(|d| !d.is_zero())
                else {
                    return Err(RecvTimeoutError::Timeout);
                };
                let (guard, _timed_out) = self
                    .inner
                    .ready
                    .wait_timeout(queue, remaining)
                    .expect("channel mutex poisoned");
                queue = guard;
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.inner.queue.lock().expect("channel mutex poisoned");
            match queue.pop_front() {
                Some(v) => Ok(v),
                None if self.inner.senders.load(Ordering::Acquire) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.inner.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.inner.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_in_order() {
            let (s, r) = unbounded();
            s.send(1).unwrap();
            s.send(2).unwrap();
            assert_eq!(r.recv(), Ok(1));
            assert_eq!(r.recv(), Ok(2));
            assert_eq!(r.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_detected() {
            let (s, r) = unbounded::<i32>();
            drop(s);
            assert_eq!(r.recv(), Err(RecvError));
            assert_eq!(r.try_recv(), Err(TryRecvError::Disconnected));

            let (s2, r2) = unbounded::<i32>();
            drop(r2);
            assert!(s2.send(5).is_err());
        }

        #[test]
        fn recv_timeout_times_out_then_delivers() {
            use std::time::Duration;
            let (s, r) = unbounded();
            assert_eq!(
                r.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            s.send(7u64).unwrap();
            assert_eq!(r.recv_timeout(Duration::from_millis(10)), Ok(7));
            drop(s);
            assert_eq!(
                r.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn blocking_recv_wakes_on_send() {
            let (s, r) = unbounded();
            let t = std::thread::spawn(move || r.recv().unwrap());
            std::thread::sleep(std::time::Duration::from_millis(10));
            s.send(42u64).unwrap();
            assert_eq!(t.join().unwrap(), 42);
        }

        #[test]
        fn cloned_senders_all_feed_one_receiver() {
            let (s, r) = unbounded();
            let handles: Vec<_> = (0..4u64)
                .map(|i| {
                    let s = s.clone();
                    std::thread::spawn(move || s.send(i).unwrap())
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            drop(s);
            let mut got = Vec::new();
            while let Ok(v) = r.recv() {
                got.push(v);
            }
            got.sort_unstable();
            assert_eq!(got, vec![0, 1, 2, 3]);
        }
    }
}
