//! # mttkrp-memsim
//!
//! A strict simulator of the two-level sequential memory model (the
//! I/O-complexity model of Hong & Kung) used by the paper's sequential
//! lower bounds and Algorithms 1-2.
//!
//! The machine has a fast memory of capacity `M` words and an unbounded
//! slow memory; every `load`/`store` moves exactly one word and is counted.
//! Arithmetic may only touch fast-resident words — violations panic, so the
//! simulator doubles as a machine-checker for working-set claims such as
//! Eq. (11) of the paper (`b^N + N*b <= M` for the blocked algorithm).
//!
//! Two management styles are provided:
//! - [`TwoLevelMemory`]: fully explicit loads/stores/evicts (what the
//!   paper's algorithms assume);
//! - [`LruMemory`]: automatic on-demand loading with LRU write-back, for
//!   running unannotated loop nests.

pub mod lru;
pub mod memory;
pub mod stats;

pub use lru::LruMemory;
pub use memory::{ArrayId, TwoLevelMemory};
pub use stats::IoStats;
