//! Load/store accounting for the two-level memory model.

/// Counts of slow-memory traffic, in words (one word = one `f64`).
///
/// In the paper's sequential model (Section II-C), communication consists of
/// *loads* (slow -> fast) and *stores* (fast -> slow); the communication cost
/// `W` of an algorithm is `loads + stores`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Words moved from slow to fast memory.
    pub loads: u64,
    /// Words moved from fast to slow memory.
    pub stores: u64,
}

impl IoStats {
    /// Total communication `W = loads + stores`.
    pub fn total(&self) -> u64 {
        self.loads + self.stores
    }
}

impl std::ops::Add for IoStats {
    type Output = IoStats;
    fn add(self, rhs: IoStats) -> IoStats {
        IoStats {
            loads: self.loads + rhs.loads,
            stores: self.stores + rhs.stores,
        }
    }
}

impl std::ops::Sub for IoStats {
    type Output = IoStats;
    fn sub(self, rhs: IoStats) -> IoStats {
        IoStats {
            loads: self.loads - rhs.loads,
            stores: self.stores - rhs.stores,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_and_arithmetic() {
        let a = IoStats {
            loads: 3,
            stores: 2,
        };
        let b = IoStats {
            loads: 1,
            stores: 1,
        };
        assert_eq!(a.total(), 5);
        assert_eq!((a + b).total(), 7);
        assert_eq!(
            (a - b),
            IoStats {
                loads: 2,
                stores: 1
            }
        );
    }
}
