//! An automatic (LRU, write-back) cache layered over [`TwoLevelMemory`].
//!
//! The paper's algorithms manage fast memory explicitly, but for comparison
//! it is useful to run *cache-oblivious-style* code — plain loop nests with
//! no explicit data movement — against an automatically managed fast memory.
//! `LruMemory` does on-demand loads, LRU eviction, and write-back of dirty
//! words, while delegating all counting to the underlying strict machine.

use crate::memory::{ArrayId, TwoLevelMemory};
use crate::stats::IoStats;
use std::collections::{BTreeMap, HashMap};

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct Key {
    array: ArrayId,
    offset: usize,
}

/// Write-back LRU cache over the strict two-level machine.
pub struct LruMemory {
    inner: TwoLevelMemory,
    /// last-use stamp per resident word
    stamps: HashMap<Key, u64>,
    /// stamp -> word, for O(log M) LRU eviction
    order: BTreeMap<u64, Key>,
    dirty: HashMap<Key, bool>,
    clock: u64,
}

impl LruMemory {
    /// Creates an LRU-managed machine with fast capacity `m`.
    pub fn new(m: usize) -> Self {
        LruMemory {
            inner: TwoLevelMemory::new(m),
            stamps: HashMap::new(),
            order: BTreeMap::new(),
            dirty: HashMap::new(),
            clock: 0,
        }
    }

    /// Allocates an array in slow memory.
    pub fn alloc(&mut self, data: Vec<f64>) -> ArrayId {
        self.inner.alloc(data)
    }

    /// Allocates a zero-initialized array.
    pub fn alloc_zeros(&mut self, len: usize) -> ArrayId {
        self.inner.alloc_zeros(len)
    }

    /// Cumulative load/store counters.
    pub fn stats(&self) -> IoStats {
        self.inner.stats()
    }

    /// Fast-memory capacity.
    pub fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    fn touch(&mut self, key: Key) {
        self.clock += 1;
        if let Some(old) = self.stamps.insert(key, self.clock) {
            self.order.remove(&old);
        }
        self.order.insert(self.clock, key);
    }

    fn ensure_resident(&mut self, key: Key) {
        if self.inner.is_resident(key.array, key.offset) {
            self.touch(key);
            return;
        }
        if self.inner.fast_used() == self.inner.capacity() {
            // Evict the least-recently-used word, writing back if dirty.
            let (&stamp, &victim) = self
                .order
                .iter()
                .next()
                .expect("fast memory full but LRU order empty");
            self.order.remove(&stamp);
            self.stamps.remove(&victim);
            if self.dirty.remove(&victim).unwrap_or(false) {
                self.inner.store(victim.array, victim.offset);
            }
            self.inner.evict(victim.array, victim.offset);
        }
        self.inner.load(key.array, key.offset);
        self.touch(key);
    }

    /// Reads a word, loading (and possibly evicting) on demand.
    pub fn read(&mut self, a: ArrayId, offset: usize) -> f64 {
        let key = Key { array: a, offset };
        self.ensure_resident(key);
        self.inner.get(a, offset)
    }

    /// Writes a word, loading (write-allocate) on demand; marks it dirty.
    pub fn write(&mut self, a: ArrayId, offset: usize, value: f64) {
        let key = Key { array: a, offset };
        self.ensure_resident(key);
        self.inner.set(a, offset, value);
        self.dirty.insert(key, true);
    }

    /// Writes back all dirty words (counted as stores) and empties the cache.
    pub fn flush(&mut self) {
        let dirty: Vec<Key> = self
            .dirty
            .iter()
            .filter(|&(_, &d)| d)
            .map(|(&k, _)| k)
            .collect();
        for key in dirty {
            self.inner.store(key.array, key.offset);
        }
        self.dirty.clear();
        self.stamps.clear();
        self.order.clear();
        self.inner.clear_fast();
    }

    /// Direct slow-memory view for post-hoc verification (call `flush` first).
    pub fn slow_data(&self, a: ArrayId) -> &[f64] {
        self.inner.slow_data(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_hits_do_not_count() {
        let mut mem = LruMemory::new(2);
        let a = mem.alloc(vec![1.0, 2.0]);
        assert_eq!(mem.read(a, 0), 1.0);
        assert_eq!(mem.read(a, 0), 1.0);
        assert_eq!(mem.read(a, 0), 1.0);
        assert_eq!(mem.stats().loads, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut mem = LruMemory::new(2);
        let a = mem.alloc(vec![1.0, 2.0, 3.0]);
        mem.read(a, 0);
        mem.read(a, 1);
        mem.read(a, 0); // refresh 0; LRU victim is now 1
        mem.read(a, 2); // evicts 1
        assert_eq!(mem.stats().loads, 3);
        mem.read(a, 0); // still resident: no load
        assert_eq!(mem.stats().loads, 3);
        mem.read(a, 1); // was evicted: reload
        assert_eq!(mem.stats().loads, 4);
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let mut mem = LruMemory::new(1);
        let a = mem.alloc(vec![1.0, 2.0]);
        mem.write(a, 0, 10.0);
        mem.read(a, 1); // evicts dirty word 0 -> store
        assert_eq!(mem.stats().stores, 1);
        assert_eq!(mem.slow_data(a)[0], 10.0);
    }

    #[test]
    fn clean_eviction_is_silent() {
        let mut mem = LruMemory::new(1);
        let a = mem.alloc(vec![1.0, 2.0]);
        mem.read(a, 0);
        mem.read(a, 1); // evicts clean word 0: no store
        assert_eq!(mem.stats().stores, 0);
    }

    #[test]
    fn flush_persists_all_dirty_words() {
        let mut mem = LruMemory::new(4);
        let a = mem.alloc_zeros(3);
        mem.write(a, 0, 1.0);
        mem.write(a, 2, 3.0);
        mem.flush();
        assert_eq!(mem.slow_data(a), &[1.0, 0.0, 3.0]);
        assert_eq!(mem.stats().stores, 2);
    }

    #[test]
    fn streaming_through_tiny_cache_counts_every_access() {
        let n = 10;
        let mut mem = LruMemory::new(1);
        let a = mem.alloc((0..n).map(|i| i as f64).collect());
        let mut sum = 0.0;
        for i in 0..n {
            sum += mem.read(a, i);
        }
        assert_eq!(sum, 45.0);
        assert_eq!(mem.stats().loads, n as u64);
    }
}
