//! The two-level sequential memory model of Hong–Kung (paper Section II-C).
//!
//! A single processor is attached to a *fast* memory of capacity `M` words
//! and an unbounded *slow* memory. Arithmetic may only touch values resident
//! in fast memory; data moves via explicit `load` and `store` instructions,
//! each of which moves one word and is counted.
//!
//! The simulator is *strict*: reading a value that is not resident in fast
//! memory, or loading into a full fast memory, panics. This machine-checks
//! the residency discipline of the algorithms (e.g. Algorithm 2's block-size
//! constraint `b^N + N*b <= M`, Eq. (11) of the paper).

use crate::stats::IoStats;
use std::collections::HashMap;

/// Handle to an array allocated in slow memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ArrayId(u32);

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct Loc {
    array: u32,
    offset: usize,
}

/// The two-level memory machine.
pub struct TwoLevelMemory {
    capacity: usize,
    slow: Vec<Vec<f64>>,
    fast: HashMap<Loc, f64>,
    stats: IoStats,
    peak_fast: usize,
    /// Iterations completed per `M`-operation *segment* (the proof device
    /// of Hong-Kung-style lower bounds): `segments[s]` counts the
    /// iterations the client reported while total ops were in
    /// `[s*M, (s+1)*M)`.
    segments: Vec<u64>,
}

impl TwoLevelMemory {
    /// Creates a machine with fast-memory capacity `m` words.
    pub fn new(m: usize) -> Self {
        assert!(m > 0, "fast memory must have positive capacity");
        TwoLevelMemory {
            capacity: m,
            slow: Vec::new(),
            fast: HashMap::new(),
            stats: IoStats::default(),
            peak_fast: 0,
            segments: Vec::new(),
        }
    }

    /// Reports one completed loop iteration (one atomic `N`-ary
    /// multiply-accumulate). The iteration is attributed to the current
    /// `M`-operation segment; [`TwoLevelMemory::segments`] then exposes the
    /// per-segment counts that Theorem 4.1's proof bounds by
    /// `(3M)^{2-1/N}/N`.
    pub fn note_iteration(&mut self) {
        let seg = (self.stats.total() / self.capacity as u64) as usize;
        if self.segments.len() <= seg {
            self.segments.resize(seg + 1, 0);
        }
        self.segments[seg] += 1;
    }

    /// Iterations completed in each `M`-operation segment (see
    /// [`TwoLevelMemory::note_iteration`]).
    pub fn segments(&self) -> &[u64] {
        &self.segments
    }

    /// Fast-memory capacity `M`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Words currently resident in fast memory.
    pub fn fast_used(&self) -> usize {
        self.fast.len()
    }

    /// High-water mark of fast-memory residency.
    pub fn peak_fast(&self) -> usize {
        self.peak_fast
    }

    /// Cumulative load/store counters.
    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// Resets the load/store counters (e.g. between experiment phases).
    pub fn reset_stats(&mut self) {
        self.stats = IoStats::default();
    }

    /// Allocates an array in slow memory initialized from `data`.
    pub fn alloc(&mut self, data: Vec<f64>) -> ArrayId {
        let id = ArrayId(self.slow.len() as u32);
        self.slow.push(data);
        id
    }

    /// Allocates a zero-initialized array of length `len` in slow memory.
    pub fn alloc_zeros(&mut self, len: usize) -> ArrayId {
        self.alloc(vec![0.0; len])
    }

    /// Length of an allocated array.
    pub fn len(&self, a: ArrayId) -> usize {
        self.slow[a.0 as usize].len()
    }

    /// Direct (cost-free) view of an array's slow-memory contents. Only the
    /// test/measurement harness should use this, after the algorithm has
    /// stored its results.
    pub fn slow_data(&self, a: ArrayId) -> &[f64] {
        &self.slow[a.0 as usize]
    }

    #[inline]
    fn loc(&self, a: ArrayId, offset: usize) -> Loc {
        debug_assert!(
            offset < self.slow[a.0 as usize].len(),
            "offset {offset} out of bounds for array {:?}",
            a
        );
        Loc { array: a.0, offset }
    }

    /// Loads one word from slow to fast memory (cost: 1 load).
    ///
    /// # Panics
    /// Panics if fast memory is full (a genuine residency bug in the
    /// algorithm under test). Re-loading an already-resident word is allowed
    /// (it still costs a load and refreshes the fast copy from slow memory).
    pub fn load(&mut self, a: ArrayId, offset: usize) {
        let loc = self.loc(a, offset);
        let value = self.slow[a.0 as usize][offset];
        if !self.fast.contains_key(&loc) {
            assert!(
                self.fast.len() < self.capacity,
                "fast memory overflow: capacity {} exceeded (algorithm violates its working-set bound)",
                self.capacity
            );
        }
        self.fast.insert(loc, value);
        self.peak_fast = self.peak_fast.max(self.fast.len());
        self.stats.loads += 1;
    }

    /// Stores one resident word from fast back to slow memory (cost: 1
    /// store). The word stays resident.
    ///
    /// # Panics
    /// Panics if the word is not resident in fast memory.
    pub fn store(&mut self, a: ArrayId, offset: usize) {
        let loc = self.loc(a, offset);
        let value = *self
            .fast
            .get(&loc)
            .expect("store of a non-resident word (algorithm bug)");
        self.slow[a.0 as usize][offset] = value;
        self.stats.stores += 1;
    }

    /// Drops a resident word from fast memory without writing it back
    /// (cost-free; discarding data is not communication).
    ///
    /// # Panics
    /// Panics if the word is not resident.
    pub fn evict(&mut self, a: ArrayId, offset: usize) {
        let loc = self.loc(a, offset);
        assert!(
            self.fast.remove(&loc).is_some(),
            "evict of a non-resident word (algorithm bug)"
        );
    }

    /// Convenience: `store` followed by `evict`.
    pub fn store_evict(&mut self, a: ArrayId, offset: usize) {
        self.store(a, offset);
        self.evict(a, offset);
    }

    /// Creates a word directly in fast memory without a load (cost-free):
    /// this models the processor *computing* a fresh value. The slow copy is
    /// untouched until a `store`.
    ///
    /// # Panics
    /// Panics if fast memory is full and the word is not already resident.
    pub fn create(&mut self, a: ArrayId, offset: usize, value: f64) {
        let loc = self.loc(a, offset);
        if !self.fast.contains_key(&loc) {
            assert!(
                self.fast.len() < self.capacity,
                "fast memory overflow: capacity {} exceeded",
                self.capacity
            );
        }
        self.fast.insert(loc, value);
        self.peak_fast = self.peak_fast.max(self.fast.len());
    }

    /// Reads a resident word (cost-free arithmetic access).
    ///
    /// # Panics
    /// Panics if the word is not resident — the model forbids computing on
    /// slow-memory values.
    #[inline]
    pub fn get(&self, a: ArrayId, offset: usize) -> f64 {
        let loc = Loc { array: a.0, offset };
        *self
            .fast
            .get(&loc)
            .expect("arithmetic access to a non-resident word (algorithm bug)")
    }

    /// Overwrites a resident word (cost-free arithmetic access).
    ///
    /// # Panics
    /// Panics if the word is not resident.
    #[inline]
    pub fn set(&mut self, a: ArrayId, offset: usize, value: f64) {
        let loc = self.loc(a, offset);
        let slot = self
            .fast
            .get_mut(&loc)
            .expect("arithmetic write to a non-resident word (algorithm bug)");
        *slot = value;
    }

    /// Whether a word is resident in fast memory.
    pub fn is_resident(&self, a: ArrayId, offset: usize) -> bool {
        self.fast.contains_key(&Loc { array: a.0, offset })
    }

    /// Evicts everything from fast memory without write-back. Useful between
    /// experiment phases to model a cold cache.
    pub fn clear_fast(&mut self) {
        self.fast.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_compute_store_roundtrip() {
        let mut mem = TwoLevelMemory::new(4);
        let a = mem.alloc(vec![1.0, 2.0, 3.0]);
        mem.load(a, 1);
        assert_eq!(mem.get(a, 1), 2.0);
        mem.set(a, 1, 5.0);
        // Slow copy unchanged until store.
        assert_eq!(mem.slow_data(a)[1], 2.0);
        mem.store(a, 1);
        assert_eq!(mem.slow_data(a)[1], 5.0);
        assert_eq!(
            mem.stats(),
            IoStats {
                loads: 1,
                stores: 1
            }
        );
    }

    #[test]
    fn capacity_enforced() {
        let mut mem = TwoLevelMemory::new(2);
        let a = mem.alloc(vec![0.0; 3]);
        mem.load(a, 0);
        mem.load(a, 1);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            mem.load(a, 2);
        }));
        assert!(r.is_err(), "third load must overflow capacity 2");
    }

    #[test]
    fn reload_resident_word_does_not_overflow() {
        let mut mem = TwoLevelMemory::new(1);
        let a = mem.alloc(vec![7.0]);
        mem.load(a, 0);
        mem.load(a, 0); // same word: no new slot needed
        assert_eq!(mem.stats().loads, 2);
        assert_eq!(mem.fast_used(), 1);
    }

    #[test]
    fn evict_frees_space() {
        let mut mem = TwoLevelMemory::new(1);
        let a = mem.alloc(vec![1.0, 2.0]);
        mem.load(a, 0);
        mem.evict(a, 0);
        mem.load(a, 1);
        assert_eq!(mem.get(a, 1), 2.0);
        assert_eq!(mem.fast_used(), 1);
    }

    #[test]
    fn create_is_free_but_capacity_checked() {
        let mut mem = TwoLevelMemory::new(1);
        let a = mem.alloc_zeros(2);
        mem.create(a, 0, 9.0);
        assert_eq!(mem.stats().total(), 0);
        mem.store_evict(a, 0);
        assert_eq!(mem.slow_data(a)[0], 9.0);
        assert_eq!(
            mem.stats(),
            IoStats {
                loads: 0,
                stores: 1
            }
        );
    }

    #[test]
    #[should_panic(expected = "non-resident")]
    fn get_nonresident_panics() {
        let mut mem = TwoLevelMemory::new(4);
        let a = mem.alloc(vec![1.0]);
        let _ = mem.get(a, 0);
    }

    #[test]
    #[should_panic(expected = "non-resident")]
    fn store_nonresident_panics() {
        let mut mem = TwoLevelMemory::new(4);
        let a = mem.alloc(vec![1.0]);
        mem.store(a, 0);
    }

    #[test]
    fn reload_refreshes_from_slow() {
        let mut mem = TwoLevelMemory::new(4);
        let a = mem.alloc(vec![1.0]);
        mem.load(a, 0);
        mem.set(a, 0, 42.0);
        mem.load(a, 0); // dirty fast copy is overwritten from slow
        assert_eq!(mem.get(a, 0), 1.0);
    }

    #[test]
    fn peak_tracking() {
        let mut mem = TwoLevelMemory::new(3);
        let a = mem.alloc_zeros(3);
        mem.load(a, 0);
        mem.load(a, 1);
        mem.evict(a, 0);
        mem.load(a, 2);
        assert_eq!(mem.peak_fast(), 2);
        assert_eq!(mem.fast_used(), 2);
    }

    #[test]
    fn segments_attribute_iterations_to_op_windows() {
        let mut mem = TwoLevelMemory::new(2);
        let a = mem.alloc_zeros(6);
        // Segment 0: ops 0 and 1.
        mem.load(a, 0); // op 1
        mem.note_iteration();
        mem.evict(a, 0);
        mem.load(a, 1); // op 2 -> from now on segment 1
        mem.note_iteration();
        mem.note_iteration();
        mem.evict(a, 1);
        mem.load(a, 2); // op 3
        mem.load(a, 3); // op 4 -> segment 2
        mem.note_iteration();
        assert_eq!(mem.segments(), &[1, 2, 1]);
    }

    #[test]
    fn iterations_before_any_io_land_in_segment_zero() {
        let mut mem = TwoLevelMemory::new(4);
        let a = mem.alloc_zeros(1);
        mem.create(a, 0, 1.0);
        mem.note_iteration();
        assert_eq!(mem.segments(), &[1]);
    }

    #[test]
    fn reset_stats_between_phases() {
        let mut mem = TwoLevelMemory::new(2);
        let a = mem.alloc_zeros(1);
        mem.load(a, 0);
        mem.reset_stats();
        assert_eq!(mem.stats().total(), 0);
    }
}
