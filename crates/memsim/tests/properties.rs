//! Property-based tests for the two-level memory simulator: accounting
//! exactness, capacity enforcement, and LRU behavior under random access
//! patterns.

use mttkrp_memsim::{LruMemory, TwoLevelMemory};
use proptest::prelude::*;
use std::collections::{HashMap, VecDeque};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn explicit_load_store_counts_are_exact(ops in prop::collection::vec((0usize..16, any::<bool>()), 0..60)) {
        // Random load/store-evict sequences against one 16-word array with
        // a large fast memory: counts must equal the issued operations.
        let mut mem = TwoLevelMemory::new(64);
        let a = mem.alloc((0..16).map(|i| i as f64).collect());
        let mut loads = 0u64;
        let mut stores = 0u64;
        let mut resident: Vec<bool> = vec![false; 16];
        for (off, do_store) in ops {
            if do_store && resident[off] {
                mem.store(a, off);
                stores += 1;
            } else {
                mem.load(a, off);
                resident[off] = true;
                loads += 1;
            }
        }
        prop_assert_eq!(mem.stats().loads, loads);
        prop_assert_eq!(mem.stats().stores, stores);
    }

    #[test]
    fn store_persists_last_written_value(values in prop::collection::vec(-10.0f64..10.0, 1..20)) {
        let n = values.len();
        let mut mem = TwoLevelMemory::new(n + 1);
        let a = mem.alloc_zeros(n);
        for (i, &v) in values.iter().enumerate() {
            mem.load(a, i);
            mem.set(a, i, v);
            mem.store_evict(a, i);
        }
        prop_assert_eq!(mem.slow_data(a), &values[..]);
    }

    #[test]
    fn peak_never_exceeds_capacity(cap in 1usize..8, pattern in prop::collection::vec(0usize..8, 0..40)) {
        // A well-behaved client that evicts before exceeding capacity:
        // peak tracking never exceeds the capacity.
        let mut mem = TwoLevelMemory::new(cap);
        let a = mem.alloc_zeros(8);
        let mut resident: VecDeque<usize> = VecDeque::new();
        for off in pattern {
            if resident.contains(&off) {
                continue;
            }
            if resident.len() == cap {
                let victim = resident.pop_front().unwrap();
                mem.evict(a, victim);
            }
            mem.load(a, off);
            resident.push_back(off);
        }
        prop_assert!(mem.peak_fast() <= cap);
        prop_assert!(mem.fast_used() <= cap);
    }

    #[test]
    fn lru_matches_reference_simulation(cap in 1usize..6, pattern in prop::collection::vec((0usize..10, any::<bool>()), 0..80)) {
        // The LRU cache's load/store counts must equal a straightforward
        // reference LRU simulation (write-back, write-allocate).
        let mut mem = LruMemory::new(cap);
        let a = mem.alloc_zeros(10);

        // Reference simulator.
        let mut ref_loads = 0u64;
        let mut ref_stores = 0u64;
        let mut cache: Vec<usize> = Vec::new(); // most recent at back
        let mut dirty: HashMap<usize, bool> = HashMap::new();

        for (off, is_write) in pattern {
            // Reference.
            if let Some(pos) = cache.iter().position(|&o| o == off) {
                cache.remove(pos);
            } else {
                if cache.len() == cap {
                    let victim = cache.remove(0);
                    if dirty.remove(&victim).unwrap_or(false) {
                        ref_stores += 1;
                    }
                }
                ref_loads += 1;
            }
            cache.push(off);
            if is_write {
                dirty.insert(off, true);
            }

            // System under test.
            if is_write {
                mem.write(a, off, 1.0);
            } else {
                let _ = mem.read(a, off);
            }
        }
        prop_assert_eq!(mem.stats().loads, ref_loads);
        prop_assert_eq!(mem.stats().stores, ref_stores);
    }

    #[test]
    fn lru_flush_makes_slow_memory_match_writes(cap in 1usize..5, writes in prop::collection::vec((0usize..6, -5.0f64..5.0), 1..30)) {
        let mut mem = LruMemory::new(cap);
        let a = mem.alloc_zeros(6);
        let mut expect = [0.0f64; 6];
        for &(off, v) in &writes {
            mem.write(a, off, v);
            expect[off] = v;
        }
        mem.flush();
        prop_assert_eq!(mem.slow_data(a), &expect[..]);
    }

    #[test]
    fn lru_hit_rate_perfect_when_cache_fits_working_set(cap in 4usize..8, rounds in 1usize..6) {
        // Working set of `cap` words scanned repeatedly: only cold misses.
        let mut mem = LruMemory::new(cap);
        let a = mem.alloc_zeros(cap);
        for _ in 0..rounds {
            for off in 0..cap {
                let _ = mem.read(a, off);
            }
        }
        prop_assert_eq!(mem.stats().loads, cap as u64);
        prop_assert_eq!(mem.stats().stores, 0);
    }
}
