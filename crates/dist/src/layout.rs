//! Rank data layouts: what each rank *owns* before a run starts.
//!
//! The netsim executions in `mttkrp-core::par` are SPMD closures that may
//! read the global operands directly (they only read what their rank owns,
//! but nothing enforces it). Here the distribution is made physical: a
//! sharder cuts the global tensor and factor matrices into per-rank shards
//! — owned values, moved into the rank threads — following exactly the
//! paper's data distributions over the [`ProcessorGrid`] layout. After
//! sharding, the only way data crosses ranks is through the instrumented
//! transport.
//!
//! The splits reuse [`mttkrp_netsim::schedule::split_range`], the same
//! block distribution the simulator and the schedule predictions use, so
//! all three agree word for word.

use mttkrp_netsim::schedule::{check_grid, split_range, split_sizes};
use mttkrp_netsim::ProcessorGrid;
use mttkrp_tensor::{DenseTensor, Matrix};

/// What one rank owns for Algorithm 3 (stationary tensor): its subtensor
/// block and, for every mode `k`, its chunk of the block row
/// `A^(k)(S^(k)_{p_k}, :)` (partitioned by rows across the mode-`k`
/// hyperslice).
#[derive(Clone, Debug)]
pub struct Alg3Shard {
    /// World rank this shard belongs to.
    pub rank: usize,
    /// Owned index ranges `S^(k)_{p_k}` per mode.
    pub ranges: Vec<(usize, usize)>,
    /// The owned (stationary) subtensor block.
    pub x_local: DenseTensor,
    /// Global factor row range owned per mode (also the rows of `B^(n)`
    /// this rank ends up with after the reduce-scatter, for `k = n`).
    pub factor_rows: Vec<(usize, usize)>,
    /// Owned factor rows per mode, as row-major `rows x R` data (a rank
    /// may own zero rows of a block when the hyperslice outnumbers them).
    pub factor_chunks: Vec<Vec<f64>>,
}

/// Cuts the operands into one [`Alg3Shard`] per rank of `grid` (every
/// `P_k` must divide `I_k`).
pub fn shard_alg3(
    x: &DenseTensor,
    factors: &[&Matrix],
    n: usize,
    grid: &[usize],
) -> Vec<Alg3Shard> {
    let r = mttkrp_tensor::validate_operands(x, factors, n);
    let shape = x.shape();
    let order = shape.order();
    check_grid(shape.dims(), grid);
    let pgrid = ProcessorGrid::new(grid);
    (0..pgrid.num_ranks())
        .map(|me| {
            let coords = pgrid.coords(me);
            let ranges: Vec<(usize, usize)> = (0..order)
                .map(|k| {
                    let rows = shape.dim(k) / grid[k];
                    (coords[k] * rows, (coords[k] + 1) * rows)
                })
                .collect();
            let x_local = x.subtensor(&ranges);
            let mut factor_rows = Vec::with_capacity(order);
            let mut factor_chunks = Vec::with_capacity(order);
            for k in 0..order {
                let comm = pgrid.hyperslice_comm(me, k);
                let my_idx = comm.local_index(me).expect("member of own hyperslice");
                let block_rows = ranges[k].1 - ranges[k].0;
                let (lo, hi) = split_range(block_rows, comm.size(), my_idx);
                let (g0, g1) = (ranges[k].0 + lo, ranges[k].0 + hi);
                factor_rows.push((g0, g1));
                let mut chunk = Vec::with_capacity((g1 - g0) * r);
                for row in g0..g1 {
                    chunk.extend_from_slice(factors[k].row(row));
                }
                factor_chunks.push(chunk);
            }
            Alg3Shard {
                rank: me,
                ranges,
                x_local,
                factor_rows,
                factor_chunks,
            }
        })
        .collect()
}

/// What one rank owns for Algorithm 4 (general): a `1/P_0` part of its
/// subtensor block (the tensor *is* communicated in Algorithm 4) and, for
/// every mode, its row chunk of `A^(k)(S^(k), T_{p_0})` — the `T_{p_0}`
/// column slice of the factor.
#[derive(Clone, Debug)]
pub struct Alg4Shard {
    /// World rank this shard belongs to.
    pub rank: usize,
    /// Owned index ranges `S^(k)` per mode (shared by the `P_0` fiber).
    pub ranges: Vec<(usize, usize)>,
    /// Owned flat slice `[t_lo, t_hi)` of the subtensor's colex data.
    pub part_range: (usize, usize),
    /// The owned subtensor part (colex order within the block).
    pub tensor_part: Vec<f64>,
    /// Owned column range `T_{p_0} = [c_lo, c_hi)` of every factor.
    pub col_range: (usize, usize),
    /// Global factor row range owned per mode.
    pub factor_rows: Vec<(usize, usize)>,
    /// Owned factor chunks per mode, as row-major `rows x R/P_0` data.
    pub factor_chunks: Vec<Vec<f64>>,
}

/// Cuts the operands into one [`Alg4Shard`] per rank of the `(N+1)`-way
/// grid `P_0 x P_1 x ... x P_N` (`p0` must divide `R`; every `P_k` must
/// divide `I_k`).
pub fn shard_alg4(
    x: &DenseTensor,
    factors: &[&Matrix],
    n: usize,
    p0: usize,
    grid: &[usize],
) -> Vec<Alg4Shard> {
    let r = mttkrp_tensor::validate_operands(x, factors, n);
    let shape = x.shape();
    let order = shape.order();
    check_grid(shape.dims(), grid);
    assert!(
        p0 >= 1 && r.is_multiple_of(p0),
        "P_0 = {p0} must divide R = {r}"
    );
    let mut gdims = Vec::with_capacity(order + 1);
    gdims.push(p0);
    gdims.extend_from_slice(grid);
    let pgrid = ProcessorGrid::new(&gdims);
    let cols_per_part = r / p0;

    // Grid dimension 0 (the rank cut) is fastest in the colex rank
    // linearization, so each run of `p0` consecutive world ranks shares one
    // subtensor block — extract it once per fiber, not once per rank.
    let mut sub_cache: Option<mttkrp_tensor::DenseTensor> = None;
    (0..pgrid.num_ranks())
        .map(|me| {
            let coords = pgrid.coords(me);
            let my_p0 = coords[0];
            let ranges: Vec<(usize, usize)> = (0..order)
                .map(|k| {
                    let rows = shape.dim(k) / grid[k];
                    (coords[k + 1] * rows, (coords[k + 1] + 1) * rows)
                })
                .collect();
            let (c_lo, c_hi) = (my_p0 * cols_per_part, (my_p0 + 1) * cols_per_part);

            // The owned 1/P_0 part of the subtensor's flat (colex) data.
            let fiber = pgrid.fiber_comm(me, 0);
            let my_fiber_idx = fiber.local_index(me).expect("member of own fiber");
            if my_p0 == 0 {
                sub_cache = Some(x.subtensor(&ranges));
            }
            let sub_full = sub_cache.as_ref().expect("fiber cache filled at p0 = 0");
            let (t_lo, t_hi) = split_range(sub_full.num_entries(), fiber.size(), my_fiber_idx);
            let tensor_part = sub_full.data()[t_lo..t_hi].to_vec();

            let mut factor_rows = Vec::with_capacity(order);
            let mut factor_chunks = Vec::with_capacity(order);
            for k in 0..order {
                let varying: Vec<usize> = (0..=order).filter(|&j| j != 0 && j != k + 1).collect();
                let comm = pgrid.slice_comm(me, &varying);
                let my_idx = comm.local_index(me).expect("member of own slice");
                let block_rows = ranges[k].1 - ranges[k].0;
                let (lo, hi) = split_range(block_rows, comm.size(), my_idx);
                let (g0, g1) = (ranges[k].0 + lo, ranges[k].0 + hi);
                factor_rows.push((g0, g1));
                let mut chunk = Vec::with_capacity((g1 - g0) * cols_per_part);
                for row in g0..g1 {
                    chunk.extend_from_slice(&factors[k].row(row)[c_lo..c_hi]);
                }
                factor_chunks.push(chunk);
            }
            Alg4Shard {
                rank: me,
                ranges,
                part_range: (t_lo, t_hi),
                tensor_part,
                col_range: (c_lo, c_hi),
                factor_rows,
                factor_chunks,
            }
        })
        .collect()
}

/// What one rank owns for the 1D parallel matmul baseline: its slab of the
/// contraction dimension (a contiguous range of the highest-index mode
/// other than `n`) plus — per the paper's generous baseline assumptions —
/// replicas of the non-slab factors.
#[derive(Clone, Debug)]
pub struct MatmulShard {
    /// World rank this shard belongs to.
    pub rank: usize,
    /// The slabbed mode.
    pub slab_mode: usize,
    /// Owned slab range of the slab mode.
    pub slab_range: (usize, usize),
    /// The owned tensor slab.
    pub x_local: DenseTensor,
    /// Per-mode local factors: the slab rows for `slab_mode`, full replicas
    /// otherwise (a zero placeholder for mode `n`).
    pub local_factors: Vec<Matrix>,
    /// Rows of `B^(n)` this rank keeps after the reduce-scatter.
    pub out_rows: (usize, usize),
}

/// Cuts the operands into one [`MatmulShard`] per rank (`procs` must
/// divide the slab-mode extent).
pub fn shard_matmul(
    x: &DenseTensor,
    factors: &[&Matrix],
    n: usize,
    procs: usize,
) -> Vec<MatmulShard> {
    let r = mttkrp_tensor::validate_operands(x, factors, n);
    let shape = x.shape();
    let order = shape.order();
    let slab_mode = (0..order).rev().find(|&k| k != n).expect("order >= 2");
    assert!(
        procs >= 1 && shape.dim(slab_mode).is_multiple_of(procs),
        "processor count {procs} must divide the slab mode extent {}",
        shape.dim(slab_mode)
    );
    let slab = shape.dim(slab_mode) / procs;
    (0..procs)
        .map(|me| {
            let ranges: Vec<(usize, usize)> = (0..order)
                .map(|k| {
                    if k == slab_mode {
                        (me * slab, (me + 1) * slab)
                    } else {
                        (0, shape.dim(k))
                    }
                })
                .collect();
            let x_local = x.subtensor(&ranges);
            let local_factors: Vec<Matrix> = (0..order)
                .map(|k| {
                    if k == slab_mode {
                        factors[k].row_block(me * slab, (me + 1) * slab)
                    } else if k == n {
                        Matrix::zeros(shape.dim(n), r)
                    } else {
                        factors[k].clone()
                    }
                })
                .collect();
            let out_rows = split_range(shape.dim(n), procs, me);
            MatmulShard {
                rank: me,
                slab_mode,
                slab_range: (me * slab, (me + 1) * slab),
                x_local,
                local_factors,
                out_rows,
            }
        })
        .collect()
}

/// The reduce-scatter segment sizes (in words) for distributing `rows`
/// output rows of width `r` over a communicator of `q` ranks.
pub fn output_counts(rows: usize, r: usize, q: usize) -> Vec<usize> {
    split_sizes(rows, q).into_iter().map(|c| c * r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mttkrp_tensor::Shape;

    fn setup(dims: &[usize], r: usize, seed: u64) -> (DenseTensor, Vec<Matrix>) {
        let shape = Shape::new(dims);
        let x = DenseTensor::random(shape.clone(), seed);
        let factors = dims
            .iter()
            .enumerate()
            .map(|(k, &d)| Matrix::random(d, r, seed + 40 + k as u64))
            .collect();
        (x, factors)
    }

    #[test]
    fn alg3_shards_tile_tensor_and_factors() {
        let (x, factors) = setup(&[4, 6, 8], 3, 1);
        let refs: Vec<&Matrix> = factors.iter().collect();
        let shards = shard_alg3(&x, &refs, 0, &[2, 2, 2]);
        assert_eq!(shards.len(), 8);
        // Subtensor blocks partition the entry count.
        let total: usize = shards.iter().map(|s| s.x_local.num_entries()).sum();
        assert_eq!(total, x.num_entries());
        // Factor row chunks tile each factor exactly once: every mode-k
        // hyperslice partitions its block row, and the P_k hyperslices
        // cover the P_k disjoint block rows.
        for (k, factor) in factors.iter().enumerate() {
            let owned: usize = shards
                .iter()
                .map(|s| s.factor_rows[k].1 - s.factor_rows[k].0)
                .sum();
            assert_eq!(owned, factor.rows());
        }
        // Chunk values are the matching global rows.
        for s in &shards {
            for (k, factor) in factors.iter().enumerate() {
                let (g0, g1) = s.factor_rows[k];
                for (local, row) in (g0..g1).enumerate() {
                    assert_eq!(
                        &s.factor_chunks[k][local * 3..(local + 1) * 3],
                        factor.row(row)
                    );
                }
            }
        }
    }

    #[test]
    fn alg4_shards_tile_the_fibered_tensor() {
        let (x, factors) = setup(&[4, 4, 6], 6, 2);
        let refs: Vec<&Matrix> = factors.iter().collect();
        let p0 = 3;
        let shards = shard_alg4(&x, &refs, 1, p0, &[2, 2, 1]);
        assert_eq!(shards.len(), 12);
        // Tensor parts over one fiber reassemble the subtensor exactly once:
        // total owned entries = |X| (each block cut into p0 disjoint parts).
        let total: usize = shards.iter().map(|s| s.tensor_part.len()).sum();
        assert_eq!(total, x.num_entries());
        // Column ranges tile [0, R) per fiber.
        for s in &shards {
            let cols = s.col_range.1 - s.col_range.0;
            assert_eq!(cols, 6 / p0);
            for (k, m) in s.factor_chunks.iter().enumerate() {
                let rows = s.factor_rows[k].1 - s.factor_rows[k].0;
                assert_eq!(m.len(), rows * cols);
            }
        }
    }

    #[test]
    fn matmul_shards_slab_the_right_mode() {
        let (x, factors) = setup(&[4, 6, 8], 2, 3);
        let refs: Vec<&Matrix> = factors.iter().collect();
        // n = 2 (the last mode): the slab must use mode 1.
        let shards = shard_matmul(&x, &refs, 2, 3);
        assert_eq!(shards.len(), 3);
        for s in &shards {
            assert_eq!(s.slab_mode, 1);
            assert_eq!(s.x_local.shape().dims(), &[4, 2, 8]);
            assert_eq!(s.local_factors[1].rows(), 2);
            assert_eq!(s.local_factors[0].rows(), 4);
        }
        let out_total: usize = shards.iter().map(|s| s.out_rows.1 - s.out_rows.0).sum();
        assert_eq!(out_total, 8);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn non_dividing_grid_rejected() {
        let (x, factors) = setup(&[5, 4, 4], 2, 4);
        let refs: Vec<&Matrix> = factors.iter().collect();
        let _ = shard_alg3(&x, &refs, 0, &[2, 2, 2]);
    }
}
