//! The instrumented message transport between ranks.
//!
//! Unlike the netsim [`mttkrp_netsim::Rank`] — whose job is to *count*
//! words on a simulated machine whose rank programs may freely read the
//! global operands — this transport is the communication fabric of a
//! runtime where each rank *owns* its shard and every remote word really
//! crosses a channel. Messages are typed packets tagged with the sending
//! rank and the [`Comm`] id (the same deterministic id the simulator
//! computes), and a per-rank reorder buffer preserves the per-(sender,
//! communicator) FIFO order MPI guarantees.
//!
//! Every send and receive is charged to the *current phase* of the rank's
//! [`TrafficLedger`] — the collective the runtime is executing — so a
//! finished run can be compared against the netsim-predicted
//! [`mttkrp_netsim::schedule::CommSchedule`] collective by collective, not
//! just in total.

use crossbeam::channel::{unbounded, Receiver, Sender};
use mttkrp_netsim::schedule::{sum_phase_traffic, Phase, PhaseTraffic};
use mttkrp_netsim::{Comm, CommStats};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// A typed message in flight: who sent it, on which communicator, and the
/// payload words. A `poison` packet carries no data — it tells the
/// receiver that the sending rank panicked, so blocking on further
/// messages is hopeless and the receiver must abort too.
struct Packet {
    from: usize,
    comm_id: u64,
    payload: Vec<f64>,
    poison: bool,
}

/// The shared wiring of the machine: one sender handle per rank.
struct Wiring {
    senders: Vec<Sender<Packet>>,
}

/// Measured per-collective traffic of one rank, accumulated by its
/// [`Endpoint`] as the run executes.
///
/// The ledger is a sequence of [`PhaseTraffic`] records in execution order
/// — the same vocabulary as the netsim schedule predictions, so a faithful
/// run satisfies `ledger.phases() == predicted.phases` exactly.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TrafficLedger {
    phases: Vec<PhaseTraffic>,
}

impl TrafficLedger {
    /// The per-collective records, in execution order.
    pub fn phases(&self) -> &[PhaseTraffic] {
        &self.phases
    }

    /// Sum over all phases — directly comparable to a netsim
    /// [`CommStats`], aggregated by the same
    /// [`sum_phase_traffic`] the schedule predictions use.
    pub fn totals(&self) -> CommStats {
        sum_phase_traffic(&self.phases)
    }

    fn open(&mut self, phase: Phase) {
        self.phases.push(PhaseTraffic {
            phase,
            words_sent: 0,
            words_received: 0,
            messages_sent: 0,
        });
    }

    fn current(&mut self) -> &mut PhaseTraffic {
        self.phases
            .last_mut()
            .expect("transport used outside a phase: call begin_phase first")
    }
}

/// One rank's handle onto the transport: its identity, mailbox, reorder
/// buffer, and traffic ledger. Created by [`wire`] and moved into the
/// rank's thread.
pub struct Endpoint {
    world_rank: usize,
    p: usize,
    wiring: Arc<Wiring>,
    receiver: Receiver<Packet>,
    pending: HashMap<(usize, u64), VecDeque<Vec<f64>>>,
    ledger: TrafficLedger,
}

/// Creates the wiring for `p` ranks and returns one [`Endpoint`] per rank,
/// indexed by world rank.
pub fn wire(p: usize) -> Vec<Endpoint> {
    assert!(p >= 1, "need at least one rank");
    let mut senders = Vec::with_capacity(p);
    let mut receivers = Vec::with_capacity(p);
    for _ in 0..p {
        let (s, r) = unbounded();
        senders.push(s);
        receivers.push(r);
    }
    let wiring = Arc::new(Wiring { senders });
    receivers
        .into_iter()
        .enumerate()
        .map(|(world_rank, receiver)| Endpoint {
            world_rank,
            p,
            wiring: Arc::clone(&wiring),
            receiver,
            pending: HashMap::new(),
            ledger: TrafficLedger::default(),
        })
        .collect()
}

impl Endpoint {
    /// This rank's world rank in `[0, P)`.
    pub fn world_rank(&self) -> usize {
        self.world_rank
    }

    /// Total number of ranks `P`.
    pub fn num_ranks(&self) -> usize {
        self.p
    }

    /// The world communicator.
    pub fn world(&self) -> Comm {
        Comm::world(self.p)
    }

    /// Opens a new ledger phase; subsequent traffic is charged to it.
    pub fn begin_phase(&mut self, phase: Phase) {
        self.ledger.open(phase);
    }

    /// The traffic recorded so far.
    pub fn ledger(&self) -> &TrafficLedger {
        &self.ledger
    }

    fn assert_member(&self, comm: &Comm) {
        assert!(
            comm.local_index(self.world_rank).is_some(),
            "rank {} is not a member of this communicator",
            self.world_rank
        );
    }

    /// Sends `data` to the rank with local index `dest` in `comm`,
    /// charging `data.len()` words to the current phase.
    pub fn send(&mut self, comm: &Comm, dest: usize, data: &[f64]) {
        self.assert_member(comm);
        let dest_world = comm.world_rank(dest);
        let t = self.ledger.current();
        t.words_sent += data.len() as u64;
        t.messages_sent += 1;
        self.wiring.senders[dest_world]
            .send(Packet {
                from: self.world_rank,
                comm_id: comm.id(),
                payload: data.to_vec(),
                poison: false,
            })
            .expect("transport closed unexpectedly");
    }

    /// Notifies every other rank that this rank is dying (panicked), so
    /// peers blocked in [`Endpoint::recv`] abort instead of waiting
    /// forever for messages that will never come. Called by the runtime's
    /// panic handler; the resulting peer panics chain transitively, so the
    /// whole machine winds down and the original panic can propagate.
    pub fn poison_all(&self) {
        for (dest, sender) in self.wiring.senders.iter().enumerate() {
            if dest == self.world_rank {
                continue;
            }
            // A dying peer may already be gone; ignore closed channels.
            let _ = sender.send(Packet {
                from: self.world_rank,
                comm_id: 0,
                payload: Vec::new(),
                poison: true,
            });
        }
    }

    /// Receives the next message from local rank `src` on `comm`
    /// (blocking), charging its length to the current phase.
    pub fn recv(&mut self, comm: &Comm, src: usize) -> Vec<f64> {
        self.assert_member(comm);
        let src_world = comm.world_rank(src);
        let key = (src_world, comm.id());
        loop {
            if let Some(queue) = self.pending.get_mut(&key) {
                if let Some(data) = queue.pop_front() {
                    self.ledger.current().words_received += data.len() as u64;
                    return data;
                }
            }
            let pkt = self
                .receiver
                .recv()
                .expect("transport closed while waiting for a message");
            assert!(
                !pkt.poison,
                "rank {} aborting: peer rank {} panicked mid-run",
                self.world_rank, pkt.from
            );
            self.pending
                .entry((pkt.from, pkt.comm_id))
                .or_default()
                .push_back(pkt.payload);
        }
    }

    /// Simultaneous exchange: send to `dest`, then receive from `src`
    /// (both local indices in `comm`). The unbounded mailboxes make the
    /// send non-blocking, so this cannot deadlock.
    pub fn sendrecv(&mut self, comm: &Comm, dest: usize, data: &[f64], src: usize) -> Vec<f64> {
        self.send(comm, dest, data);
        self.recv(comm, src)
    }

    /// Consumes the endpoint, asserting quiescence (no undelivered
    /// messages), and returns its ledger.
    pub fn finish(mut self) -> TrafficLedger {
        while let Ok(pkt) = self.receiver.try_recv() {
            // A poison from a dying peer after this rank already finished
            // its program is not a protocol violation of *this* rank; the
            // peer's own panic is already propagating.
            if pkt.poison {
                continue;
            }
            self.pending
                .entry((pkt.from, pkt.comm_id))
                .or_default()
                .push_back(pkt.payload);
        }
        let leftover: usize = self.pending.values().map(|q| q.len()).sum();
        assert_eq!(
            leftover, 0,
            "rank {} finished with {} unconsumed message(s)",
            self.world_rank, leftover
        );
        self.ledger
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_moves_data_and_charges_phase() {
        let mut eps = wire(2);
        let mut e1 = eps.pop().unwrap();
        let mut e0 = eps.pop().unwrap();
        let world = e0.world();
        e0.begin_phase(Phase::TensorAllGather);
        e1.begin_phase(Phase::TensorAllGather);
        e0.send(&world, 1, &[1.0, 2.0, 3.0]);
        assert_eq!(e1.recv(&world, 0), vec![1.0, 2.0, 3.0]);
        let l0 = e0.finish();
        let l1 = e1.finish();
        assert_eq!(l0.phases()[0].words_sent, 3);
        assert_eq!(l0.phases()[0].messages_sent, 1);
        assert_eq!(l1.phases()[0].words_received, 3);
        assert_eq!(l0.totals().words_sent, 3);
    }

    #[test]
    fn traffic_lands_in_the_open_phase() {
        let mut eps = wire(2);
        let mut e1 = eps.pop().unwrap();
        let mut e0 = eps.pop().unwrap();
        let world = e0.world();
        for phase in [
            Phase::FactorAllGather { mode: 0 },
            Phase::OutputReduceScatter,
        ] {
            e0.begin_phase(phase);
            e1.begin_phase(phase);
            e0.send(&world, 1, &[4.0]);
            let _ = e1.recv(&world, 0);
        }
        let l0 = e0.finish();
        let l1 = e1.finish();
        assert_eq!(l0.phases().len(), 2);
        assert_eq!(l0.phases()[0].phase, Phase::FactorAllGather { mode: 0 });
        assert_eq!(l0.phases()[0].words_sent, 1);
        assert_eq!(l0.phases()[1].phase, Phase::OutputReduceScatter);
        assert_eq!(l0.phases()[1].words_sent, 1);
        assert_eq!(l1.phases()[1].words_received, 1);
    }

    #[test]
    fn messages_on_different_comms_do_not_mix() {
        let mut eps = wire(2);
        let mut e1 = eps.pop().unwrap();
        let mut e0 = eps.pop().unwrap();
        let world = e0.world();
        let sub = Comm::subset(vec![0, 1], 99);
        e0.begin_phase(Phase::TensorAllGather);
        e1.begin_phase(Phase::TensorAllGather);
        e0.send(&world, 1, &[1.0]);
        e0.send(&sub, 1, &[2.0]);
        // Receive in the opposite order of sending: selection by comm works.
        assert_eq!(e1.recv(&sub, 0), vec![2.0]);
        assert_eq!(e1.recv(&world, 0), vec![1.0]);
        e0.finish();
        e1.finish();
    }

    #[test]
    #[should_panic(expected = "unconsumed")]
    fn quiescence_check_catches_leftovers() {
        let mut eps = wire(2);
        let e1 = eps.pop().unwrap();
        let mut e0 = eps.pop().unwrap();
        let world = e0.world();
        e0.begin_phase(Phase::TensorAllGather);
        e0.send(&world, 1, &[1.0]);
        e1.finish();
    }

    #[test]
    #[should_panic(expected = "outside a phase")]
    fn traffic_outside_a_phase_is_rejected() {
        let mut eps = wire(2);
        let _e1 = eps.pop().unwrap();
        let mut e0 = eps.pop().unwrap();
        let world = e0.world();
        e0.send(&world, 1, &[1.0]);
    }
}
