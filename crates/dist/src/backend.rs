//! `DistBackend`: the sharded runtime behind the `mttkrp-exec` seam.

use crate::layout::{shard_alg3, shard_alg4, shard_matmul};
use crate::runtime::{
    general_rank, matmul_rank, mttkrp_dist_general_on, mttkrp_dist_matmul_on,
    mttkrp_dist_stationary_on, stationary_rank, DistRun, OutputChunk, TransportKind,
};
use crate::transport::{TrafficLedger, Transport};
use mttkrp_core::par::{assemble_block_chunks, assemble_row_chunks};
use mttkrp_exec::{Algorithm, Backend, ExecCost, ExecReport, NativeBackend, Plan, TransportSpec};
use mttkrp_netsim::schedule::{self, CommSchedule};
use mttkrp_tensor::{DenseTensor, Matrix};

/// Executes parallel plans on the sharded multi-rank runtime: one thread
/// per rank, each owning its data block, with every remote word crossing
/// an instrumented transport.
///
/// The third [`Backend`] of the workspace, next to `mttkrp-exec`'s
/// `SimBackend` and `NativeBackend`. Distributed plans (Algorithms 3/4,
/// the parallel matmul baseline) run their real communication schedule; a
/// *sequential* plan (including the planner's no-clean-distribution
/// fallback) runs on a single node via the native shared-memory kernel,
/// exactly as `plan_and_execute` would run it.
///
/// The fabric follows the plan's machine: a
/// [`MachineSpec`](mttkrp_exec::MachineSpec) with
/// [`TransportSpec::Tcp`] runs the very same rank programs over loopback
/// TCP sockets instead of in-process channels (multi-*process* TCP runs
/// are driven per rank via [`run_plan_rank`]). Word counts, ledgers, and
/// the output bits are identical either way — that equality is what the
/// test suite asserts.
#[derive(Clone, Debug, Default)]
pub struct DistBackend {
    /// When set, overrides the plan's machine transport.
    force_transport: Option<TransportKind>,
}

/// A [`DistBackend`] execution report plus the measured per-rank,
/// per-collective traffic — what the tests compare against the netsim
/// schedule prediction.
#[derive(Debug)]
pub struct DistReport {
    /// The ordinary execution report (output, backend name, cost).
    pub report: ExecReport,
    /// Measured per-rank ledgers, indexed by world rank (empty for
    /// sequential plans, which communicate nothing).
    pub ledgers: Vec<TrafficLedger>,
}

impl DistBackend {
    /// A dist backend that wires whatever fabric the plan's machine names
    /// (in-process channels unless the machine says
    /// [`TransportSpec::Tcp`]).
    pub fn new() -> DistBackend {
        DistBackend {
            force_transport: None,
        }
    }

    /// A dist backend pinned to one fabric regardless of the plan.
    pub fn with_transport(kind: TransportKind) -> DistBackend {
        DistBackend {
            force_transport: Some(kind),
        }
    }

    /// The fabric this backend would use for `plan`.
    pub fn transport_for(&self, plan: &Plan) -> TransportKind {
        self.force_transport
            .unwrap_or(match plan.machine.transport {
                TransportSpec::InProcess => TransportKind::Channel,
                TransportSpec::Tcp => TransportKind::Tcp,
            })
    }

    /// The netsim-predicted communication schedule of `plan` — what a
    /// faithful execution must send, collective by collective. `None` for
    /// sequential plans (no communication).
    pub fn predicted_schedule(plan: &Plan) -> Option<CommSchedule> {
        let dims: Vec<usize> = plan.problem.dims.iter().map(|&d| d as usize).collect();
        let r = plan.problem.rank as usize;
        match &plan.algorithm {
            Algorithm::ParStationary { grid } => {
                Some(schedule::alg3_schedule(&dims, r, plan.mode, grid))
            }
            Algorithm::ParGeneral { p0, grid } => {
                Some(schedule::alg4_schedule(&dims, r, plan.mode, *p0, grid))
            }
            Algorithm::ParMatmul { procs } => {
                Some(schedule::par_matmul_schedule(&dims, r, plan.mode, *procs))
            }
            _ => None,
        }
    }

    /// Executes `plan` and returns the report together with the measured
    /// per-rank traffic ledgers.
    pub fn run_instrumented(
        &self,
        plan: &Plan,
        x: &DenseTensor,
        factors: &[&Matrix],
    ) -> DistReport {
        let n = plan.mode;
        let kind = self.transport_for(plan);
        let run: DistRun = match &plan.algorithm {
            Algorithm::ParStationary { grid } => {
                mttkrp_dist_stationary_on(kind, x, factors, n, grid)
            }
            Algorithm::ParGeneral { p0, grid } => {
                mttkrp_dist_general_on(kind, x, factors, n, *p0, grid)
            }
            Algorithm::ParMatmul { procs } => mttkrp_dist_matmul_on(kind, x, factors, n, *procs),
            seq => {
                // Sequential (single-node) plan: run the same native kernel
                // `plan_and_execute` would use, sized to the plan's machine.
                debug_assert!(seq.is_sequential());
                let native =
                    NativeBackend::new(plan.machine.threads, plan.machine.fast_memory_words);
                let mut report = native.execute(plan, x, factors);
                report.backend = "dist";
                return DistReport {
                    report,
                    ledgers: Vec::new(),
                };
            }
        };
        let cost = ExecCost::ParComm {
            max_recv_words: run.max_recv_words(),
            max_sent_words: run.max_sent_words(),
            total_words: run.summary.total_words,
            ranks: run.stats.len(),
        };
        record_collectives(plan, &run.ledgers);
        DistReport {
            report: ExecReport {
                output: run.output,
                backend: "dist",
                cost,
            },
            ledgers: run.ledgers,
        }
    }
}

/// Emits one `collective` span per (rank, phase) of a finished distributed
/// run, tagging each with the words the transport *measured* and the words
/// [`DistBackend::predicted_schedule`] — the paper's Eq. 12/14/18 cost
/// model — says the rank should have moved. These spans are what
/// `mttkrp_obs::DriftReport::from_spans` pairs up for the drift gate.
///
/// The spans are emitted after the rank threads have joined (the ledgers
/// only exist then), so they carry no duration; they nest under whatever
/// span the calling thread has open — the `kernel` span, in the normal
/// [`Backend::execute`] path. Free when tracing is disabled.
pub fn record_collectives(plan: &Plan, ledgers: &[TrafficLedger]) {
    if !mttkrp_obs::enabled() || ledgers.is_empty() {
        return;
    }
    let predicted = DistBackend::predicted_schedule(plan);
    for (rank, ledger) in ledgers.iter().enumerate() {
        let modeled: &[schedule::PhaseTraffic] = predicted
            .as_ref()
            .and_then(|p| p.ranks.get(rank))
            .map(|r| r.phases.as_slice())
            .unwrap_or(&[]);
        for (i, measured) in ledger.phases().iter().enumerate() {
            let mut span = mttkrp_obs::span("collective");
            if span.is_active() {
                span.record("phase", measured.phase.to_string());
                span.record("rank", rank);
                span.record("measured_sent", measured.words_sent);
                span.record("measured_recv", measured.words_received);
                span.record("messages", measured.messages_sent);
                if let Some(m) = modeled.get(i) {
                    span.record("modeled_sent", m.words_sent);
                    span.record("modeled_recv", m.words_received);
                }
            }
            mttkrp_obs::counter_add("dist.words_measured", measured.words_sent);
            if let Some(m) = modeled.get(i) {
                mttkrp_obs::counter_add("dist.words_modeled", m.words_sent);
            }
        }
    }
}

impl Backend for DistBackend {
    fn name(&self) -> &'static str {
        "dist"
    }

    fn execute(&self, plan: &Plan, x: &DenseTensor, factors: &[&Matrix]) -> ExecReport {
        self.run_instrumented(plan, x, factors).report
    }
}

// ---------------------------------------------------------------------------
// Single-rank plan execution (one rank of a multi-process machine)
// ---------------------------------------------------------------------------

/// Runs world rank `ep.world_rank()`'s program of `plan` on an already
/// connected transport, sharding the rank's block locally from the global
/// operands, and returns this rank's output chunk and measured ledger.
///
/// This is the per-process entry point of a multi-node run: every process
/// regenerates the (deterministic) operands, takes its own shard, and
/// drives the *identical* rank program the in-process runtime executes.
/// The launcher collects the chunks with [`assemble_plan_output`] and
/// checks the ledgers against [`DistBackend::predicted_schedule`].
///
/// Panics if `plan` is sequential (there is no rank program to run).
pub fn run_plan_rank<T: Transport>(
    plan: &Plan,
    x: &DenseTensor,
    factors: &[&Matrix],
    mut ep: T,
) -> (OutputChunk, TrafficLedger) {
    let n = plan.mode;
    let r = plan.problem.rank as usize;
    let me = mttkrp_netsim::collectives::PeerExchange::world_rank(&ep);
    let chunk = match &plan.algorithm {
        Algorithm::ParStationary { grid } => {
            let shard = shard_alg3(x, factors, n, grid).swap_remove(me);
            OutputChunk::Row(stationary_rank(shard, grid, n, r, &mut ep))
        }
        Algorithm::ParGeneral { p0, grid } => {
            let shard = shard_alg4(x, factors, n, *p0, grid).swap_remove(me);
            OutputChunk::Block(general_rank(shard, *p0, grid, n, r, &mut ep))
        }
        Algorithm::ParMatmul { procs } => {
            let shard = shard_matmul(x, factors, n, *procs).swap_remove(me);
            let i_n = x.shape().dim(n);
            OutputChunk::Row(matmul_rank(shard, *procs, n, r, i_n, &mut ep))
        }
        seq => panic!("run_plan_rank needs a distributed plan, got {seq}"),
    };
    (chunk, ep.finish())
}

/// Assembles the per-rank output chunks of a distributed `plan` (in world
/// rank order) into the global `I_n x R` output — the same assemblers the
/// in-process runtime and the simulator use.
pub fn assemble_plan_output(plan: &Plan, chunks: &[OutputChunk]) -> Matrix {
    let i_n = plan.problem.dims[plan.mode] as usize;
    let r = plan.problem.rank as usize;
    let rows: Vec<_> = chunks
        .iter()
        .filter_map(|c| match c {
            OutputChunk::Row(rc) => Some(rc.clone()),
            OutputChunk::Block(_) => None,
        })
        .collect();
    let blocks: Vec<_> = chunks
        .iter()
        .filter_map(|c| match c {
            OutputChunk::Block(bc) => Some(bc.clone()),
            OutputChunk::Row(_) => None,
        })
        .collect();
    assert!(
        rows.is_empty() || blocks.is_empty(),
        "chunks of one run are all rows or all blocks"
    );
    if blocks.is_empty() {
        assemble_row_chunks(i_n, r, &rows)
    } else {
        assemble_block_chunks(i_n, r, &blocks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mttkrp_exec::{MachineSpec, Planner, SimBackend};
    use mttkrp_tensor::{mttkrp_reference, Shape};

    fn setup(dims: &[usize], r: usize, seed: u64) -> (DenseTensor, Vec<Matrix>) {
        let shape = Shape::new(dims);
        let x = DenseTensor::random(shape.clone(), seed);
        let factors = dims
            .iter()
            .enumerate()
            .map(|(k, &d)| Matrix::random(d, r, seed + 90 + k as u64))
            .collect();
        (x, factors)
    }

    #[test]
    fn dist_backend_bitwise_matches_sim_backend() {
        let (x, factors) = setup(&[8, 8, 8], 4, 1);
        let refs: Vec<&Matrix> = factors.iter().collect();
        let problem = mttkrp_core::Problem::from_shape(x.shape(), 4);
        for ranks in [2usize, 4, 8] {
            let plan = Planner::new(MachineSpec::distributed(ranks)).plan_executable(&problem, 0);
            let dist = DistBackend::new().execute(&plan, &x, &refs);
            let sim = SimBackend::new().execute(&plan, &x, &refs);
            assert_eq!(dist.output.data(), sim.output.data(), "P = {ranks}");
            assert_eq!(dist.backend, "dist");
            match (&dist.cost, &sim.cost) {
                (
                    ExecCost::ParComm {
                        max_recv_words: d, ..
                    },
                    ExecCost::ParComm {
                        max_recv_words: s, ..
                    },
                ) => assert_eq!(d, s),
                other => panic!("expected ParComm costs, got {other:?}"),
            }
        }
    }

    #[test]
    fn tcp_machine_runs_the_same_plan_bitwise() {
        let (x, factors) = setup(&[8, 8, 8], 4, 4);
        let refs: Vec<&Matrix> = factors.iter().collect();
        let problem = mttkrp_core::Problem::from_shape(x.shape(), 4);
        let tcp_machine = MachineSpec::cluster(4, 1, 1 << 16).with_transport(TransportSpec::Tcp);
        let plan = Planner::new(tcp_machine).plan_executable(&problem, 0);
        assert!(plan.explain().contains("transport: tcp sockets"));

        let backend = DistBackend::new();
        assert_eq!(backend.transport_for(&plan), TransportKind::Tcp);
        let tcp = backend.run_instrumented(&plan, &x, &refs);
        let chan =
            DistBackend::with_transport(TransportKind::Channel).run_instrumented(&plan, &x, &refs);
        assert_eq!(tcp.report.output.data(), chan.report.output.data());
        assert_eq!(tcp.ledgers, chan.ledgers);
        let predicted = DistBackend::predicted_schedule(&plan).unwrap();
        for (me, ledger) in tcp.ledgers.iter().enumerate() {
            assert!(
                ledger.matches(&predicted.ranks[me].phases),
                "rank {me}:\n{}",
                ledger.diff_table(&predicted.ranks[me].phases)
            );
        }
    }

    #[test]
    fn measured_ledger_matches_predicted_schedule() {
        let (x, factors) = setup(&[8, 8, 8], 8, 2);
        let refs: Vec<&Matrix> = factors.iter().collect();
        let problem = mttkrp_core::Problem::from_shape(x.shape(), 8);
        let plan = Planner::new(MachineSpec::distributed(8)).plan_executable(&problem, 1);
        let out = DistBackend::new().run_instrumented(&plan, &x, &refs);
        let predicted = DistBackend::predicted_schedule(&plan).expect("parallel plan");
        assert_eq!(out.ledgers.len(), predicted.num_ranks());
        for (me, ledger) in out.ledgers.iter().enumerate() {
            assert!(
                ledger.matches(&predicted.ranks[me].phases),
                "rank {me}:\n{}",
                ledger.diff_table(&predicted.ranks[me].phases)
            );
        }
    }

    #[test]
    fn sequential_plan_runs_on_one_node() {
        let (x, factors) = setup(&[6, 5, 4], 3, 3);
        let refs: Vec<&Matrix> = factors.iter().collect();
        let problem = mttkrp_core::Problem::from_shape(x.shape(), 3);
        let plan = Planner::new(MachineSpec::sequential(256)).plan(&problem, 0);
        let out = DistBackend::new().run_instrumented(&plan, &x, &refs);
        assert!(out.ledgers.is_empty());
        assert_eq!(out.report.backend, "dist");
        let oracle = mttkrp_reference(&x, &refs, 0);
        assert!(out.report.output.max_abs_diff(&oracle) < 1e-12);
    }

    #[test]
    fn run_plan_rank_drives_one_rank_per_transport() {
        use crate::transport::TcpTransport;
        let (x, factors) = setup(&[8, 8, 8], 4, 7);
        let refs: Vec<&Matrix> = factors.iter().collect();
        let problem = mttkrp_core::Problem::from_shape(x.shape(), 4);
        let plan = Planner::new(MachineSpec::cluster(4, 1, 1 << 16)).plan_executable(&problem, 0);
        assert!(!plan.algorithm.is_sequential());

        // Run each rank's program on its own TCP transport — the exact
        // shape of a multi-process run, compressed into threads.
        let eps = TcpTransport::wire_loopback(4, std::time::Duration::from_secs(30)).unwrap();
        let mut results: Vec<(usize, OutputChunk, TrafficLedger)> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for ep in eps {
                let (plan, x, refs) = (&plan, &x, &refs);
                handles.push(scope.spawn(move || {
                    let me = ep.world_rank();
                    let (chunk, ledger) = run_plan_rank(plan, x, refs, ep);
                    (me, chunk, ledger)
                }));
            }
            for h in handles {
                results.push(h.join().unwrap());
            }
        });
        results.sort_by_key(|(me, ..)| *me);
        let chunks: Vec<OutputChunk> = results.iter().map(|(_, c, _)| c.clone()).collect();
        let output = assemble_plan_output(&plan, &chunks);

        // Bitwise equal to the whole-machine in-process run...
        let whole = DistBackend::new().run_instrumented(&plan, &x, &refs);
        assert_eq!(output.data(), whole.report.output.data());
        // ...and every rank's ledger word-exact against the schedule.
        let predicted = DistBackend::predicted_schedule(&plan).unwrap();
        for (me, _, ledger) in &results {
            assert!(
                ledger.matches(&predicted.ranks[*me].phases),
                "rank {me}:\n{}",
                ledger.diff_table(&predicted.ranks[*me].phases)
            );
        }
    }
}
