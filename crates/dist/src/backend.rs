//! `DistBackend`: the sharded runtime behind the `mttkrp-exec` seam.

use crate::runtime::{mttkrp_dist_general, mttkrp_dist_matmul, mttkrp_dist_stationary, DistRun};
use crate::transport::TrafficLedger;
use mttkrp_exec::{Algorithm, Backend, ExecCost, ExecReport, NativeBackend, Plan};
use mttkrp_netsim::schedule::{self, CommSchedule};
use mttkrp_tensor::{DenseTensor, Matrix};

/// Executes parallel plans on the sharded multi-rank runtime: one thread
/// per rank, each owning its data block, with every remote word crossing
/// the instrumented transport.
///
/// The third [`Backend`] of the workspace, next to `mttkrp-exec`'s
/// `SimBackend` and `NativeBackend`. Distributed plans (Algorithms 3/4,
/// the parallel matmul baseline) run their real communication schedule; a
/// *sequential* plan (including the planner's no-clean-distribution
/// fallback) runs on a single node via the native shared-memory kernel,
/// exactly as `plan_and_execute` would run it.
#[derive(Clone, Debug, Default)]
pub struct DistBackend;

/// A [`DistBackend`] execution report plus the measured per-rank,
/// per-collective traffic — what the tests compare against the netsim
/// schedule prediction.
#[derive(Debug)]
pub struct DistReport {
    /// The ordinary execution report (output, backend name, cost).
    pub report: ExecReport,
    /// Measured per-rank ledgers, indexed by world rank (empty for
    /// sequential plans, which communicate nothing).
    pub ledgers: Vec<TrafficLedger>,
}

impl DistBackend {
    /// A dist backend (stateless; all state lives in the plan).
    pub fn new() -> DistBackend {
        DistBackend
    }

    /// The netsim-predicted communication schedule of `plan` — what a
    /// faithful execution must send, collective by collective. `None` for
    /// sequential plans (no communication).
    pub fn predicted_schedule(plan: &Plan) -> Option<CommSchedule> {
        let dims: Vec<usize> = plan.problem.dims.iter().map(|&d| d as usize).collect();
        let r = plan.problem.rank as usize;
        match &plan.algorithm {
            Algorithm::ParStationary { grid } => {
                Some(schedule::alg3_schedule(&dims, r, plan.mode, grid))
            }
            Algorithm::ParGeneral { p0, grid } => {
                Some(schedule::alg4_schedule(&dims, r, plan.mode, *p0, grid))
            }
            Algorithm::ParMatmul { procs } => {
                Some(schedule::par_matmul_schedule(&dims, r, plan.mode, *procs))
            }
            _ => None,
        }
    }

    /// Executes `plan` and returns the report together with the measured
    /// per-rank traffic ledgers.
    pub fn run_instrumented(
        &self,
        plan: &Plan,
        x: &DenseTensor,
        factors: &[&Matrix],
    ) -> DistReport {
        let n = plan.mode;
        let run: DistRun = match &plan.algorithm {
            Algorithm::ParStationary { grid } => mttkrp_dist_stationary(x, factors, n, grid),
            Algorithm::ParGeneral { p0, grid } => mttkrp_dist_general(x, factors, n, *p0, grid),
            Algorithm::ParMatmul { procs } => mttkrp_dist_matmul(x, factors, n, *procs),
            seq => {
                // Sequential (single-node) plan: run the same native kernel
                // `plan_and_execute` would use, sized to the plan's machine.
                debug_assert!(seq.is_sequential());
                let native =
                    NativeBackend::new(plan.machine.threads, plan.machine.fast_memory_words);
                let mut report = native.execute(plan, x, factors);
                report.backend = "dist";
                return DistReport {
                    report,
                    ledgers: Vec::new(),
                };
            }
        };
        let cost = ExecCost::ParComm {
            max_recv_words: run.max_recv_words(),
            max_sent_words: run.max_sent_words(),
            total_words: run.summary.total_words,
            ranks: run.stats.len(),
        };
        DistReport {
            report: ExecReport {
                output: run.output,
                backend: "dist",
                cost,
            },
            ledgers: run.ledgers,
        }
    }
}

impl Backend for DistBackend {
    fn name(&self) -> &'static str {
        "dist"
    }

    fn execute(&self, plan: &Plan, x: &DenseTensor, factors: &[&Matrix]) -> ExecReport {
        self.run_instrumented(plan, x, factors).report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mttkrp_exec::{MachineSpec, Planner, SimBackend};
    use mttkrp_tensor::{mttkrp_reference, Shape};

    fn setup(dims: &[usize], r: usize, seed: u64) -> (DenseTensor, Vec<Matrix>) {
        let shape = Shape::new(dims);
        let x = DenseTensor::random(shape.clone(), seed);
        let factors = dims
            .iter()
            .enumerate()
            .map(|(k, &d)| Matrix::random(d, r, seed + 90 + k as u64))
            .collect();
        (x, factors)
    }

    #[test]
    fn dist_backend_bitwise_matches_sim_backend() {
        let (x, factors) = setup(&[8, 8, 8], 4, 1);
        let refs: Vec<&Matrix> = factors.iter().collect();
        let problem = mttkrp_core::Problem::from_shape(x.shape(), 4);
        for ranks in [2usize, 4, 8] {
            let plan = Planner::new(MachineSpec::distributed(ranks)).plan_executable(&problem, 0);
            let dist = DistBackend::new().execute(&plan, &x, &refs);
            let sim = SimBackend::new().execute(&plan, &x, &refs);
            assert_eq!(dist.output.data(), sim.output.data(), "P = {ranks}");
            assert_eq!(dist.backend, "dist");
            match (&dist.cost, &sim.cost) {
                (
                    ExecCost::ParComm {
                        max_recv_words: d, ..
                    },
                    ExecCost::ParComm {
                        max_recv_words: s, ..
                    },
                ) => assert_eq!(d, s),
                other => panic!("expected ParComm costs, got {other:?}"),
            }
        }
    }

    #[test]
    fn measured_ledger_matches_predicted_schedule() {
        let (x, factors) = setup(&[8, 8, 8], 8, 2);
        let refs: Vec<&Matrix> = factors.iter().collect();
        let problem = mttkrp_core::Problem::from_shape(x.shape(), 8);
        let plan = Planner::new(MachineSpec::distributed(8)).plan_executable(&problem, 1);
        let out = DistBackend::new().run_instrumented(&plan, &x, &refs);
        let predicted = DistBackend::predicted_schedule(&plan).expect("parallel plan");
        assert_eq!(out.ledgers.len(), predicted.num_ranks());
        for (me, ledger) in out.ledgers.iter().enumerate() {
            assert_eq!(
                ledger.phases(),
                &predicted.ranks[me].phases[..],
                "rank {me}"
            );
        }
    }

    #[test]
    fn sequential_plan_runs_on_one_node() {
        let (x, factors) = setup(&[6, 5, 4], 3, 3);
        let refs: Vec<&Matrix> = factors.iter().collect();
        let problem = mttkrp_core::Problem::from_shape(x.shape(), 3);
        let plan = Planner::new(MachineSpec::sequential(256)).plan(&problem, 0);
        let out = DistBackend::new().run_instrumented(&plan, &x, &refs);
        assert!(out.ledgers.is_empty());
        assert_eq!(out.report.backend, "dist");
        let oracle = mttkrp_reference(&x, &refs, 0);
        assert!(out.report.output.max_abs_diff(&oracle) < 1e-12);
    }
}
