//! Ring collectives over the instrumented transports.
//!
//! There is exactly **one** implementation of the ring algorithms — the
//! generic [`mttkrp_netsim::collectives`] rings, parameterized by the
//! [`PeerExchange`](mttkrp_netsim::collectives::PeerExchange) transport
//! trait. Every dist [`Transport`] (channel endpoints and TCP sockets
//! alike) is a `PeerExchange`, so this module only re-exposes the
//! collectives under this crate's names: the bitwise-identity contract
//! between a real run and the simulator (same block routing, same
//! deterministic reduction order) is structural — there is no second copy
//! to drift, on either fabric.
//!
//! All collectives must be called by every member of the communicator
//! (SPMD); block sizes may be uneven.

use crate::transport::Transport;
use mttkrp_netsim::collectives;
use mttkrp_netsim::Comm;

/// Ring All-Gather: every rank contributes `local`; returns the
/// concatenation of all contributions in local-index order. The shared
/// ring of [`mttkrp_netsim::collectives::all_gather`], moving real words
/// through the instrumented transport.
pub fn all_gather<T: Transport>(ep: &mut T, comm: &Comm, local: &[f64]) -> Vec<f64> {
    collectives::all_gather(ep, comm, local)
}

/// Ring Reduce-Scatter: `data` is the concatenation of `q` segments with
/// lengths `counts[0..q]` (in local-index order); every rank contributes a
/// full copy of `data`, and rank `i` returns the element-wise sum of all
/// contributions restricted to segment `i`. The shared ring of
/// [`mttkrp_netsim::collectives::reduce_scatter`]; its deterministic
/// reduction order makes results bitwise reproducible across runs *and*
/// across backends — and across transports.
pub fn reduce_scatter<T: Transport>(
    ep: &mut T,
    comm: &Comm,
    data: &[f64],
    counts: &[usize],
) -> Vec<f64> {
    collectives::reduce_scatter(ep, comm, data, counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{Endpoint, TcpTransport, TrafficLedger};
    use mttkrp_netsim::schedule::{all_gather_traffic, reduce_scatter_traffic, Phase};
    use mttkrp_netsim::{collectives as simc, SimMachine};
    use std::time::Duration;

    /// Runs `program` SPMD over `p` dist ranks of either fabric and
    /// collects outputs and ledgers — the test-side analogue of
    /// `SimMachine::run`, sharing the runtime's panic-safe rank driver.
    fn run_dist<T: Transport + 'static, O: Send>(
        endpoints: Vec<T>,
        program: impl Fn(&mut T) -> O + Send + Sync,
    ) -> Vec<(O, TrafficLedger)> {
        let (outs, ledgers) = crate::runtime::run_spmd(endpoints, program);
        outs.into_iter().zip(ledgers).collect()
    }

    fn channel_eps(p: usize) -> Vec<Endpoint> {
        crate::transport::wire(p)
    }

    fn tcp_eps(p: usize) -> Vec<TcpTransport> {
        TcpTransport::wire_loopback(p, Duration::from_secs(30)).expect("loopback wiring")
    }

    #[test]
    fn all_gather_bitwise_matches_netsim_on_both_transports() {
        let p = 4;
        let mk_local = |me: usize| -> Vec<f64> {
            (0..=me).map(|i| 0.1 + (me * 10 + i) as f64 / 7.0).collect()
        };
        let sim = SimMachine::new(p).run(|rank| {
            let world = rank.world();
            simc::all_gather(rank, &world, &mk_local(rank.world_rank()))
        });
        let check = |dist: Vec<(Vec<f64>, TrafficLedger)>| {
            for (me, (out, ledger)) in dist.iter().enumerate() {
                assert_eq!(out, &sim.outputs[me], "rank {me} output");
                let t = ledger.totals();
                assert_eq!(t.words_sent, sim.stats[me].words_sent);
                assert_eq!(t.words_received, sim.stats[me].words_received);
                assert_eq!(t.messages_sent, sim.stats[me].messages_sent);
            }
        };
        check(run_dist(channel_eps(p), |ep| {
            ep.begin_phase(Phase::TensorAllGather);
            let world = ep.world();
            let local = mk_local(ep.world_rank());
            all_gather(ep, &world, &local)
        }));
        check(run_dist(tcp_eps(p), |ep| {
            ep.begin_phase(Phase::TensorAllGather);
            let world = ep.world();
            let local = mk_local(ep.world_rank());
            all_gather(ep, &world, &local)
        }));
    }

    #[test]
    fn reduce_scatter_bitwise_matches_netsim_on_both_transports() {
        let p = 5;
        let counts = [2usize, 1, 3, 2, 1];
        let total: usize = counts.iter().sum();
        let mk_data = |me: usize| -> Vec<f64> {
            (0..total)
                .map(|i| ((me + 1) * (i + 3)) as f64 / 9.0)
                .collect()
        };
        let sim = SimMachine::new(p).run(|rank| {
            let world = rank.world();
            simc::reduce_scatter(rank, &world, &mk_data(rank.world_rank()), &counts)
        });
        let check = |dist: Vec<(Vec<f64>, TrafficLedger)>| {
            for (me, (out, ledger)) in dist.iter().enumerate() {
                // Bitwise: the ring reduction order is identical.
                assert_eq!(out, &sim.outputs[me], "rank {me} output");
                assert_eq!(ledger.totals().words_sent, sim.stats[me].words_sent);
            }
        };
        check(run_dist(channel_eps(p), |ep| {
            ep.begin_phase(Phase::OutputReduceScatter);
            let world = ep.world();
            let data = mk_data(ep.world_rank());
            reduce_scatter(ep, &world, &data, &counts)
        }));
        check(run_dist(tcp_eps(p), |ep| {
            ep.begin_phase(Phase::OutputReduceScatter);
            let world = ep.world();
            let data = mk_data(ep.world_rank());
            reduce_scatter(ep, &world, &data, &counts)
        }));
    }

    #[test]
    fn measured_traffic_matches_schedule_prediction() {
        let p = 4;
        let sizes = [3usize, 1, 4, 2];
        let dist = run_dist(channel_eps(p), |ep| {
            let me = ep.world_rank();
            let world = ep.world();
            ep.begin_phase(Phase::FactorAllGather { mode: 1 });
            let gathered = all_gather(ep, &world, &vec![1.0; sizes[me]]);
            ep.begin_phase(Phase::OutputReduceScatter);
            reduce_scatter(ep, &world, &gathered, &sizes)
        });
        for (me, (_, ledger)) in dist.iter().enumerate() {
            let expect = [
                all_gather_traffic(Phase::FactorAllGather { mode: 1 }, &sizes, me),
                reduce_scatter_traffic(Phase::OutputReduceScatter, &sizes, me),
            ];
            assert!(
                ledger.matches(&expect),
                "rank {me}:\n{}",
                ledger.diff_table(&expect)
            );
        }
    }

    #[test]
    fn singleton_collectives_move_nothing() {
        let dist = run_dist(channel_eps(1), |ep| {
            let world = ep.world();
            ep.begin_phase(Phase::TensorAllGather);
            let g = all_gather(ep, &world, &[1.0, 2.0]);
            ep.begin_phase(Phase::OutputReduceScatter);
            let r = reduce_scatter(ep, &world, &[3.0, 4.0], &[2]);
            (g, r)
        });
        let ((g, r), ledger) = &dist[0];
        assert_eq!(g, &[1.0, 2.0]);
        assert_eq!(r, &[3.0, 4.0]);
        assert_eq!(ledger.totals().words_sent, 0);
        assert_eq!(ledger.totals().messages_sent, 0);
    }
}
