//! # mttkrp-dist
//!
//! A sharded multi-rank MTTKRP runtime that executes the paper's parallel
//! communication schedules *for real*. Where `mttkrp-core::par` runs
//! Algorithms 3/4 on the netsim word-counting simulator (rank closures
//! that may read the global operands), this crate makes the distribution
//! physical:
//!
//! - **[`layout`]** cuts the tensor and factor matrices into per-rank
//!   shards following the paper's data distributions over the
//!   [`mttkrp_netsim::ProcessorGrid`] layout — each rank thread *owns* its
//!   block, and nothing else;
//! - **[`transport`]** is the message fabric between ranks: typed packets
//!   over channels, tagged with the same deterministic communicator ids
//!   the simulator computes, instrumented with a per-collective
//!   [`TrafficLedger`];
//! - **[`collectives`]** are the ring All-Gather / Reduce-Scatter — the
//!   *same* generic implementation as [`mttkrp_netsim::collectives`]
//!   (via its `PeerExchange` transport trait), so identical block routing
//!   and reduction order are structural, not merely tested;
//! - **[`runtime`]** spawns one thread per rank, runs the schedule, and
//!   assembles the output chunks with the simulator's own assemblers;
//! - **[`DistBackend`]** plugs all of it into the `mttkrp-exec` seam as a
//!   third [`Backend`](mttkrp_exec::Backend).
//!
//! Two properties are asserted by the test suite, not just claimed:
//!
//! 1. a dist run is **bitwise identical** to the simulator replaying the
//!    same plan (and therefore within 1e-10 of the sequential oracle);
//! 2. each rank's measured traffic equals the netsim-predicted
//!    [`CommSchedule`](mttkrp_netsim::schedule::CommSchedule) **collective
//!    by collective**.
//!
//! ```
//! use mttkrp_core::Problem;
//! use mttkrp_dist::DistBackend;
//! use mttkrp_exec::{Backend, MachineSpec, Planner};
//! use mttkrp_tensor::{DenseTensor, Matrix, Shape};
//!
//! let shape = Shape::new(&[8, 8, 8]);
//! let x = DenseTensor::random(shape.clone(), 1);
//! let factors: Vec<Matrix> = (0..3).map(|k| Matrix::random(8, 4, k)).collect();
//! let refs: Vec<&Matrix> = factors.iter().collect();
//!
//! // Plan for a 4-rank machine, execute for real, check the traffic.
//! let plan = Planner::new(MachineSpec::cluster(4, 1, 1 << 16))
//!     .plan_executable(&Problem::from_shape(&shape, 4), 0);
//! let out = DistBackend::new().run_instrumented(&plan, &x, &refs);
//! let predicted = DistBackend::predicted_schedule(&plan).unwrap();
//! for (ledger, rank) in out.ledgers.iter().zip(&predicted.ranks) {
//!     assert_eq!(ledger.phases(), &rank.phases[..]);
//! }
//! ```
//!
//! The ranks are OS threads exchanging owned buffers over channels — the
//! node boundary is the [`transport::Endpoint`] API, so swapping channels
//! for sockets changes the wiring, not the algorithms (tracked in
//! ROADMAP.md).

#![deny(missing_docs)]

pub mod backend;
pub mod collectives;
pub mod layout;
pub mod runtime;
pub mod transport;

pub use backend::{DistBackend, DistReport};
pub use runtime::{mttkrp_dist_general, mttkrp_dist_matmul, mttkrp_dist_stationary, DistRun};
pub use transport::{wire, Endpoint, TrafficLedger};
