//! # mttkrp-dist
//!
//! A sharded multi-rank MTTKRP runtime that executes the paper's parallel
//! communication schedules *for real*. Where `mttkrp-core::par` runs
//! Algorithms 3/4 on the netsim word-counting simulator (rank closures
//! that may read the global operands), this crate makes the distribution
//! physical:
//!
//! - **[`layout`]** cuts the tensor and factor matrices into per-rank
//!   shards following the paper's data distributions over the
//!   [`mttkrp_netsim::ProcessorGrid`] layout — each rank *owns* its
//!   block, and nothing else;
//! - **[`transport`]** is the message fabric between ranks, behind the
//!   [`Transport`] trait with two implementations: typed packets over
//!   in-process channels ([`transport::channel`]) and length-prefixed
//!   binary frames over TCP sockets ([`transport::tcp`], wire format in
//!   [`mod@transport::wire`]) — both tagged with the same deterministic
//!   communicator ids the simulator computes, both instrumented with a
//!   per-collective [`TrafficLedger`];
//! - **[`collectives`]** are the ring All-Gather / Reduce-Scatter — the
//!   *same* generic implementation as [`mttkrp_netsim::collectives`]
//!   (via its `PeerExchange` transport trait), so identical block routing
//!   and reduction order are structural, not merely tested;
//! - **[`runtime`]** runs the schedule — one thread per rank in-process
//!   ([`runtime::run_spmd`]), or one *process* per rank driven through
//!   [`backend::run_plan_rank`] — and assembles the output chunks with
//!   the simulator's own assemblers;
//! - **[`DistBackend`]** plugs all of it into the `mttkrp-exec` seam as a
//!   third [`Backend`](mttkrp_exec::Backend), honoring the machine's
//!   [`TransportSpec`](mttkrp_exec::TransportSpec).
//!
//! Two properties are asserted by the test suite — per transport, not
//! just for channels:
//!
//! 1. a dist run is **bitwise identical** to the simulator replaying the
//!    same plan (and therefore within 1e-10 of the sequential oracle);
//! 2. each rank's measured traffic equals the netsim-predicted
//!    [`CommSchedule`](mttkrp_netsim::schedule::CommSchedule) **collective
//!    by collective** — over loopback TCP exactly as over channels.
//!
//! ```
//! use mttkrp_core::Problem;
//! use mttkrp_dist::DistBackend;
//! use mttkrp_exec::{Backend, MachineSpec, Planner, TransportSpec};
//! use mttkrp_tensor::{DenseTensor, Matrix, Shape};
//!
//! let shape = Shape::new(&[8, 8, 8]);
//! let x = DenseTensor::random(shape.clone(), 1);
//! let factors: Vec<Matrix> = (0..3).map(|k| Matrix::random(8, 4, k)).collect();
//! let refs: Vec<&Matrix> = factors.iter().collect();
//!
//! // Plan for a 4-rank TCP machine, execute for real over loopback
//! // sockets, check the traffic collective by collective.
//! let machine = MachineSpec::cluster(4, 1, 1 << 16).with_transport(TransportSpec::Tcp);
//! let plan = Planner::new(machine).plan_executable(&Problem::from_shape(&shape, 4), 0);
//! let out = DistBackend::new().run_instrumented(&plan, &x, &refs);
//! let predicted = DistBackend::predicted_schedule(&plan).unwrap();
//! for (ledger, rank) in out.ledgers.iter().zip(&predicted.ranks) {
//!     assert!(ledger.matches(&rank.phases), "{}", ledger.diff_table(&rank.phases));
//! }
//! ```
//!
//! The node boundary is the [`Transport`] trait: in-process ranks and
//! real processes on real machines run the identical rank programs — the
//! multi-process launcher lives in the `mttkrp_cli dist --transport tcp`
//! subcommand of `mttkrp-bench`.

#![deny(missing_docs)]

pub mod backend;
pub mod collectives;
pub mod layout;
pub mod runtime;
pub mod transport;

pub use backend::{
    assemble_plan_output, record_collectives, run_plan_rank, DistBackend, DistReport,
};
pub use runtime::{
    mttkrp_dist_general, mttkrp_dist_general_on, mttkrp_dist_matmul, mttkrp_dist_matmul_on,
    mttkrp_dist_stationary, mttkrp_dist_stationary_on, run_spmd, DistRun, OutputChunk,
    TransportKind,
};
pub use transport::{wire, Endpoint, TcpConfig, TcpTransport, TrafficLedger, Transport};
