//! The sharded runtime: `P` ranks executing the paper's parallel MTTKRP
//! algorithms over an instrumented [`Transport`].
//!
//! Each entry point shards the operands ([`crate::layout`]), hands one
//! shard to each rank, runs the algorithm's communication schedule with
//! the real ring collectives ([`crate::collectives`]), and assembles the
//! per-rank output chunks with the same assemblers the simulator uses.
//! The rank programs are generic over the transport — the channel fabric
//! and loopback TCP run the *identical* code — so the two invariants hold
//! on every fabric: the assembled output is **bitwise identical** to
//! [`mttkrp_core::par`]'s simulated runs, and the measured per-rank
//! traffic equals the predicted
//! [`mttkrp_netsim::schedule::CommSchedule`] collective by collective.
//!
//! In-process, ranks are OS threads ([`run_spmd`]); across processes, a
//! launcher runs one rank program per process (see
//! [`crate::backend::run_plan_rank`]) — same programs, same schedule, same
//! words.

use crate::collectives::{all_gather, reduce_scatter};
use crate::layout::{
    output_counts, shard_alg3, shard_alg4, shard_matmul, Alg3Shard, Alg4Shard, MatmulShard,
};
use crate::transport::{wire, Endpoint, TcpTransport, TrafficLedger, Transport};
use mttkrp_core::kernels::local_mttkrp;
use mttkrp_core::par::{assemble_block_chunks, assemble_row_chunks, BlockChunk, RowChunk};
use mttkrp_netsim::schedule::{split_range, Phase};
use mttkrp_netsim::{CommStats, CommSummary, ProcessorGrid};
use mttkrp_tensor::{DenseTensor, Matrix, Shape};
use std::time::Duration;

/// Which fabric an in-process multi-rank run wires its ranks with.
///
/// Both run the identical rank programs; `Tcp` moves every word through
/// real loopback sockets (wire codec, reader threads and all), which is
/// exactly what a multi-node run does — only the addresses differ.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TransportKind {
    /// In-process channels ([`crate::transport::channel`]).
    #[default]
    Channel,
    /// Loopback TCP sockets ([`crate::transport::tcp`]).
    Tcp,
}

/// Default bound on every blocking TCP step in an in-process loopback run.
const LOOPBACK_TIMEOUT: Duration = Duration::from_secs(60);

/// Result of a sharded multi-rank MTTKRP run.
#[derive(Debug)]
pub struct DistRun {
    /// The assembled global output `B^(n)` (`I_n x R`).
    pub output: Matrix,
    /// Measured per-rank communication totals, indexed by world rank.
    pub stats: Vec<CommStats>,
    /// Measured per-rank, per-collective traffic, indexed by world rank.
    pub ledgers: Vec<TrafficLedger>,
    /// Aggregate summary (max/total words over ranks).
    pub summary: CommSummary,
}

impl DistRun {
    /// Maximum over ranks of words received — the per-processor bandwidth
    /// cost the paper's Eqs. (14)/(18) count.
    pub fn max_recv_words(&self) -> u64 {
        self.stats
            .iter()
            .map(|s| s.words_received)
            .max()
            .unwrap_or(0)
    }

    /// Maximum over ranks of words sent.
    pub fn max_sent_words(&self) -> u64 {
        self.stats.iter().map(|s| s.words_sent).max().unwrap_or(0)
    }
}

/// One rank's share of the assembled output: either a row block of
/// `B^(n)` (Algorithm 3, matmul baseline) or a row-and-column block
/// (Algorithm 4). This is what a rank hands back — in-process by return
/// value, across processes over the launcher's wire protocol
/// ([`crate::transport::wire::encode_chunk`]).
#[derive(Clone, Debug, PartialEq)]
pub enum OutputChunk {
    /// `(row_lo, row_hi, row-major data)` — full output width.
    Row(RowChunk),
    /// `(row_lo, row_hi, col_lo, col_hi, row-major data)`.
    Block(BlockChunk),
}

/// Runs `program` SPMD: one OS thread per transport endpoint, indexed by
/// world rank. Outputs and ledgers are returned in world-rank order.
///
/// A rank panic propagates *without deadlocking the machine*: the dying
/// rank poisons every peer ([`Transport::poison_all`]), so ranks blocked
/// in a collective abort instead of waiting forever for messages that
/// will never come; every thread is then joined (claiming all the chained
/// panics) and the original payload is re-thrown.
pub fn run_spmd<T: Transport + 'static, O: Send>(
    endpoints: Vec<T>,
    program: impl Fn(&mut T) -> O + Send + Sync,
) -> (Vec<O>, Vec<TrafficLedger>) {
    let ranks: Vec<usize> = (0..endpoints.len()).collect();
    run_ranks(ranks, endpoints, |_, ep| program(ep))
}

/// [`run_spmd`] with a per-rank owned shard moved into each rank thread.
pub(crate) fn run_ranks<S: Send, T: Transport, O: Send>(
    shards: Vec<S>,
    endpoints: Vec<T>,
    program: impl Fn(S, &mut T) -> O + Send + Sync,
) -> (Vec<O>, Vec<TrafficLedger>) {
    let p = shards.len();
    assert_eq!(p, endpoints.len(), "one endpoint per shard");
    let program = &program;
    let mut results: Vec<Result<(O, TrafficLedger), Box<dyn std::any::Any + Send>>> =
        Vec::with_capacity(p);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(p);
        for (shard, mut ep) in shards.into_iter().zip(endpoints) {
            handles.push(scope.spawn(move || {
                let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    program(shard, &mut ep)
                }));
                match out {
                    Ok(out) => (out, ep.finish()),
                    Err(payload) => {
                        ep.poison_all();
                        std::panic::resume_unwind(payload);
                    }
                }
            }));
        }
        // Join *every* handle before propagating anything, so no panic is
        // left unclaimed for the scope to trip over during unwinding.
        for handle in handles {
            results.push(handle.join());
        }
    });
    if results.iter().any(Result::is_err) {
        // Prefer an original panic over the chained aborts it provoked on
        // blocked ranks (every transport-side abort message reads
        // "rank N aborting: ...").
        let mut errs: Vec<_> = results.into_iter().filter_map(Result::err).collect();
        let original = errs
            .iter()
            .position(|p| match p.downcast_ref::<String>() {
                Some(msg) => !msg.contains(" aborting:"),
                None => true,
            })
            .unwrap_or(0);
        std::panic::resume_unwind(errs.swap_remove(original));
    }
    let mut outputs = Vec::with_capacity(p);
    let mut ledgers = Vec::with_capacity(p);
    for res in results {
        let Ok((out, ledger)) = res else {
            unreachable!("error case handled above")
        };
        outputs.push(out);
        ledgers.push(ledger);
    }
    (outputs, ledgers)
}

/// Wires a loopback TCP machine for an in-process run.
fn loopback(p: usize) -> Vec<TcpTransport> {
    TcpTransport::wire_loopback(p, LOOPBACK_TIMEOUT).expect("loopback TCP wiring failed")
}

fn finish(output: Matrix, ledgers: Vec<TrafficLedger>) -> DistRun {
    let stats: Vec<CommStats> = ledgers.iter().map(TrafficLedger::totals).collect();
    let summary = CommSummary::from_ranks(&stats);
    DistRun {
        output,
        stats,
        ledgers,
        summary,
    }
}

/// One rank of Algorithm 3 (stationary tensor): the program PR 3 ran over
/// channels, now drivable by any [`Transport`] — including a lone rank in
/// its own process on a TCP machine.
pub fn stationary_rank<T: Transport>(
    shard: Alg3Shard,
    grid: &[usize],
    n: usize,
    r: usize,
    ep: &mut T,
) -> RowChunk {
    let pgrid = ProcessorGrid::new(grid);
    let order = shard.ranges.len();
    let me = shard.rank;
    // Line 4: All-Gather each input factor's block row across the
    // mode-k hyperslice from the per-rank owned chunks.
    let mut gathered: Vec<Matrix> = Vec::with_capacity(order);
    for k in 0..order {
        let block_rows = shard.ranges[k].1 - shard.ranges[k].0;
        if k == n {
            gathered.push(Matrix::zeros(block_rows, r));
            continue;
        }
        ep.begin_phase(Phase::FactorAllGather { mode: k });
        let comm = pgrid.hyperslice_comm(me, k);
        let full = all_gather(ep, &comm, &shard.factor_chunks[k]);
        assert_eq!(full.len(), block_rows * r);
        gathered.push(Matrix::from_rows_vec(block_rows, r, full));
    }

    // Line 6: local MTTKRP on the owned (stationary) subtensor.
    let refs: Vec<&Matrix> = gathered.iter().collect();
    let c_local = local_mttkrp(&shard.x_local, &refs, n);

    // Line 7: Reduce-Scatter across the mode-n hyperslice.
    ep.begin_phase(Phase::OutputReduceScatter);
    let comm_n = pgrid.hyperslice_comm(me, n);
    let block_rows = shard.ranges[n].1 - shard.ranges[n].0;
    let counts = output_counts(block_rows, r, comm_n.size());
    let mine = reduce_scatter(ep, &comm_n, c_local.data(), &counts);
    let (g0, g1) = shard.factor_rows[n];
    (g0, g1, mine)
}

/// One rank of Algorithm 4 (general). `cols_per_part = R / P_0`.
pub fn general_rank<T: Transport>(
    shard: Alg4Shard,
    p0: usize,
    grid: &[usize],
    n: usize,
    r: usize,
    ep: &mut T,
) -> BlockChunk {
    let order = shard.ranges.len();
    let cols_per_part = r / p0.max(1);
    let mut gdims = Vec::with_capacity(order + 1);
    gdims.push(p0);
    gdims.extend_from_slice(grid);
    let pgrid = ProcessorGrid::new(&gdims);
    let me = shard.rank;

    // Line 3: All-Gather the subtensor parts across the rank-dimension
    // fiber, materializing the full block.
    ep.begin_phase(Phase::TensorAllGather);
    let fiber = pgrid.fiber_comm(me, 0);
    let gathered_tensor = all_gather(ep, &fiber, &shard.tensor_part);
    let sub_dims: Vec<usize> = shard.ranges.iter().map(|&(a, b)| b - a).collect();
    let sub_shape = Shape::new(&sub_dims);
    assert_eq!(gathered_tensor.len(), sub_shape.num_entries());
    let x_local = DenseTensor::from_vec(sub_shape, gathered_tensor);

    // Line 5: All-Gather the factor chunks A^(k)(S^(k), T_{p0}) across
    // the slice {p' : p'_0 = p_0, p'_k = p_k}.
    let mut gathered: Vec<Matrix> = Vec::with_capacity(order);
    for k in 0..order {
        let block_rows = shard.ranges[k].1 - shard.ranges[k].0;
        if k == n {
            gathered.push(Matrix::zeros(block_rows, cols_per_part));
            continue;
        }
        ep.begin_phase(Phase::FactorAllGather { mode: k });
        let varying: Vec<usize> = (0..=order).filter(|&j| j != 0 && j != k + 1).collect();
        let comm = pgrid.slice_comm(me, &varying);
        let full = all_gather(ep, &comm, &shard.factor_chunks[k]);
        assert_eq!(full.len(), block_rows * cols_per_part);
        gathered.push(Matrix::from_rows_vec(block_rows, cols_per_part, full));
    }

    // Line 7: local MTTKRP over the gathered subtensor and the T_{p0}
    // columns of the gathered factor blocks.
    let refs: Vec<&Matrix> = gathered.iter().collect();
    let c_local = local_mttkrp(&x_local, &refs, n);

    // Line 8: Reduce-Scatter across {p' : p'_0 = p_0, p'_n = p_n}.
    ep.begin_phase(Phase::OutputReduceScatter);
    let varying: Vec<usize> = (0..=order).filter(|&j| j != 0 && j != n + 1).collect();
    let comm_n = pgrid.slice_comm(me, &varying);
    let block_rows = shard.ranges[n].1 - shard.ranges[n].0;
    let counts = output_counts(block_rows, cols_per_part, comm_n.size());
    let mine = reduce_scatter(ep, &comm_n, c_local.data(), &counts);
    let (g0, g1) = shard.factor_rows[n];
    (g0, g1, shard.col_range.0, shard.col_range.1, mine)
}

/// One rank of the 1D parallel matmul baseline.
pub fn matmul_rank<T: Transport>(
    shard: MatmulShard,
    procs: usize,
    n: usize,
    r: usize,
    i_n: usize,
    ep: &mut T,
) -> RowChunk {
    // Local partial product over the owned slab.
    let refs: Vec<&Matrix> = shard.local_factors.iter().collect();
    let partial = local_mttkrp(&shard.x_local, &refs, n);

    // Reduce-Scatter the I_n x R partials across all ranks.
    ep.begin_phase(Phase::OutputReduceScatter);
    let world = ep.world();
    let counts = output_counts(i_n, r, procs);
    let mine = reduce_scatter(ep, &world, partial.data(), &counts);
    let (lo, hi) = split_range(i_n, procs, shard.rank);
    (lo, hi, mine)
}

// ---------------------------------------------------------------------------
// Whole-machine entry points
// ---------------------------------------------------------------------------

/// Algorithm 3 (stationary tensor) on `P = prod(grid)` rank threads, each
/// owning its shard, over in-process channels. `factors[n]` is ignored;
/// every `P_k` must divide `I_k`.
pub fn mttkrp_dist_stationary(
    x: &DenseTensor,
    factors: &[&Matrix],
    n: usize,
    grid: &[usize],
) -> DistRun {
    mttkrp_dist_stationary_on(TransportKind::Channel, x, factors, n, grid)
}

/// [`mttkrp_dist_stationary`] over the chosen fabric.
pub fn mttkrp_dist_stationary_on(
    kind: TransportKind,
    x: &DenseTensor,
    factors: &[&Matrix],
    n: usize,
    grid: &[usize],
) -> DistRun {
    let r = mttkrp_tensor::validate_operands(x, factors, n);
    let shards = shard_alg3(x, factors, n, grid);
    let p = shards.len();
    let (chunks, ledgers) = match kind {
        TransportKind::Channel => run_ranks(shards, wire(p), move |shard, ep: &mut Endpoint| {
            stationary_rank(shard, grid, n, r, ep)
        }),
        TransportKind::Tcp => {
            run_ranks(shards, loopback(p), move |shard, ep: &mut TcpTransport| {
                stationary_rank(shard, grid, n, r, ep)
            })
        }
    };
    finish(assemble_row_chunks(x.shape().dim(n), r, &chunks), ledgers)
}

/// Algorithm 4 (general) on `P = p0 * prod(grid)` rank threads over
/// in-process channels. `p0` must divide `R`; every `P_k` must divide
/// `I_k`; `factors[n]` is ignored.
pub fn mttkrp_dist_general(
    x: &DenseTensor,
    factors: &[&Matrix],
    n: usize,
    p0: usize,
    grid: &[usize],
) -> DistRun {
    mttkrp_dist_general_on(TransportKind::Channel, x, factors, n, p0, grid)
}

/// [`mttkrp_dist_general`] over the chosen fabric.
pub fn mttkrp_dist_general_on(
    kind: TransportKind,
    x: &DenseTensor,
    factors: &[&Matrix],
    n: usize,
    p0: usize,
    grid: &[usize],
) -> DistRun {
    let r = mttkrp_tensor::validate_operands(x, factors, n);
    let shards = shard_alg4(x, factors, n, p0, grid);
    let p = shards.len();
    let (chunks, ledgers) = match kind {
        TransportKind::Channel => run_ranks(shards, wire(p), move |shard, ep: &mut Endpoint| {
            general_rank(shard, p0, grid, n, r, ep)
        }),
        TransportKind::Tcp => {
            run_ranks(shards, loopback(p), move |shard, ep: &mut TcpTransport| {
                general_rank(shard, p0, grid, n, r, ep)
            })
        }
    };
    finish(assemble_block_chunks(x.shape().dim(n), r, &chunks), ledgers)
}

/// The 1D parallel matmul baseline on `procs` rank threads over
/// in-process channels. `procs` must divide the slab-mode extent;
/// `factors[n]` is ignored.
pub fn mttkrp_dist_matmul(x: &DenseTensor, factors: &[&Matrix], n: usize, procs: usize) -> DistRun {
    mttkrp_dist_matmul_on(TransportKind::Channel, x, factors, n, procs)
}

/// [`mttkrp_dist_matmul`] over the chosen fabric.
pub fn mttkrp_dist_matmul_on(
    kind: TransportKind,
    x: &DenseTensor,
    factors: &[&Matrix],
    n: usize,
    procs: usize,
) -> DistRun {
    let r = mttkrp_tensor::validate_operands(x, factors, n);
    let i_n = x.shape().dim(n);
    let shards = shard_matmul(x, factors, n, procs);
    let p = shards.len();
    let (chunks, ledgers) = match kind {
        TransportKind::Channel => run_ranks(shards, wire(p), move |shard, ep: &mut Endpoint| {
            matmul_rank(shard, procs, n, r, i_n, ep)
        }),
        TransportKind::Tcp => {
            run_ranks(shards, loopback(p), move |shard, ep: &mut TcpTransport| {
                matmul_rank(shard, procs, n, r, i_n, ep)
            })
        }
    };
    finish(assemble_row_chunks(i_n, r, &chunks), ledgers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mttkrp_core::par;
    use mttkrp_netsim::schedule;
    use mttkrp_tensor::mttkrp_reference;

    fn setup(dims: &[usize], r: usize, seed: u64) -> (DenseTensor, Vec<Matrix>) {
        let shape = Shape::new(dims);
        let x = DenseTensor::random(shape.clone(), seed);
        let factors = dims
            .iter()
            .enumerate()
            .map(|(k, &d)| Matrix::random(d, r, seed + 40 + k as u64))
            .collect();
        (x, factors)
    }

    #[test]
    fn stationary_bitwise_matches_netsim_and_oracle() {
        let (x, factors) = setup(&[4, 6, 8], 3, 1);
        let refs: Vec<&Matrix> = factors.iter().collect();
        for n in 0..3 {
            let dist = mttkrp_dist_stationary(&x, &refs, n, &[2, 2, 2]);
            let sim = par::mttkrp_stationary(&x, &refs, n, &[2, 2, 2]);
            // Bitwise: same shards, same ring order, same kernel.
            assert_eq!(dist.output.data(), sim.output.data(), "mode {n}");
            // And per-rank traffic identical to the simulator's counters.
            assert_eq!(dist.stats, sim.stats, "mode {n}");
            let oracle = mttkrp_reference(&x, &refs, n);
            assert!(dist.output.max_abs_diff(&oracle) < 1e-10, "mode {n}");
        }
    }

    #[test]
    fn stationary_over_tcp_is_bitwise_identical_to_channels() {
        let (x, factors) = setup(&[4, 6, 8], 3, 9);
        let refs: Vec<&Matrix> = factors.iter().collect();
        let chan = mttkrp_dist_stationary_on(TransportKind::Channel, &x, &refs, 1, &[2, 2, 2]);
        let tcp = mttkrp_dist_stationary_on(TransportKind::Tcp, &x, &refs, 1, &[2, 2, 2]);
        assert_eq!(chan.output.data(), tcp.output.data());
        assert_eq!(chan.stats, tcp.stats);
        for (l_chan, l_tcp) in chan.ledgers.iter().zip(&tcp.ledgers) {
            assert_eq!(l_chan, l_tcp);
        }
    }

    #[test]
    fn general_over_tcp_matches_schedule_word_for_word() {
        let (x, factors) = setup(&[4, 4, 6], 6, 11);
        let refs: Vec<&Matrix> = factors.iter().collect();
        let dist = mttkrp_dist_general_on(TransportKind::Tcp, &x, &refs, 0, 3, &[2, 2, 1]);
        let sim = par::mttkrp_general(&x, &refs, 0, 3, &[2, 2, 1]);
        assert_eq!(dist.output.data(), sim.output.data());
        let predicted = schedule::alg4_schedule(&[4, 4, 6], 6, 0, 3, &[2, 2, 1]);
        for (me, ledger) in dist.ledgers.iter().enumerate() {
            assert!(
                ledger.matches(&predicted.ranks[me].phases),
                "rank {me}:\n{}",
                ledger.diff_table(&predicted.ranks[me].phases)
            );
        }
    }

    #[test]
    fn stationary_traffic_matches_schedule_phase_by_phase() {
        let (x, factors) = setup(&[6, 6, 6], 2, 2);
        let refs: Vec<&Matrix> = factors.iter().collect();
        let dist = mttkrp_dist_stationary(&x, &refs, 0, &[2, 2, 2]);
        let predicted = schedule::alg3_schedule(&[6, 6, 6], 2, 0, &[2, 2, 2]);
        for (me, ledger) in dist.ledgers.iter().enumerate() {
            assert!(
                ledger.matches(&predicted.ranks[me].phases),
                "rank {me}:\n{}",
                ledger.diff_table(&predicted.ranks[me].phases)
            );
        }
    }

    #[test]
    fn general_bitwise_matches_netsim_and_schedule() {
        let (x, factors) = setup(&[4, 4, 6], 6, 3);
        let refs: Vec<&Matrix> = factors.iter().collect();
        for n in 0..3 {
            let dist = mttkrp_dist_general(&x, &refs, n, 3, &[2, 2, 1]);
            let sim = par::mttkrp_general(&x, &refs, n, 3, &[2, 2, 1]);
            assert_eq!(dist.output.data(), sim.output.data(), "mode {n}");
            assert_eq!(dist.stats, sim.stats, "mode {n}");
            let predicted = schedule::alg4_schedule(&[4, 4, 6], 6, n, 3, &[2, 2, 1]);
            for (me, ledger) in dist.ledgers.iter().enumerate() {
                assert_eq!(ledger.phases(), &predicted.ranks[me].phases[..]);
            }
        }
    }

    #[test]
    fn matmul_baseline_bitwise_matches_netsim() {
        let (x, factors) = setup(&[4, 6, 8], 3, 4);
        let refs: Vec<&Matrix> = factors.iter().collect();
        for n in 0..3 {
            let dist = mttkrp_dist_matmul(&x, &refs, n, 2);
            let sim = par::mttkrp_par_matmul(&x, &refs, n, 2);
            assert_eq!(dist.output.data(), sim.output.data(), "mode {n}");
            assert_eq!(dist.stats, sim.stats, "mode {n}");
        }
    }

    #[test]
    fn rank_panic_propagates_instead_of_deadlocking() {
        // Rank 1 dies before its collective while every other rank blocks
        // in the all-gather waiting for it. Without poisoning, the blocked
        // ranks would wait forever and this test would hang; with it, the
        // run aborts and the original panic propagates.
        let result = std::panic::catch_unwind(|| {
            run_spmd(wire(4), |ep| {
                let world = ep.world();
                ep.begin_phase(Phase::TensorAllGather);
                if ep.world_rank() == 1 {
                    panic!("deliberate failure injection");
                }
                crate::collectives::all_gather(ep, &world, &[ep.world_rank() as f64])
            })
        });
        let payload = result.expect_err("the rank panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_owned)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(
            msg.contains("deliberate failure injection"),
            "expected the original panic, got: {msg}"
        );
    }

    #[test]
    fn single_rank_runs_without_communication() {
        let (x, factors) = setup(&[3, 4, 5], 2, 5);
        let refs: Vec<&Matrix> = factors.iter().collect();
        let run = mttkrp_dist_stationary(&x, &refs, 1, &[1, 1, 1]);
        assert_eq!(run.summary.total_words, 0);
        let oracle = mttkrp_reference(&x, &refs, 1);
        assert!(run.output.max_abs_diff(&oracle) < 1e-10);
    }

    #[test]
    fn order4_general_with_p0() {
        let (x, factors) = setup(&[4, 2, 4, 2], 4, 6);
        let refs: Vec<&Matrix> = factors.iter().collect();
        let dist = mttkrp_dist_general(&x, &refs, 2, 2, &[2, 1, 2, 1]);
        let sim = par::mttkrp_general(&x, &refs, 2, 2, &[2, 1, 2, 1]);
        assert_eq!(dist.output.data(), sim.output.data());
    }
}
