//! The binary wire format of the TCP transport, plus the control frames
//! the rendezvous handshake and the multi-process launcher use.
//!
//! A frame is length-prefixed so a reader can never misparse a stream
//! position, and carries exactly what a transport packet carries:
//!
//! ```text
//! ┌────────────┬───────────┬──────────────┬───────────┬──────────────────┐
//! │ len: u32   │ from: u32 │ comm_id: u64 │ flags: u8 │ payload: n × f64 │
//! │ (LE, bytes │ (sender   │ (netsim Comm │ 0 = data  │ (LE words)       │
//! │ after the  │ world     │ id, or a     │ 1 = poison│                  │
//! │ prefix)    │ rank)     │ CTRL_* id)   │ 2 = fin   │                  │
//! │            │           │              │ 4 = traced│                  │
//! └────────────┴───────────┴──────────────┴───────────┴──────────────────┘
//! ```
//!
//! `len` must equal `13 + 8n` for some `n <= MAX_PAYLOAD_WORDS`; anything
//! else is rejected ([`WireError::Truncated`] / [`WireError::Oversized`] /
//! [`WireError::BadLength`]) rather than trusted — a garbled length prefix
//! must not make a reader allocate gigabytes or read off the rails.
//!
//! A **traced** frame (flags = 4) is a data frame whose first four payload
//! words are a [`TraceContext`] header — `trace_hi`, `trace_lo`, `proc`,
//! `parent_span`, each a `u64` bit-cast into the word lanes (the codec
//! moves words with `to_le_bytes`/`from_le_bytes`, so the cast is exact).
//! [`decode`] strips the header into [`Frame::trace`]; untraced frames
//! decode with `trace = None`. This is how a client's root span becomes
//! the parent of the server's tree, and the launcher's span the parent of
//! every rank's — one mechanism on both codecs.
//!
//! Control frames reuse the format with reserved `comm_id`s from the top
//! of the id space ([`CTRL_BASE`] and above) that the FNV-hashed netsim
//! communicator ids never use in practice; the transport asserts the
//! invariant on every data send.
//!
//! ```
//! use mttkrp_dist::transport::wire::{decode, encode, Frame};
//!
//! let frame = Frame::data(3, 42, vec![1.0, 2.0]);
//! let bytes = encode(&frame);
//! assert_eq!(decode(&bytes).unwrap(), frame);
//! ```

use mttkrp_netsim::schedule::{Phase, PhaseTraffic};
use mttkrp_obs::TraceContext;
use mttkrp_tensor::{DenseTensor, Matrix, Shape};
use std::io::{Read, Write};

/// Largest admissible payload, in words: 2^27 `f64`s = 1 GiB. Far above
/// any collective block this runtime ships, and low enough that a corrupt
/// length prefix fails fast instead of OOM-ing the receiver.
pub const MAX_PAYLOAD_WORDS: usize = 1 << 27;

/// Fixed body bytes before the payload: from (4) + comm_id (8) + flags (1).
const HEADER_BODY_BYTES: usize = 13;

/// Start of the reserved control-id space. Data frames must carry a
/// communicator id *below* this; the FNV-64 communicator ids effectively
/// never land in the top 32 values.
pub const CTRL_BASE: u64 = u64::MAX - 31;
/// Rendezvous hello: dialer announces its world rank; payload is its own
/// listener port (one word) toward rank 0, empty toward other peers.
pub const CTRL_HELLO: u64 = u64::MAX;
/// Rendezvous address table from rank 0: payload words `2i` and `2i + 1`
/// are world rank `i`'s IPv4 address (as a `u32`, the source address rank
/// 0 observed on `i`'s HELLO) and its listener port; both entries for
/// rank 0 itself are zero placeholders.
pub const CTRL_TABLE: u64 = u64::MAX - 1;
/// Orderly goodbye: the sender's rank program finished; nothing follows.
pub const CTRL_FIN: u64 = u64::MAX - 2;
/// Launcher control: a spawned rank 0 reports its rendezvous port.
pub const CTRL_READY: u64 = u64::MAX - 3;
/// Launcher control: a rank reports its output chunk
/// (`[tag, r0, r1, c0, c1, data...]`, see [`encode_chunk`]).
pub const CTRL_CHUNK: u64 = u64::MAX - 4;
/// Launcher control: a rank reports its measured ledger
/// (`[tag, mode, sent, received, messages]` per phase, see
/// [`encode_ledger`]).
pub const CTRL_LEDGER: u64 = u64::MAX - 5;

// --- Serving front door (`mttkrp-serve`'s net module) -----------------------
// The listener speaks the same framing as the rank transport; these ids tag
// request/response traffic between a serving client and the socket listener.
// The payload encodings live next to their consumers in
// `mttkrp-serve/src/net/protocol.rs`; the ids are reserved here so the
// control-id space has one owner.

/// Serve: a client's single-MTTKRP request (`from` carries the client's
/// request tag, echoed on the reply).
pub const CTRL_MTTKRP_REQ: u64 = u64::MAX - 6;
/// Serve: a client's CP-ALS factorization request.
pub const CTRL_FACTORIZE_REQ: u64 = u64::MAX - 7;
/// Serve: the reply to a [`CTRL_MTTKRP_REQ`].
pub const CTRL_MTTKRP_RESP: u64 = u64::MAX - 8;
/// Serve: the final reply to a [`CTRL_FACTORIZE_REQ`].
pub const CTRL_FACTORIZE_RESP: u64 = u64::MAX - 9;
/// Serve: one streamed per-sweep progress update of a factorization.
pub const CTRL_SWEEP: u64 = u64::MAX - 10;
/// Serve: a client cancels an in-flight factorization by tag.
pub const CTRL_CANCEL: u64 = u64::MAX - 11;
/// Serve: a typed error reply (payload is [`encode_text`] words).
pub const CTRL_ERROR: u64 = u64::MAX - 12;
/// Serve: load shed — the server is at its admission cap (or draining);
/// payload is `[retry_after_ms]`.
pub const CTRL_RETRY_AFTER: u64 = u64::MAX - 13;

// --- Ops plane ---------------------------------------------------------------
// Live telemetry scrapes on the serve socket, and the launcher's one
// downstream frame to each rank child. Scrape frames are answered by the
// listener *before* admission control — a scrape can't be shed by load.

/// Serve: a metrics scrape; the reply (same id) carries the listener's
/// whole `MetricsRegistry` snapshot as JSONL text words.
pub const CTRL_STATS: u64 = u64::MAX - 14;
/// Serve: a health probe; the reply (same id) is
/// `[uptime_ms, open_connections, in_flight, draining, admission_cap]`.
pub const CTRL_HEALTH: u64 = u64::MAX - 15;
/// Serve: a flight-recorder dump; the reply (same id) carries the ring
/// contents as JSONL text words (see `mttkrp_obs::flight_to_jsonl`).
pub const CTRL_TRACE_DUMP: u64 = u64::MAX - 16;
/// Launcher → rank child: the one downstream frame on the report
/// connection, sent after the child's READY. Payload is
/// `[has_operands, ...operands]` (see [`encode_operands`]); the frame's
/// trace header (flags = 4) carries the launcher's context for the child
/// to adopt.
pub const CTRL_LAUNCH: u64 = u64::MAX - 17;
/// Serve: a metrics *history* scrape; the reply (same id) carries the
/// listener's time-series ring — per-window counter deltas, gauge
/// levels, and histogram deltas — as JSONL text words (see
/// `mttkrp_obs::timeseries::history_to_jsonl`). Answered on the same
/// pre-admission path as [`CTRL_STATS`], so history can't be shed.
pub const CTRL_STATS_HISTORY: u64 = u64::MAX - 18;

/// One wire message: the exact content of a transport packet.
#[derive(Clone, Debug, PartialEq)]
pub struct Frame {
    /// Sender world rank.
    pub from: u32,
    /// Communicator id (a netsim [`mttkrp_netsim::Comm::id`]) or a
    /// reserved `CTRL_*` id.
    pub comm_id: u64,
    /// Poison flag: the sender panicked; receivers must abort.
    pub poison: bool,
    /// The trace-context header, when the sender attached one (only data
    /// frames carry it; poison/fin never do).
    pub trace: Option<TraceContext>,
    /// Payload words (trace header already stripped).
    pub payload: Vec<f64>,
}

impl Frame {
    /// A data frame.
    pub fn data(from: usize, comm_id: u64, payload: Vec<f64>) -> Frame {
        Frame {
            from: from as u32,
            comm_id,
            poison: false,
            trace: None,
            payload,
        }
    }

    /// A poison frame: `from` panicked and every blocked peer must abort.
    pub fn poison(from: usize) -> Frame {
        Frame {
            from: from as u32,
            comm_id: 0,
            poison: true,
            trace: None,
            payload: Vec::new(),
        }
    }

    /// An orderly-goodbye frame: `from` finished its rank program.
    pub fn fin(from: usize) -> Frame {
        Frame {
            from: from as u32,
            comm_id: CTRL_FIN,
            poison: false,
            trace: None,
            payload: Vec::new(),
        }
    }

    /// Attaches a trace-context header (builder-style; `None` leaves the
    /// frame untraced, so call sites can pass
    /// `mttkrp_obs::current_context()` straight through).
    pub fn with_trace(mut self, trace: Option<TraceContext>) -> Frame {
        self.trace = trace;
        self
    }
}

/// Why a byte sequence is not a frame.
#[derive(Debug, PartialEq, Eq)]
pub enum WireError {
    /// The bytes end before the length prefix says they should.
    Truncated {
        /// Bytes the prefix promised (after itself).
        expected: usize,
        /// Bytes actually present (after the prefix).
        got: usize,
    },
    /// The length prefix admits no `13 + 8n` body (too short, or the
    /// payload is not whole words).
    BadLength(u32),
    /// The payload would exceed [`MAX_PAYLOAD_WORDS`].
    Oversized {
        /// Payload words the prefix implies.
        words: usize,
    },
    /// The flags byte is none of data/poison/fin.
    BadFlags(u8),
    /// The underlying reader failed (connection reset, EOF mid-frame, ...).
    Io(std::io::ErrorKind),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { expected, got } => {
                write!(
                    f,
                    "truncated frame: length prefix promises {expected} bytes, got {got}"
                )
            }
            WireError::BadLength(len) => write!(f, "impossible frame length {len}"),
            WireError::Oversized { words } => write!(
                f,
                "oversized frame: {words} payload words exceeds the {MAX_PAYLOAD_WORDS}-word limit"
            ),
            WireError::BadFlags(b) => write!(f, "unknown flags byte {b:#04x}"),
            WireError::Io(kind) => write!(f, "i/o error reading frame: {kind}"),
        }
    }
}

impl std::error::Error for WireError {}

const FLAG_DATA: u8 = 0;
const FLAG_POISON: u8 = 1;
const FLAG_FIN: u8 = 2;
/// A data frame whose first [`TRACE_HEADER_WORDS`] payload words are a
/// bit-cast [`TraceContext`].
const FLAG_TRACED: u8 = 4;

/// Payload words a trace header occupies on the wire.
pub const TRACE_HEADER_WORDS: usize = 4;

fn flags_of(frame: &Frame) -> u8 {
    let base = if frame.poison {
        FLAG_POISON
    } else if frame.comm_id == CTRL_FIN {
        FLAG_FIN
    } else {
        FLAG_DATA
    };
    // FIN frames never carry context: they are connection teardown, not
    // work, and keeping them headerless lets pre-trace peers drain them.
    if frame.trace.is_some() && base != FLAG_FIN {
        base | FLAG_TRACED
    } else {
        base
    }
}

/// Encoded size of `frame` on the wire, length prefix included — what
/// [`encode`] would produce, without producing it (the listener's byte
/// accounting).
pub fn frame_wire_bytes(frame: &Frame) -> usize {
    let header = if flags_of(frame) & FLAG_TRACED != 0 {
        TRACE_HEADER_WORDS
    } else {
        0
    };
    4 + HEADER_BODY_BYTES + 8 * (frame.payload.len() + header)
}

/// Encodes a frame, length prefix included.
///
/// # Panics
/// Panics if the payload exceeds [`MAX_PAYLOAD_WORDS`] — encoding it
/// anyway would either wrap the `u32` length prefix (desynchronizing the
/// stream) or make every receiver reject the frame as a connection-level
/// failure, both of which blame the wrong side.
pub fn encode(frame: &Frame) -> Vec<u8> {
    let flags = flags_of(frame);
    let header_words = if flags & FLAG_TRACED != 0 {
        TRACE_HEADER_WORDS
    } else {
        0
    };
    let total_words = frame.payload.len() + header_words;
    assert!(
        total_words <= MAX_PAYLOAD_WORDS,
        "frame payload of {total_words} words exceeds the {MAX_PAYLOAD_WORDS}-word wire limit",
    );
    let body_len = HEADER_BODY_BYTES + 8 * total_words;
    let mut out = Vec::with_capacity(4 + body_len);
    out.extend_from_slice(&(body_len as u32).to_le_bytes());
    out.extend_from_slice(&frame.from.to_le_bytes());
    out.extend_from_slice(&frame.comm_id.to_le_bytes());
    out.push(flags);
    if flags & FLAG_TRACED != 0 {
        for word in frame.trace.expect("traced flag implies trace").to_words() {
            out.extend_from_slice(&word.to_le_bytes());
        }
    }
    for w in &frame.payload {
        out.extend_from_slice(&w.to_le_bytes());
    }
    out
}

/// Validates a length prefix: the payload word count it implies, if any.
fn payload_words(len: u32) -> Result<usize, WireError> {
    let len = len as usize;
    if len < HEADER_BODY_BYTES || !(len - HEADER_BODY_BYTES).is_multiple_of(8) {
        return Err(WireError::BadLength(len as u32));
    }
    let words = (len - HEADER_BODY_BYTES) / 8;
    if words > MAX_PAYLOAD_WORDS {
        return Err(WireError::Oversized { words });
    }
    Ok(words)
}

/// Decodes one frame from `bytes` (which must contain exactly one frame,
/// length prefix included). Rejects truncated and oversized inputs.
pub fn decode(bytes: &[u8]) -> Result<Frame, WireError> {
    if bytes.len() < 4 {
        return Err(WireError::Truncated {
            expected: 4,
            got: bytes.len(),
        });
    }
    let len = u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes"));
    let words = payload_words(len)?;
    let body = &bytes[4..];
    if body.len() < len as usize {
        return Err(WireError::Truncated {
            expected: len as usize,
            got: body.len(),
        });
    }
    let from = u32::from_le_bytes(body[..4].try_into().expect("4 bytes"));
    let comm_id = u64::from_le_bytes(body[4..12].try_into().expect("8 bytes"));
    let flags = body[12];
    let base = flags & !FLAG_TRACED;
    if !matches!(base, FLAG_DATA | FLAG_POISON | FLAG_FIN) || (flags == FLAG_FIN | FLAG_TRACED) {
        return Err(WireError::BadFlags(flags));
    }
    let mut trace = None;
    let mut first_word = 0;
    if flags & FLAG_TRACED != 0 {
        if words < TRACE_HEADER_WORDS {
            return Err(WireError::BadLength(len));
        }
        let mut header = [0u64; TRACE_HEADER_WORDS];
        for (i, slot) in header.iter_mut().enumerate() {
            let at = HEADER_BODY_BYTES + 8 * i;
            *slot = u64::from_le_bytes(body[at..at + 8].try_into().expect("8 bytes"));
        }
        trace = Some(TraceContext::from_words(header));
        first_word = TRACE_HEADER_WORDS;
    }
    let mut payload = Vec::with_capacity(words - first_word);
    for i in first_word..words {
        let at = HEADER_BODY_BYTES + 8 * i;
        payload.push(f64::from_le_bytes(
            body[at..at + 8].try_into().expect("8 bytes"),
        ));
    }
    Ok(Frame {
        from,
        comm_id,
        poison: base == FLAG_POISON,
        trace,
        payload,
    })
}

/// Writes one frame to `w` (buffered by the caller or not — one `write_all`
/// per frame).
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> std::io::Result<()> {
    w.write_all(&encode(frame))
}

/// Writes a data frame without building a `Frame` first (spares the
/// payload copy on the transport's hot send path).
///
/// # Panics
/// Panics if the payload exceeds [`MAX_PAYLOAD_WORDS`] (see [`encode`]).
pub fn write_data_frame(
    w: &mut impl Write,
    from: usize,
    comm_id: u64,
    payload: &[f64],
) -> std::io::Result<()> {
    assert!(
        payload.len() <= MAX_PAYLOAD_WORDS,
        "frame payload of {} words exceeds the {MAX_PAYLOAD_WORDS}-word wire limit",
        payload.len()
    );
    let body_len = HEADER_BODY_BYTES + 8 * payload.len();
    let mut out = Vec::with_capacity(4 + body_len);
    out.extend_from_slice(&(body_len as u32).to_le_bytes());
    out.extend_from_slice(&(from as u32).to_le_bytes());
    out.extend_from_slice(&comm_id.to_le_bytes());
    out.push(FLAG_DATA);
    for word in payload {
        out.extend_from_slice(&word.to_le_bytes());
    }
    w.write_all(&out)
}

/// Reads one frame from `r`, blocking until it is complete. An EOF before
/// the first prefix byte is reported as `Io(UnexpectedEof)` like any other
/// short read — the TCP reader threads treat every error as "peer gone".
pub fn read_frame(r: &mut impl Read) -> Result<Frame, WireError> {
    let mut prefix = [0u8; 4];
    r.read_exact(&mut prefix)
        .map_err(|e| WireError::Io(e.kind()))?;
    let len = u32::from_le_bytes(prefix);
    payload_words(len)?;
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)
        .map_err(|e| WireError::Io(e.kind()))?;
    let mut framed = Vec::with_capacity(4 + body.len());
    framed.extend_from_slice(&prefix);
    framed.extend_from_slice(&body);
    decode(&framed)
}

// ---------------------------------------------------------------------------
// Launcher payload encodings (chunks and ledgers as words)
// ---------------------------------------------------------------------------

/// Encodes a measured ledger as frame payload words: five words per
/// collective, `[phase_tag, mode, words_sent, words_received,
/// messages_sent]`, with tags 0 = tensor all-gather, 1 = factor
/// all-gather, 2 = output reduce-scatter. All quantities are exact in
/// `f64` (word counts are far below 2^53).
pub fn encode_ledger(phases: &[PhaseTraffic]) -> Vec<f64> {
    let mut out = Vec::with_capacity(5 * phases.len());
    for t in phases {
        let (tag, mode) = match t.phase {
            Phase::TensorAllGather => (0.0, 0.0),
            Phase::FactorAllGather { mode } => (1.0, mode as f64),
            Phase::OutputReduceScatter => (2.0, 0.0),
        };
        out.extend_from_slice(&[
            tag,
            mode,
            t.words_sent as f64,
            t.words_received as f64,
            t.messages_sent as f64,
        ]);
    }
    out
}

/// Decodes [`encode_ledger`] output.
pub fn decode_ledger(words: &[f64]) -> Result<Vec<PhaseTraffic>, WireError> {
    if !words.len().is_multiple_of(5) {
        return Err(WireError::BadLength(words.len() as u32));
    }
    words
        .chunks_exact(5)
        .map(|c| {
            let phase = match c[0] as u64 {
                0 => Phase::TensorAllGather,
                1 => Phase::FactorAllGather {
                    mode: c[1] as usize,
                },
                2 => Phase::OutputReduceScatter,
                other => return Err(WireError::BadFlags(other as u8)),
            };
            Ok(PhaseTraffic {
                phase,
                words_sent: c[2] as u64,
                words_received: c[3] as u64,
                messages_sent: c[4] as u64,
            })
        })
        .collect()
}

/// Encodes an output chunk as frame payload words:
/// `[tag, r0, r1, c0, c1, data...]` with tag 0 for a row chunk (full
/// width; `c0 = c1 = 0` ignored) and 1 for a block chunk.
pub fn encode_chunk(chunk: &crate::runtime::OutputChunk) -> Vec<f64> {
    use crate::runtime::OutputChunk;
    match chunk {
        OutputChunk::Row((r0, r1, data)) => {
            let mut out = vec![0.0, *r0 as f64, *r1 as f64, 0.0, 0.0];
            out.extend_from_slice(data);
            out
        }
        OutputChunk::Block((r0, r1, c0, c1, data)) => {
            let mut out = vec![1.0, *r0 as f64, *r1 as f64, *c0 as f64, *c1 as f64];
            out.extend_from_slice(data);
            out
        }
    }
}

/// Decodes [`encode_chunk`] output.
pub fn decode_chunk(words: &[f64]) -> Result<crate::runtime::OutputChunk, WireError> {
    use crate::runtime::OutputChunk;
    if words.len() < 5 {
        return Err(WireError::BadLength(words.len() as u32));
    }
    let (r0, r1, c0, c1) = (
        words[1] as usize,
        words[2] as usize,
        words[3] as usize,
        words[4] as usize,
    );
    let data = words[5..].to_vec();
    match words[0] as u64 {
        0 => Ok(OutputChunk::Row((r0, r1, data))),
        1 => Ok(OutputChunk::Block((r0, r1, c0, c1, data))),
        other => Err(WireError::BadFlags(other as u8)),
    }
}

// ---------------------------------------------------------------------------
// Operand shipping (launcher → rank children)
// ---------------------------------------------------------------------------

/// Encodes MTTKRP operands as payload words:
/// `[order, dims..., rank, X data..., factor_0 data..., ..., factor_{order-1} data...]`
/// with factor `k` being `dims[k] × rank` row-major. Every value is moved
/// verbatim (dims/rank are exact small integers, data words are `f64`
/// already), so a shipped operand set is bit-identical on arrival — which
/// is what lets a rank child compute the same answer the launcher's
/// in-process engine would.
///
/// # Panics
/// Panics if `factors` doesn't match the tensor (one factor per mode, each
/// `dims[k] × rank`); the launcher controls both sides.
pub fn encode_operands(x: &DenseTensor, factors: &[&Matrix]) -> Vec<f64> {
    let dims = x.shape().dims();
    assert_eq!(factors.len(), dims.len(), "one factor per mode");
    let rank = factors.first().map(|f| f.cols()).unwrap_or(0);
    let mut out = Vec::with_capacity(2 + dims.len() + x.data().len());
    out.push(dims.len() as f64);
    out.extend(dims.iter().map(|&d| d as f64));
    out.push(rank as f64);
    out.extend_from_slice(x.data());
    for (k, f) in factors.iter().enumerate() {
        assert_eq!((f.rows(), f.cols()), (dims[k], rank), "factor {k} shape");
        out.extend_from_slice(f.data());
    }
    out
}

/// Decodes [`encode_operands`] output. Every length is validated against
/// the declared shape before anything is built.
pub fn decode_operands(words: &[f64]) -> Result<(DenseTensor, Vec<Matrix>), WireError> {
    let bad = || WireError::BadLength(words.len() as u32);
    let int = |w: f64| -> Result<usize, WireError> {
        if w.is_finite() && w.fract() == 0.0 && (0.0..=(1u64 << 32) as f64).contains(&w) {
            Ok(w as usize)
        } else {
            Err(bad())
        }
    };
    let order = int(*words.first().ok_or_else(bad)?)?;
    if words.len() < 2 + order {
        return Err(bad());
    }
    let dims: Vec<usize> = words[1..1 + order]
        .iter()
        .map(|&w| int(w))
        .collect::<Result<_, _>>()?;
    let rank = int(words[1 + order])?;
    let x_len: usize = dims.iter().product();
    let factors_len: usize = dims.iter().map(|&d| d * rank).sum();
    let mut at = 2 + order;
    if words.len() != at + x_len + factors_len {
        return Err(bad());
    }
    let x = DenseTensor::from_vec(Shape::new(&dims), words[at..at + x_len].to_vec());
    at += x_len;
    let mut factors = Vec::with_capacity(order);
    for &d in &dims {
        factors.push(Matrix::from_rows_vec(
            d,
            rank,
            words[at..at + d * rank].to_vec(),
        ));
        at += d * rank;
    }
    Ok((x, factors))
}

// ---------------------------------------------------------------------------
// Text payloads (typed error frames)
// ---------------------------------------------------------------------------

/// Packs UTF-8 text into frame payload words: word 0 is the byte length,
/// the rest carry the raw bytes eight per word (zero-padded tail). Bytes
/// roundtrip exactly because every word is moved with
/// `to_le_bytes`/`from_le_bytes` — no float arithmetic touches them.
pub fn encode_text(text: &str) -> Vec<f64> {
    let bytes = text.as_bytes();
    let mut out = Vec::with_capacity(1 + bytes.len().div_ceil(8));
    out.push(bytes.len() as f64);
    for chunk in bytes.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        out.push(f64::from_le_bytes(word));
    }
    out
}

/// Decodes [`encode_text`] output. The length header must agree with the
/// word count; invalid UTF-8 decodes lossily (text frames are diagnostics,
/// and a garbled message beats a dropped one).
pub fn decode_text(words: &[f64]) -> Result<String, WireError> {
    let Some((&len_word, rest)) = words.split_first() else {
        return Err(WireError::BadLength(0));
    };
    let max_bytes = (8 * MAX_PAYLOAD_WORDS) as f64;
    if !len_word.is_finite() || len_word.fract() != 0.0 || !(0.0..=max_bytes).contains(&len_word) {
        return Err(WireError::BadLength(words.len() as u32));
    }
    let len = len_word as usize;
    if rest.len() != len.div_ceil(8) {
        return Err(WireError::BadLength(words.len() as u32));
    }
    let mut bytes = Vec::with_capacity(8 * rest.len());
    for w in rest {
        bytes.extend_from_slice(&w.to_le_bytes());
    }
    bytes.truncate(len);
    Ok(String::from_utf8_lossy(&bytes).into_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_data_poison_fin() {
        for frame in [
            Frame::data(7, 0xDEAD_BEEF, vec![1.5, -2.25, 0.0]),
            Frame::data(0, 3, Vec::new()),
            Frame::poison(2),
            Frame::fin(5),
        ] {
            let bytes = encode(&frame);
            assert_eq!(decode(&bytes).unwrap(), frame, "{frame:?}");
            assert_eq!(frame_wire_bytes(&frame), bytes.len(), "{frame:?}");
        }
    }

    #[test]
    fn truncated_frames_are_rejected() {
        let bytes = encode(&Frame::data(1, 9, vec![3.0, 4.0]));
        for cut in 0..bytes.len() {
            let err = decode(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, WireError::Truncated { .. }),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn oversized_and_impossible_lengths_are_rejected() {
        // A length prefix promising more words than the cap.
        let huge = ((HEADER_BODY_BYTES + 8 * (MAX_PAYLOAD_WORDS + 1)) as u32).to_le_bytes();
        let mut bytes = huge.to_vec();
        bytes.extend_from_slice(&[0u8; 64]);
        assert!(matches!(
            decode(&bytes).unwrap_err(),
            WireError::Oversized { .. }
        ));
        // A length that cannot hold the fixed header.
        let tiny = 5u32.to_le_bytes();
        assert!(matches!(
            decode(&tiny).unwrap_err(),
            WireError::BadLength(5)
        ));
        // A length with a fractional payload word.
        let frac = ((HEADER_BODY_BYTES + 3) as u32).to_le_bytes();
        assert!(matches!(
            decode(&frac).unwrap_err(),
            WireError::BadLength(_)
        ));
    }

    #[test]
    fn bad_flags_are_rejected() {
        let mut bytes = encode(&Frame::data(1, 9, vec![]));
        *bytes.last_mut().unwrap() = 9; // flags byte of an empty-payload frame
        assert_eq!(decode(&bytes).unwrap_err(), WireError::BadFlags(9));
    }

    #[test]
    fn stream_read_write_roundtrip() {
        let frames = [
            Frame::data(0, 11, vec![1.0]),
            Frame::data(1, 12, vec![2.0, 3.0]),
            Frame::fin(0),
        ];
        let mut buf = Vec::new();
        for f in &frames {
            write_frame(&mut buf, f).unwrap();
        }
        let mut cursor = std::io::Cursor::new(buf);
        for f in &frames {
            assert_eq!(&read_frame(&mut cursor).unwrap(), f);
        }
        assert!(matches!(
            read_frame(&mut cursor).unwrap_err(),
            WireError::Io(std::io::ErrorKind::UnexpectedEof)
        ));
    }

    #[test]
    fn ledger_words_roundtrip() {
        let phases = vec![
            PhaseTraffic {
                phase: Phase::TensorAllGather,
                words_sent: 10,
                words_received: 12,
                messages_sent: 3,
            },
            PhaseTraffic {
                phase: Phase::FactorAllGather { mode: 2 },
                words_sent: 7,
                words_received: 7,
                messages_sent: 1,
            },
            PhaseTraffic {
                phase: Phase::OutputReduceScatter,
                words_sent: 0,
                words_received: 0,
                messages_sent: 0,
            },
        ];
        assert_eq!(decode_ledger(&encode_ledger(&phases)).unwrap(), phases);
        assert!(decode_ledger(&[1.0, 2.0]).is_err());
        assert!(decode_ledger(&[9.0, 0.0, 0.0, 0.0, 0.0]).is_err());
    }

    #[test]
    fn text_words_roundtrip() {
        for text in [
            "",
            "x",
            "exactly8",
            "a typed error message, über-long ⚠",
            "nine.bytes",
        ] {
            assert_eq!(decode_text(&encode_text(text)).unwrap(), text, "{text:?}");
        }
        // Header/word-count disagreements are rejected, not trusted.
        assert!(decode_text(&[]).is_err());
        assert!(decode_text(&[3.0]).is_err(), "missing byte words");
        assert!(decode_text(&[9.0, 0.0]).is_err(), "too few byte words");
        assert!(
            decode_text(&[1.0, 0.0, 0.0]).is_err(),
            "too many byte words"
        );
        assert!(decode_text(&[-1.0]).is_err());
        assert!(decode_text(&[0.5, 0.0]).is_err());
        assert!(decode_text(&[f64::NAN, 0.0]).is_err());
        // Invalid UTF-8 decodes lossily rather than erroring.
        let mut words = vec![2.0];
        words.push(f64::from_le_bytes([0xFF, 0xFE, 0, 0, 0, 0, 0, 0]));
        assert_eq!(decode_text(&words).unwrap(), "\u{FFFD}\u{FFFD}");
    }

    #[test]
    fn serve_ctrl_ids_stay_in_the_reserved_space() {
        for id in [
            CTRL_MTTKRP_REQ,
            CTRL_FACTORIZE_REQ,
            CTRL_MTTKRP_RESP,
            CTRL_FACTORIZE_RESP,
            CTRL_SWEEP,
            CTRL_CANCEL,
            CTRL_ERROR,
            CTRL_RETRY_AFTER,
            CTRL_STATS,
            CTRL_HEALTH,
            CTRL_TRACE_DUMP,
            CTRL_LAUNCH,
            CTRL_STATS_HISTORY,
        ] {
            assert!(id >= CTRL_BASE, "{id:#x} escapes the control-id space");
            assert_ne!(id, CTRL_FIN, "serve ids must not alias FIN semantics");
        }
    }

    #[test]
    fn traced_frames_roundtrip_bit_exactly() {
        let ctx = TraceContext {
            trace_hi: 0xDEAD_BEEF_0102_0304,
            trace_lo: u64::MAX,
            proc: 1,
            parent_span: 42,
        };
        for frame in [
            Frame::data(3, 7, vec![1.5, -2.0]).with_trace(Some(ctx)),
            Frame::data(0, CTRL_STATS, Vec::new()).with_trace(Some(ctx)),
            Frame::poison(1).with_trace(Some(ctx)),
        ] {
            let bytes = encode(&frame);
            let back = decode(&bytes).unwrap();
            assert_eq!(back, frame, "{frame:?}");
            assert_eq!(back.trace, Some(ctx));
            assert_eq!(frame_wire_bytes(&frame), bytes.len(), "{frame:?}");
        }
        // A FIN never carries a header (flags_of maps FIN before TRACED).
        let fin = Frame::fin(0).with_trace(Some(ctx));
        assert_eq!(decode(&encode(&fin)).unwrap().trace, None);
        // Streams carry the header too.
        let mut buf = Vec::new();
        write_frame(
            &mut buf,
            &Frame::data(2, 9, vec![4.0]).with_trace(Some(ctx)),
        )
        .unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap().trace, Some(ctx));
    }

    #[test]
    fn traced_frame_too_short_for_header_is_rejected() {
        // A traced frame whose length admits fewer than TRACE_HEADER_WORDS
        // payload words cannot hold the context.
        for words in 0..TRACE_HEADER_WORDS {
            let len = (HEADER_BODY_BYTES + 8 * words) as u32;
            let mut bytes = len.to_le_bytes().to_vec();
            bytes.extend_from_slice(&0u32.to_le_bytes()); // from
            bytes.extend_from_slice(&7u64.to_le_bytes()); // comm id
            bytes.push(4); // FLAG_TRACED
            bytes.extend(std::iter::repeat_n(0u8, 8 * words)); // payload
            assert!(
                matches!(decode(&bytes).unwrap_err(), WireError::BadLength(_)),
                "{words} payload words"
            );
        }
    }

    #[test]
    fn operands_roundtrip_and_reject_bad_lengths() {
        let dims = [3usize, 4, 2];
        let x = DenseTensor::from_vec(
            Shape::new(&dims),
            (0..24).map(|i| i as f64 * 0.5 - 3.0).collect(),
        );
        let factors: Vec<Matrix> = dims
            .iter()
            .map(|&d| Matrix::from_rows_vec(d, 2, (0..d * 2).map(|i| i as f64 + 0.25).collect()))
            .collect();
        let refs: Vec<&Matrix> = factors.iter().collect();
        let words = encode_operands(&x, &refs);
        let (x2, f2) = decode_operands(&words).unwrap();
        assert_eq!(x2.shape().dims(), &dims);
        assert_eq!(x2.data(), x.data());
        assert_eq!(f2.len(), 3);
        for (a, b) in f2.iter().zip(&factors) {
            assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()));
            assert_eq!(a.data(), b.data());
        }
        // Truncated and padded payloads are rejected.
        assert!(decode_operands(&words[..words.len() - 1]).is_err());
        let mut padded = words.clone();
        padded.push(0.0);
        assert!(decode_operands(&padded).is_err());
        assert!(decode_operands(&[]).is_err());
        assert!(decode_operands(&[f64::NAN]).is_err());
        assert!(
            decode_operands(&[2.5, 1.0, 1.0]).is_err(),
            "fractional order"
        );
    }

    #[test]
    fn chunk_words_roundtrip() {
        use crate::runtime::OutputChunk;
        for chunk in [
            OutputChunk::Row((2, 4, vec![1.0, 2.0, 3.0, 4.0])),
            OutputChunk::Block((0, 1, 2, 4, vec![5.0, 6.0])),
            OutputChunk::Row((0, 0, Vec::new())),
        ] {
            assert_eq!(decode_chunk(&encode_chunk(&chunk)).unwrap(), chunk);
        }
        assert!(decode_chunk(&[0.0, 1.0]).is_err());
        assert!(decode_chunk(&[7.0, 0.0, 0.0, 0.0, 0.0]).is_err());
    }
}
