//! The message transports between ranks, behind one [`Transport`] seam.
//!
//! Unlike the netsim [`mttkrp_netsim::Rank`] — whose job is to *count*
//! words on a simulated machine whose rank programs may freely read the
//! global operands — a transport here is the communication fabric of a
//! runtime where each rank *owns* its shard and every remote word really
//! crosses a channel or a socket. Messages are typed packets tagged with
//! the sending rank and the [`Comm`] id (the same deterministic id the
//! simulator computes), and a per-rank reorder buffer preserves the
//! per-(sender, communicator) FIFO order MPI guarantees.
//!
//! Two implementations exist, driven by the *identical* rank programs:
//!
//! - [`channel`] — ranks are threads in one process exchanging owned
//!   `Vec<f64>` buffers over in-process channels ([`Endpoint`], the
//!   original fabric);
//! - [`tcp`] — ranks are processes (or threads) exchanging the
//!   length-prefixed binary frames of [`mod@wire`] over TCP sockets
//!   ([`TcpTransport`]), with a rendezvous handshake for connection setup
//!   and per-peer reader threads feeding the same reorder buffer.
//!
//! Every send and receive is charged to the *current phase* of the rank's
//! [`TrafficLedger`] — the collective the runtime is executing — so a
//! finished run can be compared against the netsim-predicted
//! [`mttkrp_netsim::schedule::CommSchedule`] collective by collective, not
//! just in total. The contract is transport-independent: a faithful run
//! satisfies `ledger.phases() == predicted.phases` over loopback TCP
//! exactly as it does over channels.

pub mod channel;
pub mod tcp;
pub mod wire;

pub use channel::{wire, Endpoint};
pub use tcp::{TcpConfig, TcpTransport};

use mttkrp_netsim::collectives::PeerExchange;
use mttkrp_netsim::schedule::{sum_phase_traffic, Phase, PhaseTraffic};
use mttkrp_netsim::{Comm, CommStats};
use std::collections::{HashMap, VecDeque};
use std::fmt;

/// The transport seam of the sharded runtime: everything a rank program
/// needs to move words and account for them.
///
/// This is the surface `runtime` and the ring collectives consume; being a
/// supertrait of the netsim [`PeerExchange`], any `Transport` runs the
/// *same* generic ring implementations the simulator uses — identical
/// block routing and deterministic reduction order are structural, so a
/// run is bitwise identical across transports (and to the simulator).
///
/// Semantics every implementation must provide:
///
/// - per-(sender, communicator) FIFO delivery ([`Transport::recv`] selects
///   by source and communicator through a reorder buffer);
/// - non-blocking sends (unbounded buffering), so the SPMD
///   send-then-receive exchange of a ring step cannot deadlock;
/// - traffic charged to the ledger phase opened by
///   [`Transport::begin_phase`];
/// - failure propagation: a rank that dies mid-run must cause every peer
///   blocked on it to surface an error within a bounded time instead of
///   waiting forever ([`Transport::poison_all`] for announced deaths; the
///   TCP transport additionally converts connection loss into the same
///   abort).
pub trait Transport: PeerExchange + Send {
    /// Total number of ranks `P`.
    fn num_ranks(&self) -> usize;

    /// The world communicator.
    fn world(&self) -> Comm {
        Comm::world(self.num_ranks())
    }

    /// Opens a new ledger phase; subsequent traffic is charged to it.
    fn begin_phase(&mut self, phase: Phase);

    /// The traffic recorded so far.
    fn ledger(&self) -> &TrafficLedger;

    /// Sends `data` to the rank with local index `dest` in `comm`,
    /// charging `data.len()` words to the current phase.
    fn send(&mut self, comm: &Comm, dest: usize, data: &[f64]);

    /// Receives the next message from local rank `src` on `comm`
    /// (blocking), charging its length to the current phase.
    fn recv(&mut self, comm: &Comm, src: usize) -> Vec<f64>;

    /// Notifies every other rank that this rank is dying (panicked), so
    /// peers blocked in [`Transport::recv`] abort instead of waiting
    /// forever for messages that will never come. Called by the runtime's
    /// panic handler; the resulting peer panics chain transitively, so the
    /// whole machine winds down and the original panic can propagate.
    fn poison_all(&self);

    /// Consumes the transport, asserting quiescence (no undelivered
    /// messages), and returns its ledger.
    fn finish(self) -> TrafficLedger
    where
        Self: Sized;
}

/// Measured per-collective traffic of one rank, accumulated by its
/// transport as the run executes.
///
/// The ledger is a sequence of [`PhaseTraffic`] records in execution order
/// — the same vocabulary as the netsim schedule predictions, so a faithful
/// run satisfies `ledger.phases() == predicted.phases` exactly. When they
/// differ, [`TrafficLedger::diff_table`] renders a per-phase
/// predicted-vs-measured table instead of leaving the reader to eyeball
/// two debug dumps.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TrafficLedger {
    phases: Vec<PhaseTraffic>,
}

impl TrafficLedger {
    /// A ledger holding the given records — how a ledger measured in
    /// another process (and shipped over the wire) is rebuilt.
    pub fn from_phases(phases: Vec<PhaseTraffic>) -> TrafficLedger {
        TrafficLedger { phases }
    }

    /// The per-collective records, in execution order.
    pub fn phases(&self) -> &[PhaseTraffic] {
        &self.phases
    }

    /// Sum over all phases — directly comparable to a netsim
    /// [`CommStats`], aggregated by the same
    /// [`sum_phase_traffic`] the schedule predictions use.
    pub fn totals(&self) -> CommStats {
        sum_phase_traffic(&self.phases)
    }

    /// Whether the measured record equals `predicted` collective by
    /// collective.
    pub fn matches(&self, predicted: &[PhaseTraffic]) -> bool {
        self.phases == predicted
    }

    /// A per-phase predicted-vs-measured table (sent/received/messages per
    /// collective, mismatching lines marked), for schedule-mismatch
    /// failures. Rows are paired by position; a length mismatch shows the
    /// unpaired tail of whichever side has one.
    ///
    /// ```
    /// use mttkrp_dist::TrafficLedger;
    /// use mttkrp_netsim::schedule::{Phase, PhaseTraffic};
    ///
    /// let measured = TrafficLedger::from_phases(vec![PhaseTraffic {
    ///     phase: Phase::OutputReduceScatter,
    ///     words_sent: 12,
    ///     words_received: 10,
    ///     messages_sent: 3,
    /// }]);
    /// let predicted = [PhaseTraffic {
    ///     phase: Phase::OutputReduceScatter,
    ///     words_sent: 12,
    ///     words_received: 12,
    ///     messages_sent: 3,
    /// }];
    /// assert!(!measured.matches(&predicted));
    /// let table = measured.diff_table(&predicted);
    /// assert!(table.contains("MISMATCH"));
    /// assert!(table.contains("reduce-scatter(B)"));
    /// ```
    pub fn diff_table(&self, predicted: &[PhaseTraffic]) -> String {
        let mut s = String::from(
            "  # phase                      measured sent/recv/msgs    predicted sent/recv/msgs\n",
        );
        let fmt_t =
            |t: &PhaseTraffic| format!("{}/{}/{}", t.words_sent, t.words_received, t.messages_sent);
        let rows = self.phases.len().max(predicted.len());
        for i in 0..rows {
            let m = self.phases.get(i);
            let p = predicted.get(i);
            let name = m
                .or(p)
                .map(|t| t.phase.to_string())
                .unwrap_or_else(|| "?".to_string());
            let (mcol, pcol) = (
                m.map(&fmt_t).unwrap_or_else(|| "(missing)".to_string()),
                p.map(&fmt_t).unwrap_or_else(|| "(missing)".to_string()),
            );
            let ok = m.is_some() && m == p;
            s.push_str(&format!(
                "{:>3} {name:<26} {mcol:<26} {pcol:<26} {}\n",
                i,
                if ok { "ok" } else { "MISMATCH" }
            ));
        }
        if self.phases.len() != predicted.len() {
            s.push_str(&format!(
                "    ({} measured vs {} predicted collective(s))\n",
                self.phases.len(),
                predicted.len()
            ));
        }
        s
    }

    pub(crate) fn open(&mut self, phase: Phase) {
        self.phases.push(PhaseTraffic {
            phase,
            words_sent: 0,
            words_received: 0,
            messages_sent: 0,
        });
    }

    pub(crate) fn current(&mut self) -> &mut PhaseTraffic {
        self.phases
            .last_mut()
            .expect("transport used outside a phase: call begin_phase first")
    }
}

/// Per-phase table: one line per collective, in execution order.
impl fmt::Display for TrafficLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, t) in self.phases.iter().enumerate() {
            writeln!(
                f,
                "{i:>3} {:<26} sent {:>8}  recv {:>8}  msgs {:>4}",
                t.phase.to_string(),
                t.words_sent,
                t.words_received,
                t.messages_sent
            )?;
        }
        let totals = self.totals();
        write!(
            f,
            "    total                      sent {:>8}  recv {:>8}  msgs {:>4}",
            totals.words_sent, totals.words_received, totals.messages_sent
        )
    }
}

/// The per-(sender, communicator) reorder buffer both transports share:
/// packets arrive on one mailbox in wall-clock order, and receivers select
/// by `(source world rank, comm id)` while preserving FIFO within each
/// key.
#[derive(Default)]
pub(crate) struct ReorderBuffer {
    pending: HashMap<(usize, u64), VecDeque<Vec<f64>>>,
}

impl ReorderBuffer {
    pub(crate) fn push(&mut self, from: usize, comm_id: u64, payload: Vec<f64>) {
        self.pending
            .entry((from, comm_id))
            .or_default()
            .push_back(payload);
    }

    pub(crate) fn pop(&mut self, from: usize, comm_id: u64) -> Option<Vec<f64>> {
        self.pending
            .get_mut(&(from, comm_id))
            .and_then(VecDeque::pop_front)
    }

    pub(crate) fn len(&self) -> usize {
        self.pending.values().map(VecDeque::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diff_table_marks_mismatches_and_length_skew() {
        let measured = TrafficLedger::from_phases(vec![
            PhaseTraffic {
                phase: Phase::TensorAllGather,
                words_sent: 4,
                words_received: 4,
                messages_sent: 1,
            },
            PhaseTraffic {
                phase: Phase::OutputReduceScatter,
                words_sent: 9,
                words_received: 8,
                messages_sent: 2,
            },
        ]);
        let predicted = [PhaseTraffic {
            phase: Phase::TensorAllGather,
            words_sent: 4,
            words_received: 4,
            messages_sent: 1,
        }];
        let table = measured.diff_table(&predicted);
        assert!(table.contains("ok"), "{table}");
        assert!(table.contains("MISMATCH"), "{table}");
        assert!(table.contains("(missing)"), "{table}");
        assert!(table.contains("2 measured vs 1 predicted"), "{table}");
    }

    #[test]
    fn display_prints_phases_and_totals() {
        let mut ledger = TrafficLedger::default();
        ledger.open(Phase::FactorAllGather { mode: 1 });
        ledger.current().words_sent = 6;
        ledger.current().words_received = 5;
        ledger.current().messages_sent = 3;
        let text = ledger.to_string();
        assert!(text.contains("all-gather(A^(1))"), "{text}");
        assert!(text.contains("total"), "{text}");
        assert!(text.contains('6') && text.contains('5'), "{text}");
    }

    #[test]
    fn reorder_buffer_is_fifo_per_key() {
        let mut buf = ReorderBuffer::default();
        buf.push(0, 7, vec![1.0]);
        buf.push(0, 7, vec![2.0]);
        buf.push(1, 7, vec![3.0]);
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.pop(0, 7), Some(vec![1.0]));
        assert_eq!(buf.pop(1, 7), Some(vec![3.0]));
        assert_eq!(buf.pop(0, 7), Some(vec![2.0]));
        assert_eq!(buf.pop(0, 7), None);
        assert_eq!(buf.len(), 0);
    }
}
