//! The socket transport: the same rank programs, running over real TCP.
//!
//! Ranks may be threads in one process ([`TcpTransport::wire_loopback`])
//! or separate OS processes on different machines — the transport cannot
//! tell, and neither can the algorithms. Every message is a
//! length-prefixed [`wire`] frame; every received word passes through the
//! same per-(sender, communicator) reorder buffer as the channel
//! transport, so delivery semantics (and therefore the bitwise output and
//! the per-collective [`TrafficLedger`]) are identical.
//!
//! **Connection setup** is a rendezvous handshake: world rank 0 listens on
//! the agreed address; every other rank binds an ephemeral listener of its
//! own (on all interfaces), dials rank 0, and announces `(world rank,
//! listener port)` in a `HELLO` frame. Once all `P - 1` peers have checked
//! in, rank 0 sends each of them the full address table — each peer's
//! *observed* source IP (what the network can actually reach, loopback or
//! not) paired with its announced port — after which rank `i` dials every
//! rank `j` with `1 <= j < i` and accepts a connection from every rank
//! `j > i` — a full mesh, each link authenticated by its `HELLO`.
//!
//! **Failure handling** is explicit, because a blocked `recv` on a socket
//! that will never deliver is a hang, not an error:
//!
//! - a rank that *panics* writes a poison frame to every peer
//!   ([`Transport::poison_all`]) — receivers abort at once;
//! - a rank that *dies silently* (SIGKILL, machine loss) never says
//!   goodbye: its kernel closes the sockets and the per-peer reader thread
//!   turns the EOF/reset into a synthesized "connection lost" event —
//!   receivers abort at once;
//! - a rank that *finishes* writes an orderly `FIN` frame; peers expect
//!   nothing further from it, and [`Transport::finish`] waits for every
//!   peer's goodbye, so the quiescence check is meaningful;
//! - everything else is bounded by the configured receive timeout — no
//!   code path waits forever.

use super::wire::{self, Frame};
use super::{ReorderBuffer, TrafficLedger, Transport};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use mttkrp_netsim::collectives::PeerExchange;
use mttkrp_netsim::schedule::Phase;
use mttkrp_netsim::Comm;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How a rank joins a TCP machine.
#[derive(Clone, Debug)]
pub struct TcpConfig {
    /// This rank's world rank in `[0, P)`.
    pub world_rank: usize,
    /// Total number of ranks `P`.
    pub ranks: usize,
    /// The rendezvous address: rank 0 listens here, everyone else dials it
    /// (e.g. `127.0.0.1:47000`).
    pub rendezvous: String,
    /// Bound on every blocking step: handshake accepts/dials, `recv`, and
    /// the finish barrier. A peer that stays silent longer is treated as
    /// lost.
    pub timeout: Duration,
}

impl TcpConfig {
    /// A loopback config with the default 30 s timeout.
    pub fn loopback(world_rank: usize, ranks: usize, rendezvous: impl Into<String>) -> TcpConfig {
        TcpConfig {
            world_rank,
            ranks,
            rendezvous: rendezvous.into(),
            timeout: Duration::from_secs(30),
        }
    }
}

/// What a reader thread tells the owning rank about one peer connection.
enum Event {
    /// A data frame arrived.
    Data {
        from: usize,
        comm_id: u64,
        payload: Vec<f64>,
    },
    /// The peer announced its own panic.
    Poison { from: usize },
    /// The peer finished its rank program; nothing valid follows.
    Fin { from: usize },
    /// The connection died without a goodbye (reset, EOF, bad frame) —
    /// the peer process is gone or broken.
    Lost { from: usize },
}

/// One rank's handle onto the TCP machine. See the [module
/// docs](self) for the wire protocol and failure semantics.
pub struct TcpTransport {
    world_rank: usize,
    p: usize,
    timeout: Duration,
    /// Write half per peer (`None` at our own index).
    writers: Vec<Option<TcpStream>>,
    inbox: Receiver<Event>,
    /// Kept so the inbox never reports "disconnected" racing a reader
    /// exit; silence is always resolved by the timeout instead.
    _keepalive: Sender<Event>,
    pending: ReorderBuffer,
    ledger: TrafficLedger,
    /// Per-peer terminal state (fin/poison/lost observed).
    done: Vec<bool>,
    readers: Vec<JoinHandle<()>>,
}

impl TcpTransport {
    /// Joins the machine described by `config`: binds and serves the
    /// rendezvous if `world_rank == 0`, dials it otherwise. Blocks until
    /// the full mesh is up (bounded by `config.timeout`).
    pub fn connect(config: &TcpConfig) -> io::Result<TcpTransport> {
        assert!(
            config.world_rank < config.ranks,
            "world rank {} out of range for P = {}",
            config.world_rank,
            config.ranks
        );
        if config.world_rank == 0 {
            let listener = TcpListener::bind(&config.rendezvous)?;
            TcpTransport::host_on(listener, config.ranks, config.timeout)
        } else {
            TcpTransport::dial(config)
        }
    }

    /// Serves the rendezvous as world rank 0 on an already-bound listener
    /// (useful when the caller needs to learn the OS-assigned port — e.g.
    /// to report it to a launcher — before the peers exist).
    pub fn host_on(
        listener: TcpListener,
        ranks: usize,
        timeout: Duration,
    ) -> io::Result<TcpTransport> {
        let deadline = Instant::now() + timeout;
        let mut streams: Vec<Option<TcpStream>> = (0..ranks).map(|_| None).collect();
        // Per rank: (IPv4 as observed by rank 0, announced listener port).
        // The observed source address — not anything self-reported — is
        // what the other peers can actually reach, loopback or not.
        let mut addrs = vec![(0u32, 0u16); ranks];
        for _ in 1..ranks {
            let stream = accept_deadline(&listener, deadline)?;
            let hello = read_frame_deadline(&stream, deadline)?;
            if hello.comm_id != wire::CTRL_HELLO || hello.payload.len() != 1 {
                return Err(bad_proto("expected HELLO from dialing peer"));
            }
            let from = hello.from as usize;
            if from == 0 || from >= ranks || streams[from].is_some() {
                return Err(bad_proto("HELLO from an impossible or duplicate rank"));
            }
            let std::net::IpAddr::V4(ip) = stream.peer_addr()?.ip() else {
                return Err(bad_proto("the rendezvous mesh supports IPv4 peers only"));
            };
            addrs[from] = (u32::from(ip), hello.payload[0] as u16);
            streams[from] = Some(stream);
        }
        // Everyone checked in: publish the address table.
        let mut table = Vec::with_capacity(2 * ranks);
        for &(ip, port) in &addrs {
            table.push(ip as f64);
            table.push(port as f64);
        }
        for stream in streams.iter_mut().flatten() {
            wire::write_frame(
                &mut &*stream,
                &Frame::data(0, wire::CTRL_TABLE, table.clone()),
            )?;
        }
        Ok(TcpTransport::assemble(0, ranks, timeout, streams))
    }

    /// Dials the rendezvous as a nonzero world rank.
    fn dial(config: &TcpConfig) -> io::Result<TcpTransport> {
        let me = config.world_rank;
        let p = config.ranks;
        let deadline = Instant::now() + config.timeout;
        // All interfaces, so the announced port is reachable from other
        // machines, not just over loopback.
        let my_listener = TcpListener::bind("0.0.0.0:0")?;
        let my_port = my_listener.local_addr()?.port();

        // Rank 0 may not be listening yet; retry until the deadline.
        let zero = connect_deadline(&config.rendezvous, deadline)?;
        wire::write_frame(
            &mut &zero,
            &Frame::data(me, wire::CTRL_HELLO, vec![my_port as f64]),
        )?;
        let table = read_frame_deadline(&zero, deadline)?;
        if table.comm_id != wire::CTRL_TABLE || table.payload.len() != 2 * p {
            return Err(bad_proto("expected the rendezvous address table"));
        }

        let mut streams: Vec<Option<TcpStream>> = (0..p).map(|_| None).collect();
        streams[0] = Some(zero);
        // Dial every lower nonzero rank at its published address...
        for (peer, slot) in streams.iter_mut().enumerate().take(me).skip(1) {
            let ip = std::net::Ipv4Addr::from(table.payload[2 * peer] as u32);
            let port = table.payload[2 * peer + 1] as u16;
            let stream = connect_deadline(&SocketAddr::from((ip, port)).to_string(), deadline)?;
            wire::write_frame(&mut &stream, &Frame::data(me, wire::CTRL_HELLO, vec![]))?;
            *slot = Some(stream);
        }
        // ...and accept one connection from every higher rank.
        for _ in me + 1..p {
            let stream = accept_deadline(&my_listener, deadline)?;
            let hello = read_frame_deadline(&stream, deadline)?;
            if hello.comm_id != wire::CTRL_HELLO {
                return Err(bad_proto("expected HELLO from a dialing peer"));
            }
            let from = hello.from as usize;
            if from <= me || from >= p || streams[from].is_some() {
                return Err(bad_proto("HELLO from an impossible or duplicate rank"));
            }
            streams[from] = Some(stream);
        }
        Ok(TcpTransport::assemble(me, p, config.timeout, streams))
    }

    /// Wires `p` ranks over loopback TCP inside one process (each rank's
    /// handshake runs on its own thread) and returns the transports
    /// indexed by world rank — the socket twin of [`super::wire()`](super::wire()), used by
    /// tests and the in-process TCP runtime.
    pub fn wire_loopback(p: usize, timeout: Duration) -> io::Result<Vec<TcpTransport>> {
        assert!(p >= 1, "need at least one rank");
        if p == 1 {
            return Ok(vec![TcpTransport::assemble(0, 1, timeout, vec![None])]);
        }
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?.to_string();
        let mut out: Vec<io::Result<TcpTransport>> = Vec::with_capacity(p);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(p);
            let addr = &addr;
            handles.push(scope.spawn(move || TcpTransport::host_on(listener, p, timeout)));
            for me in 1..p {
                handles.push(scope.spawn(move || {
                    let mut config = TcpConfig::loopback(me, p, addr.clone());
                    config.timeout = timeout;
                    TcpTransport::dial(&config)
                }));
            }
            for handle in handles {
                out.push(handle.join().expect("handshake thread panicked"));
            }
        });
        out.into_iter().collect()
    }

    /// Builds the transport from an established mesh: one write half and
    /// one reader thread per peer.
    fn assemble(
        world_rank: usize,
        p: usize,
        timeout: Duration,
        streams: Vec<Option<TcpStream>>,
    ) -> TcpTransport {
        let (tx, rx) = unbounded();
        let mut writers: Vec<Option<TcpStream>> = (0..p).map(|_| None).collect();
        let mut readers = Vec::new();
        for (peer, stream) in streams.into_iter().enumerate() {
            let Some(stream) = stream else { continue };
            stream.set_nodelay(true).ok();
            stream
                .set_read_timeout(None)
                .expect("clearing read timeout cannot fail");
            writers[peer] = Some(stream.try_clone().expect("cloning a TCP stream"));
            let tx = tx.clone();
            readers.push(std::thread::spawn(move || read_loop(stream, peer, tx)));
        }
        TcpTransport {
            world_rank,
            p,
            timeout,
            writers,
            inbox: rx,
            _keepalive: tx,
            pending: ReorderBuffer::default(),
            ledger: TrafficLedger::default(),
            done: vec![false; p],
            readers,
        }
    }

    /// This rank's world rank in `[0, P)`.
    pub fn world_rank(&self) -> usize {
        self.world_rank
    }

    fn assert_member(&self, comm: &Comm) {
        assert!(
            comm.local_index(self.world_rank).is_some(),
            "rank {} is not a member of this communicator",
            self.world_rank
        );
    }

    /// Pulls the next event off the inbox (bounded), updating peer state.
    /// Returns `Some((from, comm_id, payload))` for data, `None` for an
    /// orderly peer FIN; panics on poison, loss, or timeout — the bounded
    /// failure semantics of the transport.
    fn next_event(&mut self, waiting_for: Option<usize>) -> Option<(usize, u64, Vec<f64>)> {
        let me = self.world_rank;
        match self.inbox.recv_timeout(self.timeout) {
            Ok(Event::Data {
                from,
                comm_id,
                payload,
            }) => Some((from, comm_id, payload)),
            Ok(Event::Poison { from }) => {
                self.done[from] = true;
                panic!("rank {me} aborting: peer rank {from} panicked mid-run")
            }
            Ok(Event::Lost { from }) => {
                self.done[from] = true;
                panic!("rank {me} aborting: peer rank {from} connection lost mid-run")
            }
            Ok(Event::Fin { from }) => {
                self.done[from] = true;
                if waiting_for == Some(from) {
                    panic!(
                        "rank {me} aborting: peer rank {from} finished while a \
                         message from it was still expected"
                    );
                }
                None
            }
            Err(RecvTimeoutError::Timeout) => panic!(
                "rank {me} aborting: no message for {:?} while waiting on rank {:?} — peer hung?",
                self.timeout, waiting_for
            ),
            Err(RecvTimeoutError::Disconnected) => {
                unreachable!("keepalive sender keeps the inbox connected")
            }
        }
    }
}

impl PeerExchange for TcpTransport {
    fn world_rank(&self) -> usize {
        TcpTransport::world_rank(self)
    }

    /// Send, then receive. The send's words land in the kernel socket
    /// buffer and the peer's reader thread drains its end unconditionally,
    /// so the SPMD exchange cannot deadlock even when every rank sends
    /// first.
    fn sendrecv(&mut self, comm: &Comm, dest: usize, data: &[f64], src: usize) -> Vec<f64> {
        Transport::send(self, comm, dest, data);
        Transport::recv(self, comm, src)
    }
}

impl Transport for TcpTransport {
    fn num_ranks(&self) -> usize {
        self.p
    }

    fn begin_phase(&mut self, phase: Phase) {
        self.ledger.open(phase);
    }

    fn ledger(&self) -> &TrafficLedger {
        &self.ledger
    }

    fn send(&mut self, comm: &Comm, dest: usize, data: &[f64]) {
        self.assert_member(comm);
        let comm_id = comm.id();
        assert!(
            comm_id < wire::CTRL_BASE,
            "communicator id landed in the reserved control range"
        );
        let dest_world = comm.world_rank(dest);
        let t = self.ledger.current();
        t.words_sent += data.len() as u64;
        t.messages_sent += 1;
        if dest_world == self.world_rank {
            // Self-sends never touch the wire (the ring collectives don't
            // produce them, but the transport is not limited to rings).
            self.pending.push(dest_world, comm_id, data.to_vec());
            return;
        }
        let stream = self.writers[dest_world]
            .as_ref()
            .expect("mesh invariant: a writer exists for every peer");
        if let Err(e) = wire::write_data_frame(&mut &*stream, self.world_rank, comm_id, data) {
            panic!(
                "rank {} aborting: send to peer rank {dest_world} failed mid-run: {e}",
                self.world_rank
            );
        }
    }

    fn recv(&mut self, comm: &Comm, src: usize) -> Vec<f64> {
        self.assert_member(comm);
        let src_world = comm.world_rank(src);
        let comm_id = comm.id();
        loop {
            if let Some(data) = self.pending.pop(src_world, comm_id) {
                self.ledger.current().words_received += data.len() as u64;
                return data;
            }
            if let Some((from, cid, payload)) = self.next_event(Some(src_world)) {
                self.pending.push(from, cid, payload);
            }
        }
    }

    fn poison_all(&self) {
        for stream in self.writers.iter().flatten() {
            // A dying peer may already be gone; ignore write failures.
            let _ = wire::write_frame(&mut &*stream, &Frame::poison(self.world_rank));
            let _ = (&*stream).flush();
        }
    }

    fn finish(mut self) -> TrafficLedger {
        // Orderly goodbye to everyone, then wait for everyone's goodbye —
        // the barrier is what makes the quiescence check below meaningful
        // (all in-flight frames from live peers have been drained once
        // their FIN arrives, because the wire is FIFO per connection).
        for stream in self.writers.iter().flatten() {
            let _ = wire::write_frame(&mut &*stream, &Frame::fin(self.world_rank));
        }
        let me = self.world_rank;
        while (0..self.p).any(|r| r != me && !self.done[r]) {
            if let Some((from, cid, payload)) = self.next_event(None) {
                self.pending.push(from, cid, payload);
            }
        }
        for reader in std::mem::take(&mut self.readers) {
            reader.join().expect("reader thread panicked");
        }
        let leftover = self.pending.len();
        assert_eq!(
            leftover, 0,
            "rank {me} finished with {leftover} unconsumed message(s)"
        );
        std::mem::take(&mut self.ledger)
    }
}

impl Drop for TcpTransport {
    /// Shuts the sockets down so a transport dropped *without* `finish`
    /// (a panicking or dying rank) is visible to its peers: the reader
    /// threads hold clones of the streams, so merely dropping the write
    /// halves would leave every fd open and the peers blocked forever.
    /// `shutdown` acts on the underlying socket — blocked reads on both
    /// ends return immediately.
    fn drop(&mut self) {
        for stream in self.writers.iter().flatten() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
    }
}

/// The per-peer reader: turns the byte stream into events until the peer
/// says goodbye (FIN), announces a panic (poison), or the connection dies.
fn read_loop(mut stream: TcpStream, peer: usize, tx: Sender<Event>) {
    loop {
        match wire::read_frame(&mut stream) {
            Ok(frame) if frame.poison => {
                let _ = tx.send(Event::Poison { from: peer });
                return;
            }
            Ok(frame) if frame.comm_id == wire::CTRL_FIN => {
                let _ = tx.send(Event::Fin { from: peer });
                return;
            }
            Ok(frame) => {
                debug_assert_eq!(frame.from as usize, peer, "frame sender vs connection");
                if tx
                    .send(Event::Data {
                        from: peer,
                        comm_id: frame.comm_id,
                        payload: frame.payload,
                    })
                    .is_err()
                {
                    return; // owning rank is gone (panic unwound past it)
                }
            }
            Err(_) => {
                // EOF, reset, or a garbled frame: the peer is gone or
                // broken. Either way, nothing more will arrive.
                let _ = tx.send(Event::Lost { from: peer });
                return;
            }
        }
    }
}

/// `accept` with a deadline (the listener is polled non-blockingly).
fn accept_deadline(listener: &TcpListener, deadline: Instant) -> io::Result<TcpStream> {
    listener.set_nonblocking(true)?;
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(false)?;
                return Ok(stream);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "rendezvous accept timed out",
                    ));
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => return Err(e),
        }
    }
}

/// `connect` with retries until a deadline (the peer may not be listening
/// yet — rendezvous order is not synchronized).
fn connect_deadline(addr: &str, deadline: Instant) -> io::Result<TcpStream> {
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        format!("rendezvous dial to {addr} timed out: {e}"),
                    ));
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
}

/// Reads one frame with the stream's read timeout set to the remaining
/// deadline (handshake only; run-time reads are bounded by the inbox).
fn read_frame_deadline(stream: &TcpStream, deadline: Instant) -> io::Result<Frame> {
    let remaining = deadline
        .checked_duration_since(Instant::now())
        .filter(|d| !d.is_zero())
        .ok_or_else(|| io::Error::new(io::ErrorKind::TimedOut, "handshake timed out"))?;
    stream.set_read_timeout(Some(remaining))?;
    wire::read_frame(&mut &*stream)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

fn bad_proto(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wire_pair() -> (TcpTransport, TcpTransport) {
        let mut eps = TcpTransport::wire_loopback(2, Duration::from_secs(10)).unwrap();
        let e1 = eps.pop().unwrap();
        let e0 = eps.pop().unwrap();
        (e0, e1)
    }

    #[test]
    fn send_recv_over_loopback_charges_the_phase() {
        let (mut e0, mut e1) = wire_pair();
        let world = e0.world();
        // `finish` is a peer barrier, so each rank runs on its own thread
        // — exactly as the runtime drives them.
        let side1 = std::thread::spawn(move || {
            e1.begin_phase(Phase::TensorAllGather);
            let got = e1.recv(&e1.world(), 0);
            e1.send(&e1.world(), 0, &[4.0]);
            (got, e1.finish())
        });
        e0.begin_phase(Phase::TensorAllGather);
        e0.send(&world, 1, &[1.0, 2.0, 3.0]);
        assert_eq!(e0.recv(&world, 1), vec![4.0]);
        let l0 = e0.finish();
        let (got, l1) = side1.join().unwrap();
        assert_eq!(got, vec![1.0, 2.0, 3.0]);
        assert_eq!(l0.phases()[0].words_sent, 3);
        assert_eq!(l0.phases()[0].words_received, 1);
        assert_eq!(l0.phases()[0].messages_sent, 1);
        assert_eq!(l1.phases()[0].words_received, 3);
    }

    #[test]
    fn comms_do_not_mix_over_tcp() {
        let (mut e0, mut e1) = wire_pair();
        let world = e0.world();
        let sub = Comm::subset(vec![0, 1], 7);
        let side1 = std::thread::spawn(move || {
            let world = e1.world();
            let sub = Comm::subset(vec![0, 1], 7);
            e1.begin_phase(Phase::TensorAllGather);
            // Receive in the opposite order of sending: selection by comm
            // works over the socket reorder buffer too.
            let first = e1.recv(&sub, 0);
            let second = e1.recv(&world, 0);
            e1.finish();
            (first, second)
        });
        e0.begin_phase(Phase::TensorAllGather);
        e0.send(&world, 1, &[1.0]);
        e0.send(&sub, 1, &[2.0]);
        e0.finish();
        let (first, second) = side1.join().unwrap();
        assert_eq!(first, vec![2.0]);
        assert_eq!(second, vec![1.0]);
    }

    #[test]
    fn single_rank_needs_no_sockets() {
        let mut eps = TcpTransport::wire_loopback(1, Duration::from_secs(1)).unwrap();
        let mut e0 = eps.pop().unwrap();
        e0.begin_phase(Phase::OutputReduceScatter);
        assert_eq!(e0.num_ranks(), 1);
        let ledger = e0.finish();
        assert_eq!(ledger.totals().words_sent, 0);
    }

    #[test]
    fn four_rank_mesh_routes_every_pair() {
        let p = 4;
        let eps = TcpTransport::wire_loopback(p, Duration::from_secs(10)).unwrap();
        let handles: Vec<_> = eps
            .into_iter()
            .map(|mut ep| {
                std::thread::spawn(move || {
                    let world = ep.world();
                    let me = ep.world_rank();
                    ep.begin_phase(Phase::TensorAllGather);
                    for dest in 0..p {
                        if dest != me {
                            ep.send(&world, dest, &[(me * 10 + dest) as f64]);
                        }
                    }
                    let mut got = Vec::new();
                    for src in 0..p {
                        if src != me {
                            got.push(ep.recv(&world, src)[0]);
                        }
                    }
                    (got, ep.finish())
                })
            })
            .collect();
        for (me, h) in handles.into_iter().enumerate() {
            let (got, ledger) = h.join().unwrap();
            let expect: Vec<f64> = (0..p)
                .filter(|&s| s != me)
                .map(|s| (s * 10 + me) as f64)
                .collect();
            assert_eq!(got, expect, "rank {me}");
            assert_eq!(ledger.totals().messages_sent, (p - 1) as u64);
        }
    }

    #[test]
    fn quiescence_check_catches_leftovers_over_tcp() {
        let (mut e0, e1) = wire_pair();
        let world = e0.world();
        e0.begin_phase(Phase::TensorAllGather);
        e0.send(&world, 1, &[1.0]);
        let r = std::thread::spawn(move || {
            let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| e1.finish()));
            out.is_err()
        });
        e0.finish();
        assert!(r.join().unwrap(), "e1.finish() must panic on the leftover");
    }

    #[test]
    fn poison_aborts_a_blocked_peer() {
        let (e0, mut e1) = wire_pair();
        let world = e1.world();
        let blocked = std::thread::spawn(move || {
            e1.begin_phase(Phase::TensorAllGather);
            let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| e1.recv(&world, 0)));
            match out {
                Err(payload) => payload
                    .downcast_ref::<String>()
                    .cloned()
                    .unwrap_or_default(),
                Ok(_) => "no panic".to_string(),
            }
        });
        std::thread::sleep(Duration::from_millis(50));
        e0.poison_all();
        drop(e0);
        let msg = blocked.join().unwrap();
        assert!(msg.contains("panicked mid-run"), "got: {msg}");
    }

    #[test]
    fn silent_connection_loss_aborts_a_blocked_peer() {
        let (e0, mut e1) = wire_pair();
        let world = e1.world();
        let blocked = std::thread::spawn(move || {
            e1.begin_phase(Phase::TensorAllGather);
            let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| e1.recv(&world, 0)));
            match out {
                Err(payload) => payload
                    .downcast_ref::<String>()
                    .cloned()
                    .unwrap_or_default(),
                Ok(_) => "no panic".to_string(),
            }
        });
        std::thread::sleep(Duration::from_millis(50));
        drop(e0); // no poison, no FIN: sockets just close
        let msg = blocked.join().unwrap();
        assert!(msg.contains("connection lost mid-run"), "got: {msg}");
    }

    #[test]
    fn recv_times_out_instead_of_hanging() {
        let mut eps = TcpTransport::wire_loopback(2, Duration::from_secs(10)).unwrap();
        let mut e1 = eps.pop().unwrap();
        let _e0 = eps.pop().unwrap(); // alive but silent
        e1.timeout = Duration::from_millis(100);
        let world = e1.world();
        e1.begin_phase(Phase::TensorAllGather);
        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| e1.recv(&world, 0)));
        let payload = out.expect_err("must time out");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("no message for"), "got: {msg}");
    }
}
