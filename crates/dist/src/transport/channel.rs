//! The in-process channel transport: ranks are threads in one process and
//! every message is an owned `Vec<f64>` moved over an unbounded channel.
//!
//! This is the original fabric of the sharded runtime — zero
//! serialization, no sockets — and the reference implementation of the
//! [`Transport`] contract the TCP transport must match word for word.

use super::{ReorderBuffer, TrafficLedger, Transport};
use crossbeam::channel::{unbounded, Receiver, Sender};
use mttkrp_netsim::collectives::PeerExchange;
use mttkrp_netsim::schedule::Phase;
use mttkrp_netsim::Comm;
use std::sync::Arc;

/// A typed message in flight: who sent it, on which communicator, and the
/// payload words. A `poison` packet carries no data — it tells the
/// receiver that the sending rank panicked, so blocking on further
/// messages is hopeless and the receiver must abort too.
struct Packet {
    from: usize,
    comm_id: u64,
    payload: Vec<f64>,
    poison: bool,
}

/// The shared wiring of the machine: one sender handle per rank.
struct Wiring {
    senders: Vec<Sender<Packet>>,
}

/// One rank's handle onto the channel transport: its identity, mailbox,
/// reorder buffer, and traffic ledger. Created by [`wire`] and moved into
/// the rank's thread.
pub struct Endpoint {
    world_rank: usize,
    p: usize,
    wiring: Arc<Wiring>,
    receiver: Receiver<Packet>,
    pending: ReorderBuffer,
    ledger: TrafficLedger,
}

/// Creates the wiring for `p` ranks and returns one [`Endpoint`] per rank,
/// indexed by world rank.
pub fn wire(p: usize) -> Vec<Endpoint> {
    assert!(p >= 1, "need at least one rank");
    let mut senders = Vec::with_capacity(p);
    let mut receivers = Vec::with_capacity(p);
    for _ in 0..p {
        let (s, r) = unbounded();
        senders.push(s);
        receivers.push(r);
    }
    let wiring = Arc::new(Wiring { senders });
    receivers
        .into_iter()
        .enumerate()
        .map(|(world_rank, receiver)| Endpoint {
            world_rank,
            p,
            wiring: Arc::clone(&wiring),
            receiver,
            pending: ReorderBuffer::default(),
            ledger: TrafficLedger::default(),
        })
        .collect()
}

impl Endpoint {
    /// This rank's world rank in `[0, P)`.
    pub fn world_rank(&self) -> usize {
        self.world_rank
    }

    fn assert_member(&self, comm: &Comm) {
        assert!(
            comm.local_index(self.world_rank).is_some(),
            "rank {} is not a member of this communicator",
            self.world_rank
        );
    }
}

impl PeerExchange for Endpoint {
    fn world_rank(&self) -> usize {
        Endpoint::world_rank(self)
    }

    /// Simultaneous exchange: send to `dest`, then receive from `src`
    /// (both local indices in `comm`). The unbounded mailboxes make the
    /// send non-blocking, so this cannot deadlock.
    fn sendrecv(&mut self, comm: &Comm, dest: usize, data: &[f64], src: usize) -> Vec<f64> {
        Transport::send(self, comm, dest, data);
        Transport::recv(self, comm, src)
    }
}

impl Transport for Endpoint {
    fn num_ranks(&self) -> usize {
        self.p
    }

    fn begin_phase(&mut self, phase: Phase) {
        self.ledger.open(phase);
    }

    fn ledger(&self) -> &TrafficLedger {
        &self.ledger
    }

    fn send(&mut self, comm: &Comm, dest: usize, data: &[f64]) {
        self.assert_member(comm);
        let dest_world = comm.world_rank(dest);
        let t = self.ledger.current();
        t.words_sent += data.len() as u64;
        t.messages_sent += 1;
        if self.wiring.senders[dest_world]
            .send(Packet {
                from: self.world_rank,
                comm_id: comm.id(),
                payload: data.to_vec(),
                poison: false,
            })
            .is_err()
        {
            // The peer's mailbox is gone: it panicked and was dropped
            // mid-unwind. A chained abort, not an original failure.
            panic!(
                "rank {} aborting: send to peer rank {dest_world} failed mid-run (peer gone)",
                self.world_rank
            );
        }
    }

    fn recv(&mut self, comm: &Comm, src: usize) -> Vec<f64> {
        self.assert_member(comm);
        let src_world = comm.world_rank(src);
        let comm_id = comm.id();
        loop {
            if let Some(data) = self.pending.pop(src_world, comm_id) {
                self.ledger.current().words_received += data.len() as u64;
                return data;
            }
            let pkt = self
                .receiver
                .recv()
                .expect("transport closed while waiting for a message");
            assert!(
                !pkt.poison,
                "rank {} aborting: peer rank {} panicked mid-run",
                self.world_rank, pkt.from
            );
            self.pending.push(pkt.from, pkt.comm_id, pkt.payload);
        }
    }

    fn poison_all(&self) {
        for (dest, sender) in self.wiring.senders.iter().enumerate() {
            if dest == self.world_rank {
                continue;
            }
            // A dying peer may already be gone; ignore closed channels.
            let _ = sender.send(Packet {
                from: self.world_rank,
                comm_id: 0,
                payload: Vec::new(),
                poison: true,
            });
        }
    }

    fn finish(mut self) -> TrafficLedger {
        while let Ok(pkt) = self.receiver.try_recv() {
            // A poison from a dying peer after this rank already finished
            // its program is not a protocol violation of *this* rank; the
            // peer's own panic is already propagating.
            if pkt.poison {
                continue;
            }
            self.pending.push(pkt.from, pkt.comm_id, pkt.payload);
        }
        let leftover = self.pending.len();
        assert_eq!(
            leftover, 0,
            "rank {} finished with {} unconsumed message(s)",
            self.world_rank, leftover
        );
        self.ledger
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_moves_data_and_charges_phase() {
        let mut eps = wire(2);
        let mut e1 = eps.pop().unwrap();
        let mut e0 = eps.pop().unwrap();
        let world = e0.world();
        e0.begin_phase(Phase::TensorAllGather);
        e1.begin_phase(Phase::TensorAllGather);
        e0.send(&world, 1, &[1.0, 2.0, 3.0]);
        assert_eq!(e1.recv(&world, 0), vec![1.0, 2.0, 3.0]);
        let l0 = e0.finish();
        let l1 = e1.finish();
        assert_eq!(l0.phases()[0].words_sent, 3);
        assert_eq!(l0.phases()[0].messages_sent, 1);
        assert_eq!(l1.phases()[0].words_received, 3);
        assert_eq!(l0.totals().words_sent, 3);
    }

    #[test]
    fn traffic_lands_in_the_open_phase() {
        let mut eps = wire(2);
        let mut e1 = eps.pop().unwrap();
        let mut e0 = eps.pop().unwrap();
        let world = e0.world();
        for phase in [
            Phase::FactorAllGather { mode: 0 },
            Phase::OutputReduceScatter,
        ] {
            e0.begin_phase(phase);
            e1.begin_phase(phase);
            e0.send(&world, 1, &[4.0]);
            let _ = e1.recv(&world, 0);
        }
        let l0 = e0.finish();
        let l1 = e1.finish();
        assert_eq!(l0.phases().len(), 2);
        assert_eq!(l0.phases()[0].phase, Phase::FactorAllGather { mode: 0 });
        assert_eq!(l0.phases()[0].words_sent, 1);
        assert_eq!(l0.phases()[1].phase, Phase::OutputReduceScatter);
        assert_eq!(l0.phases()[1].words_sent, 1);
        assert_eq!(l1.phases()[1].words_received, 1);
    }

    #[test]
    fn messages_on_different_comms_do_not_mix() {
        let mut eps = wire(2);
        let mut e1 = eps.pop().unwrap();
        let mut e0 = eps.pop().unwrap();
        let world = e0.world();
        let sub = Comm::subset(vec![0, 1], 99);
        e0.begin_phase(Phase::TensorAllGather);
        e1.begin_phase(Phase::TensorAllGather);
        e0.send(&world, 1, &[1.0]);
        e0.send(&sub, 1, &[2.0]);
        // Receive in the opposite order of sending: selection by comm works.
        assert_eq!(e1.recv(&sub, 0), vec![2.0]);
        assert_eq!(e1.recv(&world, 0), vec![1.0]);
        e0.finish();
        e1.finish();
    }

    #[test]
    #[should_panic(expected = "unconsumed")]
    fn quiescence_check_catches_leftovers() {
        let mut eps = wire(2);
        let e1 = eps.pop().unwrap();
        let mut e0 = eps.pop().unwrap();
        let world = e0.world();
        e0.begin_phase(Phase::TensorAllGather);
        e0.send(&world, 1, &[1.0]);
        e1.finish();
    }

    #[test]
    #[should_panic(expected = "outside a phase")]
    fn traffic_outside_a_phase_is_rejected() {
        let mut eps = wire(2);
        let _e1 = eps.pop().unwrap();
        let mut e0 = eps.pop().unwrap();
        let world = e0.world();
        e0.send(&world, 1, &[1.0]);
    }
}
