//! Property tests for the TCP transport's wire codec: every frame the
//! transport can produce survives an encode/decode roundtrip byte-exactly,
//! and malformed inputs (truncations, oversized or impossible length
//! prefixes) are rejected instead of trusted.

use mttkrp_dist::transport::wire::{
    decode, encode, read_frame, Frame, WireError, CTRL_BASE, MAX_PAYLOAD_WORDS,
};
use proptest::prelude::*;

/// Deterministic payload of `len` words derived from `seed` (cheaper than
/// sampling 4096 words per case, same coverage of bit patterns).
fn payload(len: usize, seed: u64) -> Vec<f64> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            // xorshift64* — exercises sign, exponent, and mantissa bits.
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            f64::from_bits(state.wrapping_mul(0x2545F4914F6CDD1D))
        })
        .map(|w| if w.is_nan() { 0.5 } else { w })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn roundtrip_over_random_packets(
        from in 0usize..1024,
        comm_seed in 0u64..u64::MAX / 2,
        poison in any::<bool>(),
        len in 0usize..=4096,
        seed in 0u64..u64::MAX,
    ) {
        let comm_id = comm_seed % CTRL_BASE; // data ids stay out of the control range
        let frame = Frame {
            from: from as u32,
            comm_id,
            poison,
            payload: if poison { Vec::new() } else { payload(len, seed) },
            trace: None,
        };
        let bytes = encode(&frame);
        let back = decode(&bytes).expect("encoded frames must decode");
        // Byte-exact payloads (bit patterns, not float equality).
        prop_assert_eq!(back.from, frame.from);
        prop_assert_eq!(back.comm_id, frame.comm_id);
        prop_assert_eq!(back.poison, frame.poison);
        prop_assert_eq!(back.payload.len(), frame.payload.len());
        for (a, b) in back.payload.iter().zip(&frame.payload) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        // And the stream reader agrees with the slice decoder.
        let mut cursor = std::io::Cursor::new(bytes);
        prop_assert_eq!(read_frame(&mut cursor).unwrap(), back);
    }

    #[test]
    fn every_truncation_is_rejected(
        len in 0usize..=64,
        seed in 0u64..u64::MAX,
        cut_frac in 0.0f64..1.0,
    ) {
        let frame = Frame::data(3, 42, payload(len, seed));
        let bytes = encode(&frame);
        // Cut strictly inside the frame: decode must fail, never panic,
        // never return a frame.
        let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
        let err = decode(&bytes[..cut]).expect_err("truncated frame accepted");
        prop_assert!(matches!(err, WireError::Truncated { .. }), "{err:?}");
    }

    #[test]
    fn oversized_length_prefixes_are_rejected(
        excess_words in 1usize..1024,
        junk in 0u8..255,
    ) {
        // A prefix promising more payload than the cap, followed by junk:
        // the decoder must refuse before allocating or reading it.
        let body = 13 + 8 * (MAX_PAYLOAD_WORDS + excess_words);
        let mut bytes = (body as u32).to_le_bytes().to_vec();
        bytes.extend(std::iter::repeat_n(junk, 32));
        let err = decode(&bytes).expect_err("oversized frame accepted");
        prop_assert!(matches!(err, WireError::Oversized { .. }), "{err:?}");
    }
}
