//! Property tests for the sharded runtime, generic over the transport:
//! across random shapes, rank counts `P ∈ {1, 2, 4, 8}`, and grid
//! factorizations — over in-process channels *and* loopback TCP sockets —
//!
//! 1. `DistBackend` matches the sequential oracle to 1e-10 (and the
//!    simulator bitwise — same shards, same ring order, same kernel);
//! 2. each rank's measured sent/received word counts equal the netsim
//!    schedule prediction, collective by collective.

use mttkrp_core::{par, Problem};
use mttkrp_dist::{
    mttkrp_dist_general_on, mttkrp_dist_stationary_on, DistBackend, DistRun, TransportKind,
};
use mttkrp_exec::{Backend, MachineSpec, Planner, SimBackend};
use mttkrp_netsim::schedule;
use mttkrp_tensor::{mttkrp_reference, DenseTensor, Matrix, Shape};
use proptest::prelude::*;

fn build(dims: &[usize], r: usize, seed: u64) -> (DenseTensor, Vec<Matrix>) {
    let shape = Shape::new(dims);
    let x = DenseTensor::random(shape, seed);
    let factors = dims
        .iter()
        .enumerate()
        .map(|(k, &d)| Matrix::random(d, r, seed ^ ((k as u64 + 1) * 7919)))
        .collect();
    (x, factors)
}

/// Distributes `p = 2^exp` ranks over `order` grid dimensions using the
/// selector digits, returning a grid whose product is `p`.
fn pick_grid(mut exp: u32, order: usize, selector: u64) -> Vec<usize> {
    let mut grid = vec![1usize; order];
    let mut sel = selector;
    while exp > 0 {
        grid[(sel % order as u64) as usize] *= 2;
        sel = sel / order as u64 + 1;
        exp -= 1;
    }
    grid
}

/// The whole-backend property, shared by both transports: oracle within
/// 1e-10 always; for parallel plans, bitwise identity with the simulator
/// and per-collective schedule word-exactness.
fn backend_matches_oracle_and_sim(
    kind: TransportKind,
    dim_sel: &[usize],
    r: usize,
    seed: u64,
    ranks_exp: u32,
    mode_frac: f64,
) {
    // Dims are multiples of 2 up to 8 so that dividing grids exist for
    // most rank counts; when none does, plan_executable falls back to
    // a sequential plan, which the backend must also handle.
    let dims: Vec<usize> = dim_sel.iter().map(|&s| 2 * s).collect();
    let mode = ((dims.len() - 1) as f64 * mode_frac) as usize;
    let ranks = 1usize << ranks_exp; // P ∈ {1, 2, 4, 8}
    let (x, factors) = build(&dims, r, seed);
    let refs: Vec<&Matrix> = factors.iter().collect();
    let problem = Problem::from_shape(x.shape(), r);

    let plan =
        Planner::new(MachineSpec::cluster(ranks, 1, 1 << 14)).plan_executable(&problem, mode);
    let backend = DistBackend::with_transport(kind);
    let out = backend.run_instrumented(&plan, &x, &refs);

    // 1e-10 of the sequential oracle, always.
    let oracle = mttkrp_reference(&x, &refs, mode);
    assert!(
        out.report.output.max_abs_diff(&oracle) < 1e-10,
        "{kind:?}, P = {ranks}, dims {dims:?}, mode {mode}: diff {}",
        out.report.output.max_abs_diff(&oracle)
    );

    if !plan.algorithm.is_sequential() {
        // Bitwise identical to the simulator replaying the same plan.
        let sim = SimBackend::new().execute(&plan, &x, &refs);
        assert!(out.report.output.data() == sim.output.data());

        // Measured traffic == netsim prediction, collective by
        // collective, on every rank.
        let predicted = DistBackend::predicted_schedule(&plan).unwrap();
        assert_eq!(out.ledgers.len(), predicted.num_ranks());
        for (me, ledger) in out.ledgers.iter().enumerate() {
            assert!(
                ledger.matches(&predicted.ranks[me].phases),
                "{kind:?} rank {me}:\n{}",
                ledger.diff_table(&predicted.ranks[me].phases)
            );
        }
    }
}

/// The Algorithm 3 sweep body, shared by both transports: bitwise output
/// identity against the netsim run and `ledger == schedule` per
/// collective on a random factorization of `P` over the modes.
fn stationary_sweep(
    kind: TransportKind,
    mults: &[usize],
    r: usize,
    seed: u64,
    ranks_exp: u32,
    selector: u64,
    mode_frac: f64,
) {
    let grid = pick_grid(ranks_exp, mults.len(), selector);
    let dims: Vec<usize> = grid.iter().zip(mults).map(|(&g, &m)| g * m).collect();
    let mode = ((dims.len() - 1) as f64 * mode_frac) as usize;
    let (x, factors) = build(&dims, r, seed);
    let refs: Vec<&Matrix> = factors.iter().collect();

    let dist: DistRun = mttkrp_dist_stationary_on(kind, &x, &refs, mode, &grid);
    let sim = par::mttkrp_stationary(&x, &refs, mode, &grid);
    assert!(dist.output.data() == sim.output.data());
    assert_eq!(&dist.stats, &sim.stats);

    let predicted = schedule::alg3_schedule(&dims, r, mode, &grid);
    for (me, ledger) in dist.ledgers.iter().enumerate() {
        assert!(
            ledger.matches(&predicted.ranks[me].phases),
            "{kind:?} rank {me}:\n{}",
            ledger.diff_table(&predicted.ranks[me].phases)
        );
    }
    let oracle = mttkrp_reference(&x, &refs, mode);
    assert!(dist.output.max_abs_diff(&oracle) < 1e-10);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn dist_backend_matches_oracle_and_sim_across_ranks(
        dim_sel in prop::collection::vec(1usize..5, 3..=4),
        r in 1usize..7,
        seed in 0u64..1000,
        ranks_exp in 0u32..4,
        mode_frac in 0.0f64..1.0,
    ) {
        backend_matches_oracle_and_sim(
            TransportKind::Channel, &dim_sel, r, seed, ranks_exp, mode_frac,
        );
    }

    #[test]
    fn dist_backend_matches_oracle_and_sim_over_tcp(
        dim_sel in prop::collection::vec(1usize..5, 3..=4),
        r in 1usize..7,
        seed in 0u64..1000,
        ranks_exp in 0u32..4,
        mode_frac in 0.0f64..1.0,
    ) {
        backend_matches_oracle_and_sim(
            TransportKind::Tcp, &dim_sel, r, seed, ranks_exp, mode_frac,
        );
    }

    #[test]
    fn stationary_matches_schedule_on_random_grids(
        mults in prop::collection::vec(1usize..4, 3..=3),
        r in 1usize..5,
        seed in 0u64..1000,
        ranks_exp in 0u32..4,
        selector in 0u64..10_000,
        mode_frac in 0.0f64..1.0,
    ) {
        stationary_sweep(
            TransportKind::Channel, &mults, r, seed, ranks_exp, selector, mode_frac,
        );
    }

    #[test]
    fn stationary_matches_schedule_on_random_grids_over_tcp(
        mults in prop::collection::vec(1usize..4, 3..=3),
        r in 1usize..5,
        seed in 0u64..1000,
        ranks_exp in 0u32..4,
        selector in 0u64..10_000,
        mode_frac in 0.0f64..1.0,
    ) {
        stationary_sweep(
            TransportKind::Tcp, &mults, r, seed, ranks_exp, selector, mode_frac,
        );
    }

    #[test]
    fn general_matches_schedule_on_random_grids(
        mults in prop::collection::vec(1usize..4, 3..=3),
        r_base in 1usize..4,
        seed in 0u64..1000,
        p0_exp in 0u32..3,
        grid_exp in 0u32..3,
        selector in 0u64..10_000,
        mode_frac in 0.0f64..1.0,
    ) {
        let p0 = 1usize << p0_exp;
        let r = r_base * p0; // P_0 divides R by construction
        let grid = pick_grid(grid_exp, mults.len(), selector);
        let dims: Vec<usize> = grid.iter().zip(&mults).map(|(&g, &m)| g * m).collect();
        let mode = ((dims.len() - 1) as f64 * mode_frac) as usize;
        let (x, factors) = build(&dims, r, seed);
        let refs: Vec<&Matrix> = factors.iter().collect();

        // Alternate fabrics across cases: Algorithm 4's four-collective
        // schedule runs the TCP codec on half the sweep at no extra cost.
        let kind = if seed % 2 == 0 { TransportKind::Channel } else { TransportKind::Tcp };
        let dist = mttkrp_dist_general_on(kind, &x, &refs, mode, p0, &grid);
        let sim = par::mttkrp_general(&x, &refs, mode, p0, &grid);
        prop_assert!(dist.output.data() == sim.output.data());
        prop_assert_eq!(&dist.stats, &sim.stats);

        let predicted = schedule::alg4_schedule(&dims, r, mode, p0, &grid);
        for (me, ledger) in dist.ledgers.iter().enumerate() {
            prop_assert!(
                ledger.matches(&predicted.ranks[me].phases),
                "{kind:?} rank {me}:\n{}",
                ledger.diff_table(&predicted.ranks[me].phases)
            );
        }
        let oracle = mttkrp_reference(&x, &refs, mode);
        prop_assert!(dist.output.max_abs_diff(&oracle) < 1e-10);
    }
}

/// The acceptance configuration, pinned as a plain test — once per
/// transport: a >= 4-rank dist run is bit-identical to the single-node
/// executor's result for the same plan, and its per-rank traffic equals
/// the netsim prediction.
#[test]
fn four_rank_run_is_bit_identical_and_word_exact() {
    for kind in [TransportKind::Channel, TransportKind::Tcp] {
        let (x, factors) = build(&[16, 16, 16], 8, 42);
        let refs: Vec<&Matrix> = factors.iter().collect();
        let problem = Problem::from_shape(x.shape(), 8);
        let machine = MachineSpec::cluster(4, 1, 1 << 16);
        let plan = Planner::new(machine.clone()).plan_executable(&problem, 0);
        assert!(!plan.algorithm.is_sequential(), "expected a parallel plan");

        // Single-node execution of the same plan (what plan_and_execute runs).
        let (single_plan, single) = mttkrp_exec::plan_and_execute(&machine, &x, &refs, 0);
        assert_eq!(single_plan.algorithm, plan.algorithm);

        let out = DistBackend::with_transport(kind).run_instrumented(&plan, &x, &refs);
        assert_eq!(
            out.report.output.data(),
            single.output.data(),
            "{kind:?}: dist output must be bit-identical to the single-node executor"
        );

        let predicted = DistBackend::predicted_schedule(&plan).unwrap();
        assert!(predicted.num_ranks() >= 4);
        for (me, ledger) in out.ledgers.iter().enumerate() {
            assert!(
                ledger.matches(&predicted.ranks[me].phases),
                "{kind:?}: rank {me} traffic deviates from the netsim schedule:\n{}",
                ledger.diff_table(&predicted.ranks[me].phases)
            );
            assert_eq!(ledger.totals(), predicted.ranks[me].totals());
        }
    }
}
