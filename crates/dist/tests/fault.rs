//! Fault injection: a rank that dies mid-collective must abort every peer
//! within a bounded time — no deadlock — and the *original* failure must
//! be what propagates, on both transports.
//!
//! Every scenario runs under a watchdog: the machine is driven on a
//! helper thread and the test fails if it does not resolve within
//! `WATCHDOG` — a hang is reported as a failure, not as a stuck test
//! suite. (The multi-process SIGKILL variant of these scenarios lives in
//! `crates/bench/tests/tcp_cli.rs`, where the CLI launcher can kill real
//! rank processes.)

use mttkrp_dist::transport::{wire, TcpTransport};
use mttkrp_dist::{collectives, run_spmd, Transport};
use mttkrp_netsim::schedule::Phase;
use std::time::Duration;

const WATCHDOG: Duration = Duration::from_secs(60);

/// Runs `f` on its own thread and panics if it has not finished within
/// the watchdog — turning a would-be deadlock into a test failure.
fn bounded<O: Send + 'static>(f: impl FnOnce() -> O + Send + 'static) -> O {
    use std::sync::mpsc::RecvTimeoutError;
    let (tx, rx) = std::sync::mpsc::channel();
    let worker = std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(WATCHDOG) {
        Ok(out) => {
            worker.join().expect("worker already delivered its result");
            out
        }
        // Sender dropped without a value: the scenario itself panicked —
        // rethrow its assertion rather than masking it as a hang.
        Err(RecvTimeoutError::Disconnected) => match worker.join() {
            Err(payload) => std::panic::resume_unwind(payload),
            Ok(()) => unreachable!("worker finished without sending its result"),
        },
        Err(RecvTimeoutError::Timeout) => {
            panic!("fault scenario did not resolve within {WATCHDOG:?} — deadlock?")
        }
    }
}

/// The panic payload as text, however it was thrown.
fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// One rank panics just before the collective; every other rank is
/// blocked inside it. The machine must wind down and rethrow the
/// original panic.
fn panic_mid_collective<T: Transport + 'static>(endpoints: Vec<T>) {
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
        run_spmd(endpoints, |ep| {
            let world = ep.world();
            let me = mttkrp_netsim::collectives::PeerExchange::world_rank(ep);
            ep.begin_phase(Phase::TensorAllGather);
            if me == 1 {
                panic!("injected fault on rank 1");
            }
            collectives::all_gather(ep, &world, &vec![me as f64; 64])
        })
    }));
    let msg = panic_text(result.expect_err("the machine must fail"));
    assert!(
        msg.contains("injected fault on rank 1"),
        "the original failure must propagate, got: {msg}"
    );
}

#[test]
fn channel_rank_panic_aborts_all_peers_bounded() {
    bounded(|| panic_mid_collective(mttkrp_dist::wire(4)));
}

#[test]
fn tcp_rank_panic_aborts_all_peers_bounded() {
    bounded(|| {
        let eps = TcpTransport::wire_loopback(4, Duration::from_secs(30)).unwrap();
        panic_mid_collective(eps)
    });
}

/// A TCP rank that vanishes *without* a poison frame (dropped transport =
/// closed sockets, the observable shape of SIGKILL) must still abort a
/// peer blocked on it, with a diagnostic naming the lost peer.
#[test]
fn tcp_silent_death_aborts_blocked_peer_bounded() {
    bounded(|| {
        let mut eps = TcpTransport::wire_loopback(3, Duration::from_secs(30)).unwrap();
        let e2 = eps.pop().unwrap();
        let e1 = eps.pop().unwrap();
        let e0 = eps.pop().unwrap();
        // Rank 0 "is killed": no FIN, no poison, sockets just close.
        drop(e0);
        let block = |mut ep: TcpTransport| {
            std::thread::spawn(move || {
                let world = ep.world();
                ep.begin_phase(Phase::TensorAllGather);
                let out =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| ep.recv(&world, 0)));
                panic_text(out.expect_err("blocked rank must abort"))
            })
        };
        let (t1, t2) = (block(e1), block(e2));
        for t in [t1, t2] {
            let msg = t.join().unwrap();
            assert!(
                msg.contains("peer rank 0 connection lost"),
                "peers must name the lost rank, got: {msg}"
            );
        }
    });
}

/// A poison frame (announced panic) beats silence: the peer aborts with
/// the "panicked" diagnostic even though the connection also dies.
#[test]
fn tcp_poison_frame_reports_the_panic_bounded() {
    bounded(|| {
        let mut eps = TcpTransport::wire_loopback(2, Duration::from_secs(30)).unwrap();
        let mut e1 = eps.pop().unwrap();
        let e0 = eps.pop().unwrap();
        let blocked = std::thread::spawn(move || {
            let world = e1.world();
            e1.begin_phase(Phase::TensorAllGather);
            let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| e1.recv(&world, 0)));
            panic_text(out.expect_err("poisoned rank must abort"))
        });
        std::thread::sleep(Duration::from_millis(30));
        e0.poison_all();
        drop(e0);
        let msg = blocked.join().unwrap();
        assert!(msg.contains("peer rank 0 panicked"), "got: {msg}");
    });
}

/// Whole-machine fault during a real MTTKRP: one rank of an Algorithm 3
/// run panics inside the factor all-gather (simulating a node loss
/// mid-algorithm); the run must abort on both transports with the
/// original failure.
#[test]
fn mttkrp_run_survives_rank_loss_without_deadlock() {
    for tcp in [false, true] {
        bounded(move || {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                if tcp {
                    let eps = TcpTransport::wire_loopback(4, Duration::from_secs(30)).unwrap();
                    run_spmd(eps, fault_program)
                } else {
                    run_spmd(mttkrp_dist::wire(4), fault_program)
                }
            }));
            let msg = panic_text(result.expect_err("the machine must fail"));
            assert!(
                msg.contains("node 2 lost"),
                "transport tcp={tcp}: original failure must propagate, got: {msg}"
            );
        });
    }
}

/// Shared rank program for [`mttkrp_run_survives_rank_loss_without_deadlock`]:
/// two ring steps, then rank 2 dies mid-phase.
fn fault_program<T: Transport>(ep: &mut T) -> Vec<f64> {
    let world = ep.world();
    let me = mttkrp_netsim::collectives::PeerExchange::world_rank(ep);
    ep.begin_phase(Phase::FactorAllGather { mode: 0 });
    let gathered = collectives::all_gather(ep, &world, &[me as f64]);
    ep.begin_phase(Phase::OutputReduceScatter);
    if me == 2 {
        panic!("node 2 lost");
    }
    collectives::reduce_scatter(ep, &world, &gathered, &[1, 1, 1, 1])
}

/// Frames that reach a reader garbled (a corrupt length prefix) are a
/// connection-level failure, not a hang: the receiving rank aborts.
#[test]
fn tcp_garbled_stream_aborts_the_receiver_bounded() {
    bounded(|| {
        use std::io::Write;
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        // A fake rank 1 that speaks a valid HELLO, then garbage.
        let rogue = std::thread::spawn(move || {
            let stream = std::net::TcpStream::connect(addr).unwrap();
            wire::write_frame(
                &mut &stream,
                &wire::Frame::data(1, wire::CTRL_HELLO, vec![1.0]),
            )
            .unwrap();
            // Table comes back; ignore it, then send an impossible frame.
            let _ = wire::read_frame(&mut &stream);
            (&stream).write_all(&u32::MAX.to_le_bytes()).unwrap();
            (&stream).write_all(&[0u8; 64]).unwrap();
            // Keep the socket open so only the garbage can unblock rank 0.
            std::thread::sleep(Duration::from_secs(5));
        });
        let mut e0 = TcpTransport::host_on(listener, 2, Duration::from_secs(30)).unwrap();
        let world = e0.world();
        e0.begin_phase(Phase::TensorAllGather);
        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| e0.recv(&world, 1)));
        let msg = panic_text(out.expect_err("garbage must abort the receiver"));
        assert!(msg.contains("connection lost"), "got: {msg}");
        drop(e0);
        rogue.join().unwrap();
    });
}
