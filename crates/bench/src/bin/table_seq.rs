//! **TAB-SEQ**: the sequential optimality table implied by Theorem 6.1 —
//! Algorithm 2's communication (exact model, cross-checked by execution at
//! small sizes) over the best lower bound `max(W_lb1, W_lb2)`
//! (Theorem 4.1 / Fact 4.1), swept over fast-memory sizes, tensor orders,
//! and ranks. Theorem 6.1 says this ratio is bounded by a constant whenever
//! `M` is large relative to `N` and small relative to the `I_k`.
//!
//! Run with: `cargo run --release -p mttkrp-bench --bin table_seq`

use mttkrp_bench::{eng, header, row, setup_problem};
use mttkrp_core::{bounds, model, seq, Problem};
use mttkrp_tensor::Matrix;

fn ratio_row(p: &Problem, m: u64) -> (u64, f64, f64) {
    let b = seq::choose_block_size(m as usize, p.order()) as u64;
    let wub = model::alg2_cost_exact(p, 0, b) as f64;
    let wlb = bounds::seq_best(p, m).max(1.0);
    (b, wub, wub / wlb)
}

fn main() {
    println!("# TAB-SEQ: Algorithm 2 vs sequential lower bounds (Theorem 6.1)\n");

    println!("## Model-scale sweep (cubical, N = 3, I_k = 2^12, R = 64)\n");
    header(&["M", "b", "W_alg2", "W_lb", "ratio"]);
    let p = Problem::cubical(3, 1 << 12, 64);
    for &log_m in &[6u32, 8, 10, 12, 14, 16, 18] {
        let m = 1u64 << log_m;
        let (b, wub, ratio) = ratio_row(&p, m);
        let wlb = bounds::seq_best(&p, m);
        row(&[
            format!("2^{log_m}"),
            format!("{b}"),
            eng(wub),
            eng(wlb),
            format!("{ratio:.2}"),
        ]);
    }

    println!("\n## Order sweep (I = 2^24 total, R = 32, M = 2^12)\n");
    header(&["N", "I_k", "b", "W_alg2", "W_lb", "ratio"]);
    for &order in &[2usize, 3, 4, 6] {
        let dim = 1u64 << (24 / order as u32);
        let p = Problem::cubical(order, dim, 32);
        let m = 1u64 << 12;
        let (b, wub, ratio) = ratio_row(&p, m);
        let wlb = bounds::seq_best(&p, m);
        row(&[
            format!("{order}"),
            format!("2^{}", 24 / order),
            format!("{b}"),
            eng(wub),
            eng(wlb),
            format!("{ratio:.2}"),
        ]);
    }

    println!("\n## Rank sweep (N = 3, I_k = 2^10, M = 2^10)\n");
    header(&["R", "W_alg2", "W_lb", "ratio"]);
    for &r in &[1u64, 4, 16, 64, 256, 1024] {
        let p = Problem::cubical(3, 1 << 10, r);
        let (_, wub, ratio) = ratio_row(&p, 1 << 10);
        let wlb = bounds::seq_best(&p, 1 << 10);
        row(&[format!("{r}"), eng(wub), eng(wlb), format!("{ratio:.2}")]);
    }

    println!("\n## Executed cross-check (simulator measured == exact model)\n");
    header(&["dims", "R", "M", "b", "measured", "model", "match"]);
    for (dims, r, m) in [
        (vec![8usize, 8, 8], 4usize, 64usize),
        (vec![12, 8, 10], 3, 100),
        (vec![6, 6, 6, 6], 2, 96),
    ] {
        let (x, factors) = setup_problem(&dims, r, 11);
        let refs: Vec<&Matrix> = factors.iter().collect();
        let b = seq::choose_block_size(m, dims.len());
        let run = seq::mttkrp_blocked(&x, &refs, 0, m, b);
        let p = Problem::new(
            &dims.iter().map(|&d| d as u64).collect::<Vec<u64>>(),
            r as u64,
        );
        let modeled = model::alg2_cost_exact(&p, 0, b as u64);
        let ok = run.stats.total() as u128 == modeled;
        row(&[
            format!("{dims:?}"),
            format!("{r}"),
            format!("{m}"),
            format!("{b}"),
            format!("{}", run.stats.total()),
            format!("{modeled}"),
            format!("{ok}"),
        ]);
        assert!(ok, "measured I/O diverged from the exact model");
    }
    println!("\nTheorem 6.1: ratios stay O(1) across the sweeps (rising only when");
    println!("M approaches the problem size and the bounds go vacuous).");
}
