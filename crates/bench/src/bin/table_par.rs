//! **TAB-PAR**: the parallel optimality table implied by Theorem 6.2 —
//! Algorithm 4's best-grid communication (Eq. (18)) over the
//! memory-independent lower bounds (Theorems 4.2/4.3), swept over processor
//! counts in both Corollary 4.2 regimes, plus executed small-P rows where
//! the simulator's measured words are checked against the model.
//!
//! Run with: `cargo run --release -p mttkrp-bench --bin table_par`

use mttkrp_bench::{eng, header, row, setup_problem};
use mttkrp_core::{bounds, grid_opt, model, par, Problem};
use mttkrp_tensor::Matrix;

fn main() {
    println!("# TAB-PAR: Algorithm 4 vs parallel lower bounds (Theorem 6.2)\n");

    println!("## Small-P regime (NR << (I/P)^(1-1/N)): I_k = 2^12, R = 16\n");
    header(&["log2 P", "best P0", "W_alg4", "W_lb", "ratio", "regime"]);
    let p_small = Problem::cubical(3, 1 << 12, 16);
    for &log_p in &[3u32, 6, 9, 12, 15, 18] {
        let procs = 1u64 << log_p;
        let (p0, _, cost) = grid_opt::optimize_alg4_grid(&p_small, procs);
        let lb = bounds::par_best_mi(&p_small, procs).max(1.0);
        let regime = if bounds::cor42_large_p_regime(&p_small, procs) {
            "large-P"
        } else {
            "small-P"
        };
        row(&[
            format!("{log_p}"),
            format!("{p0}"),
            eng(cost),
            eng(lb),
            format!("{:.2}", cost / lb),
            regime.to_string(),
        ]);
    }

    println!("\n## Large-P regime (NR >> (I/P)^(1-1/N)): I_k = 2^8, R = 2^12\n");
    header(&["log2 P", "best P0", "W_alg4", "W_lb", "ratio", "regime"]);
    let p_large = Problem::cubical(3, 1 << 8, 1 << 12);
    for &log_p in &[4u32, 8, 12, 16, 20] {
        let procs = 1u64 << log_p;
        let (p0, _, cost) = grid_opt::optimize_alg4_grid(&p_large, procs);
        let lb = bounds::par_best_mi(&p_large, procs).max(1.0);
        let regime = if bounds::cor42_large_p_regime(&p_large, procs) {
            "large-P"
        } else {
            "small-P"
        };
        row(&[
            format!("{log_p}"),
            format!("{p0}"),
            eng(cost),
            eng(lb),
            format!("{:.2}", cost / lb),
            regime.to_string(),
        ]);
    }

    println!("\n## Executed cross-check (measured == Eq. (14)/(18) model, even cases)\n");
    header(&[
        "algorithm",
        "dims",
        "R",
        "grid",
        "measured w/rank",
        "model",
        "match",
    ]);

    // Algorithm 3, even case.
    {
        let dims = [8usize, 8, 8];
        let (x, factors) = setup_problem(&dims, 4, 21);
        let refs: Vec<&Matrix> = factors.iter().collect();
        let run = par::mttkrp_stationary(&x, &refs, 0, &[2, 2, 2]);
        let p = Problem::new(&[8, 8, 8], 4);
        let modeled = model::alg3_cost(&p, &[2, 2, 2]);
        let ok = run.max_recv_words() as f64 == modeled;
        row(&[
            "alg3".into(),
            "8x8x8".into(),
            "4".into(),
            "2x2x2".into(),
            format!("{}", run.max_recv_words()),
            eng(modeled),
            format!("{ok}"),
        ]);
        assert!(ok);
    }
    // Algorithm 4, even case.
    {
        let dims = [8usize, 8, 8];
        let (x, factors) = setup_problem(&dims, 8, 22);
        let refs: Vec<&Matrix> = factors.iter().collect();
        let run = par::mttkrp_general(&x, &refs, 0, 2, &[2, 2, 2]);
        let p = Problem::new(&[8, 8, 8], 8);
        let modeled = model::alg4_cost(&p, 2, &[2, 2, 2]);
        let ok = run.max_recv_words() as f64 == modeled;
        row(&[
            "alg4".into(),
            "8x8x8".into(),
            "8".into(),
            "P0=2, 2x2x2".into(),
            format!("{}", run.max_recv_words()),
            eng(modeled),
            format!("{ok}"),
        ]);
        assert!(ok);
    }
    // Measured lower-bound sanity: no executed run beats the LP bound.
    {
        let dims = [8usize, 8, 8];
        let (x, factors) = setup_problem(&dims, 4, 23);
        let refs: Vec<&Matrix> = factors.iter().collect();
        let run = par::mttkrp_stationary(&x, &refs, 0, &[2, 2, 2]);
        let p = Problem::new(&[8, 8, 8], 4);
        let lb = bounds::par_best_mi(&p, 8);
        println!(
            "\nmeasured max words/rank {} >= memory-independent bound {:.1}: {}",
            run.summary.max_words,
            lb,
            run.summary.max_words as f64 >= lb
        );
        assert!(run.summary.max_words as f64 >= lb);
    }

    println!("\nTheorem 6.2: the Eq.(18)/lower-bound ratio stays O(1) in both");
    println!("regimes; the optimal P0 switches from 1 to >1 exactly when the");
    println!("large-P regime begins. (W_alg4 follows the paper's convention of");
    println!("charging each bucket collective once, (q-1)w; the lower bounds");
    println!("count sends+receives, so a ratio slightly below 1 is consistent —");
    println!("doubling W_alg4 gives the sends+receives figure.)");
}
