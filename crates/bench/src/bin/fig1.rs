//! Regenerates **Figure 1** of the paper: a subset `F` of the 4-way
//! iteration space (`N = 3`, `I_k = 15`, `R = 4`) and its projections onto
//! the data arrays — the geometric heart of the lower-bound proof
//! (Lemma 4.1).
//!
//! Prints the six example points a-f, each projection `phi_j(F)` as an
//! ASCII grid, the projection sizes, and the Hölder-Brascamp-Lieb bound
//! `|F| <= prod_j |phi_j(F)|^{s*_j}`.
//!
//! Run with: `cargo run --release -p mttkrp-bench --bin fig1`

use mttkrp_core::hbl;

fn main() {
    let points = hbl::figure1_points();
    let labels = ["a", "b", "c", "d", "e", "f"];
    let order = 3;

    println!("# Figure 1: iteration-space subset and its projections\n");
    println!("Subset F of [15]^3 x [4] (coordinates 1-based as in the paper):");
    for (l, p) in labels.iter().zip(&points) {
        println!("  {l} = ({}, {}, {}, r={})", p[0], p[1], p[2], p[3]);
    }

    // Factor-matrix projections phi_j, j in [N]: (i_j, r) grids of 15 x 4.
    for j in 0..order {
        println!(
            "\nphi_{}(F)  — entries of factor A^({}) touched (rows i_{}, cols r):",
            j + 1,
            j + 1,
            j + 1
        );
        let mut grid = vec![[' '; 4]; 15];
        for (l, p) in labels.iter().zip(&points) {
            grid[p[j] - 1][p[3] - 1] = l.chars().next().unwrap();
        }
        println!("      r=1 r=2 r=3 r=4");
        for (i, rowc) in grid.iter().enumerate() {
            if rowc.iter().all(|&c| c == ' ') {
                continue;
            }
            print!("  i={:>2}", i + 1);
            for &c in rowc {
                print!("  {c} ");
            }
            println!();
        }
    }

    // Tensor projection phi_4: the (i1, i2, i3) coordinates.
    println!("\nphi_4(F)  — tensor entries touched (i1, i2, i3):");
    for (l, p) in labels.iter().zip(&points) {
        println!("  {l} -> ({}, {}, {})", p[0], p[1], p[2]);
    }

    let sizes = hbl::projection_sizes(&points, order);
    let s = hbl::optimal_exponents(order);
    let bound = hbl::hbl_upper_bound(&points, order);
    println!("\nprojection sizes |phi_j(F)| = {sizes:?}");
    println!(
        "optimal exponents s* = ({:.3}, {:.3}, {:.3}, {:.3}), sum = {:.3} = 2 - 1/N",
        s[0],
        s[1],
        s[2],
        s[3],
        s.iter().sum::<f64>()
    );
    println!(
        "Lemma 4.1: |F| = {} <= prod |phi_j|^(s*_j) = {:.3}  ({})",
        points.len(),
        bound,
        if (points.len() as f64) <= bound {
            "holds"
        } else {
            "VIOLATED"
        }
    );
    assert!((points.len() as f64) <= bound);
}
