//! Regenerates **Figure 2** of the paper: the sequential blocked algorithm's
//! data access pattern (`N = 3`, mode `n = 2` in the paper's 1-based
//! numbering, i.e. `n = 1` here) — which subtensor block and which factor
//! subcolumns are touched together — plus the measured I/O of the real
//! blocked run it illustrates.
//!
//! Run with: `cargo run --release -p mttkrp-bench --bin fig2`

use mttkrp_bench::setup_problem;
use mttkrp_core::{model, seq, Problem};
use mttkrp_tensor::Matrix;

fn main() {
    let dims = [9usize, 9, 9];
    let (r, n, b, m) = (2usize, 1usize, 3usize, 64usize);
    println!(
        "# Figure 2: sequential blocked algorithm (N = 3, n = {}, b = {b})\n",
        n + 1
    );

    // ASCII sketch of one iteration: block (j1, j2, j3) = (1, 1, 1)
    // (0-based (0,0,0)) touching X block and the three subvectors.
    println!("One step of Algorithm 2 (block at j = (1,1,1), extent b = {b}):\n");
    println!("        A^(1)(j1:J1, r)        X(j1:J1, j2:J2, j3:J3)      A^(3)(j3:J3, r)");
    for i in 0..9 {
        let a1 = if i < b { "|#|" } else { "| |" };
        let b2 = if i < b { "===" } else { "   " };
        let x = if i < b { "[###......]" } else { "[.........]" };
        let a3 = if i < b { "|#|" } else { "| |" };
        println!(
            "    {a1}                   {x}                  {a3}   {}",
            if i == 0 {
                format!("B^(2)(j2:J2, r) = {b2}")
            } else {
                String::new()
            }
        );
    }
    println!("\n(# = loaded this step; the X block is loaded once, the factor");
    println!("subvectors once per rank-column r, and B's subvector is loaded");
    println!("and stored once per r — Eq. (12).)\n");

    // Execute the real thing and verify the visit accounting.
    let (x, factors) = setup_problem(&dims, r, 2);
    let refs: Vec<&Matrix> = factors.iter().collect();
    let run = seq::mttkrp_blocked(&x, &refs, n, m, b);
    let problem = Problem::new(&[9, 9, 9], r as u64);
    let exact = model::alg2_cost_exact(&problem, n, b as u64);
    let upper = model::alg2_cost_upper(&problem, b as u64);

    println!("measured on the strict memory simulator (M = {m} words):");
    println!("  loads + stores  = {}", run.stats.total());
    println!("  exact model     = {exact}");
    println!("  Eq. (12) upper  = {upper:.0}");
    println!(
        "  peak fast usage = {} (Eq. (11) cap: b^N + N*b = {})",
        run.peak_fast,
        b.pow(3) + 3 * b
    );
    assert_eq!(run.stats.total() as u128, exact);
    assert!(run.peak_fast <= b.pow(3) + 3 * b);
    println!("\nmeasured == model: the blocked walk moves exactly the words Eq. (12) counts");
}
