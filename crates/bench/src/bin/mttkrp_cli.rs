//! Command-line driver: run any of the repository's MTTKRP algorithms on a
//! synthetic problem and report measured communication next to the paper's
//! bounds and models.
//!
//! ```text
//! USAGE:
//!   mttkrp_cli --dims 16x16x16 --rank 8 --mode 0 [--seed 1] <algorithm>
//!
//! algorithms:
//!   alg1 --memory M            sequential unblocked (Algorithm 1)
//!   alg2 --memory M [--block b]  sequential blocked (Algorithm 2)
//!   seqmm --memory M           sequential matmul baseline
//!   alg3 --grid 2x2x2          parallel stationary (Algorithm 3)
//!   alg4 --p0 2 --grid 2x2x1   parallel general (Algorithm 4)
//!   parmm --procs 8            parallel 1D matmul baseline
//!   bounds --memory M --procs P  print all lower bounds, no execution
//!   exec [--backend native|sim] [--threads T] [--memory M] [--procs P]
//!                              plan with the paper's cost models, then
//!                              execute on the chosen backend
//!   dist --ranks P [--transport channel|tcp] [--threads T] [--memory M]
//!                              plan for a P-rank cluster and execute on the
//!                              sharded multi-rank runtime — in-process
//!                              channel ranks by default, or one real OS
//!                              process per rank over TCP sockets with
//!                              --transport tcp — self-gating: exits nonzero
//!                              unless the output is bit-identical to the
//!                              single-node executor and the measured
//!                              per-rank traffic equals the netsim-predicted
//!                              schedule
//!   serve --bench [--requests N] [--shapes K] [--workers W]
//!         [--batch B] [--cache C] [--threads T] [--memory M] [--procs P]
//!         [--json]
//!                              replay a synthetic mixed-shape workload
//!                              through the batch serving layer and print
//!                              its stats table (--json emits one
//!                              machine-readable object on stdout)
//!   serve --bench --socket [--clients C] [--cap K] [--retry-ms MS]
//!         [--bind ADDR]        the same replay through the real TCP front
//!                              door: C concurrent client connections with
//!                              retry-on-shed, per-client latency stats, and
//!                              a bitwise replay check of every socket
//!                              response against in-process execution
//!   listen [--bind ADDR] [--cap K] [--retry-ms MS] [--workers W]
//!          [--batch B] [--cache C] [--threads T] [--memory M]
//!          [--cache-file F]    a long-lived network front door: prints
//!                              `listening on <addr>` on stdout, serves
//!                              MTTKRP and (streaming) Factorize requests
//!                              until stdin closes, then drains gracefully;
//!                              --cache-file warm-starts the plan cache from
//!                              a saved/autotuned JSONL file and saves it
//!                              back on shutdown
//!   autotune [--shapes K] [--trials T] [--band B] [--cache-file F]
//!            [--threads T] [--memory M] [--cache C] [--json]
//!                              offline self-tuning sweep: plan K serve-style
//!                              shapes across every mode, wall-time each
//!                              near-tie candidate T times, feed the timings
//!                              back through the plan cache, and print the
//!                              before/after plan-choice diff; --cache-file
//!                              writes the tuned cache for warm restarts
//!   cp-als [--sweeps S] [--tol T] [--backend auto|native|sim|dist|dist-tcp]
//!          [--ranks P] [--transport channel|tcp] [--threads T]
//!          [--memory M] [--gate] [--json]
//!                              CP-ALS-factorize a synthetic rank-R tensor
//!                              through the plan-cached mttkrp-als engine;
//!                              --gate self-checks fit >= 0.999, bitwise
//!                              native-vs-dist identity (and sim-vs-dist on
//!                              a --ranks P cluster), and plan-cache misses
//!                              == N modes across all sweeps, exiting
//!                              nonzero on violation
//!   report FILE.jsonl [--gate] [--tol T]
//!                              pretty-print a trace captured with --trace:
//!                              the span tree with self/total times, the top
//!                              metrics, and the modeled-vs-measured drift
//!                              table; --gate exits nonzero when any
//!                              collective's measured words drift from the
//!                              paper-model prediction beyond --tol
//!                              (default 1%)
//!   report --merge A.jsonl B.jsonl ...
//!                              stitch per-process trace files (a socket
//!                              client, the server, its rank children) into
//!                              one span tree keyed by trace id, re-parented
//!                              at each recorded adoption point, then print
//!                              and (with --gate) drift-check the merged tree
//!   stats ADDR [--watch SECS] [--json]
//!                              scrape a live front door's metrics registry
//!                              and health over STATS/HEALTH frames —
//!                              answered inline by the server, never shed,
//!                              never counted against the admission cap
//!   top ADDR [--watch SECS] [--json]
//!                              live dashboard over the STATS_HISTORY frame:
//!                              request/shed rates, queue depth, per-shape
//!                              p50/p99 latency with sparkline trends, and
//!                              SLO error-budget burn from the server's
//!                              time-series ring; --watch repaints every
//!                              SECS seconds, --json emits one machine-
//!                              readable snapshot of the whole ring
//!   bench-compare BASELINE.json CURRENT.json [--tol F]
//!                              perf-regression gate: compare two bench
//!                              --json outputs metric by metric (latencies
//!                              must not grow, throughput must not shrink,
//!                              by more than the fractional tolerance;
//!                              default 0.5) and exit nonzero on regression
//! ```
//!
//! Ops-plane extras: `listen --dist-exec proc [--ranks P]
//! [--rank-trace-dir DIR]` puts one real OS process per rank behind every
//! served factorization (each launch ships the request's trace context to
//! its ranks), and `cp-als --connect ADDR` sends the factorization to a
//! live front door with this process's trace context on the request frame.
//!
//! Every live subcommand also takes `--trace FILE.jsonl` (capture the run's
//! spans and metrics through `mttkrp-obs` and write them as JSONL) and
//! `--metrics` (print the human summary after the run). A traced run that
//! recorded modeled-vs-measured collective pairs applies the drift gate on
//! exit.
//!
//! Example: `cargo run --release -p mttkrp-bench --bin mttkrp_cli -- \
//!            --dims 16x16x16 --rank 8 --mode 0 alg3 --grid 2x2x2`

use mttkrp_bench::setup_problem;
use mttkrp_core::{bounds, model, par, seq, Problem};
use mttkrp_tensor::{mttkrp_reference, Matrix};
use std::process::ExitCode;

/// Prints one line of human narration: to stdout normally, to stderr when
/// the subcommand is emitting a machine-readable JSON object on stdout
/// (`--json`). First argument is the json flag.
macro_rules! say {
    ($json:expr, $($t:tt)*) => {
        if $json {
            eprintln!($($t)*)
        } else {
            println!($($t)*)
        }
    };
}

#[derive(Default, Debug)]
struct Args {
    dims: Vec<usize>,
    rank: usize,
    mode: usize,
    seed: u64,
    memory: Option<usize>,
    block: Option<usize>,
    grid: Option<Vec<usize>>,
    p0: Option<usize>,
    procs: Option<usize>,
    backend: Option<String>,
    threads: Option<usize>,
    ranks: Option<usize>,
    transport: Option<String>,
    algorithm: Option<String>,
    // Hidden `dist-rank` / fault-injection options (see `dist_tcp`).
    world_rank: Option<usize>,
    connect: Option<String>,
    report: Option<String>,
    stall_ms: Option<u64>,
    kill_rank: Option<usize>,
    timeout_secs: Option<u64>,
    // `serve` options.
    bench: bool,
    requests: Option<usize>,
    shapes: Option<usize>,
    workers: Option<usize>,
    batch: Option<usize>,
    cache: Option<usize>,
    // `serve --bench --socket` / `listen` options (the network front door).
    socket: bool,
    clients: Option<usize>,
    bind: Option<String>,
    cap: Option<usize>,
    retry_ms: Option<u64>,
    // `cp-als` options (`--json` is shared with `serve --bench`).
    sweeps: Option<usize>,
    tol: Option<f64>,
    gate: bool,
    json: bool,
    // Self-tuning planner: `listen --cache-file` warm restarts and the
    // `autotune` offline sweep.
    cache_file: Option<String>,
    trials: Option<usize>,
    band: Option<f64>,
    // Observability: capture the run through `mttkrp-obs`.
    trace: Option<String>,
    metrics: bool,
    // Ops plane: `stats --watch`, `report --merge`, and the listen-side
    // multi-process dist executor.
    watch: Option<u64>,
    merge: bool,
    dist_exec: Option<String>,
    rank_trace_dir: Option<String>,
    // Positionals after the subcommand: `report`'s trace file(s), or
    // `stats`' server address.
    inputs: Vec<String>,
}

fn parse_dims(s: &str) -> Result<Vec<usize>, String> {
    s.split(['x', ','])
        .map(|t| {
            t.parse::<usize>()
                .map_err(|e| format!("bad dims '{s}': {e}"))
        })
        .collect()
}

fn parse(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        rank: 4,
        seed: 1,
        ..Default::default()
    };
    let mut it = argv.iter().peekable();
    while let Some(tok) = it.next() {
        let mut next = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match tok.as_str() {
            "--dims" => args.dims = parse_dims(&next("--dims")?)?,
            "--rank" => args.rank = next("--rank")?.parse().map_err(|e| format!("{e}"))?,
            "--mode" => args.mode = next("--mode")?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => args.seed = next("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--memory" => {
                args.memory = Some(next("--memory")?.parse().map_err(|e| format!("{e}"))?)
            }
            "--block" => args.block = Some(next("--block")?.parse().map_err(|e| format!("{e}"))?),
            "--grid" => args.grid = Some(parse_dims(&next("--grid")?)?),
            "--p0" => args.p0 = Some(next("--p0")?.parse().map_err(|e| format!("{e}"))?),
            "--procs" => args.procs = Some(next("--procs")?.parse().map_err(|e| format!("{e}"))?),
            "--backend" => args.backend = Some(next("--backend")?),
            "--threads" => {
                args.threads = Some(next("--threads")?.parse().map_err(|e| format!("{e}"))?)
            }
            "--ranks" => args.ranks = Some(next("--ranks")?.parse().map_err(|e| format!("{e}"))?),
            "--transport" => args.transport = Some(next("--transport")?),
            "--world-rank" => {
                args.world_rank = Some(next("--world-rank")?.parse().map_err(|e| format!("{e}"))?)
            }
            "--connect" => args.connect = Some(next("--connect")?),
            "--report" => args.report = Some(next("--report")?),
            "--stall-ms" => {
                args.stall_ms = Some(next("--stall-ms")?.parse().map_err(|e| format!("{e}"))?)
            }
            "--kill-rank" => {
                args.kill_rank = Some(next("--kill-rank")?.parse().map_err(|e| format!("{e}"))?)
            }
            "--timeout-secs" => {
                args.timeout_secs = Some(
                    next("--timeout-secs")?
                        .parse()
                        .map_err(|e| format!("{e}"))?,
                )
            }
            "--bench" => args.bench = true,
            "--requests" => {
                args.requests = Some(next("--requests")?.parse().map_err(|e| format!("{e}"))?)
            }
            "--shapes" => {
                args.shapes = Some(next("--shapes")?.parse().map_err(|e| format!("{e}"))?)
            }
            "--workers" => {
                args.workers = Some(next("--workers")?.parse().map_err(|e| format!("{e}"))?)
            }
            "--batch" => args.batch = Some(next("--batch")?.parse().map_err(|e| format!("{e}"))?),
            "--cache" => args.cache = Some(next("--cache")?.parse().map_err(|e| format!("{e}"))?),
            "--sweeps" => {
                args.sweeps = Some(next("--sweeps")?.parse().map_err(|e| format!("{e}"))?)
            }
            "--tol" => args.tol = Some(next("--tol")?.parse().map_err(|e| format!("{e}"))?),
            "--socket" => args.socket = true,
            "--clients" => {
                args.clients = Some(next("--clients")?.parse().map_err(|e| format!("{e}"))?)
            }
            "--bind" => args.bind = Some(next("--bind")?),
            "--cap" => args.cap = Some(next("--cap")?.parse().map_err(|e| format!("{e}"))?),
            "--retry-ms" => {
                args.retry_ms = Some(next("--retry-ms")?.parse().map_err(|e| format!("{e}"))?)
            }
            "--gate" => args.gate = true,
            "--json" => args.json = true,
            "--cache-file" => args.cache_file = Some(next("--cache-file")?),
            "--trials" => {
                args.trials = Some(next("--trials")?.parse().map_err(|e| format!("{e}"))?)
            }
            "--band" => args.band = Some(next("--band")?.parse().map_err(|e| format!("{e}"))?),
            "--trace" => args.trace = Some(next("--trace")?),
            "--metrics" => args.metrics = true,
            "--watch" => args.watch = Some(next("--watch")?.parse().map_err(|e| format!("{e}"))?),
            "--merge" => args.merge = true,
            "--dist-exec" => args.dist_exec = Some(next("--dist-exec")?),
            "--rank-trace-dir" => args.rank_trace_dir = Some(next("--rank-trace-dir")?),
            "--help" | "-h" => return Err("help".to_string()),
            other if !other.starts_with('-') && args.algorithm.is_none() => {
                args.algorithm = Some(other.to_string());
            }
            other
                if !other.starts_with('-')
                    && matches!(
                        args.algorithm.as_deref(),
                        Some("report") | Some("stats") | Some("top") | Some("bench-compare")
                    ) =>
            {
                args.inputs.push(other.to_string());
            }
            other => return Err(format!("unrecognized argument '{other}'")),
        }
    }
    // `serve` generates its own mixed-shape workload, `cp-als` its own
    // synthetic rank-R tensor, and `report`/`stats`/`top`/`bench-compare`
    // read a trace file, a live server, or bench JSON; --dims (if given)
    // only seeds the base shape, so it may be omitted for any of them.
    if matches!(
        args.algorithm.as_deref(),
        Some("serve")
            | Some("listen")
            | Some("cp-als")
            | Some("report")
            | Some("stats")
            | Some("top")
            | Some("bench-compare")
            | Some("autotune")
    ) && args.dims.is_empty()
    {
        args.dims = match args.algorithm.as_deref() {
            Some("cp-als") => vec![12, 10, 8],
            _ => vec![16, 16, 16],
        };
    }
    if args.dims.len() < 2 {
        return Err("need --dims with at least two modes (e.g. --dims 16x16x16)".into());
    }
    if args.mode >= args.dims.len() {
        return Err(format!(
            "--mode {} out of range for an order-{} tensor",
            args.mode,
            args.dims.len()
        ));
    }
    let Some(alg) = args.algorithm.as_deref() else {
        return Err("no algorithm given \
             (alg1|alg2|seqmm|alg3|alg4|parmm|bounds|exec|dist|serve|listen|autotune|\
             cp-als|report|stats|top|bench-compare)"
            .into());
    };
    // The socket front-door flags only mean something to the subcommands
    // that open sockets.
    if args.socket && alg != "serve" {
        return Err(format!("--socket is a serve flag, not valid for '{alg}'"));
    }
    if args.clients.is_some() && !(alg == "serve" && args.socket) {
        return Err("--clients requires `serve --bench --socket`".into());
    }
    for (flag, given) in [
        ("--bind", args.bind.is_some()),
        ("--cap", args.cap.is_some()),
        ("--retry-ms", args.retry_ms.is_some()),
    ] {
        if given && !(alg == "listen" || (alg == "serve" && args.socket)) {
            return Err(format!(
                "{flag} configures the network front door (listen, or serve --bench --socket), \
                 not valid for '{alg}'"
            ));
        }
    }
    // Flags are parsed globally but only some subcommands honor them;
    // reject half-applying combinations instead of silently ignoring them.
    if args.json && !matches!(alg, "serve" | "cp-als" | "stats" | "top" | "autotune") {
        return Err(format!(
            "--json is only supported by the serve, cp-als, stats, top, and autotune \
             subcommands, not '{alg}'"
        ));
    }
    if args.cache_file.is_some() && !matches!(alg, "listen" | "autotune") {
        return Err(format!(
            "--cache-file persists the plan cache (listen, autotune), not valid for '{alg}'"
        ));
    }
    for (flag, given) in [
        ("--trials", args.trials.is_some()),
        ("--band", args.band.is_some()),
    ] {
        if given && alg != "autotune" {
            return Err(format!("{flag} is an autotune flag, not valid for '{alg}'"));
        }
    }
    if args.gate && !matches!(alg, "cp-als" | "report") {
        return Err(format!(
            "--gate is a cp-als/report flag, not valid for '{alg}'"
        ));
    }
    if args.tol.is_some() && !matches!(alg, "cp-als" | "report" | "bench-compare") {
        return Err(format!(
            "--tol is a cp-als/report/bench-compare flag, not valid for '{alg}'"
        ));
    }
    if args.sweeps.is_some() && alg != "cp-als" {
        return Err(format!("--sweeps is a cp-als flag, not valid for '{alg}'"));
    }
    if args.watch.is_some() && !matches!(alg, "stats" | "top") {
        return Err(format!(
            "--watch is a stats/top flag, not valid for '{alg}'"
        ));
    }
    if args.merge && alg != "report" {
        return Err(format!("--merge is a report flag, not valid for '{alg}'"));
    }
    if args.dist_exec.is_some() && alg != "listen" {
        return Err(format!(
            "--dist-exec is a listen flag, not valid for '{alg}'"
        ));
    }
    if args.rank_trace_dir.is_some() && !matches!(alg, "listen" | "dist") {
        return Err(format!(
            "--rank-trace-dir is a listen/dist flag, not valid for '{alg}'"
        ));
    }
    // `report`/`bench-compare` replay finished artifacts and `stats`/`top`
    // scrape a live server; none of them runs anything to capture. A
    // `dist-rank` child MAY take --trace (the launcher passes it for
    // cross-process merging) but has no summary of its own to print.
    if (args.trace.is_some() || args.metrics)
        && matches!(alg, "report" | "stats" | "top" | "bench-compare")
    {
        return Err(format!(
            "--trace/--metrics instrument a live run, not valid for '{alg}'"
        ));
    }
    if args.metrics && alg == "dist-rank" {
        return Err("--metrics is a launcher-side flag, not valid for 'dist-rank'".into());
    }
    Ok(args)
}

fn usage() {
    eprintln!(
        "usage: mttkrp_cli --dims I1xI2x... --rank R --mode n [--seed s] ALGORITHM [options]\n\
         \n  alg1  --memory M             Algorithm 1 (sequential unblocked)\
         \n  alg2  --memory M [--block b] Algorithm 2 (sequential blocked)\
         \n  seqmm --memory M             sequential matmul baseline\
         \n  alg3  --grid P1xP2x...       Algorithm 3 (parallel stationary)\
         \n  alg4  --p0 P0 --grid ...     Algorithm 4 (parallel general)\
         \n  parmm --procs P              parallel 1D matmul baseline\
         \n  bounds [--memory M] [--procs P]  print lower bounds only\
         \n  exec  [--backend native|sim] [--threads T] [--memory M] [--procs P]\
         \n                               cost-model-driven plan + execution\
         \n  dist  --ranks P [--transport channel|tcp] [--threads T] [--memory M]\
         \n                               sharded multi-rank execution (channel\
         \n                               threads, or one process per rank over\
         \n                               TCP) with a self-gating\
         \n                               schedule/bitwise check\
         \n  serve --bench [--requests N] [--shapes K] [--workers W] [--batch B]\
         \n        [--cache C] [--threads T] [--memory M] [--procs P] [--json]\
         \n                               replay a synthetic workload through the\
         \n                               plan-cached batch serving layer\
         \n  serve --bench --socket [--clients C] [--cap K] [--retry-ms MS]\
         \n        [--bind ADDR]          the same replay through the real TCP\
         \n                               front door: concurrent clients, retry-\
         \n                               on-shed, bitwise replay check\
         \n  listen [--bind ADDR] [--cap K] [--retry-ms MS] [--workers W]\
         \n         [--batch B] [--cache C] [--threads T] [--memory M]\
         \n         [--cache-file F]      long-lived network front door; prints\
         \n                               `listening on <addr>`, serves until\
         \n                               stdin closes, then drains gracefully;\
         \n                               --cache-file warm-starts the plan cache\
         \n                               from a saved (or autotuned) JSONL file\
         \n                               and saves it back on shutdown\
         \n  autotune [--shapes K] [--trials T] [--band B] [--cache-file F]\
         \n           [--threads T] [--memory M] [--cache C] [--json]\
         \n                               offline self-tuning sweep: plan K shapes\
         \n                               (every mode), wall-time each near-tie\
         \n                               candidate T times, feed the measurements\
         \n                               back through the plan cache, and print\
         \n                               the before/after plan-choice diff;\
         \n                               --cache-file writes the tuned cache for\
         \n                               `listen --cache-file` to restart warm\
         \n  cp-als [--sweeps S] [--tol T] [--backend auto|native|sim|dist|dist-tcp]\
         \n         [--ranks P] [--transport channel|tcp] [--threads T]\
         \n         [--memory M] [--gate] [--json]\
         \n                               CP-ALS factorization of a synthetic\
         \n                               rank-R tensor through the plan-cached\
         \n                               engine; --gate self-checks fit >= 0.999,\
         \n                               bitwise native-vs-dist identity, and\
         \n                               plan-cache misses == N modes, exiting\
         \n                               nonzero on violation; --json emits\
         \n                               machine-readable stats\
         \n  report FILE.jsonl [--gate] [--tol T]\
         \n                               pretty-print a --trace capture: span\
         \n                               tree, top metrics, and the drift table;\
         \n                               --gate exits nonzero on modeled-vs-\
         \n                               measured drift beyond --tol (default 1%)\
         \n  report --merge A.jsonl B.jsonl ...\
         \n                               stitch per-process traces (client,\
         \n                               server, rank children) into one tree\
         \n                               keyed by trace id, then report/gate it\
         \n  stats ADDR [--watch SECS] [--json]\
         \n                               scrape a live front door's metrics and\
         \n                               health over STATS/HEALTH frames (never\
         \n                               shed, never counted against the cap)\
         \n  top ADDR [--watch SECS] [--json]\
         \n                               live dashboard over STATS_HISTORY:\
         \n                               request/shed rates, queue depth, per-\
         \n                               shape p50/p99 sparkline trends, and SLO\
         \n                               error-budget burn from the server's\
         \n                               time-series ring\
         \n  bench-compare BASE.json CUR.json [--tol F]\
         \n                               perf-regression gate between two bench\
         \n                               --json outputs: latencies must not grow\
         \n                               and throughput must not shrink by more\
         \n                               than the tolerance (default 0.5)\
         \n\
         \nops-plane extras: `listen --dist-exec proc [--ranks P]\
         \n  [--rank-trace-dir DIR]` puts one real OS process per rank behind\
         \n  every served factorization; `cp-als --connect ADDR` sends the\
         \n  factorization to a live front door with this process's trace\
         \n  context on the request frame\
         \n\
         \nevery live subcommand also takes:\
         \n  --trace FILE.jsonl           capture spans + metrics as JSONL\
         \n  --metrics                    print the human summary after the run"
    );
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse(&argv) {
        Ok(a) => a,
        Err(e) => {
            if e != "help" {
                eprintln!("error: {e}\n");
            }
            usage();
            return ExitCode::from(2);
        }
    };
    if args.algorithm.as_deref() == Some("report") {
        return run_report(&args);
    }
    if args.algorithm.as_deref() == Some("stats") {
        return run_stats(&args);
    }
    if args.algorithm.as_deref() == Some("top") {
        return run_top(&args);
    }
    if args.algorithm.as_deref() == Some("bench-compare") {
        return run_bench_compare(&args);
    }

    // Fault path of the flight recorder: the ring retains the last span
    // closes even with capture off, so a panicking run can explain its
    // recent past on stderr before dying.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        default_hook(info);
        let records = mttkrp_obs::flight_snapshot();
        if !records.is_empty() {
            eprintln!("--- flight recorder ({} span close(s)) ---", records.len());
            eprint!("{}", mttkrp_obs::flight_to_jsonl(&records));
        }
    }));

    // --trace / --metrics: capture the whole run through mttkrp-obs, under
    // one root "request" span, and post-process the recording on exit.
    let cap = (args.trace.is_some() || args.metrics).then(mttkrp_obs::capture);
    let code = {
        let mut root = mttkrp_obs::span("request");
        if root.is_active() {
            root.record("kind", args.algorithm.clone().unwrap_or_default());
            root.record(
                "dims",
                args.dims
                    .iter()
                    .map(|d| d.to_string())
                    .collect::<Vec<_>>()
                    .join("x"),
            );
            root.record("rank", args.rank);
        }
        run(&args)
    };
    match cap {
        Some(cap) => finish_capture(cap.finish(), &args, code),
        None => code,
    }
}

/// Writes/prints a finished capture and applies the drift gate: when the
/// run recorded modeled-vs-measured collective pairs, any drift beyond 1%
/// turns a successful exit into a failure.
fn finish_capture(rec: mttkrp_obs::Recording, args: &Args, code: ExitCode) -> ExitCode {
    let mut code = code;
    if let Some(path) = &args.trace {
        if let Err(e) = rec.write_jsonl(std::path::Path::new(path)) {
            eprintln!("error: cannot write trace to {path}: {e}");
            code = ExitCode::FAILURE;
        } else {
            say!(
                args.json,
                "trace                {} span(s), {} metric(s) -> {path}",
                rec.spans.len(),
                rec.metrics.len()
            );
        }
    }
    if args.metrics {
        say!(args.json, "{}", rec.summary());
    }
    let drift = mttkrp_obs::DriftReport::from_spans(&rec.nodes(), DRIFT_TOLERANCE);
    if let Some(worst) = drift.worst() {
        // One verdict line on success; the full pair table (from `report`)
        // is for the failure path and offline analysis.
        say!(
            args.json,
            "drift gate           {} modeled/measured pair(s), worst rel err {:.5} \
             (tolerance {DRIFT_TOLERANCE}) -> {}",
            drift.len(),
            worst.rel_error(),
            if drift.ok() { "OK" } else { "FAIL" }
        );
        if !drift.ok() {
            eprint!("{}", drift.table());
            eprintln!("error: measured collective traffic drifts from the paper's model");
            code = ExitCode::FAILURE;
        }
    }
    code
}

/// Relative drift between a collective's modeled and measured word counts
/// that the gate tolerates. The transports are word-exact by construction
/// (the dist suite asserts equality), so any drift is a model regression.
const DRIFT_TOLERANCE: f64 = 0.01;

/// Dispatches a parsed command line (everything except `report`, which
/// never runs a problem).
fn run(args: &Args) -> ExitCode {
    // `listen` speaks to launchers: its first stdout line is the bound
    // address, so it dispatches before any narration.
    if args.algorithm.as_deref() == Some("listen") {
        return run_listen(args);
    }
    let problem = Problem::new(
        &args.dims.iter().map(|&d| d as u64).collect::<Vec<u64>>(),
        args.rank as u64,
    );
    let n = args.mode;
    if !args.json {
        println!(
            "problem: dims {:?}, R = {}, mode n = {n}, I = {}, seed {}",
            args.dims,
            args.rank,
            problem.tensor_entries(),
            args.seed
        );
    }

    let alg = args.algorithm.as_deref().unwrap();
    // `serve` builds its own mixed-shape workload from the base dims, and
    // `cp-als` its own synthetic rank-R Kruskal tensor.
    if alg == "serve" {
        return run_serve(args);
    }
    if alg == "cp-als" {
        return run_cp_als(args);
    }
    if alg == "autotune" {
        return run_autotune(args);
    }
    // `bounds` is formula-only: never materialize the (possibly huge) tensor.
    let materialized = if alg == "bounds" {
        None
    } else {
        if problem.tensor_entries() > (1u128 << 26) {
            eprintln!(
                "error: refusing to materialize {} tensor entries for an executed run \
                 (use `bounds` for model-scale problems)",
                problem.tensor_entries()
            );
            return ExitCode::from(2);
        }
        Some(setup_problem(&args.dims, args.rank, args.seed))
    };
    let (x, factors) = match &materialized {
        Some((x, f)) => (x, f),
        None => {
            // `bounds` path: handled below without operands.
            return run_bounds_only(args, &problem);
        }
    };
    let refs: Vec<&Matrix> = factors.iter().collect();
    match alg {
        "alg1" | "alg2" | "seqmm" => {
            let m = match args.memory {
                Some(m) => m,
                None => {
                    eprintln!("error: {alg} needs --memory M");
                    return ExitCode::from(2);
                }
            };
            let (label, run) = match alg {
                "alg1" => (
                    "Algorithm 1 (unblocked)",
                    seq::mttkrp_unblocked(x, &refs, n, m),
                ),
                "alg2" => {
                    let b = args
                        .block
                        .unwrap_or_else(|| seq::choose_block_size(m, args.dims.len()));
                    println!("block size b = {b}");
                    (
                        "Algorithm 2 (blocked)",
                        seq::mttkrp_blocked(x, &refs, n, m, b),
                    )
                }
                _ => (
                    "sequential matmul baseline",
                    seq::mttkrp_seq_matmul(x, &refs, n, m).into_seq_run(),
                ),
            };
            let oracle = mttkrp_reference(x, &refs, n);
            println!(
                "{label}: W = {} words (loads {}, stores {})",
                run.stats.total(),
                run.stats.loads,
                run.stats.stores
            );
            println!("peak fast memory: {} / {m} words", run.peak_fast);
            println!(
                "lower bounds: Thm 4.1 = {:.0}, Fact 4.1 = {:.0}",
                bounds::seq_memory_dependent(&problem, m as u64),
                bounds::seq_trivial(&problem, m as u64)
            );
            println!(
                "oracle check: max |diff| = {:.2e}",
                run.output.max_abs_diff(&oracle)
            );
        }
        "alg3" | "alg4" | "parmm" => {
            let run = match alg {
                "alg3" => {
                    let grid = match &args.grid {
                        Some(g) if g.len() == args.dims.len() => g.clone(),
                        _ => {
                            eprintln!("error: alg3 needs --grid with one factor per mode");
                            return ExitCode::from(2);
                        }
                    };
                    par::mttkrp_stationary(x, &refs, n, &grid)
                }
                "alg4" => {
                    let grid = match &args.grid {
                        Some(g) if g.len() == args.dims.len() => g.clone(),
                        _ => {
                            eprintln!("error: alg4 needs --grid with one factor per mode");
                            return ExitCode::from(2);
                        }
                    };
                    par::mttkrp_general(x, &refs, n, args.p0.unwrap_or(1), &grid)
                }
                _ => {
                    let procs = match args.procs {
                        Some(p) => p,
                        None => {
                            eprintln!("error: parmm needs --procs P");
                            return ExitCode::from(2);
                        }
                    };
                    par::mttkrp_par_matmul(x, &refs, n, procs)
                }
            };
            let procs = run.stats.len() as u64;
            let oracle = mttkrp_reference(x, &refs, n);
            println!(
                "P = {procs}: max {} words/rank received ({} sent); machine total {}",
                run.max_recv_words(),
                run.max_sent_words(),
                run.summary.total_words
            );
            if alg == "alg3" {
                if let Some(g) = &args.grid {
                    let g64: Vec<u64> = g.iter().map(|&v| v as u64).collect();
                    println!(
                        "Eq. (14) model: {:.0} words",
                        model::alg3_cost(&problem, &g64)
                    );
                }
            }
            println!(
                "lower bounds: Thm 4.2 = {:.0}, Thm 4.3 = {:.0}",
                bounds::par_mi_thm42(&problem, procs, 1.0, 1.0),
                bounds::par_mi_thm43(&problem, procs, 1.0, 1.0)
            );
            println!(
                "oracle check: max |diff| = {:.2e}",
                run.output.max_abs_diff(&oracle)
            );
        }
        "exec" => return run_exec(args, &problem, x, &refs),
        "dist" => return run_dist(args, &problem, x, &refs),
        "dist-rank" => return run_dist_rank(args, &problem, x, &refs),
        other => {
            eprintln!("error: unknown algorithm '{other}'");
            usage();
            return ExitCode::from(2);
        }
    }
    ExitCode::SUCCESS
}

/// The `exec` subcommand: let the paper's cost models pick the algorithm,
/// then run it on the requested backend (default: the plan's natural one).
fn run_exec(
    args: &Args,
    problem: &Problem,
    x: &mttkrp_tensor::DenseTensor,
    refs: &[&Matrix],
) -> ExitCode {
    use mttkrp_exec::{Backend, ExecCost, MachineSpec, NativeBackend, Planner, SimBackend};

    if args.threads == Some(0) {
        eprintln!("error: --threads must be at least 1");
        return ExitCode::from(2);
    }
    let threads = args.threads.unwrap_or_else(MachineSpec::detect_threads);
    let machine = MachineSpec {
        threads,
        fast_memory_words: args.memory.unwrap_or(mttkrp_exec::DEFAULT_CACHE_WORDS),
        ranks: args.procs.unwrap_or(1),
        transport: mttkrp_exec::TransportSpec::InProcess,
    };
    if args.block.is_some() {
        println!("note: exec chooses the block size from the cost model; --block is ignored");
    }
    let plan = Planner::new(machine).plan_executable(problem, args.mode);
    println!("{plan}");

    // Resolve the backend up front (default: the plan's natural target) so
    // the "flag ignored" notes reflect what actually runs, not flag text.
    let use_native = match args.backend.as_deref() {
        Some("native") => true,
        Some("sim") => false,
        None => plan.algorithm.is_sequential(),
        Some(other) => {
            eprintln!("error: unknown backend '{other}' (native|sim)");
            return ExitCode::from(2);
        }
    };
    if !use_native && args.threads.is_some() {
        println!("note: the sim backend counts words, not time; --threads is ignored there");
    }
    let report = if use_native {
        if !plan.algorithm.is_sequential() {
            println!(
                "note: the native backend runs its shared-memory kernel; the plan's \
                 distributed schedule ({}) applies to the sim backend",
                plan.algorithm
            );
        }
        NativeBackend::new(threads, plan.machine.fast_memory_words).execute(&plan, x, refs)
    } else {
        SimBackend::new().execute(&plan, x, refs)
    };
    match &report.cost {
        ExecCost::SeqIo {
            loads,
            stores,
            peak_fast,
        } => println!(
            "[{}] W = {} words (loads {loads}, stores {stores}), peak fast {peak_fast}",
            report.backend,
            loads + stores
        ),
        ExecCost::ParComm {
            max_recv_words,
            max_sent_words,
            total_words,
            ranks,
        } => println!(
            "[{}] P = {ranks}: max {max_recv_words} words/rank received \
             ({max_sent_words} sent); machine total {total_words}",
            report.backend
        ),
        ExecCost::Native { elapsed, threads } => println!(
            "[{}] {:.3} ms on {threads} thread(s)",
            report.backend,
            elapsed.as_secs_f64() * 1e3
        ),
    }
    let oracle = mttkrp_reference(x, refs, args.mode);
    println!(
        "oracle check: max |diff| = {:.2e}",
        report.output.max_abs_diff(&oracle)
    );
    ExitCode::SUCCESS
}

/// The `dist` subcommand: plan for a `--ranks P` cluster, execute on the
/// sharded multi-rank runtime, and *self-gate*: exit nonzero unless
///
/// 1. the dist output is bit-identical to the single-node executor
///    (`plan_and_execute` on the same machine) for the same plan, and
/// 2. each rank's measured traffic equals the netsim-predicted schedule,
///    collective by collective.
fn run_dist(
    args: &Args,
    problem: &Problem,
    x: &mttkrp_tensor::DenseTensor,
    refs: &[&Matrix],
) -> ExitCode {
    use mttkrp_bench::dist_tcp::{self, LaunchSpec};
    use mttkrp_dist::{record_collectives, DistBackend, DistReport};
    use mttkrp_exec::{
        plan_and_execute, ExecCost, ExecReport, MachineSpec, Planner, TransportSpec,
    };

    let transport = match args.transport.as_deref() {
        None | Some("channel") => TransportSpec::InProcess,
        Some("tcp") => TransportSpec::Tcp,
        Some(other) => {
            eprintln!("error: unknown transport '{other}' (channel|tcp)");
            return ExitCode::from(2);
        }
    };
    let ranks = match args.ranks.or(args.procs) {
        Some(p) if p >= 1 => p,
        Some(_) => {
            eprintln!("error: --ranks must be at least 1");
            return ExitCode::from(2);
        }
        None => {
            eprintln!("error: dist needs --ranks P");
            return ExitCode::from(2);
        }
    };
    if args.threads == Some(0) {
        eprintln!("error: --threads must be at least 1");
        return ExitCode::from(2);
    }
    let machine = MachineSpec::cluster(
        ranks,
        args.threads.unwrap_or(1),
        args.memory.unwrap_or(mttkrp_exec::DEFAULT_CACHE_WORDS),
    )
    .with_transport(transport);
    let plan = Planner::new(machine.clone()).plan_executable(problem, args.mode);
    println!("{plan}\n");

    let out: DistReport = if transport == TransportSpec::Tcp && !plan.algorithm.is_sequential() {
        // Launcher mode: one real OS process per rank on localhost, the
        // identical rank programs, every word over actual sockets.
        let exe = match std::env::current_exe() {
            Ok(exe) => exe,
            Err(e) => {
                eprintln!("error: cannot locate my own binary to spawn ranks: {e}");
                return ExitCode::FAILURE;
            }
        };
        if args.kill_rank.is_some_and(|k| k >= ranks) {
            eprintln!("error: --kill-rank must name a world rank below --ranks {ranks}");
            return ExitCode::from(2);
        }
        let spec = LaunchSpec {
            dims: args.dims.clone(),
            rank: args.rank,
            mode: args.mode,
            seed: args.seed,
            ranks,
            threads: args.threads.unwrap_or(1),
            memory: args.memory.unwrap_or(mttkrp_exec::DEFAULT_CACHE_WORDS),
            timeout: std::time::Duration::from_secs(args.timeout_secs.unwrap_or(60)),
            kill_rank: args.kill_rank,
            stall_ms: args
                .stall_ms
                .unwrap_or(if args.kill_rank.is_some() { 10_000 } else { 0 }),
            // `launch` falls back to the CLI's own live context (the root
            // `request` span under --trace), so rank spans nest under it.
            ctx: None,
            rank_trace_dir: args.rank_trace_dir.clone().map(Into::into),
        };
        println!("[dist] spawning {ranks} rank process(es) on localhost (tcp transport)");
        match dist_tcp::launch(&exe, &spec, &plan, None) {
            Ok(outcome) => {
                // The in-process arm records its collective spans inside
                // run_instrumented; the launcher arm gets its ledgers back
                // over the report socket, so record them here.
                record_collectives(&plan, &outcome.ledgers);
                let stats: Vec<_> = outcome.ledgers.iter().map(|l| l.totals()).collect();
                let cost = ExecCost::ParComm {
                    max_recv_words: stats.iter().map(|s| s.words_received).max().unwrap_or(0),
                    max_sent_words: stats.iter().map(|s| s.words_sent).max().unwrap_or(0),
                    total_words: stats.iter().map(|s| s.words_sent).sum(),
                    ranks,
                };
                DistReport {
                    report: ExecReport {
                        output: outcome.output,
                        backend: "dist",
                        cost,
                    },
                    ledgers: outcome.ledgers,
                }
            }
            Err(e) => {
                eprintln!("error: tcp launch failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        if args.kill_rank.is_some() {
            eprintln!("error: --kill-rank is a tcp-launcher fault-injection flag");
            return ExitCode::from(2);
        }
        DistBackend::new().run_instrumented(&plan, x, refs)
    };
    match &out.report.cost {
        ExecCost::ParComm {
            max_recv_words,
            max_sent_words,
            total_words,
            ranks,
        } => println!(
            "[dist] P = {ranks}: max {max_recv_words} words/rank received \
             ({max_sent_words} sent); machine total {total_words}"
        ),
        ExecCost::Native { elapsed, threads } => println!(
            "[dist] sequential fallback: {:.3} ms on {threads} thread(s)",
            elapsed.as_secs_f64() * 1e3
        ),
        other => println!("[dist] {other:?}"),
    }

    // Gate 1: against the single-node executor for the same plan. For a
    // distributed plan the comparison is *bitwise* (the sharded runtime and
    // the simulator share ring routing and reduction order, and the sim is
    // deterministic). A sequential fallback runs the multithreaded native
    // kernel on both sides, whose f64 reduction order is not guaranteed
    // reproducible across independent runs — compare with a tolerance.
    let (single_plan, single) = plan_and_execute(&machine, x, refs, args.mode);
    if single_plan.algorithm != plan.algorithm {
        eprintln!("error: single-node executor planned a different algorithm");
        return ExitCode::FAILURE;
    }
    let identical = if plan.algorithm.is_sequential() {
        let diff = out.report.output.max_abs_diff(&single.output);
        println!(
            "numeric check        dist (sequential fallback) vs single-node \
             plan_and_execute ([{}]): max |diff| = {diff:.2e}",
            single.backend
        );
        diff < 1e-12
    } else {
        let same = out.report.output.data() == single.output.data();
        println!(
            "bitwise check        dist output {} single-node plan_and_execute ([{}])",
            if same {
                "bit-identical to"
            } else {
                "DIFFERS from"
            },
            single.backend
        );
        same
    };

    // Gate 2: measured traffic == netsim-predicted schedule, collective by
    // collective, on every rank.
    let mut schedule_ok = true;
    if let Some(predicted) = DistBackend::predicted_schedule(&plan) {
        println!("\nper-rank traffic (measured == predicted, words sent/received):");
        for (me, ledger) in out.ledgers.iter().enumerate() {
            let ok = ledger.matches(&predicted.ranks[me].phases);
            schedule_ok &= ok;
            let t = ledger.totals();
            let p = predicted.ranks[me].totals();
            println!(
                "  rank {me:>3}: {:>8}/{:<8} predicted {:>8}/{:<8} over {} collective(s) {}",
                t.words_sent,
                t.words_received,
                p.words_sent,
                p.words_received,
                ledger.phases().len(),
                if ok { "ok" } else { "MISMATCH" }
            );
            if !ok {
                // The per-phase predicted-vs-measured breakdown, so a
                // schedule deviation is diagnosable from the CLI output.
                print!("{}", ledger.diff_table(&predicted.ranks[me].phases));
            }
        }
    } else {
        println!("note: sequential plan — no communication schedule to check");
    }

    let oracle = mttkrp_reference(x, refs, args.mode);
    let diff = out.report.output.max_abs_diff(&oracle);
    println!("oracle check         max |diff| = {diff:.2e}");

    if !identical || !schedule_ok || diff >= 1e-10 {
        eprintln!("error: dist self-gate failed (bitwise {identical}, schedule {schedule_ok})");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// The hidden `dist-rank` subcommand: one world rank of a multi-process
/// TCP run, spawned by `dist --transport tcp`. Rebuilds the operands and
/// the plan deterministically from the same flags the launcher used,
/// joins the rendezvous, runs the rank program, and reports its chunk and
/// ledger back to the launcher.
fn run_dist_rank(
    args: &Args,
    problem: &Problem,
    x: &mttkrp_tensor::DenseTensor,
    refs: &[&Matrix],
) -> ExitCode {
    use mttkrp_bench::dist_tcp;
    use mttkrp_exec::{MachineSpec, Planner, TransportSpec};

    let (Some(world_rank), Some(ranks), Some(connect), Some(report)) = (
        args.world_rank,
        args.ranks,
        args.connect.as_deref(),
        args.report.as_deref(),
    ) else {
        eprintln!(
            "error: dist-rank needs --world-rank, --ranks, --connect, and --report \
             (it is spawned by `dist --transport tcp`, not invoked by hand)"
        );
        return ExitCode::from(2);
    };
    let machine = MachineSpec::cluster(
        ranks,
        args.threads.unwrap_or(1),
        args.memory.unwrap_or(mttkrp_exec::DEFAULT_CACHE_WORDS),
    )
    .with_transport(TransportSpec::Tcp);
    let plan = Planner::new(machine).plan_executable(problem, args.mode);
    if plan.algorithm.is_sequential() {
        eprintln!(
            "error: dist-rank got a sequential plan; the launcher should not have spawned it"
        );
        return ExitCode::FAILURE;
    }
    let timeout = std::time::Duration::from_secs(args.timeout_secs.unwrap_or(60));
    match dist_tcp::run_child_rank(
        &plan,
        x,
        refs,
        world_rank,
        ranks,
        connect,
        report,
        args.stall_ms.unwrap_or(0),
        timeout,
    ) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: rank {world_rank}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The `cp-als` subcommand: fit a synthetic rank-R Kruskal tensor with the
/// plan-cached CP-ALS engine (`mttkrp-als`) on the chosen backend.
///
/// With `--gate`, the run self-checks the engine's acceptance criteria and
/// exits nonzero on any violation:
///
/// 1. fit >= 0.999 on the synthetic rank-R data;
/// 2. factor matrices bitwise identical between the native and dist
///    backends on the same single-thread machine, *and* between the
///    word-exact simulator and the sharded dist runtime on a distributed
///    `--ranks P` machine — where every per-mode MTTKRP of every sweep
///    runs the paper's real communication schedule;
/// 3. plan-cache misses == the number of modes, across *all* sweeps, for
///    every run — the cache amortization is structural, not incidental.
fn run_cp_als(args: &Args) -> ExitCode {
    use mttkrp_als::{cp_als, AlsConfig, AlsRun, BackendChoice};
    use mttkrp_exec::{MachineSpec, Planner, TransportSpec};
    use mttkrp_tensor::{KruskalTensor, Shape};

    fn bitwise_equal(a: &AlsRun, b: &AlsRun) -> bool {
        a.model.weights == b.model.weights
            && a.model
                .factors
                .iter()
                .zip(&b.model.factors)
                .all(|(x, y)| x.data() == y.data())
    }

    fn summary(run: &AlsRun) -> String {
        format!(
            "fit {:.6} after {} sweep(s){}; plans {}; cache {} miss / {} hit",
            run.fit(),
            run.sweeps(),
            if run.converged { " (converged)" } else { "" },
            run.plans
                .iter()
                .map(|p| p.algorithm.label())
                .collect::<Vec<_>>()
                .join(", "),
            run.cache_misses(),
            run.cache_hits(),
        )
    }

    let mut transport = match args.transport.as_deref() {
        None | Some("channel") => TransportSpec::InProcess,
        Some("tcp") => TransportSpec::Tcp,
        Some(other) => {
            eprintln!("error: unknown transport '{other}' (channel|tcp)");
            return ExitCode::from(2);
        }
    };
    for (flag, zero) in [
        ("--threads", args.threads == Some(0)),
        ("--sweeps", args.sweeps == Some(0)),
    ] {
        if zero {
            eprintln!("error: {flag} must be at least 1");
            return ExitCode::from(2);
        }
    }
    let memory = args.memory.unwrap_or(mttkrp_exec::DEFAULT_CACHE_WORDS);
    let sweeps = args.sweeps.unwrap_or(200);
    let tol = args.tol.unwrap_or(1e-10);
    let rank = args.rank;
    let order = args.dims.len();

    // Synthetic rank-R ground truth. The ALS initialization uses a
    // different seed stream than the truth factors, so recovery is earned
    // by the sweeps, not inherited from the init.
    let shape = Shape::new(&args.dims);
    let truth = KruskalTensor::random(&shape, rank, args.seed);
    let x = truth.full();
    let base = AlsConfig::new(rank)
        .with_sweeps(sweeps)
        .with_tol(tol)
        .with_seed(args.seed.wrapping_add(1000));
    say!(
        args.json,
        "cp-als: dims {:?}, R = {rank}, data seed {}, init seed {}, up to {sweeps} sweep(s), \
         tol {tol:.1e}",
        args.dims,
        args.seed,
        args.seed.wrapping_add(1000)
    );

    // --connect: send the factorization to a live front door instead of
    // running in-process. The request frame carries this process's trace
    // context, so the server's span tree — and its rank processes, when
    // the server runs --dist-exec proc — parents under our root span in a
    // `report --merge` of the per-process trace files.
    if let Some(addr) = args.connect.as_deref() {
        if args.gate {
            eprintln!("error: --gate runs its in-process backend matrix; it cannot use --connect");
            return ExitCode::from(2);
        }
        if args.backend.is_some() {
            say!(
                args.json,
                "note: the server picks the execution backend; --backend is ignored over --connect"
            );
        }
        let spec = mttkrp_serve::net::protocol::FactorizeSpec {
            rank,
            max_sweeps: sweeps,
            tol,
            seed: args.seed.wrapping_add(1000),
            ridge: base.ridge,
        };
        let mut client = match mttkrp_serve::Client::connect(addr) {
            Ok(client) => client,
            Err(e) => {
                eprintln!("error: cannot connect to {addr}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let run = match client.factorize(&x, &spec) {
            Ok(run) => run,
            Err(e) => {
                eprintln!("error: remote factorize at {addr}: {e}");
                return ExitCode::FAILURE;
            }
        };
        say!(
            args.json,
            "[remote @{addr}] fit {:.6} after {} sweep(s){}{}",
            run.fit,
            run.sweeps,
            if run.converged { " (converged)" } else { "" },
            if run.cancelled { " (cancelled)" } else { "" }
        );
        if args.json {
            println!(
                "{{\"remote\":true,\"addr\":\"{addr}\",\"fit\":{},\"sweeps\":{},\
                 \"converged\":{},\"cancelled\":{}}}",
                run.fit, run.sweeps, run.converged, run.cancelled
            );
        }
        return if run.fit.is_finite() {
            ExitCode::SUCCESS
        } else {
            eprintln!("error: remote factorization returned a non-finite fit");
            ExitCode::FAILURE
        };
    }

    if !args.gate {
        let backend = match args.backend.as_deref() {
            None | Some("auto") => BackendChoice::Auto,
            Some("native") => BackendChoice::Native,
            Some("sim") => BackendChoice::Sim,
            Some("dist") => BackendChoice::Dist,
            // Shorthand for the full-stack traced run: the dist backend
            // with every collective's words moving over real TCP sockets.
            Some("dist-tcp") => {
                transport = TransportSpec::Tcp;
                BackendChoice::Dist
            }
            Some(other) => {
                eprintln!("error: unknown backend '{other}' (auto|native|sim|dist|dist-tcp)");
                return ExitCode::from(2);
            }
        };
        let ranks = args.ranks.or(args.procs).unwrap_or(1);
        let machine = if ranks > 1 {
            MachineSpec::cluster(ranks, args.threads.unwrap_or(1), memory).with_transport(transport)
        } else {
            MachineSpec::shared(args.threads.unwrap_or(1), memory)
        };
        let run = cp_als(&x, &base.with_machine(machine).with_backend(backend));
        say!(args.json, "{}", run.explain());
        if args.json {
            println!("{}", run.to_json());
        }
        return ExitCode::SUCCESS;
    }

    // ---- --gate: the self-checking configuration matrix ----
    let ranks = match args.ranks.or(args.procs) {
        None => 8,
        Some(p) if p >= 2 => p,
        Some(_) => {
            eprintln!("error: --gate needs --ranks of at least 2 for the cluster leg");
            return ExitCode::from(2);
        }
    };
    // The gate runs a fixed backend matrix; flags that would vary it are
    // acknowledged, not silently swallowed (the `exec` precedent).
    if args.backend.is_some() {
        say!(
            args.json,
            "note: --gate runs its fixed native/dist/sim/dist backend matrix; --backend is ignored"
        );
    }
    if args.threads.is_some() {
        say!(
            args.json,
            "note: --gate pins every leg to 1 thread (bitwise determinism); --threads is ignored"
        );
    }
    // One thread for the sequential legs: the native and dist backends
    // then execute the *identical* deterministic kernel, so the bitwise
    // comparison is exact by right, not by luck.
    let seq_machine = MachineSpec::shared(1, memory);
    let cluster = MachineSpec::cluster(ranks, 1, memory).with_transport(transport);

    // Pre-flight: the cluster leg must get genuinely distributed plans for
    // every mode — a sequential fallback would bypass the dist runtime and
    // make the cross-fabric comparison vacuous.
    for n in 0..order {
        let plan = Planner::new(cluster.clone()).plan_executable(&problem_of(args), n);
        if plan.algorithm.is_sequential() {
            eprintln!(
                "error: mode {n} admits no even data distribution over P = {ranks} ranks; \
                 choose --dims/--ranks with a dividing grid (the gate must exercise the \
                 dist runtime, not its sequential fallback)"
            );
            return ExitCode::from(2);
        }
    }

    let mut failures: Vec<String> = Vec::new();

    // Gate 1: fit on the synthetic rank-R data, native backend.
    let native = cp_als(
        &x,
        &base
            .clone()
            .with_machine(seq_machine.clone())
            .with_backend(BackendChoice::Native),
    );
    say!(args.json, "[native       ] {}", summary(&native));
    if native.fit() < 0.999 {
        failures.push(format!("native fit {:.6} < 0.999", native.fit()));
    }

    // Gate 2a: dist backend on the same machine — bitwise-identical model.
    let dist_seq = cp_als(
        &x,
        &base
            .clone()
            .with_machine(seq_machine)
            .with_backend(BackendChoice::Dist),
    );
    say!(args.json, "[dist/seq     ] {}", summary(&dist_seq));
    let seq_bitwise = bitwise_equal(&native, &dist_seq);
    say!(
        args.json,
        "bitwise check        native vs dist factors: {}",
        if seq_bitwise { "identical" } else { "DIFFER" }
    );
    if !seq_bitwise {
        failures.push("native and dist factors differ on the sequential machine".into());
    }

    // Gate 2b: the cluster leg — every per-mode MTTKRP of every sweep runs
    // the distributed schedule, once on the word-exact simulator and once
    // on the sharded multi-rank runtime. Bitwise equality here is the
    // structural contract the mttkrp-dist suite establishes, carried
    // through the whole factorization.
    let sim_cluster = cp_als(
        &x,
        &base
            .clone()
            .with_machine(cluster.clone())
            .with_backend(BackendChoice::Sim),
    );
    say!(args.json, "[sim/cluster  ] {}", summary(&sim_cluster));
    let dist_cluster = cp_als(
        &x,
        &base
            .clone()
            .with_machine(cluster)
            .with_backend(BackendChoice::Dist),
    );
    say!(args.json, "[dist/cluster ] {}", summary(&dist_cluster));
    let cluster_bitwise = bitwise_equal(&sim_cluster, &dist_cluster);
    say!(
        args.json,
        "bitwise check        sim vs dist factors over P = {ranks} rank(s): {}",
        if cluster_bitwise {
            "identical"
        } else {
            "DIFFER"
        }
    );
    if !cluster_bitwise {
        failures.push(format!(
            "sim and dist factors differ on the P = {ranks} cluster"
        ));
    }
    if dist_cluster.fit() < 0.999 {
        failures.push(format!(
            "dist cluster fit {:.6} < 0.999",
            dist_cluster.fit()
        ));
    }

    // Gate 3: plan-cache misses == N modes across all sweeps, every run.
    let runs = [
        ("native", &native),
        ("dist/seq", &dist_seq),
        ("sim/cluster", &sim_cluster),
        ("dist/cluster", &dist_cluster),
    ];
    for (label, run) in runs {
        let expected_hits = order * (run.sweeps() - 1);
        if run.cache_misses() != order || run.cache_hits() != expected_hits {
            failures.push(format!(
                "{label}: plan cache {} miss / {} hit, expected {order} / {expected_hits} \
                 (one candidate sweep per mode, ever)",
                run.cache_misses(),
                run.cache_hits()
            ));
        }
    }
    say!(
        args.json,
        "cache check          misses == {order} modes on all {} runs",
        runs.len()
    );

    if args.json {
        println!(
            "{{\"gate\":{{\"fit_ok\":{},\"bitwise_seq_ok\":{seq_bitwise},\
             \"bitwise_cluster_ok\":{cluster_bitwise},\"cluster_fit_ok\":{},\
             \"failures\":{}}},\"native\":{},\"dist_cluster\":{}}}",
            native.fit() >= 0.999,
            dist_cluster.fit() >= 0.999,
            failures.len(),
            native.to_json(),
            dist_cluster.to_json()
        );
    }
    if failures.is_empty() {
        say!(args.json, "cp-als gate          all checks passed");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("error: cp-als gate: {f}");
        }
        ExitCode::FAILURE
    }
}

/// The `report` subcommand: pretty-print a JSONL trace captured with
/// `--trace` — the span tree (with per-node total and self times), the top
/// metrics, and the modeled-vs-measured drift table. With `--gate`, exits
/// nonzero when any collective's measured words drift from the paper-model
/// prediction beyond `--tol` (default [`DRIFT_TOLERANCE`]); a schema-invalid
/// trace always fails.
fn run_report(args: &Args) -> ExitCode {
    if args.inputs.is_empty() {
        eprintln!(
            "error: report needs a trace file \
             (mttkrp_cli report trace.jsonl [--gate], or report --merge a.jsonl b.jsonl ...)"
        );
        return ExitCode::from(2);
    }
    if args.inputs.len() > 1 && !args.merge {
        eprintln!(
            "error: report got {} trace files; stitch them with --merge",
            args.inputs.len()
        );
        return ExitCode::from(2);
    }
    let mut texts = Vec::with_capacity(args.inputs.len());
    for path in &args.inputs {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        };
        // Validate first: every line must match the event schema, so a
        // gate run can trust what it is about to aggregate.
        if let Err(e) = mttkrp_obs::validate(&text) {
            eprintln!("error: {path}: {e}");
            return ExitCode::FAILURE;
        }
        texts.push(text);
    }
    // One file parses directly; several stitch into a single tree — ids
    // rebased per process, roots re-parented by their recorded remote
    // (trace id, span) adoption point.
    let trace = match mttkrp_obs::merge_traces(&texts) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {}: {e}", args.inputs.join(", "));
            return ExitCode::FAILURE;
        }
    };
    let label = if args.merge {
        format!("merged {} file(s)", args.inputs.len())
    } else {
        args.inputs[0].clone()
    };
    println!(
        "trace {label}: {} span(s), {} metric(s)\n",
        trace.spans.len(),
        trace.metrics.len()
    );
    print!("{}", mttkrp_obs::tree_summary(&trace.spans));
    println!();
    print!("{}", mttkrp_obs::metrics_summary(&trace.metrics, 12));
    let drift =
        mttkrp_obs::DriftReport::from_spans(&trace.spans, args.tol.unwrap_or(DRIFT_TOLERANCE));
    if drift.is_empty() {
        println!("\ndrift gate: no modeled/measured collective pairs in this trace");
    } else {
        println!();
        print!("{}", drift.table());
    }
    if args.gate && !drift.ok() {
        eprintln!("error: measured collective traffic drifts from the paper's model");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// The `stats` subcommand: scrape a live front door over `HEALTH` and
/// `STATS` frames — answered inline by the connection reader, never shed,
/// never counted against the admission cap — and print health plus the
/// full metrics registry. `--watch SECS` re-scrapes on an interval until
/// interrupted; `--json` emits one machine-readable object per scrape.
fn run_stats(args: &Args) -> ExitCode {
    use mttkrp_serve::Client;

    let Some(addr) = args.inputs.first() else {
        eprintln!("error: stats needs a server address (mttkrp_cli stats 127.0.0.1:PORT)");
        return ExitCode::from(2);
    };
    if args.watch == Some(0) {
        eprintln!("error: --watch must be at least 1 second");
        return ExitCode::from(2);
    }
    let mut client = match Client::connect(addr.as_str()) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("error: cannot connect to {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    loop {
        let (health, metrics) = match client.health().and_then(|h| Ok((h, client.stats()?))) {
            Ok(scrape) => scrape,
            Err(e) => {
                eprintln!("error: scraping {addr}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if args.json {
            let jsonl = mttkrp_obs::metrics_to_jsonl(&metrics);
            println!(
                "{{\"health\":{{\"uptime_ms\":{},\"open_connections\":{},\
                 \"in_flight\":{},\"draining\":{},\"admission_cap\":{}}},\
                 \"metrics\":[{}]}}",
                health.uptime_ms,
                health.open_connections,
                health.in_flight,
                health.draining,
                health.admission_cap,
                jsonl.lines().collect::<Vec<_>>().join(",")
            );
        } else {
            println!(
                "{addr}: up {:.1} s, {} connection(s) open, {}/{} in flight{}",
                health.uptime_ms as f64 / 1000.0,
                health.open_connections,
                health.in_flight,
                health.admission_cap,
                if health.draining { ", DRAINING" } else { "" }
            );
            print!("{}", mttkrp_obs::metrics_summary(&metrics, metrics.len()));
        }
        match args.watch {
            Some(secs) => {
                std::thread::sleep(std::time::Duration::from_secs(secs));
                if !args.json {
                    println!();
                }
            }
            None => break,
        }
    }
    ExitCode::SUCCESS
}

/// Registry names `top` reads off the scraped history. They travel as
/// JSONL through the `STATS_HISTORY` frame, so they are a wire contract,
/// not a private implementation detail of the server.
const TOP_QUEUE_DEPTH: &str = "serve.queue_depth";
/// Labeled exec-latency family (`serve.exec_us.shape{dims:rank:mode}`).
const TOP_EXEC_BY_SHAPE: &str = "serve.exec_us.shape";
/// Prefix of the SLO gauges the server's ticker publishes each window.
const TOP_SLO_PREFIX: &str = "obs.slo.";
/// How many trailing windows feed the rate figures and the sparklines.
const TOP_TREND_WINDOWS: usize = 32;

/// Eight-level sparkline glyphs, lowest to highest.
const SPARK: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// One glyph per value, scaled so the largest value in the slice is the
/// tallest bar (all-zero input renders as a flat baseline).
fn sparkline(values: &[u64]) -> String {
    let max = values.iter().copied().max().unwrap_or(0);
    values
        .iter()
        .map(|&v| {
            if max == 0 {
                SPARK[0]
            } else {
                SPARK[((v as f64 / max as f64) * 7.0).round() as usize]
            }
        })
        .collect()
}

/// One dashboard row: a shape family's latency distribution over the whole
/// ring, plus its per-window p99 trend over the trailing windows.
struct ShapeRow {
    label: String,
    count: u64,
    p50_us: u64,
    p99_us: u64,
    trend_p99_us: Vec<u64>,
}

/// Aggregates the ring's `serve.exec_us.shape{...}` windows into one row
/// per shape label: whole-ring p50/p99 plus the per-window p99 trail.
fn shape_rows(windows: &[mttkrp_obs::WindowSnapshot]) -> Vec<ShapeRow> {
    let mut merged: std::collections::BTreeMap<String, mttkrp_obs::HistogramSnapshot> =
        std::collections::BTreeMap::new();
    for w in windows {
        for (name, h) in &w.histograms {
            if let Some((family, label)) = mttkrp_obs::split_labeled_name(name) {
                if family == TOP_EXEC_BY_SHAPE {
                    merged.entry(label.to_string()).or_default().merge(h);
                }
            }
        }
    }
    let trail = &windows[windows.len().saturating_sub(TOP_TREND_WINDOWS)..];
    merged
        .into_iter()
        .map(|(label, h)| {
            let name = format!("{TOP_EXEC_BY_SHAPE}{{{label}}}");
            let trend_p99_us = trail
                .iter()
                .map(|w| w.histogram(&name).map_or(0, |wh| wh.quantile(0.99)))
                .collect();
            ShapeRow {
                count: h.count,
                p50_us: h.quantile(0.5),
                p99_us: h.quantile(0.99),
                trend_p99_us,
                label,
            }
        })
        .collect()
}

/// One objective's budget state, reassembled from the `obs.slo.<name>.*`
/// gauges in the newest window.
struct SloRow {
    name: String,
    budget_remaining_ppm: i64,
    breached: bool,
    /// `(lookback windows, burn rate in ppm)`, shortest look-back first.
    burn_ppm: Vec<(u64, i64)>,
}

/// Parses the `obs.slo.*` gauges of the newest window back into one row
/// per objective.
fn slo_rows(latest: &mttkrp_obs::WindowSnapshot) -> Vec<SloRow> {
    let mut rows: std::collections::BTreeMap<String, SloRow> = std::collections::BTreeMap::new();
    for (name, value) in &latest.gauges {
        let Some(rest) = name.strip_prefix(TOP_SLO_PREFIX) else {
            continue;
        };
        let Some((slo, field)) = rest.split_once('.') else {
            continue;
        };
        let row = rows.entry(slo.to_string()).or_insert_with(|| SloRow {
            name: slo.to_string(),
            budget_remaining_ppm: 0,
            breached: false,
            burn_ppm: Vec::new(),
        });
        if field == "budget_remaining_ppm" {
            row.budget_remaining_ppm = *value;
        } else if field == "breached" {
            row.breached = *value != 0;
        } else if let Some(lb) = field.strip_prefix("burn_ppm.") {
            if let Ok(lb) = lb.parse::<u64>() {
                row.burn_ppm.push((lb, *value));
            }
        }
    }
    let mut rows: Vec<SloRow> = rows.into_values().collect();
    for row in &mut rows {
        row.burn_ppm.sort_unstable();
    }
    rows
}

/// Events per second of one counter over the trailing windows.
fn trailing_rate(windows: &[mttkrp_obs::WindowSnapshot], counter: &str) -> f64 {
    let trail = &windows[windows.len().saturating_sub(TOP_TREND_WINDOWS)..];
    let dur_us: u64 = trail.iter().map(|w| w.dur_us).sum();
    if dur_us == 0 {
        return 0.0;
    }
    let events: u64 = trail.iter().map(|w| w.counter(counter)).sum();
    events as f64 * 1e6 / dur_us as f64
}

/// The `top` subcommand: a live dashboard over the `STATS_HISTORY` frame.
/// Each paint scrapes the server's whole time-series ring (answered inline
/// by the connection reader — never shed) and renders request/shed rates,
/// queue depth, per-shape p50/p99 latency with per-window p99 sparklines,
/// and SLO error-budget state. `--watch SECS` repaints on an interval;
/// `--json` emits one machine-readable snapshot per scrape (the CI
/// artifact format).
fn run_top(args: &Args) -> ExitCode {
    use mttkrp_serve::Client;

    let Some(addr) = args.inputs.first() else {
        eprintln!("error: top needs a server address (mttkrp_cli top 127.0.0.1:PORT)");
        return ExitCode::from(2);
    };
    if args.watch == Some(0) {
        eprintln!("error: --watch must be at least 1 second");
        return ExitCode::from(2);
    }
    let mut client = match Client::connect(addr.as_str()) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("error: cannot connect to {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut first = true;
    loop {
        let (health, windows) = match client
            .health()
            .and_then(|h| Ok((h, client.stats_history()?)))
        {
            Ok(scrape) => scrape,
            Err(e) => {
                eprintln!("error: scraping {addr}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let shapes = shape_rows(&windows);
        let slos = windows.last().map(slo_rows).unwrap_or_default();
        if args.json {
            println!("{}", top_json(&health, &windows, &shapes, &slos));
        } else {
            if args.watch.is_some() && !first {
                // Repaint in place: clear the terminal and home the cursor.
                print!("\x1b[2J\x1b[H");
            }
            print!("{}", top_dashboard(addr, &health, &windows, &shapes, &slos));
        }
        first = false;
        match args.watch {
            Some(secs) => std::thread::sleep(std::time::Duration::from_secs(secs)),
            None => break,
        }
    }
    ExitCode::SUCCESS
}

/// The human `top` paint.
fn top_dashboard(
    addr: &str,
    health: &mttkrp_serve::net::protocol::HealthSnapshot,
    windows: &[mttkrp_obs::WindowSnapshot],
    shapes: &[ShapeRow],
    slos: &[SloRow],
) -> String {
    use mttkrp_serve::net::listener::metric as net_metric;
    use std::fmt::Write as _;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{addr}: up {:.1} s, {} connection(s) open, {}/{} in flight{}",
        health.uptime_ms as f64 / 1000.0,
        health.open_connections,
        health.in_flight,
        health.admission_cap,
        if health.draining { ", DRAINING" } else { "" }
    );
    let span_us: u64 = windows.iter().map(|w| w.dur_us).sum();
    let queue_depth = windows
        .last()
        .and_then(|w| w.gauge(TOP_QUEUE_DEPTH))
        .unwrap_or(0);
    let _ = writeln!(
        out,
        "history: {} window(s) spanning {:.1} s; queue depth {queue_depth}",
        windows.len(),
        span_us as f64 / 1e6,
    );
    let _ = writeln!(
        out,
        "rates (trailing {} window(s)): {:.1} request/s, {:.1} shed/s",
        windows.len().min(TOP_TREND_WINDOWS),
        trailing_rate(windows, net_metric::REQUESTS),
        trailing_rate(windows, net_metric::SHED),
    );
    if shapes.is_empty() {
        let _ = writeln!(out, "\nno per-shape latency recorded yet");
    } else {
        let label_w = shapes
            .iter()
            .map(|s| s.label.len())
            .max()
            .unwrap_or(0)
            .max("shape".len());
        let _ = writeln!(
            out,
            "\n{:<label_w$}  {:>8}  {:>8}  {:>8}  p99 trend",
            "shape", "count", "p50 us", "p99 us"
        );
        for s in shapes {
            let _ = writeln!(
                out,
                "{:<label_w$}  {:>8}  {:>8}  {:>8}  {}",
                s.label,
                s.count,
                s.p50_us,
                s.p99_us,
                sparkline(&s.trend_p99_us)
            );
        }
    }
    if !slos.is_empty() {
        let name_w = slos
            .iter()
            .map(|s| s.name.len())
            .max()
            .unwrap_or(0)
            .max("slo".len());
        let _ = writeln!(
            out,
            "\n{:<name_w$}  {:>10}  {:>9}  burn rate per look-back",
            "slo", "budget", "state"
        );
        for s in slos {
            let burns = s
                .burn_ppm
                .iter()
                .map(|(lb, ppm)| format!("{lb}w:{:.2}", *ppm as f64 / 1e6))
                .collect::<Vec<_>>()
                .join("  ");
            let _ = writeln!(
                out,
                "{:<name_w$}  {:>9.1}%  {:>9}  {burns}",
                s.name,
                s.budget_remaining_ppm as f64 / 1e4,
                if s.breached { "BREACHED" } else { "ok" },
            );
        }
    }
    out
}

/// The machine-readable `top` snapshot: health, rates, the per-shape and
/// SLO aggregates, plus one compact summary object per ring window.
fn top_json(
    health: &mttkrp_serve::net::protocol::HealthSnapshot,
    windows: &[mttkrp_obs::WindowSnapshot],
    shapes: &[ShapeRow],
    slos: &[SloRow],
) -> String {
    use mttkrp_serve::net::listener::metric as net_metric;

    let shape_objs = shapes
        .iter()
        .map(|s| {
            format!(
                "{{\"label\":\"{}\",\"count\":{},\"p50_us\":{},\"p99_us\":{},\
                 \"trend_p99_us\":[{}]}}",
                s.label,
                s.count,
                s.p50_us,
                s.p99_us,
                s.trend_p99_us
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    let slo_objs = slos
        .iter()
        .map(|s| {
            let burns = s
                .burn_ppm
                .iter()
                .map(|(lb, ppm)| format!("{{\"lookback\":{lb},\"burn_ppm\":{ppm}}}"))
                .collect::<Vec<_>>()
                .join(",");
            format!(
                "{{\"name\":\"{}\",\"budget_remaining_ppm\":{},\"breached\":{},\
                 \"burn\":[{burns}]}}",
                s.name, s.budget_remaining_ppm, s.breached
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    let window_objs = windows
        .iter()
        .map(|w| {
            format!(
                "{{\"seq\":{},\"start_us\":{},\"dur_us\":{},\"requests\":{},\
                 \"sheds\":{},\"queue_depth\":{}}}",
                w.seq,
                w.start_us,
                w.dur_us,
                w.counter(net_metric::REQUESTS),
                w.counter(net_metric::SHED),
                w.gauge(TOP_QUEUE_DEPTH).unwrap_or(0)
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"health\":{{\"uptime_ms\":{},\"open_connections\":{},\"in_flight\":{},\
         \"draining\":{},\"admission_cap\":{}}},\
         \"requests_per_sec\":{},\"sheds_per_sec\":{},\
         \"shapes\":[{shape_objs}],\"slos\":[{slo_objs}],\"windows\":[{window_objs}]}}",
        health.uptime_ms,
        health.open_connections,
        health.in_flight,
        health.draining,
        health.admission_cap,
        trailing_rate(windows, net_metric::REQUESTS),
        trailing_rate(windows, net_metric::SHED),
    )
}

/// Which way a bench metric is allowed to move, keyed on the leaf name of
/// its flattened dot-path (array indices stripped): `Some(true)` = lower
/// is better (latency-like), `Some(false)` = higher is better
/// (throughput-like), `None` = informational, never gated.
fn metric_direction(path: &str) -> Option<bool> {
    let leaf = path.rsplit('.').next().unwrap_or(path);
    let leaf = leaf.split('[').next().unwrap_or(leaf);
    const LOWER_BETTER: &[&str] = &[
        "_us",
        "_secs",
        "_ms",
        "elapsed",
        "p50",
        "p99",
        "misses",
        "sheds",
        "shed_rate",
        "errors",
        "drift",
    ];
    const HIGHER_BETTER: &[&str] = &["throughput", "rps", "hit_rate", "fit", "fits"];
    if LOWER_BETTER.iter().any(|s| leaf.ends_with(s)) {
        return Some(true);
    }
    if HIGHER_BETTER.iter().any(|s| leaf.ends_with(s)) {
        return Some(false);
    }
    None
}

/// Flattens a parsed JSON value into `(dot.path[i], number)` pairs; only
/// numeric leaves survive (strings, bools, and nulls carry no gateable
/// measurement).
fn flatten_json(prefix: &str, value: &mttkrp_obs::json::JsonValue, out: &mut Vec<(String, f64)>) {
    use mttkrp_obs::json::JsonValue;
    match value {
        JsonValue::Number(n) => out.push((prefix.to_string(), *n)),
        JsonValue::Array(items) => {
            for (i, item) in items.iter().enumerate() {
                flatten_json(&format!("{prefix}[{i}]"), item, out);
            }
        }
        JsonValue::Object(fields) => {
            for (key, field) in fields {
                let path = if prefix.is_empty() {
                    key.clone()
                } else {
                    format!("{prefix}.{key}")
                };
                flatten_json(&path, field, out);
            }
        }
        _ => {}
    }
}

/// One gated metric's verdict in a baseline comparison.
struct CompareRow {
    path: String,
    base: f64,
    current: f64,
    lower_better: bool,
    regressed: bool,
}

/// Compares every gateable metric present in both files, and counts how
/// many numeric paths the files share at all (so a caller can tell "wrong
/// files" apart from "nothing to gate"). A lower-is-better metric
/// regresses when `current > base * (1 + tol)`; a higher-is-better metric
/// when `current < base / (1 + tol)`. Skipped as ungateable: metrics
/// missing from either side (a changed bench schema is not a perf
/// regression), zero/negative baselines (nothing meaningful to be
/// relative to), and array elements (per-sweep / per-client samples are
/// individually too noisy to gate — their aggregates are scalar fields).
fn compare_benches(
    base: &mttkrp_obs::json::JsonValue,
    current: &mttkrp_obs::json::JsonValue,
    tol: f64,
) -> (Vec<CompareRow>, usize) {
    let mut base_flat = Vec::new();
    flatten_json("", base, &mut base_flat);
    let mut cur_flat = Vec::new();
    flatten_json("", current, &mut cur_flat);
    let cur_by_path: std::collections::HashMap<&str, f64> =
        cur_flat.iter().map(|(p, v)| (p.as_str(), *v)).collect();
    let shared = base_flat
        .iter()
        .filter(|(p, _)| cur_by_path.contains_key(p.as_str()))
        .count();
    let rows = base_flat
        .into_iter()
        .filter_map(|(path, base)| {
            let current = *cur_by_path.get(path.as_str())?;
            if path.contains('[') || base <= 0.0 {
                return None;
            }
            let lower_better = metric_direction(&path)?;
            let regressed = if lower_better {
                current > base * (1.0 + tol)
            } else {
                current < base / (1.0 + tol)
            };
            Some(CompareRow {
                path,
                base,
                current,
                lower_better,
                regressed,
            })
        })
        .collect();
    (rows, shared)
}

/// The `bench-compare` subcommand: the perf-regression baseline gate.
/// Reads two bench `--json` outputs (a committed baseline and a fresh
/// run), compares every recognized metric with [`compare_benches`], prints
/// the verdict table, and exits nonzero when anything regressed beyond
/// `--tol` (default 0.5, i.e. 50% head-room for machine noise).
fn run_bench_compare(args: &Args) -> ExitCode {
    if args.inputs.len() != 2 {
        eprintln!(
            "error: bench-compare needs exactly two files \
             (mttkrp_cli bench-compare BASELINE.json CURRENT.json [--tol F])"
        );
        return ExitCode::from(2);
    }
    let tol = args.tol.unwrap_or(0.5);
    if !tol.is_finite() || tol <= 0.0 {
        eprintln!("error: --tol must be a positive fraction, got {tol}");
        return ExitCode::from(2);
    }
    let mut parsed = Vec::with_capacity(2);
    for path in &args.inputs {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        };
        match mttkrp_obs::json::parse(&text) {
            Ok(v) => parsed.push(v),
            Err(e) => {
                eprintln!("error: {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let (rows, shared) = compare_benches(&parsed[0], &parsed[1], tol);
    if shared == 0 {
        eprintln!(
            "error: no numeric metrics shared between {} and {} — wrong files?",
            args.inputs[0], args.inputs[1]
        );
        return ExitCode::FAILURE;
    }
    if rows.is_empty() {
        // e.g. a bench whose only measurements are per-element arrays:
        // the files match, there is just nothing direction-classified.
        println!("{shared} shared metric(s), none direction-classified; nothing to gate");
        return ExitCode::SUCCESS;
    }
    let path_w = rows
        .iter()
        .map(|r| r.path.len())
        .max()
        .unwrap_or(0)
        .max("metric".len());
    println!(
        "{:<path_w$}  {:>14}  {:>14}  {:>8}  {:>6}  verdict",
        "metric", "baseline", "current", "change", "want"
    );
    for r in &rows {
        println!(
            "{:<path_w$}  {:>14.4}  {:>14.4}  {:>+7.1}%  {:>6}  {}",
            r.path,
            r.base,
            r.current,
            (r.current / r.base - 1.0) * 100.0,
            if r.lower_better { "low" } else { "high" },
            if r.regressed { "REGRESSED" } else { "ok" },
        );
    }
    let regressed: Vec<&CompareRow> = rows.iter().filter(|r| r.regressed).collect();
    println!(
        "\n{} metric(s) compared at tolerance {tol}, {} regression(s)",
        rows.len(),
        regressed.len()
    );
    if !regressed.is_empty() {
        eprintln!(
            "error: {} metric(s) regressed beyond tolerance {tol} vs {}",
            regressed.len(),
            args.inputs[0]
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// The planning [`Problem`] of the CLI's synthetic tensor.
fn problem_of(args: &Args) -> Problem {
    Problem::new(
        &args.dims.iter().map(|&d| d as u64).collect::<Vec<u64>>(),
        args.rank as u64,
    )
}

/// The `serve --bench` subcommand: replay a synthetic mixed-shape workload
/// through the plan-cached batch serving layer and print its stats table.
///
/// The workload cycles `K` distinct shapes (derived from the base `--dims`)
/// over `N` requests, submitted in waves so the batcher actually coalesces.
/// Afterwards it cross-checks one response per shape against an unbatched
/// `plan_and_execute` (bit-identical) and fails if the plan-cache hit rate
/// is not above 90% — the whole point of serving repeated shapes.
fn run_serve(args: &Args) -> ExitCode {
    use mttkrp_exec::{plan_and_execute, MachineSpec};
    use mttkrp_serve::{MttkrpRequest, Server, ServerConfig};
    use std::sync::Arc;
    use std::time::Instant;

    if !args.bench {
        eprintln!(
            "error: serve runs the --bench replay (in-process, or over real \
             sockets with --socket); a long-lived network server is `listen`"
        );
        return ExitCode::from(2);
    }
    if args.socket {
        return run_serve_socket(args);
    }
    for (flag, value) in [
        ("--threads", args.threads),
        ("--requests", args.requests),
        ("--shapes", args.shapes),
        ("--workers", args.workers),
        ("--batch", args.batch),
        ("--cache", args.cache),
    ] {
        if value == Some(0) {
            eprintln!("error: {flag} must be at least 1");
            return ExitCode::from(2);
        }
    }
    let machine = MachineSpec {
        threads: args.threads.unwrap_or_else(MachineSpec::detect_threads),
        fast_memory_words: args.memory.unwrap_or(mttkrp_exec::DEFAULT_CACHE_WORDS),
        ranks: args.procs.unwrap_or(1),
        transport: mttkrp_exec::TransportSpec::InProcess,
    };
    let total = args.requests.unwrap_or(400);
    let shapes = args.shapes.unwrap_or(4);
    let workers = args.workers.unwrap_or(2);
    // Default the cache to hold the whole working set; an explicit smaller
    // --cache would guarantee LRU thrash on the cycling workload and fail
    // the hit-rate gate for a configuration reason, so reject it up front.
    let cache_capacity = args.cache.unwrap_or_else(|| 64.max(shapes));
    if cache_capacity < shapes {
        eprintln!(
            "error: --cache {cache_capacity} cannot hold {shapes} cycling shapes; the \
             replay would thrash the LRU cache by construction (need --cache >= --shapes)"
        );
        return ExitCode::from(2);
    }
    // The >90% gate below counts hit rate per *batch lookup*, and batching
    // coalesces ~5 same-shape requests per lookup — so a short replay can
    // report a low rate even when the cache worked perfectly (one miss per
    // shape, ever). Require enough requests for the rate to be meaningful.
    if total < 100 * shapes {
        eprintln!(
            "error: --requests {total} is too small for {shapes} shapes; the batched \
             hit-rate gate needs --requests >= {} (100 per shape)",
            100 * shapes
        );
        return ExitCode::from(2);
    }

    // K distinct shapes: stretch the base dims' first mode so every shape is
    // a different planning problem but stays cheap to materialize.
    let workload: Vec<(Arc<mttkrp_tensor::DenseTensor>, Arc<Vec<Matrix>>)> = (0..shapes)
        .map(|s| {
            let mut dims = args.dims.clone();
            dims[0] += 2 * s;
            let (x, factors) = setup_problem(&dims, args.rank, args.seed + s as u64);
            (Arc::new(x), Arc::new(factors))
        })
        .collect();
    say!(
        args.json,
        "serve bench: {total} requests over {shapes} shapes (base dims {:?}, R = {}), \
         {workers} worker(s), machine {} thread(s) / {} rank(s)",
        args.dims,
        args.rank,
        machine.threads,
        machine.ranks
    );

    let server = Server::start(ServerConfig {
        machine: machine.clone(),
        workers,
        cache_capacity,
        max_batch: args.batch.unwrap_or(32),
        backend: mttkrp_als::BackendChoice::Auto,
    });

    // Submit in waves of 5 requests per shape: large enough that same-shape
    // requests coalesce, small enough that plan lookups dominate misses.
    let wave = 5 * shapes;
    let start = Instant::now();
    let mut served = 0usize;
    while served < total {
        let count = wave.min(total - served);
        let handles: Vec<_> = (0..count)
            .map(|i| {
                let (x, f) = &workload[(served + i) % shapes];
                server.submit(MttkrpRequest::new(x.clone(), f.clone(), args.mode))
            })
            .collect();
        for h in handles {
            h.wait();
        }
        served += count;
    }
    let elapsed = start.elapsed();

    // Replay check: the served path must be bit-identical to the unbatched
    // front door for every shape in the workload.
    let mut identical = true;
    for (x, f) in &workload {
        let refs: Vec<&Matrix> = f.iter().collect();
        let (_, direct) = plan_and_execute(&machine, x, &refs, args.mode);
        let response = server.call(MttkrpRequest::new(x.clone(), f.clone(), args.mode));
        if response.report.output.data() != direct.output.data() {
            identical = false;
        }
    }

    let stats = server.shutdown();
    say!(args.json, "\n{stats}");
    say!(
        args.json,
        "throughput           {:.0} requests/s ({} requests in {:.3} s)",
        total as f64 / elapsed.as_secs_f64(),
        total,
        elapsed.as_secs_f64()
    );
    say!(
        args.json,
        "replay check         batched outputs {} unbatched plan_and_execute",
        if identical {
            "bit-identical to"
        } else {
            "DIFFER from"
        }
    );

    let hit_rate = stats.cache.hit_rate();
    if args.json {
        println!(
            "{{\"requests\":{total},\"shapes\":{shapes},\"workers\":{workers},\
             \"elapsed_secs\":{},\"throughput_rps\":{},\"batches\":{},\
             \"mean_batch\":{},\"largest_batch\":{},\"cache\":{{\"hits\":{},\
             \"misses\":{},\"hit_rate\":{}}},\"identical\":{identical}}}",
            elapsed.as_secs_f64(),
            total as f64 / elapsed.as_secs_f64(),
            stats.batches,
            stats.mean_batch_size(),
            stats.largest_batch,
            stats.cache.hits,
            stats.cache.misses,
            json_hit_rate(hit_rate)
        );
    }
    if !identical {
        eprintln!("error: served results differ from direct execution");
        return ExitCode::FAILURE;
    }
    if !hit_rate.is_some_and(|r| r > 0.9) {
        eprintln!(
            "error: plan-cache hit rate {} is below the 90% serving target",
            match hit_rate {
                Some(r) => format!("{:.1}%", 100.0 * r),
                None => "(no lookups)".to_string(),
            }
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Renders an optional hit rate for a JSON field: the rate itself, or
/// `null` when the cache never saw a lookup (0/0 is not 0%).
fn json_hit_rate(rate: Option<f64>) -> String {
    match rate {
        Some(r) => format!("{r}"),
        None => "null".to_string(),
    }
}

/// The `listen` subcommand: a long-lived network front door over the
/// serving engine. The first stdout line is `listening on <addr>` (so a
/// launcher wrapping the process can learn the bound port); it serves
/// until stdin reaches EOF, then drains gracefully — in-flight requests
/// answered, new ones shed with retry-after — and prints the final stats.
fn run_listen(args: &Args) -> ExitCode {
    use mttkrp_exec::MachineSpec;
    use mttkrp_serve::net::listener::metric as net_metric;
    use mttkrp_serve::{NetConfig, NetServer, ServerConfig};
    use std::io::{Read, Write};

    for (flag, value) in [
        ("--threads", args.threads),
        ("--workers", args.workers),
        ("--batch", args.batch),
        ("--cache", args.cache),
        ("--cap", args.cap),
    ] {
        if value == Some(0) {
            eprintln!("error: {flag} must be at least 1");
            return ExitCode::from(2);
        }
    }
    // --dist-exec proc: put the real multi-process TCP launcher behind
    // every wire factorization — the machine becomes a P-rank cluster so
    // the planner produces distributed plans, served factorizations are
    // pinned to the dist backend, and the als engine's Dist arm is
    // rerouted to a ProcBackend spawning one OS process per rank per
    // MTTKRP (each launch carries the request's trace context).
    let dist_proc = match args.dist_exec.as_deref() {
        None => false,
        Some("proc") => true,
        Some(other) => {
            eprintln!("error: unknown dist executor '{other}' (proc)");
            return ExitCode::from(2);
        }
    };
    let machine = if dist_proc {
        MachineSpec::cluster(
            args.ranks.or(args.procs).unwrap_or(4),
            args.threads.unwrap_or(1),
            args.memory.unwrap_or(mttkrp_exec::DEFAULT_CACHE_WORDS),
        )
        .with_transport(mttkrp_exec::TransportSpec::Tcp)
    } else {
        MachineSpec {
            threads: args.threads.unwrap_or_else(MachineSpec::detect_threads),
            fast_memory_words: args.memory.unwrap_or(mttkrp_exec::DEFAULT_CACHE_WORDS),
            ranks: args.procs.unwrap_or(1),
            transport: mttkrp_exec::TransportSpec::InProcess,
        }
    };
    if dist_proc {
        let exe = match std::env::current_exe() {
            Ok(exe) => exe,
            Err(e) => {
                eprintln!("error: cannot locate my own binary to spawn ranks: {e}");
                return ExitCode::FAILURE;
            }
        };
        let mut backend = mttkrp_bench::proc_backend::ProcBackend::new(
            exe,
            machine.ranks,
            machine.threads,
            machine.fast_memory_words,
        );
        if let Some(dir) = &args.rank_trace_dir {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("error: cannot create --rank-trace-dir {dir}: {e}");
                return ExitCode::FAILURE;
            }
            backend = backend.with_rank_trace_dir(dir.into());
        }
        mttkrp_als::install_dist_executor(std::sync::Arc::new(backend));
    }
    let server = match NetServer::start(NetConfig {
        bind: args
            .bind
            .clone()
            .unwrap_or_else(|| "127.0.0.1:0".to_string()),
        server: ServerConfig {
            machine,
            workers: args.workers.unwrap_or(2),
            cache_capacity: args.cache.unwrap_or(128),
            max_batch: args.batch.unwrap_or(32),
            backend: if dist_proc {
                mttkrp_als::BackendChoice::Dist
            } else {
                mttkrp_als::BackendChoice::Auto
            },
        },
        max_in_flight: args.cap.unwrap_or(64),
        retry_after_ms: args.retry_ms.unwrap_or(50),
        ..NetConfig::default()
    }) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Warm-start the plan cache before announcing the address, so the very
    // first request a launcher sends can already hit. A missing file is not
    // an error — it just means a cold start (the file is written on
    // shutdown either way).
    if let Some(path) = &args.cache_file {
        if std::path::Path::new(path).exists() {
            match server.server().cache().load_from(path) {
                Ok(n) => eprintln!("plan cache warmed with {n} entr(ies) from {path}"),
                Err(e) => {
                    eprintln!("error: cannot load --cache-file {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            eprintln!("plan cache cold: {path} does not exist yet (saved on shutdown)");
        }
    }
    println!("listening on {}", server.addr());
    let _ = std::io::stdout().flush();
    eprintln!("serving until stdin closes (EOF drains in-flight work and exits)");

    // Park until the launcher closes stdin (or this process is orphaned).
    let mut sink = [0u8; 256];
    let mut stdin = std::io::stdin();
    loop {
        match stdin.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }

    let connections = server.metrics().counter_value(net_metric::CONNECTIONS);
    let socket_requests = server.metrics().counter_value(net_metric::REQUESTS);
    let sheds = server.metrics().counter_value(net_metric::SHED);
    // Persist what this process learned (plans + measured profiles) before
    // the server is torn down, so the next `listen --cache-file` starts
    // exactly as warm as this one ended.
    if let Some(path) = &args.cache_file {
        match server.server().cache().save(path) {
            Ok(n) => eprintln!("plan cache saved: {n} entr(ies) -> {path}"),
            Err(e) => {
                eprintln!("error: cannot save --cache-file {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let stats = server.shutdown();
    println!("{stats}");
    println!("connections          {connections}");
    println!("socket requests      {socket_requests}");
    println!("requests shed        {sheds}");
    ExitCode::SUCCESS
}

/// The `autotune` subcommand: an offline self-tuning sweep. Plans the same
/// serve-style shape family a front door would see (the base dims with the
/// first mode stretched, every output mode), wall-times each executable
/// near-tie candidate `--trials` times on the plan's natural backend,
/// feeds the timings back through [`mttkrp_exec::PlanCache`], and re-plans
/// so the planner weighs the evidence against its analytic prior. Prints
/// the before/after plan-choice diff (with `Plan::explain` for every
/// re-ranked plan), self-checks that adversarial out-of-band evidence can
/// never override the model, and — with `--cache-file` — writes the tuned
/// cache so `listen --cache-file` restarts warm with zero planner sweeps.
fn run_autotune(args: &Args) -> ExitCode {
    use mttkrp_exec::{
        Executor, MachineSpec, PlanCache, PlanKey, Planner, DEFAULT_NEAR_TIE_BAND,
        MIN_EVIDENCE_RUNS,
    };
    use std::time::Instant;

    for (flag, value) in [
        ("--threads", args.threads),
        ("--shapes", args.shapes),
        ("--trials", args.trials),
        ("--cache", args.cache),
    ] {
        if value == Some(0) {
            eprintln!("error: {flag} must be at least 1");
            return ExitCode::from(2);
        }
    }
    if args.procs.is_some_and(|p| p > 1) {
        eprintln!(
            "error: autotune wall-times candidates, and distributed plans run on the \
             word-exact simulator whose wall time is meaningless; tune sequential \
             machines only (drop --procs)"
        );
        return ExitCode::from(2);
    }
    let band = args.band.unwrap_or(DEFAULT_NEAR_TIE_BAND);
    if !band.is_finite() || band < 0.0 {
        eprintln!("error: --band must be a finite non-negative fraction (e.g. 0.15)");
        return ExitCode::from(2);
    }
    let machine = MachineSpec {
        threads: args.threads.unwrap_or_else(MachineSpec::detect_threads),
        fast_memory_words: args.memory.unwrap_or(mttkrp_exec::DEFAULT_CACHE_WORDS),
        ranks: 1,
        transport: mttkrp_exec::TransportSpec::InProcess,
    };
    let shapes = args.shapes.unwrap_or(4);
    let trials = args.trials.unwrap_or(3).max(MIN_EVIDENCE_RUNS as usize);
    let planner = Planner::new(machine.clone()).with_near_tie_band(band);
    let cache = PlanCache::new(
        args.cache
            .unwrap_or_else(|| 64.max(shapes * args.dims.len())),
    );

    say!(
        args.json,
        "autotune: {shapes} shape(s) x {} mode(s), {trials} trial(s) per candidate, \
         near-tie band +-{:.0}%, machine {} thread(s) / {} fast words",
        args.dims.len(),
        100.0 * band,
        machine.threads,
        machine.fast_memory_words
    );

    // The same shape family `serve`/`listen` workloads use: stretch the
    // first mode so every shape is a distinct planning problem. Keys in
    // the tuned cache match a front door started with the same --threads
    // and --memory, which is what makes warm restarts replay with zero
    // planner sweeps.
    let mut rows: Vec<String> = Vec::new();
    let mut flipped_total = 0usize;
    for s in 0..shapes {
        let mut dims = args.dims.clone();
        dims[0] += 2 * s;
        let problem = Problem::new(
            &dims.iter().map(|&d| d as u64).collect::<Vec<u64>>(),
            args.rank as u64,
        );
        if problem.tensor_entries() > (1u128 << 26) {
            eprintln!(
                "error: refusing to materialize {} tensor entries for an autotune run",
                problem.tensor_entries()
            );
            return ExitCode::from(2);
        }
        let (x, factors) = setup_problem(&dims, args.rank, args.seed + s as u64);
        let refs: Vec<&Matrix> = factors.iter().collect();
        for mode in 0..dims.len() {
            let before = planner.plan_cached(&problem, mode, &cache);
            let key = PlanKey::for_plan(&before);
            let ties = planner.near_tie_candidates(&before);
            let mut measured = 0usize;
            for cand in &ties {
                // Distributed candidates execute on the simulator; their
                // wall time measures the simulator, not the plan. A
                // 1-rank machine offers none, but keep the guard honest.
                if !cand.algorithm.is_sequential() {
                    continue;
                }
                let mut probe = (*before).clone();
                probe.algorithm = cand.algorithm.clone();
                probe.predicted_cost = cand.modeled_cost;
                let exec = Executor::for_plan(&probe);
                for _ in 0..trials {
                    let t = Instant::now();
                    let _ = exec.execute(&probe, &x, &refs, mode);
                    cache.record_measurement(
                        &key,
                        &cand.algorithm.label(),
                        t.elapsed().as_secs_f64(),
                    );
                }
                measured += 1;
            }
            let after = planner.plan_cached(&problem, mode, &cache);
            let flipped = after.algorithm != before.algorithm;
            flipped_total += flipped as usize;
            let ewma_us = cache
                .profiles(&key)
                .get(&after.algorithm.label())
                .map(|p| p.ewma_secs * 1e6);
            say!(
                args.json,
                "  dims {dims:?} mode {mode}: analytic {} ({:.4e} words), {measured} \
                 candidate(s) measured -> {} ({}){}",
                before.algorithm.label(),
                before.predicted_cost,
                after.algorithm.label(),
                match ewma_us {
                    Some(us) => format!("ewma {us:.1} us"),
                    None => "unmeasured".to_string(),
                },
                if flipped { "  [RE-RANKED]" } else { "" }
            );
            if flipped && !args.json {
                for line in after.explain().lines() {
                    println!("    | {line}");
                }
            }
            rows.push(format!(
                "{{\"dims\":[{}],\"mode\":{mode},\"analytic\":\"{}\",\
                 \"analytic_cost\":{},\"tuned\":\"{}\",\"tuned_ewma_us\":{},\
                 \"candidates_measured\":{measured},\"flipped\":{flipped}}}",
                dims.iter()
                    .map(|d| d.to_string())
                    .collect::<Vec<_>>()
                    .join(","),
                before.algorithm.label(),
                before.predicted_cost,
                after.algorithm.label(),
                match ewma_us {
                    Some(us) => format!("{us}"),
                    None => "null".to_string(),
                },
            ));
        }
    }

    // Adversarial self-check on a scratch cache (never the tuned one): with
    // a zero-width band every non-winner is out of band, so even absurdly
    // good fabricated timings for it must not override the analytic model.
    let strict = Planner::new(machine.clone()).with_near_tie_band(0.0);
    let scratch = PlanCache::new(4);
    let dims = args.dims.clone();
    let problem = Problem::new(
        &dims.iter().map(|&d| d as u64).collect::<Vec<u64>>(),
        args.rank as u64,
    );
    let prior = strict.plan_cached(&problem, args.mode, &scratch);
    let key = PlanKey::for_plan(&prior);
    let guard_ok = match prior
        .candidates
        .iter()
        .find(|c| c.algorithm != prior.algorithm)
    {
        Some(loser) => {
            for _ in 0..trials.max(MIN_EVIDENCE_RUNS as usize) {
                scratch.record_measurement(&key, &loser.algorithm.label(), 1e-9);
            }
            let replanned = strict.plan_cached(&problem, args.mode, &scratch);
            replanned.algorithm == prior.algorithm
        }
        // A one-candidate plan has nothing out of band to promote.
        None => true,
    };
    say!(
        args.json,
        "adversarial guard    out-of-band evidence {} the analytic model",
        if guard_ok {
            "cannot override"
        } else {
            "OVERRODE"
        }
    );

    let mut saved = None;
    if let Some(path) = &args.cache_file {
        match cache.save(path) {
            Ok(n) => {
                saved = Some(n);
                say!(args.json, "tuned cache saved    {n} entr(ies) -> {path}");
            }
            Err(e) => {
                eprintln!("error: cannot save --cache-file {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let stats = cache.stats();
    say!(
        args.json,
        "plan choices         {flipped_total} of {} re-ranked by measured evidence; \
         {} measurement(s), {} re-rank(s)",
        rows.len(),
        stats.measurements,
        stats.reranks
    );
    if args.json {
        println!(
            "{{\"shapes\":{shapes},\"modes\":{},\"trials\":{trials},\"band\":{band},\
             \"plans\":[{}],\"flipped\":{flipped_total},\"measurements\":{},\
             \"reranks\":{},\"cache_entries\":{},\"guard_ok\":{guard_ok},\
             \"cache_file\":{}}}",
            args.dims.len(),
            rows.join(","),
            stats.measurements,
            stats.reranks,
            stats.len,
            match (&args.cache_file, saved) {
                (Some(path), Some(_)) => format!("\"{path}\""),
                _ => "null".to_string(),
            },
        );
    }
    if !guard_ok {
        eprintln!(
            "error: fabricated out-of-band measurements overrode the analytic model; \
             the near-tie band is not being enforced"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// `serve --bench --socket`: the mixed-shape replay of `run_serve`, but
/// through the real TCP front door — N concurrent client connections
/// (each also carrying one factorization), retry-on-shed, per-client
/// latency stats, and a bitwise replay check of every socket response
/// against in-process execution on the same engine. Exits nonzero on any
/// byte mismatch, a shed-rate breach, a stuck connection, or a storm
/// request that missed the warmed plan cache.
fn run_serve_socket(args: &Args) -> ExitCode {
    use mttkrp_exec::MachineSpec;
    use mttkrp_serve::net::listener::metric as net_metric;
    use mttkrp_serve::net::protocol::FactorizeSpec;
    use mttkrp_serve::{
        Client, ClientError, FactorizeRequest, MttkrpRequest, NetConfig, NetServer, ServerConfig,
    };
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    for (flag, value) in [
        ("--threads", args.threads),
        ("--requests", args.requests),
        ("--shapes", args.shapes),
        ("--workers", args.workers),
        ("--batch", args.batch),
        ("--cache", args.cache),
        ("--clients", args.clients),
        ("--cap", args.cap),
    ] {
        if value == Some(0) {
            eprintln!("error: {flag} must be at least 1");
            return ExitCode::from(2);
        }
    }
    let machine = MachineSpec {
        threads: args.threads.unwrap_or_else(MachineSpec::detect_threads),
        fast_memory_words: args.memory.unwrap_or(mttkrp_exec::DEFAULT_CACHE_WORDS),
        ranks: args.procs.unwrap_or(1),
        transport: mttkrp_exec::TransportSpec::InProcess,
    };
    let total = args.requests.unwrap_or(400);
    let shapes = args.shapes.unwrap_or(4);
    let workers = args.workers.unwrap_or(2);
    let clients = args.clients.unwrap_or(8);
    let cap = args.cap.unwrap_or(64);
    let order = args.dims.len();
    // The warmup plans every (shape, mode) key — all `order` modes per
    // shape, because each warmup factorization sweeps them all — so the
    // cache must hold the whole working set.
    let cache_capacity = args.cache.unwrap_or_else(|| 64.max(shapes * order));
    if cache_capacity < shapes * order {
        eprintln!(
            "error: --cache {cache_capacity} cannot hold {shapes} shapes x {order} modes; \
             the warmed-cache gate needs --cache >= {}",
            shapes * order
        );
        return ExitCode::from(2);
    }
    if total < clients {
        eprintln!("error: --requests {total} is fewer than --clients {clients}");
        return ExitCode::from(2);
    }

    let workload: Vec<(Arc<mttkrp_tensor::DenseTensor>, Arc<Vec<Matrix>>)> = (0..shapes)
        .map(|s| {
            let mut dims = args.dims.clone();
            dims[0] += 2 * s;
            let (x, factors) = setup_problem(&dims, args.rank, args.seed + s as u64);
            (Arc::new(x), Arc::new(factors))
        })
        .collect();
    let spec = FactorizeSpec {
        rank: args.rank,
        max_sweeps: 4,
        tol: 1e-12,
        seed: args.seed,
        ridge: 1e-9,
    };
    say!(
        args.json,
        "serve bench (socket): {total} MTTKRPs + {clients} factorizations over {shapes} \
         shapes (base dims {:?}, R = {}), {clients} client connections, in-flight cap \
         {cap}, {workers} worker(s)",
        args.dims,
        args.rank
    );

    let server = match NetServer::start(NetConfig {
        bind: args
            .bind
            .clone()
            .unwrap_or_else(|| "127.0.0.1:0".to_string()),
        server: ServerConfig {
            machine: machine.clone(),
            workers,
            cache_capacity,
            max_batch: args.batch.unwrap_or(32),
            backend: mttkrp_als::BackendChoice::Auto,
        },
        max_in_flight: cap,
        retry_after_ms: args.retry_ms.unwrap_or(5),
        ..NetConfig::default()
    }) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = server.addr();

    // Warmup + expected bytes, in-process on the SAME engine: after this,
    // every (shape, mode) plan key is resident, so the storm must miss
    // the cache exactly zero times — and every socket response has an
    // in-process oracle to be bit-identical to.
    let bits = |w: &[f64]| w.iter().map(|v| v.to_bits()).collect::<Vec<u64>>();
    let mut expected_mttkrp: Vec<Vec<u64>> = Vec::with_capacity(shapes);
    let mut expected_model: Vec<Vec<u64>> = Vec::with_capacity(shapes);
    for (x, f) in &workload {
        let response =
            server
                .server()
                .call(MttkrpRequest::new(Arc::clone(x), Arc::clone(f), args.mode));
        expected_mttkrp.push(bits(response.report.output.data()));
        let run = server
            .server()
            .call_factorize(FactorizeRequest::new(
                Arc::clone(x),
                spec.into_config(&machine),
            ))
            .run;
        let mut model_bits = bits(&run.model.weights);
        for factor in &run.model.factors {
            model_bits.extend(bits(factor.data()));
        }
        expected_model.push(model_bits);
    }
    let expected_mttkrp = Arc::new(expected_mttkrp);
    let expected_model = Arc::new(expected_model);
    let warmup_misses = server.stats().cache.misses;

    let start = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let expected_mttkrp = Arc::clone(&expected_mttkrp);
            let expected_model = Arc::clone(&expected_model);
            let workload = workload.clone();
            let mode = args.mode;
            let my_requests = total / clients + usize::from(c < total % clients);
            std::thread::spawn(move || {
                let mut served = 0u64;
                let mut sheds = 0u64;
                let mut mismatches = 0u64;
                let mut sum_us = 0u128;
                let mut max_us = 0u128;
                let shed_wait = |sheds: &mut u64, after: Duration| {
                    *sheds += 1;
                    assert!(
                        *sheds < 100_000,
                        "client {c}: livelocked on retry-after sheds"
                    );
                    std::thread::sleep(after);
                };
                let mut client = loop {
                    match Client::connect(addr) {
                        Ok(client) => break client,
                        Err(ClientError::RetryAfter(after)) => shed_wait(&mut sheds, after),
                        Err(e) => panic!("client {c}: connect failed: {e}"),
                    }
                };
                for i in 0..my_requests {
                    let s = (c + i) % shapes;
                    let (x, f) = &workload[s];
                    let t0 = Instant::now();
                    loop {
                        match client.mttkrp(x, f.as_slice(), mode) {
                            Ok(remote) => {
                                let us = t0.elapsed().as_micros();
                                sum_us += us;
                                max_us = max_us.max(us);
                                if bits(remote.output.data()) != expected_mttkrp[s] {
                                    mismatches += 1;
                                }
                                served += 1;
                                break;
                            }
                            Err(ClientError::RetryAfter(after)) => shed_wait(&mut sheds, after),
                            Err(e) => panic!("client {c}: mttkrp failed: {e}"),
                        }
                    }
                }
                // One factorization per client rides along: the workload
                // is mixed, not MTTKRP-only.
                let s = c % shapes;
                let run = loop {
                    match client.factorize(&workload[s].0, &spec) {
                        Ok(run) => break run,
                        Err(ClientError::RetryAfter(after)) => shed_wait(&mut sheds, after),
                        Err(e) => panic!("client {c}: factorize failed: {e}"),
                    }
                };
                let mut model_bits = bits(&run.model.weights);
                for factor in &run.model.factors {
                    model_bits.extend(bits(factor.data()));
                }
                if model_bits != expected_model[s] {
                    mismatches += 1;
                }
                (served, sheds, mismatches, sum_us, max_us)
            })
        })
        .collect();

    let mut per_client = Vec::with_capacity(clients);
    let (mut served, mut sheds, mut mismatches) = (0u64, 0u64, 0u64);
    for handle in handles {
        let (s, r, m, sum_us, max_us) = handle.join().expect("bench client panicked");
        per_client.push((s, r, sum_us, max_us));
        served += s;
        sheds += r;
        mismatches += m;
    }
    let elapsed = start.elapsed();

    // Zero stuck connections after the storm: every client dropped its
    // socket, so the gauges must return to zero on their own.
    let drain_deadline = Instant::now() + Duration::from_secs(30);
    while server.metrics().gauge_value(net_metric::OPEN_CONNECTIONS) != 0
        || server.metrics().gauge_value(net_metric::IN_FLIGHT) != 0
    {
        if Instant::now() > drain_deadline {
            eprintln!("error: connections stuck open after the storm drained");
            return ExitCode::FAILURE;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let storm_misses = server.stats().cache.misses - warmup_misses;
    let stats = server.shutdown();

    say!(args.json, "\n{stats}");
    say!(
        args.json,
        "\nper-client:  served    sheds  mean_ms   max_ms"
    );
    for (c, (s, r, sum_us, max_us)) in per_client.iter().enumerate() {
        say!(
            args.json,
            "  client {c:>3}  {s:>6}  {r:>7}  {:>7.2}  {:>7.2}",
            if *s > 0 {
                *sum_us as f64 / *s as f64 / 1000.0
            } else {
                0.0
            },
            *max_us as f64 / 1000.0
        );
    }
    let shed_rate = sheds as f64 / (sheds + served + clients as u64) as f64;
    say!(
        args.json,
        "\nthroughput           {:.0} requests/s ({served} MTTKRPs + {clients} \
         factorizations in {:.3} s)",
        served as f64 / elapsed.as_secs_f64(),
        elapsed.as_secs_f64()
    );
    say!(
        args.json,
        "sheds                {sheds} retry-after frames ({:.1}% of attempts)",
        100.0 * shed_rate
    );
    say!(
        args.json,
        "replay check         socket responses {} in-process execution \
         ({mismatches} mismatching)",
        if mismatches == 0 {
            "bit-identical to"
        } else {
            "DIFFER from"
        }
    );
    say!(
        args.json,
        "warmed-cache check   {storm_misses} plan-cache misses during the storm \
         (warmup planned every key)"
    );

    if args.json {
        let per: Vec<String> = per_client
            .iter()
            .enumerate()
            .map(|(c, (s, r, sum_us, max_us))| {
                format!(
                    "{{\"client\":{c},\"served\":{s},\"sheds\":{r},\"mean_us\":{},\
                     \"max_us\":{max_us}}}",
                    if *s > 0 { *sum_us / *s as u128 } else { 0 }
                )
            })
            .collect();
        println!(
            "{{\"socket\":true,\"clients\":{clients},\"requests\":{total},\
             \"served\":{served},\"factorizations\":{clients},\"sheds\":{sheds},\
             \"shed_rate\":{shed_rate},\"elapsed_secs\":{},\"throughput_rps\":{},\
             \"storm_cache_misses\":{storm_misses},\"cache\":{{\"hits\":{},\
             \"misses\":{},\"hit_rate\":{}}},\"identical\":{},\
             \"per_client\":[{}]}}",
            elapsed.as_secs_f64(),
            served as f64 / elapsed.as_secs_f64(),
            stats.cache.hits,
            stats.cache.misses,
            json_hit_rate(stats.cache.hit_rate()),
            mismatches == 0,
            per.join(",")
        );
    }

    if mismatches > 0 {
        eprintln!("error: {mismatches} socket responses differ from in-process execution");
        return ExitCode::FAILURE;
    }
    if served != total as u64 {
        eprintln!("error: served {served} of {total} requests");
        return ExitCode::FAILURE;
    }
    if storm_misses != 0 {
        eprintln!(
            "error: {storm_misses} plan-cache misses during the storm; the warmup \
             planned every (shape, mode) key, so the storm should hit every time"
        );
        return ExitCode::FAILURE;
    }
    if shed_rate > 0.5 {
        eprintln!(
            "error: shed rate {:.1}% exceeds the 50% livelock threshold \
             (cap {cap} too small for {clients} clients?)",
            100.0 * shed_rate
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// The `bounds` subcommand: formula-only, works at any (e.g. Figure 4)
/// scale because no tensor is ever materialized.
fn run_bounds_only(args: &Args, problem: &Problem) -> ExitCode {
    if let Some(m) = args.memory {
        println!(
            "sequential (M = {m}): Thm 4.1 = {:.0}, Fact 4.1 = {:.0}",
            bounds::seq_memory_dependent(problem, m as u64),
            bounds::seq_trivial(problem, m as u64)
        );
    }
    if let Some(p) = args.procs {
        println!(
            "parallel (P = {p}): Thm 4.2 = {:.0}, Thm 4.3 = {:.0}, Cor 4.2 = {:.0}",
            bounds::par_mi_thm42(problem, p as u64, 1.0, 1.0),
            bounds::par_mi_thm43(problem, p as u64, 1.0, 1.0),
            bounds::par_combined_cor42(problem, p as u64)
        );
        if let Some(m) = args.memory {
            println!(
                "parallel memory-dependent (Cor 4.1): {:.0}",
                bounds::par_memory_dependent(problem, p as u64, m as u64)
            );
        }
        println!(
            "matmul baseline model (CARMA, mode {}): {:.0}",
            args.mode,
            model::mm_baseline_cost(problem, args.mode, p as u64)
        );
    }
    if args.memory.is_none() && args.procs.is_none() {
        eprintln!("error: bounds needs --memory and/or --procs");
        return ExitCode::from(2);
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;
    use mttkrp_obs::json::parse;

    #[test]
    fn flatten_walks_objects_arrays_and_skips_non_numbers() {
        let v =
            parse(r#"{"a":1,"b":{"c_us":2.5,"skip":"text"},"fits":[0.9,0.95],"ok":true,"n":null}"#)
                .unwrap();
        let mut flat = Vec::new();
        flatten_json("", &v, &mut flat);
        flat.sort_by(|x, y| x.0.cmp(&y.0));
        assert_eq!(
            flat,
            vec![
                ("a".to_string(), 1.0),
                ("b.c_us".to_string(), 2.5),
                ("fits[0]".to_string(), 0.9),
                ("fits[1]".to_string(), 0.95),
            ]
        );
    }

    #[test]
    fn direction_classifies_latency_throughput_and_informational() {
        // Lower is better: latency, loss, and drift shaped names.
        for path in [
            "elapsed_secs",
            "per_client[0].mean_us",
            "cache.misses",
            "shed_rate",
            "gate.drift",
            "shapes[1].p99",
        ] {
            assert_eq!(metric_direction(path), Some(true), "{path}");
        }
        // Higher is better: throughput and quality shaped names.
        for path in ["throughput_rps", "cache.hit_rate", "native.fit", "fits[3]"] {
            assert_eq!(metric_direction(path), Some(false), "{path}");
        }
        // Informational: config echoes and counts are never gated.
        for path in ["requests", "workers", "seed", "cache_entries"] {
            assert_eq!(metric_direction(path), None, "{path}");
        }
    }

    #[test]
    fn compare_flags_regressions_in_both_directions_only() {
        let base = parse(r#"{"elapsed_secs":1.0,"throughput_rps":100.0,"workers":4}"#).unwrap();
        let ok = parse(r#"{"elapsed_secs":1.4,"throughput_rps":70.0,"workers":8}"#).unwrap();
        let (rows, shared) = compare_benches(&base, &ok, 0.5);
        // `workers` is informational, so exactly the two gated metrics.
        assert_eq!(shared, 3);
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| !r.regressed), "within 50% head-room");

        let slow = parse(r#"{"elapsed_secs":1.6,"throughput_rps":100.0,"workers":4}"#).unwrap();
        let (rows, _) = compare_benches(&base, &slow, 0.5);
        let bad: Vec<&str> = rows
            .iter()
            .filter(|r| r.regressed)
            .map(|r| r.path.as_str())
            .collect();
        assert_eq!(bad, vec!["elapsed_secs"], "latency grew past 1.5x");

        let starved = parse(r#"{"elapsed_secs":1.0,"throughput_rps":60.0,"workers":4}"#).unwrap();
        let (rows, _) = compare_benches(&base, &starved, 0.5);
        let bad: Vec<&str> = rows
            .iter()
            .filter(|r| r.regressed)
            .map(|r| r.path.as_str())
            .collect();
        assert_eq!(bad, vec!["throughput_rps"], "throughput fell below 1/1.5x");
    }

    #[test]
    fn compare_skips_missing_paths_zero_baselines_and_array_elements() {
        let base =
            parse(r#"{"elapsed_secs":1.0,"gone_us":5.0,"sheds":0,"sweep_secs":[0.1]}"#).unwrap();
        let cur =
            parse(r#"{"elapsed_secs":1.0,"new_us":9.0,"sheds":1000,"sweep_secs":[9.9]}"#).unwrap();
        let (rows, shared) = compare_benches(&base, &cur, 0.5);
        // `gone_us`/`new_us` are one-sided, `sheds` has a zero baseline,
        // and `sweep_secs[0]` is a per-element sample: none of them can be
        // gated, so only `elapsed_secs` is compared.
        assert_eq!(shared, 3, "elapsed_secs, sheds, sweep_secs[0]");
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].path, "elapsed_secs");
        assert!(!rows[0].regressed);
    }

    #[test]
    fn sparkline_scales_to_the_slice_maximum() {
        assert_eq!(sparkline(&[0, 0, 0]), "▁▁▁");
        let line = sparkline(&[0, 50, 100]);
        assert_eq!(line.chars().count(), 3);
        assert_eq!(line.chars().next(), Some('▁'));
        assert_eq!(line.chars().last(), Some('█'));
    }

    #[test]
    fn slo_rows_reassemble_published_gauges() {
        let reg = mttkrp_obs::MetricsRegistry::new();
        reg.gauge_set("obs.slo.exec.budget_remaining_ppm", 873_000);
        reg.gauge_set("obs.slo.exec.breached", 0);
        reg.gauge_set("obs.slo.exec.burn_ppm.8", 120_000);
        reg.gauge_set("obs.slo.exec.burn_ppm.120", 90_000);
        reg.gauge_set("unrelated.gauge", 7);
        let ring = mttkrp_obs::TimeSeriesRing::new(4);
        let window = ring.sample(&reg);
        let rows = slo_rows(&window);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].name, "exec");
        assert_eq!(rows[0].budget_remaining_ppm, 873_000);
        assert!(!rows[0].breached);
        assert_eq!(rows[0].burn_ppm, vec![(8, 120_000), (120, 90_000)]);
    }
}
