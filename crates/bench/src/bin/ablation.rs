//! Ablation study over the design choices DESIGN.md calls out, with
//! *measured* (deterministic) communication and arithmetic counts:
//!
//! 1. **Processor-grid choice** (Algorithm 3): optimized factorization vs
//!    1D and random grids — how much the grid matters.
//! 2. **Block-size choice** (Algorithm 2): swept `b` vs the Eq.-(11)
//!    maximum — why `b ~ M^(1/N)` is the right pick.
//! 3. **Rank partitioning** (Algorithm 4): `P_0` swept at fixed `P` — the
//!    tensor-vs-factor traffic trade-off behind Theorem 6.2's two regimes.
//! 4. **Kernel atomicity** (Eq. (15) vs Eq. (17)): multiplies of the atomic
//!    vs two-step local kernels.
//!
//! Run with: `cargo run --release -p mttkrp-bench --bin ablation`

use mttkrp_bench::{header, row, setup_problem};
use mttkrp_core::{arith, grid_opt, model, par, seq, Problem};
use mttkrp_tensor::Matrix;

fn main() {
    println!("# Ablation studies\n");

    // ------------------------------------------------------------------
    println!("## 1. Grid choice, Algorithm 3 (16x16x16, R = 4, P = 16)\n");
    header(&["grid", "modeled words", "measured max w/rank", "vs best"]);
    let dims = [16usize, 16, 16];
    let (x, factors) = setup_problem(&dims, 4, 1);
    let refs: Vec<&Matrix> = factors.iter().collect();
    let p = Problem::new(&[16, 16, 16], 4);
    let (best_grid, best_cost) = grid_opt::optimize_alg3_grid_dividing(&p, 16).unwrap();
    let candidates: Vec<Vec<u64>> = vec![
        best_grid.clone(),
        vec![16, 1, 1],
        vec![1, 16, 1],
        vec![4, 4, 1],
        vec![2, 2, 4],
    ];
    for grid in candidates {
        let gu: Vec<usize> = grid.iter().map(|&g| g as usize).collect();
        let run = par::mttkrp_stationary(&x, &refs, 0, &gu);
        let modeled = model::alg3_cost(&p, &grid);
        row(&[
            format!("{grid:?}"),
            format!("{modeled:.0}"),
            format!("{}", run.max_recv_words()),
            format!("{:.2}x", modeled / best_cost),
        ]);
    }

    // ------------------------------------------------------------------
    println!("\n## 2. Block size, Algorithm 2 (16^3, R = 4, M = 1100)\n");
    header(&["b", "b^N+Nb", "measured words", "vs best"]);
    let m = 1100usize;
    let bmax = seq::choose_block_size(m, 3);
    let mut best = u64::MAX;
    let mut rows = Vec::new();
    for b in 1..=bmax {
        let run = seq::mttkrp_blocked(&x, &refs, 0, m, b);
        best = best.min(run.stats.total());
        rows.push((b, run.stats.total()));
    }
    for (b, w) in rows {
        row(&[
            format!("{b}{}", if b == bmax { " (max)" } else { "" }),
            format!("{}", b.pow(3) + 3 * b),
            format!("{w}"),
            format!("{:.2}x", w as f64 / best as f64),
        ]);
    }

    // ------------------------------------------------------------------
    println!("\n## 3. Rank partitioning P0, Algorithm 4 (8^3, R = 32, P = 16)\n");
    header(&["P0", "grid", "tensor words", "factor words", "total w/rank"]);
    let dims2 = [8usize, 8, 8];
    let (x2, factors2) = setup_problem(&dims2, 32, 2);
    let refs2: Vec<&Matrix> = factors2.iter().collect();
    let p2 = Problem::new(&[8, 8, 8], 32);
    for (p0, grid) in [
        (1usize, [4usize, 2, 2]),
        (2, [2, 2, 2]),
        (4, [2, 2, 1]),
        (8, [2, 1, 1]),
        (16, [1, 1, 1]),
    ] {
        let run = par::mttkrp_general(&x2, &refs2, 0, p0, &grid);
        let g64: Vec<u64> = grid.iter().map(|&g| g as u64).collect();
        let procs: u64 = 16;
        let tensor_words = (p0 as f64 - 1.0) * 512.0 / procs as f64;
        let total_model = model::alg4_cost(&p2, p0 as u64, &g64);
        row(&[
            format!("{p0}"),
            format!("{grid:?}"),
            format!("{tensor_words:.0}"),
            format!("{:.0}", total_model - tensor_words),
            format!("{}", run.max_recv_words()),
        ]);
    }
    println!("\n(P0 trades growing tensor all-gather words against shrinking");
    println!("factor words; the optimum interior when NR is large vs I/P.)");

    // ------------------------------------------------------------------
    println!("\n## 4. Kernel atomicity: multiplies, atomic vs two-step\n");
    header(&["N", "I", "R", "atomic muls", "two-step muls", "ratio"]);
    for (order, dim, r) in [(3usize, 16u64, 8u64), (4, 8, 8), (5, 6, 4)] {
        let i: u64 = dim.pow(order as u32);
        let (am, _) = arith::atomic_kernel_flops(i, r, order as u64);
        let (tm, _) = arith::twostep_kernel_flops(i, dim, r, order as u64);
        row(&[
            format!("{order}"),
            format!("{dim}^{order}"),
            format!("{r}"),
            format!("{am}"),
            format!("{tm}"),
            format!("{:.2}x", am as f64 / tm as f64),
        ]);
    }
    println!("\n(The two-step kernel needs ~(N-1)/2x fewer multiplies — Eq. (17) —");
    println!("but breaks the atomicity assumption behind the lower bounds.)");

    // ------------------------------------------------------------------
    println!("\n## 5. Loop order, Algorithm 2: rank loop inside vs outside\n");
    header(&[
        "R",
        "b",
        "r-inner (Alg 2) words",
        "r-outer words",
        "penalty",
    ]);
    let dims3 = [12usize, 12, 12];
    for r in [1usize, 4, 16] {
        let (x3, factors3) = setup_problem(&dims3, r, 3);
        let refs3: Vec<&Matrix> = factors3.iter().collect();
        let good = seq::mttkrp_blocked(&x3, &refs3, 0, 80, 4);
        let bad = seq::mttkrp_blocked_r_outer(&x3, &refs3, 0, 80, 4);
        row(&[
            format!("{r}"),
            "4".into(),
            format!("{}", good.stats.total()),
            format!("{}", bad.stats.total()),
            format!(
                "{:.2}x",
                bad.stats.total() as f64 / good.stats.total() as f64
            ),
        ]);
    }
    println!("\n(Nesting r inside the block loops loads each tensor block once");
    println!("instead of R times — the ordering the paper's Algorithm 2 uses.)");
}
