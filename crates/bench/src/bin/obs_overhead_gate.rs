//! CI gate for mttkrp-obs's core promise: with tracing compiled in but
//! **disabled** (the default for every run that doesn't pass `--trace`),
//! the instrumented execution path costs nothing measurable.
//!
//! The instrumented path is `execute_observed` — the span-opening,
//! field-recording wrapper every layer routes kernels through — whose
//! disabled branch is a single relaxed atomic load. This binary times it
//! against a raw `Backend::execute` on the acceptance configuration
//! (64x64x64, R = 32) and exits nonzero if the instrumented path is more
//! than `MAX_SLOWDOWN` slower.
//!
//! Measurement follows `speedup_gate`'s best-of-`TRIALS` wall clock (best,
//! not mean, to shrug off scheduler noise on shared CI runners) with one
//! refinement: the two paths are timed *interleaved*, raw/observed pair by
//! pair, so a frequency or scheduler drift mid-run penalizes both sides
//! equally instead of whichever happened to go second. A complementary
//! allocation-exact check lives in `crates/obs/tests/zero_overhead.rs`;
//! this gate covers the wall-clock side on a real kernel.

use mttkrp_bench::setup_problem;
use mttkrp_core::Problem;
use mttkrp_exec::{execute_observed, Backend, MachineSpec, NativeBackend, Planner};
use mttkrp_tensor::Matrix;
use std::process::ExitCode;
use std::time::Instant;

const TRIALS: usize = 15;
/// Instrumented-but-disabled may be at most 10% slower than raw. The true
/// overhead is one atomic load per kernel (sub-nanosecond against a
/// millisecond-scale MTTKRP); the headroom absorbs timer jitter.
const MAX_SLOWDOWN: f64 = 1.10;

fn timed(mut run: impl FnMut()) -> f64 {
    let start = Instant::now();
    run();
    start.elapsed().as_secs_f64()
}

fn main() -> ExitCode {
    assert!(
        !mttkrp_obs::enabled(),
        "tracing must be disabled for the overhead measurement"
    );
    let (x, factors) = setup_problem(&[64, 64, 64], 32, 7);
    let refs: Vec<&Matrix> = factors.iter().collect();
    let machine = MachineSpec::shared(1, mttkrp_exec::DEFAULT_CACHE_WORDS);
    let problem = Problem::new(&[64, 64, 64], 32);
    let plan = Planner::new(machine).plan_executable(&problem, 0);
    let backend = NativeBackend::new(1, mttkrp_exec::DEFAULT_CACHE_WORDS);

    // Warm up both paths, then time them interleaved.
    std::hint::black_box(backend.execute(&plan, &x, &refs));
    std::hint::black_box(execute_observed(&backend, &plan, &x, &refs));
    let mut raw = f64::INFINITY;
    let mut observed = f64::INFINITY;
    for _ in 0..TRIALS {
        raw = raw.min(timed(|| {
            std::hint::black_box(backend.execute(&plan, &x, &refs));
        }));
        observed = observed.min(timed(|| {
            std::hint::black_box(execute_observed(&backend, &plan, &x, &refs));
        }));
    }
    let ratio = observed / raw;
    println!(
        "obs_overhead_64x64x64_r32: raw {:.3} ms, observed(disabled) {:.3} ms -> ratio {ratio:.3} \
         (gate: <= {MAX_SLOWDOWN})",
        raw * 1e3,
        observed * 1e3
    );
    if ratio > MAX_SLOWDOWN {
        eprintln!(
            "error: disabled-tracing execution path is {:.1}% slower than raw (allowed {:.0}%)",
            (ratio - 1.0) * 100.0,
            (MAX_SLOWDOWN - 1.0) * 100.0
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
