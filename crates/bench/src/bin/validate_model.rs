//! **VAL**: exactness sweep — runs every executed algorithm over a matrix
//! of configurations and checks measured words against the closed-form
//! models (exact equality wherever the data distribution is even, upper
//! bound otherwise). This is the evidence that the simulators measure the
//! quantities the paper's formulas describe.
//!
//! Run with: `cargo run --release -p mttkrp-bench --bin validate_model`

use mttkrp_bench::{header, row, setup_problem};
use mttkrp_core::{model, par, seq, Problem};
use mttkrp_tensor::{mttkrp_reference, Matrix};

fn main() {
    let mut checked = 0usize;
    println!("# VAL: measured vs modeled communication\n");

    println!("## Sequential: Algorithm 1 (exact) and Algorithm 2 (exact)\n");
    header(&[
        "algorithm",
        "dims",
        "R",
        "n",
        "b/M",
        "measured",
        "model",
        "ok",
    ]);
    for (dims, r) in [
        (vec![4usize, 5, 6], 2usize),
        (vec![8, 8, 8], 3),
        (vec![3, 7, 5, 2], 2),
    ] {
        let (x, factors) = setup_problem(&dims, r, 31);
        let refs: Vec<&Matrix> = factors.iter().collect();
        let p = Problem::new(
            &dims.iter().map(|&d| d as u64).collect::<Vec<u64>>(),
            r as u64,
        );
        let oracle0 = mttkrp_reference(&x, &refs, 0);
        for n in 0..dims.len() {
            let run = seq::mttkrp_unblocked(&x, &refs, n, dims.len() + 1);
            let modeled = model::alg1_cost(&p);
            let ok = run.stats.total() as u128 == modeled;
            assert!(ok);
            checked += 1;
            if n == 0 {
                assert!(run.output.max_abs_diff(&oracle0) < 1e-10);
                row(&[
                    "alg1".into(),
                    format!("{dims:?}"),
                    format!("{r}"),
                    format!("{n}"),
                    "-".into(),
                    format!("{}", run.stats.total()),
                    format!("{modeled}"),
                    "true".into(),
                ]);
            }
            for b in 1..=3usize {
                let m = b.pow(dims.len() as u32) + dims.len() * b + 2;
                let run = seq::mttkrp_blocked(&x, &refs, n, m, b);
                let modeled = model::alg2_cost_exact(&p, n, b as u64);
                let ok = run.stats.total() as u128 == modeled;
                assert!(ok, "alg2 mismatch dims {dims:?} n {n} b {b}");
                checked += 1;
                if n == 0 && b == 2 {
                    row(&[
                        "alg2".into(),
                        format!("{dims:?}"),
                        format!("{r}"),
                        format!("{n}"),
                        format!("b={b}"),
                        format!("{}", run.stats.total()),
                        format!("{modeled}"),
                        "true".into(),
                    ]);
                }
            }
        }
    }

    println!("\n## Parallel: Algorithms 3 and 4 (exact in even cases)\n");
    header(&["algorithm", "dims", "R", "grid", "measured", "model", "ok"]);
    // Even configurations: q_k divides the block rows everywhere.
    let even3: &[(&[usize], usize, &[usize])] = &[
        (&[8, 8, 8], 4, &[2, 2, 2]),
        (&[8, 8, 16], 2, &[2, 1, 4]),
        (&[16, 16, 16], 2, &[2, 2, 2]),
        (&[4, 4, 4], 2, &[1, 1, 1]),
    ];
    for &(dims, r, grid) in even3 {
        let (x, factors) = setup_problem(dims, r, 37);
        let refs: Vec<&Matrix> = factors.iter().collect();
        let p = Problem::new(
            &dims.iter().map(|&d| d as u64).collect::<Vec<u64>>(),
            r as u64,
        );
        let g64: Vec<u64> = grid.iter().map(|&g| g as u64).collect();
        for n in 0..dims.len() {
            let run = par::mttkrp_stationary(&x, &refs, n, grid);
            let modeled = model::alg3_cost(&p, &g64);
            let ok = run.stats.iter().all(|s| s.words_received as f64 == modeled);
            assert!(ok, "alg3 mismatch dims {dims:?} grid {grid:?} n {n}");
            checked += 1;
            if n == 0 {
                row(&[
                    "alg3".into(),
                    format!("{dims:?}"),
                    format!("{r}"),
                    format!("{grid:?}"),
                    format!("{}", run.max_recv_words()),
                    format!("{modeled}"),
                    "true".into(),
                ]);
            }
            let expect = mttkrp_reference(&x, &refs, n);
            assert!(run.output.max_abs_diff(&expect) < 1e-9);
        }
    }
    let even4: &[(&[usize], usize, usize, &[usize])] = &[
        (&[8, 8, 8], 8, 2, &[2, 2, 2]),
        (&[8, 8, 8], 4, 4, &[2, 2, 2]),
        (&[4, 4, 4], 8, 2, &[2, 2, 1]),
    ];
    for &(dims, r, p0, grid) in even4 {
        let (x, factors) = setup_problem(dims, r, 41);
        let refs: Vec<&Matrix> = factors.iter().collect();
        let p = Problem::new(
            &dims.iter().map(|&d| d as u64).collect::<Vec<u64>>(),
            r as u64,
        );
        let g64: Vec<u64> = grid.iter().map(|&g| g as u64).collect();
        for n in 0..dims.len() {
            let run = par::mttkrp_general(&x, &refs, n, p0, grid);
            let modeled = model::alg4_cost(&p, p0 as u64, &g64);
            let ok = run.stats.iter().all(|s| s.words_received as f64 == modeled);
            assert!(
                ok,
                "alg4 mismatch dims {dims:?} p0 {p0} grid {grid:?} n {n}"
            );
            checked += 1;
            if n == 0 {
                row(&[
                    "alg4".into(),
                    format!("{dims:?}"),
                    format!("{r}"),
                    format!("P0={p0},{grid:?}"),
                    format!("{}", run.max_recv_words()),
                    format!("{modeled}"),
                    "true".into(),
                ]);
            }
            let expect = mttkrp_reference(&x, &refs, n);
            assert!(run.output.max_abs_diff(&expect) < 1e-9);
        }
    }

    println!("\n{checked} configuration/mode combinations validated: every measured");
    println!("count equals its closed-form model, and every output matches the oracle.");
}
