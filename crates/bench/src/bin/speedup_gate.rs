//! CI gate for the `exec_backends` criterion benchmark's headline claim:
//! on a host with **four or more cores**, the rayon-parallel native
//! backend beats the same kernel pinned to one thread by **at least 2x**
//! on the acceptance configuration (64x64x64, R = 32).
//!
//! The criterion bench *demonstrates* the ratio; this binary *asserts* it
//! (exit nonzero on violation) so CI fails instead of merely printing
//! numbers. On hosts with fewer than four cores the gate is skipped —
//! the claim is conditional on the hardware.
//!
//! Measurement: best-of-`TRIALS` wall clock per configuration (best, not
//! mean, to shrug off scheduler noise on shared CI runners), after a
//! warm-up run each.

use mttkrp_bench::setup_problem;
use mttkrp_exec::{MachineSpec, NativeBackend};
use mttkrp_tensor::Matrix;
use std::process::ExitCode;
use std::time::Instant;

const TRIALS: usize = 7;
const REQUIRED_SPEEDUP: f64 = 2.0;

fn best_secs(backend: &NativeBackend, x: &mttkrp_tensor::DenseTensor, refs: &[&Matrix]) -> f64 {
    let _warmup = backend.run(x, refs, 0);
    let mut best = f64::INFINITY;
    for _ in 0..TRIALS {
        let start = Instant::now();
        std::hint::black_box(backend.run(x, refs, 0));
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn main() -> ExitCode {
    let cores = MachineSpec::detect_threads();
    if cores < 4 {
        println!("speedup gate skipped: host reports {cores} core(s) (< 4); the >= 2x claim is conditional on >= 4 cores");
        return ExitCode::SUCCESS;
    }

    let (x, factors) = setup_problem(&[64, 64, 64], 32, 7);
    let refs: Vec<&Matrix> = factors.iter().collect();

    let one = NativeBackend::new(1, mttkrp_exec::DEFAULT_CACHE_WORDS);
    let four = NativeBackend::new(4, mttkrp_exec::DEFAULT_CACHE_WORDS);
    let t1 = best_secs(&one, &x, &refs);
    let t4 = best_secs(&four, &x, &refs);
    let speedup = t1 / t4;
    println!(
        "native_mttkrp_64x64x64_r32: 1 thread {:.3} ms, 4 threads {:.3} ms -> speedup {speedup:.2}x (gate: >= {REQUIRED_SPEEDUP}x on {cores} cores)",
        t1 * 1e3,
        t4 * 1e3
    );
    if speedup < REQUIRED_SPEEDUP {
        eprintln!("error: rayon speedup {speedup:.2}x is below the required {REQUIRED_SPEEDUP}x");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
