//! Regenerates **Figure 3** of the paper: the phase-by-phase data motion of
//! the Parallel Stationary Tensor Algorithm (Algorithm 3) for `N = 3`,
//! mode `n = 1` (paper numbering; `n = 0` here), on a `2 x 3 x 2` grid —
//! (a) initial distribution, (b)/(c) All-Gathers, (d) local compute,
//! (e) Reduce-Scatter — with *measured* per-phase words for every rank.
//!
//! Run with: `cargo run --release -p mttkrp-bench --bin fig3`

use mttkrp_bench::setup_problem;
use mttkrp_core::kernels::local_mttkrp;
use mttkrp_netsim::{collectives, ProcessorGrid, SimMachine};
use mttkrp_tensor::Matrix;

fn main() {
    let dims = [4usize, 6, 4];
    let grid_dims = [2usize, 3, 2];
    let (r, n) = (2usize, 0usize);
    let (x, factors) = setup_problem(&dims, r, 3);
    let refs: Vec<&Matrix> = factors.iter().collect();
    let oracle = mttkrp_tensor::mttkrp_reference(&x, &refs, n);

    println!("# Figure 3: Algorithm 3 phases on a 2x3x2 grid (P = 12), n = 1 (paper numbering)\n");
    println!("(a) start: each processor owns its subtensor and a 1/|hyperslice|");
    println!("    part of each mode's factor block row");
    println!("(b,c) All-Gather factor rows within hyperslices (modes k != n)");
    println!("(d) local MTTKRP contribution");
    println!("(e) Reduce-Scatter within the mode-n hyperslice\n");

    let pgrid = ProcessorGrid::new(&grid_dims);
    let machine = SimMachine::new(pgrid.num_ranks());
    let shape = x.shape().clone();
    let order = shape.order();

    // Phase-instrumented Algorithm 3 (same logic as par::mttkrp_stationary,
    // with stats snapshots between phases).
    let result = machine.run(|rank| -> (Vec<u64>, usize, usize, Vec<f64>) {
        let me = rank.world_rank();
        let coords = pgrid.coords(me);
        let ranges: Vec<(usize, usize)> = (0..order)
            .map(|k| {
                let rows = shape.dim(k) / grid_dims[k];
                (coords[k] * rows, (coords[k] + 1) * rows)
            })
            .collect();
        let x_local = x.subtensor(&ranges);

        let mut phase_words = Vec::new();
        let mut last = 0u64;
        let snapshot = |rank: &mttkrp_netsim::Rank, out: &mut Vec<u64>, last: &mut u64| {
            let now = rank.stats().words_received;
            out.push(now - *last);
            *last = now;
        };

        let mut gathered: Vec<Matrix> = Vec::with_capacity(order);
        for k in 0..order {
            let block_rows = ranges[k].1 - ranges[k].0;
            if k == n {
                gathered.push(Matrix::zeros(block_rows, r));
                continue;
            }
            let comm = pgrid.hyperslice_comm(me, k);
            let my_idx = comm.local_index(me).unwrap();
            let q = comm.size();
            let base = block_rows / q;
            let rem = block_rows % q;
            let lo = my_idx * base + my_idx.min(rem);
            let hi = lo + base + usize::from(my_idx < rem);
            let mut chunk = Vec::new();
            for row in lo..hi {
                chunk.extend_from_slice(factors[k].row(ranges[k].0 + row));
            }
            let full = collectives::all_gather(rank, &comm, &chunk);
            gathered.push(Matrix::from_rows_vec(block_rows, r, full));
            snapshot(rank, &mut phase_words, &mut last);
        }

        let frefs: Vec<&Matrix> = gathered.iter().collect();
        let c_local = local_mttkrp(&x_local, &frefs, n);
        snapshot(rank, &mut phase_words, &mut last); // compute phase: 0 words

        let comm_n = pgrid.hyperslice_comm(me, n);
        let my_idx = comm_n.local_index(me).unwrap();
        let q = comm_n.size();
        let block_rows = ranges[n].1 - ranges[n].0;
        let base = block_rows / q;
        let rem = block_rows % q;
        let counts: Vec<usize> = (0..q).map(|i| (base + usize::from(i < rem)) * r).collect();
        let mine = collectives::reduce_scatter(rank, &comm_n, c_local.data(), &counts);
        snapshot(rank, &mut phase_words, &mut last);

        let lo = my_idx * base + my_idx.min(rem);
        let hi = lo + base + usize::from(my_idx < rem);
        (phase_words, ranges[n].0 + lo, ranges[n].0 + hi, mine)
    });

    println!("measured words received per rank and phase:\n");
    println!(
        "{:>5} {:>8} {:>14} {:>14} {:>9} {:>16}",
        "rank", "coords", "AG A^(2) (b)", "AG A^(3) (c)", "comp (d)", "Red-Scat (e)"
    );
    for (rank, (phases, _, _, _)) in result.outputs.iter().enumerate() {
        let c = pgrid.coords(rank);
        println!(
            "{:>5} {:>8} {:>14} {:>14} {:>9} {:>16}",
            rank,
            format!("({},{},{})", c[0] + 1, c[1] + 1, c[2] + 1),
            phases[0],
            phases[1],
            phases[2],
            phases[3]
        );
    }

    // Verify the assembled result.
    let mut out = Matrix::zeros(dims[n], r);
    for (_, lo, hi, data) in &result.outputs {
        for (li, row) in (*lo..*hi).enumerate() {
            if data.len() >= (li + 1) * r {
                out.row_mut(row)
                    .copy_from_slice(&data[li * r..(li + 1) * r]);
            }
        }
    }
    let err = out.max_abs_diff(&oracle);
    println!("\nassembled B^(1) vs oracle: max |diff| = {err:.2e}");
    assert!(err < 1e-10);
    println!("the tensor itself was never communicated (stationary): only factor rows moved");
}
