//! Regenerates **Figure 4** of the paper: "Modeled Strong-Scaling
//! Comparison" of MTTKRP-via-matmul, Algorithm 3 (stationary), and
//! Algorithm 4 (general) for a 3-way cubical tensor with `I = 2^45`
//! (`I_k = 2^15`), `R = 2^15`, and `P = 2^0 .. 2^30`.
//!
//! All three curves are *model* evaluations, exactly as in the paper:
//! - matmul: CARMA costs for `(2^15 x 2^30) * (2^30 x 2^15)` (the
//!   Khatri-Rao product assumed free, as the paper assumes);
//! - Algorithms 3/4: Eq. (14)/(18) minimized over integer processor grids
//!   (with `P_k <= I_k`, `P_0 <= R`).
//!
//! After the series, the binary checks the paper's §VI-B in-text claims:
//! the matmul kink, the Algorithm 3/4 divergence point, and the ~25x gap
//! at `P = 2^17`.
//!
//! Run with: `cargo run --release -p mttkrp-bench --bin fig4`

use mttkrp_bench::{eng, header, row};
use mttkrp_core::{grid_opt, model, Problem};

/// Best Eq.-(14) grid with the physical constraint `P_k <= I_k`.
fn best_alg3(p: &Problem, procs: u64) -> f64 {
    let mut best = f64::INFINITY;
    for grid in grid_opt::factorizations(procs, p.order()) {
        if grid.iter().zip(&p.dims).any(|(&g, &d)| g > d) {
            continue;
        }
        best = best.min(model::alg3_cost(p, &grid));
    }
    best
}

/// Best Eq.-(18) grid with `P_k <= I_k` and `P_0 <= R`.
fn best_alg4(p: &Problem, procs: u64) -> (f64, u64) {
    let mut best = (f64::INFINITY, 1u64);
    for f in grid_opt::factorizations(procs, p.order() + 1) {
        let (p0, grid) = (f[0], &f[1..]);
        if p0 > p.rank || grid.iter().zip(&p.dims).any(|(&g, &d)| g > d) {
            continue;
        }
        let cost = model::alg4_cost(p, p0, grid);
        if cost < best.0 {
            best = (cost, p0);
        }
    }
    best
}

fn main() {
    let problem = Problem::cubical(3, 1 << 15, 1 << 15);
    println!("# Figure 4: modeled strong scaling, I = 2^45 (I_k = 2^15), R = 2^15\n");
    header(&[
        "log2 P",
        "matmul (words)",
        "alg 3 (words)",
        "alg 4 (words)",
        "alg4 P0",
    ]);

    let mut mm_series = Vec::new();
    let mut a3_series = Vec::new();
    let mut a4_series = Vec::new();
    for log_p in 0..=30u32 {
        let p = 1u64 << log_p;
        let mm = model::mm_baseline_cost(&problem, 0, p);
        let a3 = best_alg3(&problem, p);
        let (a4, p0) = best_alg4(&problem, p);
        mm_series.push(mm);
        a3_series.push(a3);
        a4_series.push(a4);
        row(&[
            format!("{log_p}"),
            eng(mm),
            eng(a3),
            eng(a4),
            format!("{p0}"),
        ]);
    }

    println!("\n## Paper claim checks (Section VI-B)\n");

    // Claim 1: the matmul curve has a kink where the optimal algorithm
    // switches regimes (paper: 1-large-dim -> multi-large-dim).
    let kink = (1..mm_series.len())
        .find(|&i| mm_series[i] < mm_series[i - 1] * 0.999)
        .unwrap_or(0);
    println!(
        "- matmul kink (first P where the curve starts falling): P = 2^{kink} \
         (paper: switch from 1D to 2D algorithm; boundary I/R^2 = 2^15)"
    );

    // Claim 2: Algorithms 3 and 4 diverge only at large P (paper: P >= 2^27).
    let diverge = (0..a4_series.len())
        .find(|&i| a4_series[i] < a3_series[i] * 0.999)
        .unwrap_or(31);
    println!(
        "- Algorithm 4 first beats Algorithm 3 at P = 2^{diverge} \
         (paper: curves diverge only when P >= 2^27)"
    );

    // Claim 3: at P = 2^17 the tensor-aware algorithms move far fewer words
    // than matmul (paper: approximately 25x). The paper's constant is
    // against the 1D matmul cost I^(1/N) R (its kink note says the switch
    // to the 2D algorithm happens at this scale); we report both.
    let i17 = 17usize;
    let ratio_best = mm_series[i17] / a3_series[i17];
    let mm_1d = ((1u64 << 15) * (1u64 << 15)) as f64; // I^(1/3) * R words
    let ratio_1d = mm_1d / a3_series[i17];
    println!(
        "- at P = 2^17: best-regime matmul/alg3 = {ratio_best:.1}x, \
         1D-matmul/alg3 = {ratio_1d:.1}x (paper: ~25x)"
    );

    // Claim 4: beyond the small-P warm-up, ours never loses to matmul.
    // (For P in 4..16 the exact Eq. (14) cost with its -1 terms sits a few
    // tens of percent above the flat matmul line -- indistinguishable on
    // the paper's log axis; from P = 2^5 on, the tensor-aware algorithms
    // win outright, by up to ~10x mid-range.)
    let last_loss = (1..=30)
        .rev()
        .find(|&i| a4_series[i] > mm_series[i] * 1.0001)
        .unwrap_or(0);
    let max_ratio = (1..=30)
        .map(|i| mm_series[i] / a4_series[i])
        .fold(0.0f64, f64::max);
    println!(
        "- tensor-aware <= matmul for all P >= 2^{}; peak advantage {max_ratio:.1}x",
        last_loss + 1
    );
}
