//! A real multi-process execution backend: every MTTKRP runs as
//! `ranks` spawned OS processes over TCP sockets, driven by the
//! [`dist_tcp`] launcher.
//!
//! This is the piece that puts actual rank *processes* behind the als
//! engine (and, through it, behind `mttkrp_cli listen --dist-exec proc`):
//! install a [`ProcBackend`] with
//! [`mttkrp_als::install_dist_executor`] and every
//! [`BackendChoice::Dist`](mttkrp_als::BackendChoice::Dist) MTTKRP of
//! every sweep launches a fresh P-process cluster, ships the exact
//! operand bytes to each rank on its `LAUNCH` frame, and assembles the
//! sharded output — bit-identical to the in-process fabric, because both
//! run the same rank programs over the same schedule.
//!
//! Trace propagation is automatic: `execute` reads
//! [`mttkrp_obs::current_context()`] (the live trace id and enclosing
//! span at the moment the engine calls the backend — e.g. a serve
//! worker's adopted request span) and stamps it on every rank's `LAUNCH`
//! frame, so rank-process spans join the caller's cross-process tree and
//! `mttkrp_cli report --merge` re-parents them under it.

use crate::dist_tcp::{self, LaunchSpec};
use mttkrp_dist::record_collectives;
use mttkrp_exec::{Backend, ExecCost, ExecReport, Plan};
use mttkrp_tensor::{DenseTensor, Matrix};
use std::path::PathBuf;
use std::time::Duration;

/// An [`mttkrp_exec::Backend`] that runs each plan as real rank
/// processes over TCP. Cloneable configuration, one fresh launch per
/// `execute` call.
#[derive(Clone, Debug)]
pub struct ProcBackend {
    /// The binary to re-invoke as `dist-rank` children (normally the
    /// `mttkrp_cli` executable itself).
    exe: PathBuf,
    /// World size of every launch.
    ranks: usize,
    /// Threads per rank process.
    threads: usize,
    /// Fast-memory words per rank process.
    memory: usize,
    /// Bound on every blocking launcher step.
    timeout: Duration,
    /// When set, each rank writes its own span tree to
    /// `<dir>/rank<me>.jsonl` for `report --merge`.
    rank_trace_dir: Option<PathBuf>,
}

impl ProcBackend {
    /// A backend launching `ranks` processes of `exe` per MTTKRP.
    pub fn new(exe: PathBuf, ranks: usize, threads: usize, memory: usize) -> ProcBackend {
        ProcBackend {
            exe,
            ranks,
            threads,
            memory,
            timeout: Duration::from_secs(60),
            rank_trace_dir: None,
        }
    }

    /// Overrides the per-step launch timeout (default 60 s).
    pub fn with_timeout(mut self, timeout: Duration) -> ProcBackend {
        self.timeout = timeout;
        self
    }

    /// Has every spawned rank write its span tree to
    /// `<dir>/rank<me>.jsonl`. Ranks of *successive* launches reuse the
    /// same paths, so with multi-sweep callers the files hold the most
    /// recent launch per rank — still one consistent trace id per merged
    /// tree, since every launch of a request shares the caller's context.
    pub fn with_rank_trace_dir(mut self, dir: PathBuf) -> ProcBackend {
        self.rank_trace_dir = Some(dir);
        self
    }
}

impl Backend for ProcBackend {
    fn name(&self) -> &'static str {
        "dist-proc"
    }

    /// Launches the plan as `self.ranks` OS processes, shipping the exact
    /// operand bytes and the live trace context, and folds the measured
    /// per-rank ledgers into the caller's capture (the same
    /// modeled-vs-measured pairs the drift gate checks).
    ///
    /// # Panics
    /// Panics when the launch fails (a child exited nonzero, went silent
    /// past the timeout, or reported out of protocol) — the engine treats
    /// backend failure as fatal, exactly like the in-process fabric does.
    fn execute(&self, plan: &Plan, x: &DenseTensor, factors: &[&Matrix]) -> ExecReport {
        let spec = LaunchSpec {
            dims: x.shape().dims().to_vec(),
            rank: factors.first().map(|f| f.cols()).unwrap_or(0),
            mode: plan.mode,
            seed: 0, // operands are shipped, never regenerated
            ranks: self.ranks,
            threads: self.threads,
            memory: self.memory,
            timeout: self.timeout,
            kill_rank: None,
            stall_ms: 0,
            ctx: mttkrp_obs::current_context(),
            rank_trace_dir: self.rank_trace_dir.clone(),
        };
        let outcome = match dist_tcp::launch(&self.exe, &spec, plan, Some((x, factors))) {
            Ok(outcome) => outcome,
            Err(e) => panic!("multi-process dist launch failed: {e}"),
        };
        record_collectives(plan, &outcome.ledgers);
        let totals: Vec<_> = outcome.ledgers.iter().map(|l| l.totals()).collect();
        ExecReport {
            output: outcome.output,
            backend: "dist-proc",
            cost: ExecCost::ParComm {
                max_recv_words: totals.iter().map(|t| t.words_received).max().unwrap_or(0),
                max_sent_words: totals.iter().map(|t| t.words_sent).max().unwrap_or(0),
                total_words: totals.iter().map(|t| t.words_sent).sum(),
                ranks: self.ranks,
            },
        }
    }
}
