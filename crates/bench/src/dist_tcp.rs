//! The multi-process TCP launcher behind `mttkrp_cli dist --transport tcp`:
//! one OS process per rank on localhost, the identical rank programs the
//! in-process runtime executes, word-exact over real sockets.
//!
//! ```text
//! launcher ──spawn──► rank 0 ──READY(port)──► launcher ──spawn──► ranks 1..P
//!    │                   ▲                        │                    │
//!    └──LAUNCH(trace ctx, operands?)──► every rank│──READY(empty)─────┘
//!                        └────────── rendezvous + full mesh ──────────┘
//!                     (rank programs run; every word over TCP)
//! every rank ──CHUNK + LEDGER──► launcher: assemble, self-gate, exit code
//! ```
//!
//! The control connection reuses the transport's own wire codec
//! ([`mod@mttkrp_dist::transport::wire`]): every rank dials the launcher
//! and announces itself with a `READY` frame *before* joining the mesh
//! (rank 0's carries its rendezvous port), and the launcher answers each
//! with one `LAUNCH` frame — the go signal. A traced launch rides the
//! codec's optional trace header on that frame, so every rank process
//! adopts the launcher's [`TraceContext`] and its spans land in the same
//! cross-process tree as the caller's; the payload optionally ships the
//! exact operand bytes (so a served tensor is factorized bit-identically
//! instead of regenerated from a seed). After the run each rank reports
//! its output chunk and measured [`TrafficLedger`] as `CHUNK`/`LEDGER`
//! frames. The launcher assembles the chunks with the runtime's own
//! assembler and hands everything back for the usual self-gates (bitwise
//! output, schedule word-exactness).
//!
//! Fault injection for the test suite: [`LaunchSpec::kill_rank`] makes
//! the launcher SIGKILL one child right after the mesh is up, while that
//! child (given [`LaunchSpec::stall_ms`]) is still stalling ahead of its
//! first collective — so every other rank is already blocked on it inside
//! a ring step. The transport's failure handling must then surface an
//! error on every peer within its timeout instead of deadlocking.

use mttkrp_dist::transport::wire::{self, Frame};
use mttkrp_dist::{
    assemble_plan_output, run_plan_rank, OutputChunk, TcpConfig, TcpTransport, TrafficLedger,
};
use mttkrp_exec::Plan;
use mttkrp_obs::TraceContext;
use mttkrp_tensor::{DenseTensor, Matrix};
use std::io::Read;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Everything a spawned rank process needs to rebuild the run: the
/// problem (regenerated deterministically from the seed), the machine,
/// and its place in the world.
#[derive(Clone, Debug)]
pub struct LaunchSpec {
    /// Tensor dimensions.
    pub dims: Vec<usize>,
    /// CP rank `R`.
    pub rank: usize,
    /// Output mode `n`.
    pub mode: usize,
    /// Operand seed (`setup_problem`).
    pub seed: u64,
    /// World size `P`.
    pub ranks: usize,
    /// Threads per rank process (sizing the local kernel).
    pub threads: usize,
    /// Fast-memory words per rank process.
    pub memory: usize,
    /// Bound on every blocking step (handshake, recv, child exit).
    pub timeout: Duration,
    /// Fault injection: SIGKILL this rank right after the mesh is up.
    pub kill_rank: Option<usize>,
    /// Fault injection: the killed rank stalls this long before its first
    /// collective, so its peers are blocked on it when the kill lands.
    pub stall_ms: u64,
    /// Trace context shipped to every rank on its `LAUNCH` frame, so rank
    /// spans join the caller's cross-process tree. `None` launches
    /// untraced.
    pub ctx: Option<TraceContext>,
    /// When set, each rank is spawned with `--trace <dir>/rank<me>.jsonl`
    /// so its span tree lands on disk for `report --merge`.
    pub rank_trace_dir: Option<PathBuf>,
}

/// What a completed multi-process run reports back.
#[derive(Debug)]
pub struct LaunchOutcome {
    /// The assembled global output `B^(n)`.
    pub output: Matrix,
    /// Measured per-rank ledgers, indexed by world rank.
    pub ledgers: Vec<TrafficLedger>,
}

/// Runs `plan` as `spec.ranks` real child processes of `exe` (the
/// `mttkrp_cli` binary itself, re-invoked with the hidden `dist-rank`
/// subcommand) and collects every rank's chunk and ledger.
///
/// `operands` ships the exact tensor and factors to every rank on its
/// `LAUNCH` frame; `None` has each rank regenerate them from
/// `spec.seed`, which is the word-exact same problem for benchmark runs
/// but cannot represent a caller-supplied tensor.
///
/// Returns `Err` with the original failure's stderr if any child exits
/// nonzero or goes silent past the timeout — never hangs.
pub fn launch(
    exe: &std::path::Path,
    spec: &LaunchSpec,
    plan: &Plan,
    operands: Option<(&DenseTensor, &[&Matrix])>,
) -> Result<LaunchOutcome, String> {
    assert!(
        !plan.algorithm.is_sequential(),
        "the launcher needs a distributed plan"
    );
    if spec.kill_rank.is_some_and(|k| k >= spec.ranks) {
        return Err(format!(
            "kill_rank {} out of range for {} ranks",
            spec.kill_rank.unwrap(),
            spec.ranks
        ));
    }
    let deadline = Instant::now() + spec.timeout;
    let report_listener =
        TcpListener::bind("127.0.0.1:0").map_err(|e| format!("binding the report socket: {e}"))?;
    let report_addr = report_listener
        .local_addr()
        .map_err(|e| e.to_string())?
        .to_string();

    // The go signal every rank waits on before joining the mesh: the
    // trace context rides the frame header, shipped operands (if any)
    // ride the payload behind a has-operands flag word.
    let launch_payload: Vec<f64> = match operands {
        Some((x, factors)) => {
            let mut payload = vec![1.0];
            payload.extend(wire::encode_operands(x, factors));
            payload
        }
        None => vec![0.0],
    };
    let launch_frame =
        Frame::data(0, wire::CTRL_LAUNCH, launch_payload).with_trace(spec.ctx.or_else(|| {
            // An untraced spec still inherits the launcher's live context
            // (if any), so `dist --transport tcp --trace ...` runs nest
            // their ranks under the CLI's root span for free.
            mttkrp_obs::current_context()
        }));

    // Rank 0 first: it must bind the rendezvous and tell us where.
    let mut children: Vec<Option<Child>> = (0..spec.ranks).map(|_| None).collect();
    children[0] = Some(spawn_rank(exe, spec, 0, "127.0.0.1:0", &report_addr)?);
    let conn0 = accept_with_deadline(&report_listener, deadline)
        .map_err(|e| format!("rank 0 never reported in: {e}"))?;
    let ready = read_frame_deadline(&conn0, deadline)
        .map_err(|e| format!("reading rank 0's READY frame: {e}"))?;
    if ready.comm_id != wire::CTRL_READY || ready.payload.len() != 1 {
        return Err("rank 0 spoke out of protocol (expected READY)".to_string());
    }
    let rendezvous = format!("127.0.0.1:{}", ready.payload[0] as u16);
    wire::write_frame(&mut &conn0, &launch_frame)
        .map_err(|e| format!("sending rank 0's LAUNCH frame: {e}"))?;

    // The rest of the world dials the announced rendezvous.
    for (me, child) in children.iter_mut().enumerate().skip(1) {
        *child = Some(spawn_rank(exe, spec, me, &rendezvous, &report_addr)?);
    }

    // Result collection runs concurrently with the children so large
    // chunks can't wedge in socket buffers: one reader per connection.
    // Each remaining rank announces READY and is answered with the
    // LAUNCH go-frame before its reader takes over the connection.
    let (tx, rx) =
        std::sync::mpsc::channel::<Result<(usize, OutputChunk, TrafficLedger), String>>();
    let mut readers = Vec::new();
    readers.push(spawn_report_reader(conn0, deadline, tx.clone()));
    let accept_tx = tx.clone();
    let remaining = spec.ranks - 1;
    let acceptor = std::thread::spawn(move || {
        let mut handles = Vec::new();
        for _ in 0..remaining {
            match accept_with_deadline(&report_listener, deadline) {
                Ok(conn) => {
                    let launched = read_frame_deadline(&conn, deadline)
                        .ok()
                        .filter(|ready| ready.comm_id == wire::CTRL_READY)
                        .is_some()
                        && wire::write_frame(&mut &conn, &launch_frame).is_ok();
                    if !launched {
                        continue; // the exit-status sweep reports the death
                    }
                    handles.push(spawn_report_reader(conn, deadline, accept_tx.clone()));
                }
                Err(_) => break, // children died; the exit-status check reports it
            }
        }
        handles
    });
    drop(tx);

    // Fault injection: the stalling target is blocked ahead of its first
    // collective; its peers are inside one. Kill it for real (SIGKILL).
    if let Some(victim) = spec.kill_rank {
        std::thread::sleep(Duration::from_millis(300));
        if let Some(child) = children[victim].as_mut() {
            child
                .kill()
                .map_err(|e| format!("killing rank {victim}: {e}"))?;
        }
    }

    // Every child must exit — success or failure — within the timeout.
    let mut failures: Vec<String> = Vec::new();
    for (me, child) in children.iter_mut().enumerate() {
        let child = child.as_mut().expect("all ranks spawned");
        match wait_with_deadline(child, deadline) {
            Ok(status) if status.success() => {}
            Ok(status) => {
                let mut err = String::new();
                if let Some(stderr) = child.stderr.as_mut() {
                    let _ = stderr.read_to_string(&mut err);
                }
                failures.push(format!(
                    "rank {me} exited with {status}: {}",
                    err.trim().lines().last().unwrap_or("(no stderr)")
                ));
            }
            Err(e) => {
                let _ = child.kill();
                failures.push(format!("rank {me} did not exit in time ({e}); killed"));
            }
        }
    }
    readers.extend(acceptor.join().expect("acceptor thread panicked"));
    let mut results: Vec<Option<(OutputChunk, TrafficLedger)>> =
        (0..spec.ranks).map(|_| None).collect();
    for res in rx {
        match res {
            Ok((me, chunk, ledger)) if me < spec.ranks => results[me] = Some((chunk, ledger)),
            Ok((me, ..)) => failures.push(format!("report from impossible rank {me}")),
            Err(e) => failures.push(e),
        }
    }
    for reader in readers {
        let _ = reader.join();
    }
    if !failures.is_empty() {
        return Err(failures.join("; "));
    }
    if results.iter().any(Option::is_none) {
        return Err("a rank exited cleanly without reporting its result".to_string());
    }
    let (chunks, ledgers): (Vec<OutputChunk>, Vec<TrafficLedger>) =
        results.into_iter().map(Option::unwrap).unzip();
    Ok(LaunchOutcome {
        output: assemble_plan_output(plan, &chunks),
        ledgers,
    })
}

/// Runs one rank inside a spawned child process: announces READY on the
/// launcher's report connection, waits for the `LAUNCH` go-frame (adopting
/// its trace context and any shipped operands), joins the TCP machine,
/// drives the rank program, and reports the chunk and ledger back.
/// Returns an error string (for stderr + nonzero exit) on any failure,
/// including a peer dying mid-run.
#[allow(clippy::too_many_arguments)]
pub fn run_child_rank(
    plan: &Plan,
    x: &DenseTensor,
    factors: &[&Matrix],
    world_rank: usize,
    ranks: usize,
    connect: &str,
    report: &str,
    stall_ms: u64,
    timeout: Duration,
) -> Result<(), String> {
    let deadline = Instant::now() + timeout;

    // Dial the launcher and announce readiness *before* joining the mesh:
    // rank 0 names its freshly bound rendezvous port, everyone else just
    // says hello. The reply is the LAUNCH go-frame.
    let listener = if world_rank == 0 {
        Some(TcpListener::bind("127.0.0.1:0").map_err(|e| format!("binding rendezvous: {e}"))?)
    } else {
        None
    };
    let ready_payload = match &listener {
        Some(listener) => {
            vec![listener.local_addr().map_err(|e| e.to_string())?.port() as f64]
        }
        None => Vec::new(),
    };
    let report_stream =
        TcpStream::connect(report).map_err(|e| format!("dialing the launcher: {e}"))?;
    wire::write_frame(
        &mut &report_stream,
        &Frame::data(world_rank, wire::CTRL_READY, ready_payload),
    )
    .map_err(|e| format!("announcing READY to the launcher: {e}"))?;
    let go = read_frame_deadline(&report_stream, deadline)
        .map_err(|e| format!("waiting for the LAUNCH frame: {e}"))?;
    if go.comm_id != wire::CTRL_LAUNCH || go.payload.is_empty() {
        return Err("launcher spoke out of protocol (expected LAUNCH)".to_string());
    }
    if let Some(ctx) = go.trace {
        // Joins the launcher's cross-process trace: this process's whole
        // span tree records the remote trace id, and `report --merge`
        // re-parents it under the launching span. No-op when capture is
        // off in this process.
        mttkrp_obs::adopt_remote_context(ctx);
    }
    let shipped: Option<(DenseTensor, Vec<Matrix>)> = if go.payload[0] == 1.0 {
        Some(
            wire::decode_operands(&go.payload[1..])
                .map_err(|e| format!("decoding shipped operands: {e}"))?,
        )
    } else {
        None
    };
    let (x, factor_refs): (&DenseTensor, Vec<&Matrix>) = match &shipped {
        Some((sx, sf)) => (sx, sf.iter().collect()),
        None => (x, factors.to_vec()),
    };
    let factors: &[&Matrix] = &factor_refs;

    // Join the machine (rank 0 serves the rendezvous it announced;
    // everyone else dials the launcher-provided address).
    let ep = match listener {
        Some(listener) => TcpTransport::host_on(listener, ranks, timeout)
            .map_err(|e| format!("serving the rendezvous: {e}"))?,
        None => {
            let config = TcpConfig {
                world_rank,
                ranks,
                rendezvous: connect.to_string(),
                timeout,
            };
            TcpTransport::connect(&config)
                .map_err(|e| format!("joining the rendezvous at {connect}: {e}"))?
        }
    };

    if stall_ms > 0 {
        // Fault-injection hook: stall ahead of the first collective so the
        // launcher can SIGKILL this process while its peers block on it.
        std::thread::sleep(Duration::from_millis(stall_ms));
    }

    // The identical rank program the in-process runtime executes — a peer
    // failure panics inside; catch it so the process exits with a
    // diagnostic instead of an abort trace.
    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut span = mttkrp_obs::span("rank");
        span.record("world_rank", world_rank as u64);
        span.record("ranks", ranks as u64);
        run_plan_rank(plan, x, factors, ep)
    }));
    let (chunk, ledger) = match run {
        Ok(out) => out,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "rank program panicked".to_string());
            return Err(msg);
        }
    };

    // Report back over the control connection.
    wire::write_frame(
        &mut &report_stream,
        &Frame::data(world_rank, wire::CTRL_CHUNK, wire::encode_chunk(&chunk)),
    )
    .and_then(|()| {
        wire::write_frame(
            &mut &report_stream,
            &Frame::data(
                world_rank,
                wire::CTRL_LEDGER,
                wire::encode_ledger(ledger.phases()),
            ),
        )
    })
    .map_err(|e| format!("reporting results to the launcher: {e}"))
}

fn spawn_rank(
    exe: &std::path::Path,
    spec: &LaunchSpec,
    me: usize,
    connect: &str,
    report: &str,
) -> Result<Child, String> {
    let mut cmd = Command::new(exe);
    cmd.arg("--dims")
        .arg(
            spec.dims
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("x"),
        )
        .arg("--rank")
        .arg(spec.rank.to_string())
        .arg("--mode")
        .arg(spec.mode.to_string())
        .arg("--seed")
        .arg(spec.seed.to_string())
        .arg("dist-rank")
        .arg("--ranks")
        .arg(spec.ranks.to_string())
        .arg("--threads")
        .arg(spec.threads.to_string())
        .arg("--memory")
        .arg(spec.memory.to_string())
        .arg("--world-rank")
        .arg(me.to_string())
        .arg("--connect")
        .arg(connect)
        .arg("--report")
        .arg(report)
        .arg("--timeout-secs")
        .arg(spec.timeout.as_secs().max(1).to_string())
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped());
    if spec.kill_rank == Some(me) && spec.stall_ms > 0 {
        cmd.arg("--stall-ms").arg(spec.stall_ms.to_string());
    }
    if let Some(dir) = &spec.rank_trace_dir {
        cmd.arg("--trace").arg(dir.join(format!("rank{me}.jsonl")));
    }
    cmd.spawn()
        .map_err(|e| format!("spawning rank {me} ({}): {e}", exe.display()))
}

/// Reads one rank's `CHUNK` + `LEDGER` report from a control connection.
fn spawn_report_reader(
    conn: TcpStream,
    deadline: Instant,
    tx: std::sync::mpsc::Sender<Result<(usize, OutputChunk, TrafficLedger), String>>,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        let result = (|| -> Result<(usize, OutputChunk, TrafficLedger), String> {
            let chunk_frame = read_frame_deadline(&conn, deadline).map_err(|e| e.to_string())?;
            if chunk_frame.comm_id != wire::CTRL_CHUNK {
                return Err("expected a CHUNK report frame".to_string());
            }
            let ledger_frame = read_frame_deadline(&conn, deadline).map_err(|e| e.to_string())?;
            if ledger_frame.comm_id != wire::CTRL_LEDGER {
                return Err("expected a LEDGER report frame".to_string());
            }
            let chunk = wire::decode_chunk(&chunk_frame.payload).map_err(|e| e.to_string())?;
            let phases = wire::decode_ledger(&ledger_frame.payload).map_err(|e| e.to_string())?;
            Ok((
                chunk_frame.from as usize,
                chunk,
                TrafficLedger::from_phases(phases),
            ))
        })();
        // A failed read usually means the rank died before reporting; the
        // launcher's exit-status sweep owns that diagnosis, so reader
        // errors are advisory only.
        if result.is_ok() {
            let _ = tx.send(result);
        }
    })
}

fn accept_with_deadline(listener: &TcpListener, deadline: Instant) -> std::io::Result<TcpStream> {
    listener.set_nonblocking(true)?;
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(false)?;
                return Ok(stream);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        "timed out waiting for a rank to report in",
                    ));
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => return Err(e),
        }
    }
}

fn read_frame_deadline(stream: &TcpStream, deadline: Instant) -> std::io::Result<Frame> {
    let remaining = deadline
        .checked_duration_since(Instant::now())
        .filter(|d| !d.is_zero())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::TimedOut, "report timed out"))?;
    stream.set_read_timeout(Some(remaining))?;
    wire::read_frame(&mut &*stream)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

fn wait_with_deadline(
    child: &mut Child,
    deadline: Instant,
) -> Result<std::process::ExitStatus, String> {
    loop {
        match child.try_wait() {
            Ok(Some(status)) => return Ok(status),
            Ok(None) => {
                if Instant::now() >= deadline {
                    return Err("deadline exceeded".to_string());
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => return Err(e.to_string()),
        }
    }
}
