//! Shared helpers for the benchmark harness and the figure/table
//! regenerator binaries.

pub mod dist_tcp;
pub mod proc_backend;

use mttkrp_tensor::{DenseTensor, Matrix, Shape};

/// Builds a random tensor and one random `I_k x R` factor per mode,
/// deterministically from `seed`.
pub fn setup_problem(dims: &[usize], r: usize, seed: u64) -> (DenseTensor, Vec<Matrix>) {
    let shape = Shape::new(dims);
    let x = DenseTensor::random(shape, seed);
    let factors = dims
        .iter()
        .enumerate()
        .map(|(k, &d)| Matrix::random(d, r, seed.wrapping_add(1000 + k as u64)))
        .collect();
    (x, factors)
}

/// Formats a float in engineering style (e.g. `1.34e9`) for table output.
pub fn eng(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1e5 || v.abs() < 1e-2 {
        format!("{v:.3e}")
    } else {
        format!("{v:.1}")
    }
}

/// Prints a markdown table row.
pub fn row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Prints a markdown table header (with separator line).
pub fn header(cells: &[&str]) {
    println!("| {} |", cells.join(" | "));
    println!(
        "|{}|",
        cells.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setup_shapes_are_consistent() {
        let (x, factors) = setup_problem(&[4, 5, 6], 3, 1);
        assert_eq!(x.shape().dims(), &[4, 5, 6]);
        assert_eq!(factors.len(), 3);
        for (k, f) in factors.iter().enumerate() {
            assert_eq!(f.rows(), x.shape().dim(k));
            assert_eq!(f.cols(), 3);
        }
    }

    #[test]
    fn eng_formatting() {
        assert_eq!(eng(0.0), "0");
        assert_eq!(eng(1234.5), "1234.5");
        assert_eq!(eng(1.23456e9), "1.235e9");
    }
}
