//! End-to-end tests of the `mttkrp_cli listen` network front door and the
//! `serve --bench --socket` replay: a real child process, a real TCP
//! client from another process, bitwise replay checks, and a graceful
//! stdin-EOF drain under a hard deadline.

use mttkrp_serve::net::protocol::FactorizeSpec;
use mttkrp_serve::{Client, StreamControl};
use mttkrp_tensor::{DenseTensor, Matrix, Shape};
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const CLI: &str = env!("CARGO_BIN_EXE_mttkrp_cli");
const DEADLINE: Duration = Duration::from_secs(60);

/// Spawns `mttkrp_cli listen` with piped stdin/stdout and parses the
/// bound address from the first stdout line.
fn spawn_listener(extra: &[&str]) -> (Child, SocketAddr) {
    let mut child = Command::new(CLI)
        .args(["--rank", "4", "listen", "--bind", "127.0.0.1:0"])
        .args(extra)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawning mttkrp_cli listen");
    let mut first = String::new();
    BufReader::new(child.stdout.as_mut().expect("piped stdout"))
        .read_line(&mut first)
        .expect("reading the listener's first line");
    let addr = first
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected first line: {first:?}"))
        .parse()
        .expect("parsing the bound address");
    (child, addr)
}

/// Closes the child's stdin (EOF drains the server) and requires a clean
/// exit within the deadline.
fn drain_and_reap(mut child: Child) {
    drop(child.stdin.take());
    let start = Instant::now();
    loop {
        match child.try_wait().expect("waiting on the listener") {
            Some(status) => {
                assert!(status.success(), "listener exited {status}");
                return;
            }
            None => {
                assert!(
                    start.elapsed() < DEADLINE,
                    "listener still running {DEADLINE:?} after stdin EOF — drain hang"
                );
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

fn bits(a: &[f64]) -> Vec<u64> {
    a.iter().map(|w| w.to_bits()).collect()
}

/// The acceptance criterion: a real TCP client talking to a listener in
/// another OS process gets MTTKRP bytes bit-identical to computing
/// in-process, and the listener drains cleanly on stdin EOF.
#[test]
fn listener_serves_bit_identical_mttkrp_across_processes() {
    let (child, addr) = spawn_listener(&[]);

    let x = DenseTensor::random(Shape::new(&[8, 7, 6]), 42);
    let factors: Vec<Matrix> = [8usize, 7, 6]
        .iter()
        .enumerate()
        .map(|(k, &d)| Matrix::random(d, 4, k as u64))
        .collect();
    let mut client = Client::connect(addr).expect("connect to the child process");
    for mode in 0..3 {
        let refs: Vec<&Matrix> = factors.iter().collect();
        let (_, direct) =
            mttkrp_exec::plan_and_execute(&mttkrp_exec::MachineSpec::detect(), &x, &refs, mode);
        let remote = client.mttkrp(&x, &factors, mode).expect("remote MTTKRP");
        assert_eq!(
            bits(remote.output.data()),
            bits(direct.output.data()),
            "socket MTTKRP (mode {mode}) diverged from in-process execution"
        );
    }
    drop(client);
    drain_and_reap(child);
}

/// A streaming factorization against the child process delivers one sweep
/// frame per sweep, in order, and the final model arrives intact.
#[test]
fn listener_streams_factorize_sweeps_across_processes() {
    let (child, addr) = spawn_listener(&[]);

    let x = DenseTensor::random(Shape::new(&[6, 5, 4]), 7);
    let spec = FactorizeSpec {
        rank: 3,
        max_sweeps: 4,
        tol: 1e-12,
        seed: 1,
        ridge: 1e-9,
    };
    let mut client = Client::connect(addr).expect("connect");
    let mut updates = 0usize;
    let run = client
        .factorize_streaming(&x, &spec, |u| {
            updates += 1;
            assert_eq!(u.sweep, updates, "sweep frames arrive in order");
            StreamControl::Continue
        })
        .expect("streaming factorize");
    assert_eq!(updates, run.sweeps, "one frame per sweep");
    assert_eq!(run.model.factors.len(), 3);
    assert!(!run.cancelled);
    drop(client);
    drain_and_reap(child);
}

/// stdin EOF while a client connection is still open: the drain sheds new
/// work but still exits promptly — an idle open socket cannot wedge it.
#[test]
fn drain_is_not_blocked_by_an_idle_connection() {
    let (child, addr) = spawn_listener(&[]);
    let client = Client::connect(addr).expect("connect");
    drain_and_reap(child);
    drop(client);
}

/// The socket bench subcommand self-gates end to end: `serve --bench
/// --socket --json` exits 0 and reports bit-identical replay with zero
/// storm misses.
#[test]
fn socket_bench_passes_its_own_gates() {
    let out = Command::new(CLI)
        .args([
            "--dims",
            "8x7x6",
            "--rank",
            "4",
            "serve",
            "--bench",
            "--socket",
            "--requests",
            "120",
            "--shapes",
            "3",
            "--clients",
            "4",
            "--json",
        ])
        .stdin(Stdio::null())
        .output()
        .expect("running the socket bench");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "socket bench failed\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(stdout.contains("\"socket\":true"), "{stdout}");
    assert!(stdout.contains("\"identical\":true"), "{stdout}");
    assert!(stdout.contains("\"storm_cache_misses\":0"), "{stdout}");
    assert!(stdout.contains("\"per_client\":["), "{stdout}");
}
