//! The whole ops plane, end to end, across six OS processes: a traced
//! client sends a factorization to a `listen` front door running with
//! `--dist-exec proc`, so every MTTKRP of every sweep launches four real
//! rank processes; each process writes its own `--trace` JSONL, and
//! `report --merge --gate` stitches them into ONE tree under ONE trace id
//! and replays the drift gate over the merged capture.
//!
//! This is the acceptance test for cross-process trace propagation: the
//! client's root `request` span must end up as the ancestor of the
//! server's worker span AND of every rank process's `rank` span.

use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const CLI: &str = env!("CARGO_BIN_EXE_mttkrp_cli");
const DEADLINE: Duration = Duration::from_secs(120);
const RANKS: usize = 4;

/// A scratch directory unique to this test process AND test fn (the
/// harness runs test fns concurrently in one process).
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mttkrp_ops_e2e_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(dir.join("ranks")).expect("creating the scratch dir");
    dir
}

/// Spawns the traced listener with one real OS process per rank behind
/// every factorization, and parses the bound address from stdout. The
/// child's stdin stays piped and OPEN — dropping it is the drain signal.
fn spawn_listener(dir: &Path) -> (Child, SocketAddr) {
    let mut child = Command::new(CLI)
        .args(["--rank", "4", "listen", "--bind", "127.0.0.1:0"])
        .args(["--dist-exec", "proc", "--ranks", &RANKS.to_string()])
        .arg("--rank-trace-dir")
        .arg(dir.join("ranks"))
        .arg("--trace")
        .arg(dir.join("server.jsonl"))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawning mttkrp_cli listen --dist-exec proc");
    let mut first = String::new();
    BufReader::new(child.stdout.as_mut().expect("piped stdout"))
        .read_line(&mut first)
        .expect("reading the listener's first line");
    let addr = first
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected first line: {first:?}"))
        .parse()
        .expect("parsing the bound address");
    (child, addr)
}

/// stdin EOF drains the listener; it must exit 0 (which is also when it
/// writes its `--trace` file) within the deadline.
fn drain_and_reap(mut child: Child) {
    drop(child.stdin.take());
    let start = Instant::now();
    loop {
        match child.try_wait().expect("waiting on the listener") {
            Some(status) => {
                assert!(status.success(), "listener exited {status}");
                return;
            }
            None => {
                assert!(
                    start.elapsed() < DEADLINE,
                    "listener still running {DEADLINE:?} after stdin EOF"
                );
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

#[test]
fn traced_factorization_merges_into_one_cross_process_tree() {
    let dir = scratch("merge");
    let (listener, addr) = spawn_listener(&dir);

    // The traced client, as its own OS process: `--connect` routes the
    // factorization over the socket with this process's trace context on
    // the request frame. 16x16x16 shards evenly over 4 ranks.
    let client = Command::new(CLI)
        .args(["--dims", "16x16x16", "--rank", "4"])
        .args(["cp-als", "--connect", &addr.to_string()])
        .args(["--sweeps", "2"])
        .arg("--trace")
        .arg(dir.join("client.jsonl"))
        .stdin(Stdio::null())
        .output()
        .expect("running the traced client");
    let stdout = String::from_utf8_lossy(&client.stdout);
    let stderr = String::from_utf8_lossy(&client.stderr);
    assert!(
        client.status.success(),
        "traced client failed\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(
        stdout.contains("[remote @"),
        "client did not report a remote factorization: {stdout}"
    );

    drain_and_reap(listener);

    // Every per-process capture must exist: client, server, and one file
    // per rank (successive launches reuse the paths; the last launch of
    // the request wins, still under the same trace id).
    let mut files = vec![dir.join("client.jsonl"), dir.join("server.jsonl")];
    for me in 0..RANKS {
        files.push(dir.join("ranks").join(format!("rank{me}.jsonl")));
    }
    let texts: Vec<String> = files
        .iter()
        .map(|f| {
            let text = std::fs::read_to_string(f)
                .unwrap_or_else(|e| panic!("reading {}: {e}", f.display()));
            assert!(!text.trim().is_empty(), "{} is empty", f.display());
            text
        })
        .collect();

    // The merged capture: the client's trace id is THE trace id — every
    // rank process adopted it wholesale (their metas carry it plus the
    // remote anchor), and the server's request span joined it span-level
    // via its `remote_trace` field (the server capture keeps its own
    // process id, since one server serves many clients' traces).
    let merged = mttkrp_obs::merge_traces(&texts).expect("merging the six captures");
    assert_eq!(merged.segments.len(), files.len());
    let client_trace = merged.segments[0].trace.clone();
    assert_eq!(client_trace.len(), 32, "client capture carries a trace id");
    for seg in &merged.segments[2..] {
        assert_eq!(
            seg.trace, client_trace,
            "every rank process adopted the client's trace id"
        );
    }
    assert!(
        merged.spans.iter().any(|s| s.name == "request"
            && s.fields.iter().any(|(k, v)| k == "remote_trace"
                && matches!(v, mttkrp_obs::FieldValue::Str(t) if *t == client_trace))),
        "the server's request span adopted the client's trace id"
    );

    let parent_of: std::collections::HashMap<u64, Option<u64>> =
        merged.spans.iter().map(|s| (s.id, s.parent)).collect();
    let root_of = |mut id: u64| -> u64 {
        while let Some(Some(p)) = parent_of.get(&id) {
            id = *p;
        }
        id
    };
    let client_root = merged
        .spans
        .iter()
        .find(|s| s.parent.is_none() && s.name == "request")
        .expect("the client's root request span survives the merge");
    let rank_spans: Vec<_> = merged.spans.iter().filter(|s| s.name == "rank").collect();
    assert_eq!(
        rank_spans.len(),
        RANKS,
        "one rank span per rank process (last launch per file)"
    );
    for span in rank_spans {
        assert_eq!(
            root_of(span.id),
            client_root.id,
            "rank span {} is not under the client's root request span",
            span.id
        );
        assert!(
            span.fields.iter().any(|(k, _)| k == "world_rank"),
            "rank span carries its world_rank field"
        );
    }

    // And the CLI-side replay: `report --merge ... --gate` over the same
    // files must pass the drift gate (modeled-vs-measured over the merged
    // capture, collectives included).
    let report = Command::new(CLI)
        .arg("report")
        .arg("--merge")
        .args(&files)
        .arg("--gate")
        .stdin(Stdio::null())
        .output()
        .expect("running report --merge --gate");
    let stdout = String::from_utf8_lossy(&report.stdout);
    let stderr = String::from_utf8_lossy(&report.stderr);
    assert!(
        report.status.success(),
        "report --merge --gate failed\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(stdout.contains("merged 6 file(s)"), "{stdout}");

    let _ = std::fs::remove_dir_all(&dir);
}

/// The ops frames against a real child process: `stats` scrapes a live
/// listener (human and `--json`) without ever being admitted, and the
/// flight recorder answers over the wire.
#[test]
fn stats_cli_scrapes_a_live_listener() {
    let dir = scratch("stats");
    let (listener, addr) = spawn_listener(&dir);

    let stats = Command::new(CLI)
        .args(["stats", &addr.to_string()])
        .stdin(Stdio::null())
        .output()
        .expect("running mttkrp_cli stats");
    let stdout = String::from_utf8_lossy(&stats.stdout);
    assert!(stats.status.success(), "stats failed: {stdout}");
    assert!(stdout.contains("up "), "no health line: {stdout}");

    let json = Command::new(CLI)
        .args(["stats", &addr.to_string(), "--json"])
        .stdin(Stdio::null())
        .output()
        .expect("running mttkrp_cli stats --json");
    let stdout = String::from_utf8_lossy(&json.stdout);
    assert!(json.status.success(), "stats --json failed: {stdout}");
    assert!(stdout.contains("\"health\":{"), "{stdout}");
    assert!(stdout.contains("\"uptime_ms\":"), "{stdout}");
    assert!(stdout.contains("\"metrics\":["), "{stdout}");
    assert!(
        stdout.contains("\"serve.net.scrapes\""),
        "the scrape itself must be counted: {stdout}"
    );

    drain_and_reap(listener);
    let _ = std::fs::remove_dir_all(&dir);
}
