//! End-to-end tests of the observability surface: `--trace` on a live
//! `mttkrp_cli` run produces one schema-valid JSONL stream with the whole
//! span hierarchy under a single root, the drift gate holds, and `report`
//! replays the file.

use std::process::Command;

const CLI: &str = env!("CARGO_BIN_EXE_mttkrp_cli");

fn run_cli(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(CLI)
        .args(args)
        .output()
        .expect("running mttkrp_cli");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn temp_trace(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("mttkrp_obs_cli_{tag}_{}.jsonl", std::process::id()))
}

/// The acceptance criterion end to end: one traced
/// `cp-als --backend dist-tcp` run yields a single JSONL stream carrying
/// planner, kernel, collective, and sweep spans under one root `request`
/// span — with every collective's modeled words equal to the words the TCP
/// sockets actually moved (the in-run drift gate would otherwise have
/// failed the exit code).
#[test]
fn traced_cp_als_dist_tcp_yields_one_valid_stream_under_one_root() {
    let path = temp_trace("cpals");
    let (ok, stdout, stderr) = run_cli(&[
        "--dims",
        "16x12x8",
        "--rank",
        "4",
        "cp-als",
        "--backend",
        "dist-tcp",
        "--ranks",
        "4",
        "--sweeps",
        "3",
        "--trace",
        path.to_str().unwrap(),
    ]);
    assert!(
        ok,
        "traced run failed\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(
        stdout.contains("drift gate") && stdout.contains("OK"),
        "expected an in-run drift verdict:\n{stdout}"
    );

    let text = std::fs::read_to_string(&path).expect("trace file written");
    let _ = std::fs::remove_file(&path);
    let lines = mttkrp_obs::validate(&text).expect("every line matches the event schema");
    assert!(lines > 10, "expected a real stream, got {lines} line(s)");

    let trace = mttkrp_obs::parse_trace(&text).expect("trace parses");
    let roots: Vec<_> = trace.spans.iter().filter(|s| s.parent.is_none()).collect();
    assert_eq!(roots.len(), 1, "exactly one root span");
    assert_eq!(roots[0].name, "request");
    for name in [
        "planner",
        "kernel",
        "collective",
        "factorize",
        "sweep",
        "mode",
    ] {
        assert!(
            trace.spans.iter().any(|s| s.name == name),
            "missing {name} spans in the stream"
        );
    }

    // The drift pairs in the file re-verify to zero drift, independently of
    // the in-run gate.
    let drift = mttkrp_obs::DriftReport::from_spans(&trace.spans, 1e-9);
    assert!(
        !drift.is_empty(),
        "collective spans carry modeled/measured pairs"
    );
    assert!(drift.ok(), "modeled != measured:\n{}", drift.table());
}

/// `report FILE --gate` replays a trace from a real dist run: prints the
/// span tree and drift table, and exits 0 because measured == modeled.
#[test]
fn report_replays_and_gates_a_dist_trace() {
    let path = temp_trace("dist");
    let (ok, _, stderr) = run_cli(&[
        "--dims",
        "16x16x16",
        "--rank",
        "8",
        "--mode",
        "0",
        "dist",
        "--ranks",
        "4",
        "--trace",
        path.to_str().unwrap(),
    ]);
    assert!(ok, "traced dist run failed:\n{stderr}");

    let (ok, stdout, stderr) = run_cli(&["report", path.to_str().unwrap(), "--gate"]);
    let _ = std::fs::remove_file(&path);
    assert!(
        ok,
        "report --gate failed\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    for needle in ["span", "request", "collective", "drift gate", "OK"] {
        assert!(stdout.contains(needle), "missing '{needle}' in:\n{stdout}");
    }
}

/// A corrupt trace fails `report` with a line-numbered schema error, and a
/// drifted trace fails the gate with a nonzero exit.
#[test]
fn report_rejects_corrupt_and_drifted_traces() {
    let path = temp_trace("bad");
    std::fs::write(&path, "{\"type\":\"span\",\"id\":0}\n").unwrap();
    let (ok, _, stderr) = run_cli(&["report", path.to_str().unwrap()]);
    assert!(!ok, "schema-invalid trace must fail");
    assert!(
        stderr.contains("line 1"),
        "expected a line number:\n{stderr}"
    );

    // Hand-build a schema-valid trace whose measured words drift 50% from
    // the model: the gate must trip.
    let drifted = concat!(
        "{\"type\":\"meta\",\"version\":1,\"spans\":1,\"metrics\":0}\n",
        "{\"type\":\"span\",\"id\":1,\"parent\":null,\"name\":\"collective\",\"thread\":1,",
        "\"start_us\":0,\"dur_us\":0,\"fields\":{\"phase\":\"all-gather(tensor)\",\"rank\":0,",
        "\"modeled_sent\":100,\"measured_sent\":150}}\n"
    );
    std::fs::write(&path, drifted).unwrap();
    let (ok, stdout, _) = run_cli(&["report", path.to_str().unwrap()]);
    assert!(
        ok,
        "without --gate, drift is reported but not fatal:\n{stdout}"
    );
    assert!(stdout.contains("DRIFT"), "drift row marked:\n{stdout}");
    let (ok, _, stderr) = run_cli(&["report", path.to_str().unwrap(), "--gate"]);
    let _ = std::fs::remove_file(&path);
    assert!(!ok, "--gate must fail on 50% drift");
    assert!(
        stderr.contains("drift"),
        "gate names the failure:\n{stderr}"
    );
}
