//! End-to-end tests of `mttkrp_cli dist --transport tcp`: the launcher
//! spawns one real OS process per rank on localhost, and the run must
//! pass the same self-gates the channel transport passes — bitwise output
//! identity against the single-node executor and per-collective schedule
//! word-exactness. The fault path SIGKILLs a rank mid-collective and
//! requires every peer to surface an error within a bounded time.

use std::process::Command;
use std::time::{Duration, Instant};

const CLI: &str = env!("CARGO_BIN_EXE_mttkrp_cli");

fn run_cli(args: &[&str], deadline: Duration) -> (bool, String, String, Duration) {
    let start = Instant::now();
    let mut child = Command::new(CLI)
        .args(args)
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawning mttkrp_cli");
    loop {
        match child.try_wait().expect("waiting on mttkrp_cli") {
            Some(status) => {
                let out = child.wait_with_output().expect("collecting output");
                return (
                    status.success(),
                    String::from_utf8_lossy(&out.stdout).into_owned(),
                    String::from_utf8_lossy(&out.stderr).into_owned(),
                    start.elapsed(),
                );
            }
            None => {
                assert!(
                    start.elapsed() < deadline,
                    "mttkrp_cli {args:?} still running after {deadline:?} — launcher hang"
                );
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

/// The acceptance criterion: `dist --transport tcp --ranks 4` on loopback
/// exits 0, reporting bitwise identity and a word-exact schedule.
#[test]
fn tcp_four_rank_loopback_passes_both_gates() {
    let (ok, stdout, stderr, _) = run_cli(
        &[
            "--dims",
            "16x16x16",
            "--rank",
            "8",
            "--mode",
            "0",
            "dist",
            "--ranks",
            "4",
            "--transport",
            "tcp",
        ],
        Duration::from_secs(120),
    );
    assert!(ok, "self-gate failed\nstdout:\n{stdout}\nstderr:\n{stderr}");
    assert!(stdout.contains("transport: tcp sockets"), "{stdout}");
    assert!(stdout.contains("spawning 4 rank process(es)"), "{stdout}");
    assert!(stdout.contains("bit-identical"), "{stdout}");
    for rank in 0..4 {
        assert!(stdout.contains(&format!("rank   {rank}:")), "{stdout}");
    }
    assert!(!stdout.contains("MISMATCH"), "{stdout}");
}

/// An Algorithm 3 configuration (three collectives per rank) over eight
/// real processes stays word-exact.
#[test]
fn tcp_eight_rank_alg3_schedule_is_word_exact() {
    let (ok, stdout, stderr, _) = run_cli(
        &[
            "--dims",
            "64x8x8",
            "--rank",
            "8",
            "--mode",
            "0",
            "dist",
            "--ranks",
            "8",
            "--transport",
            "tcp",
        ],
        Duration::from_secs(120),
    );
    assert!(ok, "self-gate failed\nstdout:\n{stdout}\nstderr:\n{stderr}");
    assert!(stdout.contains("over 3 collective(s) ok"), "{stdout}");
    assert!(!stdout.contains("MISMATCH"), "{stdout}");
}

/// SIGKILL one rank process while its peers are blocked on it inside a
/// collective: the launcher must exit nonzero within the bounded timeout
/// (no deadlock), naming both the killed rank and the peers' aborts.
#[test]
fn tcp_sigkilled_rank_aborts_every_peer_within_timeout() {
    let (ok, stdout, stderr, elapsed) = run_cli(
        &[
            "--dims",
            "16x16x16",
            "--rank",
            "8",
            "--mode",
            "0",
            "dist",
            "--ranks",
            "4",
            "--transport",
            "tcp",
            "--kill-rank",
            "2",
            "--timeout-secs",
            "30",
        ],
        Duration::from_secs(90),
    );
    assert!(!ok, "a killed rank must fail the run\nstdout:\n{stdout}");
    assert!(
        elapsed < Duration::from_secs(60),
        "peers took {elapsed:?} to surface the failure — not bounded"
    );
    assert!(
        stderr.contains("signal: 9"),
        "the original failure (SIGKILL) must be reported: {stderr}"
    );
    assert!(
        stderr.contains("connection lost mid-run"),
        "peers must abort on the lost connection: {stderr}"
    );
}

/// The channel transport rejects the tcp-only fault-injection flag
/// instead of silently ignoring it.
#[test]
fn kill_rank_flag_requires_the_tcp_launcher() {
    let (ok, _, stderr, _) = run_cli(
        &[
            "--dims",
            "16x16x16",
            "--rank",
            "8",
            "--mode",
            "0",
            "dist",
            "--ranks",
            "4",
            "--kill-rank",
            "1",
        ],
        Duration::from_secs(60),
    );
    assert!(!ok);
    assert!(stderr.contains("tcp-launcher"), "{stderr}");
}
