//! Criterion benchmark for the sharded multi-rank runtime: the real
//! message-passing execution (`mttkrp-dist`) against the netsim replay of
//! the same plan, across rank counts.
//!
//! Run with `cargo bench -p mttkrp-bench --bench dist_exec`. The dist
//! runtime pays thread spawns and real data movement; the interesting
//! reading is how its overhead scales with `P` relative to the simulator
//! (which moves the same words through the same ring schedule).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mttkrp_bench::setup_problem;
use mttkrp_core::Problem;
use mttkrp_dist::DistBackend;
use mttkrp_exec::{Backend, MachineSpec, Planner, SimBackend};
use mttkrp_tensor::Matrix;

fn bench_dist_vs_sim(c: &mut Criterion) {
    let (x, factors) = setup_problem(&[32, 32, 32], 16, 11);
    let refs: Vec<&Matrix> = factors.iter().collect();
    let problem = Problem::from_shape(x.shape(), 16);

    let mut group = c.benchmark_group("dist_mttkrp_32x32x32_r16");
    for ranks in [2usize, 4, 8] {
        let plan =
            Planner::new(MachineSpec::cluster(ranks, 1, 1 << 16)).plan_executable(&problem, 0);
        assert!(!plan.algorithm.is_sequential());
        let dist = DistBackend::new();
        let sim = SimBackend::new();
        group.bench_with_input(BenchmarkId::new("dist", ranks), &ranks, |b, _| {
            b.iter(|| dist.execute(&plan, &x, &refs))
        });
        group.bench_with_input(BenchmarkId::new("sim", ranks), &ranks, |b, _| {
            b.iter(|| sim.execute(&plan, &x, &refs))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dist_vs_sim);
criterion_main!(benches);
