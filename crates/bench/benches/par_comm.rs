//! Benchmarks of the parallel algorithms running on the distributed-machine
//! simulator (Section VI-B's comparison, per Figure 4 / TAB-PAR).
//!
//! As with `seq_io`, the communication *counts* are deterministic and
//! asserted elsewhere; these benches track end-to-end simulator throughput
//! (thread spawn + real data movement + reduction).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mttkrp_bench::setup_problem;
use mttkrp_core::par;
use mttkrp_tensor::Matrix;
use std::hint::black_box;
use std::time::Duration;

fn bench_par_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("par_comm_p8");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    let (x, factors) = setup_problem(&[16, 16, 16], 8, 5);
    let refs: Vec<&Matrix> = factors.iter().collect();

    group.bench_function("alg3_stationary_2x2x2", |b| {
        b.iter(|| black_box(par::mttkrp_stationary(&x, &refs, 0, &[2, 2, 2])))
    });
    group.bench_function("alg4_general_p0_2", |b| {
        b.iter(|| black_box(par::mttkrp_general(&x, &refs, 0, 2, &[2, 2, 1])))
    });
    group.bench_function("matmul_1d", |b| {
        b.iter(|| black_box(par::mttkrp_par_matmul(&x, &refs, 0, 8)))
    });
    group.finish();
}

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("alg3_scaling");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    let (x, factors) = setup_problem(&[16, 16, 16], 4, 6);
    let refs: Vec<&Matrix> = factors.iter().collect();
    for (p, grid) in [
        (1usize, [1usize, 1, 1]),
        (4, [2, 2, 1]),
        (8, [2, 2, 2]),
        (16, [4, 2, 2]),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(p), &grid, |b, grid| {
            b.iter(|| black_box(par::mttkrp_stationary(&x, &refs, 0, grid)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_par_algorithms, bench_scaling);
criterion_main!(benches);
