//! Criterion benchmark for the CP-ALS engine: full plan-cached sweeps on
//! the native backend, and the engine's per-sweep overhead versus raw
//! MTTKRP calls.
//!
//! Run with `cargo bench -p mttkrp-bench --bench cp_als`. The engine's
//! added cost over `N` bare kernel launches per sweep is the Gram-Hadamard
//! solve (R x R Cholesky) plus one cache lookup per mode — both are meant
//! to vanish next to the kernel at serving sizes, which this bench makes
//! visible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mttkrp_als::{cp_als, AlsConfig, BackendChoice};
use mttkrp_exec::{MachineSpec, NativeBackend};
use mttkrp_tensor::{KruskalTensor, Matrix, Shape};

const DIMS: [usize; 3] = [32, 32, 32];
const RANK: usize = 8;
const SWEEPS: usize = 5;

fn bench_engine_sweeps(c: &mut Criterion) {
    let x = KruskalTensor::random(&Shape::new(&DIMS), RANK, 3).full();
    let mut group = c.benchmark_group("cp_als_32x32x32_r8_5sweeps");
    for threads in [1usize, 4] {
        let config = AlsConfig::new(RANK)
            .with_machine(MachineSpec::shared(threads, 1 << 16))
            .with_backend(BackendChoice::Native)
            .with_sweeps(SWEEPS)
            .with_tol(0.0)
            .with_seed(7);
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, _| {
            b.iter(|| cp_als(&x, &config))
        });
    }
    group.finish();
}

fn bench_raw_mttkrp_floor(c: &mut Criterion) {
    // The kernel-only floor of one engine run: N modes x SWEEPS bare
    // MTTKRPs with no planning, solving, or normalization.
    let x = KruskalTensor::random(&Shape::new(&DIMS), RANK, 3).full();
    let factors: Vec<Matrix> = DIMS
        .iter()
        .enumerate()
        .map(|(k, &d)| Matrix::random(d, RANK, 7 + k as u64))
        .collect();
    let refs: Vec<&Matrix> = factors.iter().collect();
    let backend = NativeBackend::new(4, 1 << 16);
    c.bench_function("raw_mttkrp_floor_15_kernels", |b| {
        b.iter(|| {
            for _ in 0..SWEEPS {
                for n in 0..DIMS.len() {
                    criterion::black_box(backend.run(&x, &refs, n));
                }
            }
        })
    });
}

criterion_group!(benches, bench_engine_sweeps, bench_raw_mttkrp_floor);
criterion_main!(benches);
