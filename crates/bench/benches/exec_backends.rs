//! Criterion benchmark for the execution subsystem: the rayon-parallel
//! native backend against the same kernel pinned to one thread, on the
//! acceptance configuration (64x64x64, R = 32), plus the planner itself.
//!
//! Run with `cargo bench -p mttkrp-bench --bench exec_backends`. With four
//! or more cores the multithreaded path should beat the single-threaded
//! one by well over 2x — a claim CI *asserts* (not merely demonstrates)
//! via the `speedup_gate` binary, which replays this configuration and
//! exits nonzero if the 4-thread/1-thread ratio drops below 2x on a
//! >= 4-core runner.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mttkrp_bench::setup_problem;
use mttkrp_core::Problem;
use mttkrp_exec::{mttkrp_native, native_grain, native_tile, MachineSpec, NativeBackend, Planner};
use mttkrp_exec::{ParGrain, DEFAULT_CACHE_WORDS};
use mttkrp_tensor::Matrix;

fn bench_native_scaling(c: &mut Criterion) {
    let (x, factors) = setup_problem(&[64, 64, 64], 32, 7);
    let refs: Vec<&Matrix> = factors.iter().collect();
    let cores = MachineSpec::detect_threads();

    let mut group = c.benchmark_group("native_mttkrp_64x64x64_r32");
    // Always measure 1/2/4 workers (plus all cores when there are more):
    // on a host with >= 4 cores the 4-thread row comes in >= 2x under the
    // 1-thread row. On fewer cores the extra rows just document overhead.
    let mut widths = vec![1usize, 2, 4];
    if cores > 4 {
        widths.push(cores);
    }
    for &threads in &widths {
        let backend = NativeBackend::new(threads, mttkrp_exec::DEFAULT_CACHE_WORDS);
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, _| {
            b.iter(|| backend.run(&x, &refs, 0))
        });
    }
    group.finish();
}

fn bench_flat_range_tiling(c: &mut Criterion) {
    // A large *tall-skinny* tensor (16384 x 128 x 2): the last mode cannot
    // feed a multi-thread pool, so the kernel takes the flat-range path,
    // and the 16384 x 32 mode-0 factor (4 MiB) is far past
    // FLAT_BLOCK_MIN_FACTOR_WORDS. Tile 1 is the untiled streaming
    // baseline (the pre-tiling behavior: the full mode-0 factor is
    // re-streamed for every run); the planned tile walks runs in b-edge
    // bands that keep a b x R factor block and the band's Hadamard rows
    // resident — the delta between the two rows is the win of blocking
    // the flat path.
    let dims = [16384usize, 128, 2];
    let rank = 32;
    let (x, factors) = setup_problem(&dims, rank, 9);
    let refs: Vec<&Matrix> = factors.iter().collect();
    let threads = 4;
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .unwrap();
    assert!(matches!(
        native_grain(dims[2], x.num_entries(), threads),
        ParGrain::FlatRanges { .. }
    ));
    let planned = native_tile(DEFAULT_CACHE_WORDS, dims.len(), rank);

    let mut group = c.benchmark_group("native_flat_16384x128x2_r32");
    for (label, tile) in [("tile_1_streamed", 1usize), ("tile_planned", planned)] {
        group.bench_with_input(BenchmarkId::new(label, tile), &tile, |b, &tile| {
            b.iter(|| mttkrp_native(&x, &refs, 0, tile, &pool))
        });
    }
    group.finish();
}

fn bench_planner(c: &mut Criterion) {
    // Planning is pure model evaluation; it must be cheap enough to run per
    // request. Figure 4 scale, P = 2^20.
    let p = Problem::cubical(3, 1 << 15, 1 << 15);
    let planner = Planner::new(MachineSpec::distributed(1 << 20));
    c.bench_function("planner_fig4_p2e20", |b| b.iter(|| planner.plan(&p, 0)));
}

criterion_group!(
    benches,
    bench_native_scaling,
    bench_flat_range_tiling,
    bench_planner
);
criterion_main!(benches);
