//! Wall-clock benchmarks of the Section VII extensions: multi-mode
//! dimension-tree reuse, sparse kernels, and Tucker/TTM.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mttkrp_bench::setup_problem;
use mttkrp_core::multi::{mttkrp_all_modes_naive, mttkrp_all_modes_tree};
use mttkrp_core::tucker::st_hosvd;
use mttkrp_tensor::{sparse_mttkrp, CooTensor, Matrix, Shape};
use std::hint::black_box;
use std::time::Duration;

fn bench_all_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("all_modes_mttkrp");
    group.sample_size(15);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    for order in [3usize, 4, 5] {
        let dim = (16384f64.powf(1.0 / order as f64)).round() as usize;
        let dims = vec![dim; order];
        let (x, factors) = setup_problem(&dims, 8, 1);
        let refs: Vec<&Matrix> = factors.iter().collect();
        group.bench_with_input(BenchmarkId::new("tree", order), &(), |b, _| {
            b.iter(|| black_box(mttkrp_all_modes_tree(&x, &refs)))
        });
        group.bench_with_input(BenchmarkId::new("naive", order), &(), |b, _| {
            b.iter(|| black_box(mttkrp_all_modes_naive(&x, &refs)))
        });
    }
    group.finish();
}

fn bench_sparse_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparse_mttkrp_density");
    group.sample_size(15);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    let shape = Shape::new(&[32, 32, 32]);
    let factors: Vec<Matrix> = (0..3).map(|k| Matrix::random(32, 8, k)).collect();
    let refs: Vec<&Matrix> = factors.iter().collect();
    for density in [0.01f64, 0.1, 0.5] {
        let coo = CooTensor::random(shape.clone(), density, 7);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{density}")),
            &(),
            |b, _| b.iter(|| black_box(sparse_mttkrp(&coo, &refs, 0))),
        );
    }
    group.finish();
}

fn bench_tucker(c: &mut Criterion) {
    let mut group = c.benchmark_group("st_hosvd");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    let x = mttkrp_tensor::DenseTensor::random(Shape::new(&[24, 24, 24]), 9);
    for r in [2usize, 6, 12] {
        group.bench_with_input(BenchmarkId::from_parameter(r), &r, |b, &r| {
            b.iter(|| black_box(st_hosvd(&x, &[r, r, r])))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_all_modes, bench_sparse_kernel, bench_tucker);
criterion_main!(benches);
