//! Benchmarks of the sequential algorithms running on the strict two-level
//! memory simulator (Section VI-A's comparison, per figure/table TAB-SEQ).
//!
//! Criterion measures the simulator's wall-clock; the I/O *counts* (the
//! paper's metric) are deterministic and are asserted/reported by the
//! `table_seq` and `validate_model` binaries. Benchmarking here tracks that
//! the simulators stay fast enough to sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mttkrp_bench::setup_problem;
use mttkrp_core::seq;
use mttkrp_tensor::Matrix;
use std::hint::black_box;
use std::time::Duration;

fn bench_seq_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("seq_io");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    let (x, factors) = setup_problem(&[12, 12, 12], 4, 3);
    let refs: Vec<&Matrix> = factors.iter().collect();
    let m = 128;

    group.bench_function("alg1_unblocked", |b| {
        b.iter(|| black_box(seq::mttkrp_unblocked(&x, &refs, 0, m)))
    });
    let bs = seq::choose_block_size(m, 3);
    group.bench_function(BenchmarkId::new("alg2_blocked", bs), |b| {
        b.iter(|| black_box(seq::mttkrp_blocked(&x, &refs, 0, m, bs)))
    });
    group.bench_function("matmul_baseline", |b| {
        b.iter(|| black_box(seq::mttkrp_seq_matmul(&x, &refs, 0, m)))
    });
    group.finish();
}

fn bench_block_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("alg2_block_size");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    let (x, factors) = setup_problem(&[16, 16, 16], 4, 4);
    let refs: Vec<&Matrix> = factors.iter().collect();
    for &bs in &[1usize, 2, 4] {
        let m = bs.pow(3) + 3 * bs + 4;
        group.bench_with_input(BenchmarkId::from_parameter(bs), &bs, |b, &bs| {
            b.iter(|| black_box(seq::mttkrp_blocked(&x, &refs, 0, m, bs)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_seq_algorithms, bench_block_sizes);
criterion_main!(benches);
