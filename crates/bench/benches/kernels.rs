//! Wall-clock benchmarks of the in-memory MTTKRP kernels: the atomic
//! N-ary-multiply kernel (Definition 2.1), the two-step (KRP + matmul)
//! variant the paper's Section V-C3 mentions, the Rayon-parallel kernel,
//! and the brute-force oracle.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mttkrp_bench::setup_problem;
use mttkrp_core::kernels::{local_mttkrp, local_mttkrp_par, local_mttkrp_twostep};
use mttkrp_tensor::{mttkrp_reference, Matrix};
use std::hint::black_box;
use std::time::Duration;

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("local_mttkrp");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    for &(dim, r) in &[(16usize, 8usize), (32, 8), (32, 32)] {
        let (x, factors) = setup_problem(&[dim, dim, dim], r, 1);
        let refs: Vec<&Matrix> = factors.iter().collect();
        let label = format!("{dim}^3_r{r}");
        group.bench_with_input(BenchmarkId::new("atomic", &label), &(), |b, _| {
            b.iter(|| black_box(local_mttkrp(&x, &refs, 0)))
        });
        group.bench_with_input(BenchmarkId::new("twostep", &label), &(), |b, _| {
            b.iter(|| black_box(local_mttkrp_twostep(&x, &refs, 0)))
        });
        group.bench_with_input(BenchmarkId::new("rayon", &label), &(), |b, _| {
            b.iter(|| black_box(local_mttkrp_par(&x, &refs, 0)))
        });
        if dim <= 16 {
            group.bench_with_input(BenchmarkId::new("oracle", &label), &(), |b, _| {
                b.iter(|| black_box(mttkrp_reference(&x, &refs, 0)))
            });
        }
    }
    group.finish();
}

fn bench_modes(c: &mut Criterion) {
    // Kernel cost should be roughly mode-independent (the tensor is
    // streamed once regardless of n).
    let mut group = c.benchmark_group("mttkrp_by_mode");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    let (x, factors) = setup_problem(&[24, 24, 24], 16, 2);
    let refs: Vec<&Matrix> = factors.iter().collect();
    for n in 0..3 {
        group.bench_with_input(BenchmarkId::new("atomic", n), &n, |b, &n| {
            b.iter(|| black_box(local_mttkrp(&x, &refs, n)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernels, bench_modes);
criterion_main!(benches);
