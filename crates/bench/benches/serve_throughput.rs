//! Criterion benchmark for the serving layer: a repeated-shape workload
//! pushed through the plan-cached batch server, against the same requests
//! issued one-by-one through the unbatched `plan_and_execute` front door.
//!
//! Run with `cargo bench -p mttkrp-bench --bench serve_throughput`. The
//! server amortizes planning (one cache miss per shape, ever) and backend
//! setup (one executor per batch); the direct loop re-plans and rebuilds
//! per request.

use criterion::{criterion_group, criterion_main, Criterion};
use mttkrp_bench::setup_problem;
use mttkrp_exec::{plan_and_execute, MachineSpec};
use mttkrp_serve::{MttkrpRequest, Server, ServerConfig};
use mttkrp_tensor::{DenseTensor, Matrix};
use std::sync::Arc;

const DIMS: [usize; 3] = [24, 24, 24];
const RANK: usize = 8;
const REQUESTS: usize = 32;

fn workload() -> (Arc<DenseTensor>, Arc<Vec<Matrix>>, MachineSpec) {
    let (x, factors) = setup_problem(&DIMS, RANK, 11);
    (
        Arc::new(x),
        Arc::new(factors),
        MachineSpec::shared(2, 1 << 14),
    )
}

fn bench_direct(c: &mut Criterion) {
    let (x, factors, machine) = workload();
    let refs: Vec<&Matrix> = factors.iter().collect();
    c.bench_function("direct_plan_and_execute_x32", |b| {
        b.iter(|| {
            for _ in 0..REQUESTS {
                let (_, report) = plan_and_execute(&machine, &x, &refs, 0);
                criterion::black_box(report.output);
            }
        })
    });
}

fn bench_served(c: &mut Criterion) {
    let (x, factors, machine) = workload();
    // One long-lived server across iterations, as in real serving: the plan
    // cache is warm after the first batch and stays warm.
    let server = Server::start(ServerConfig {
        machine,
        workers: 2,
        cache_capacity: 16,
        max_batch: REQUESTS,
        ..ServerConfig::default()
    });
    c.bench_function("served_batched_x32", |b| {
        b.iter(|| {
            let handles: Vec<_> = (0..REQUESTS)
                .map(|_| server.submit(MttkrpRequest::new(x.clone(), factors.clone(), 0)))
                .collect();
            for h in handles {
                criterion::black_box(h.wait().report.output);
            }
        })
    });
    let stats = server.shutdown();
    assert!(
        stats.cache.hit_rate().is_some_and(|r| r > 0.9),
        "warm serving must be nearly all cache hits"
    );
}

criterion_group!(benches, bench_direct, bench_served);
criterion_main!(benches);
