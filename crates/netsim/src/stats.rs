//! Per-rank communication accounting for the distributed machine model.

/// Communication counters for one simulated processor, in words
/// (one word = one `f64`).
///
/// In the paper's parallel model (Section II-C), communication consists of
/// *sends* and *receives* of individual values; the bandwidth cost of an
/// algorithm is the maximum over processors of `words_sent + words_received`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Words written to the network by this rank.
    pub words_sent: u64,
    /// Words read from the network by this rank.
    pub words_received: u64,
    /// Number of point-to-point messages sent (latency proxy; the paper
    /// ignores latency, but the counter is free to keep).
    pub messages_sent: u64,
}

impl CommStats {
    /// `sends + receives` for this rank — the per-processor bandwidth cost.
    pub fn total_words(&self) -> u64 {
        self.words_sent + self.words_received
    }
}

impl std::ops::Add for CommStats {
    type Output = CommStats;
    fn add(self, rhs: CommStats) -> CommStats {
        CommStats {
            words_sent: self.words_sent + rhs.words_sent,
            words_received: self.words_received + rhs.words_received,
            messages_sent: self.messages_sent + rhs.messages_sent,
        }
    }
}

/// Summary over all ranks of a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CommSummary {
    /// `max_p (sent_p + received_p)` — the quantity the paper's bounds govern.
    pub max_words: u64,
    /// `sum_p (sent_p + received_p)` (each word is counted once at the
    /// sender and once at the receiver).
    pub total_words: u64,
    /// Maximum words sent by any single rank.
    pub max_sent: u64,
    /// Maximum words received by any single rank.
    pub max_received: u64,
    /// Maximum messages sent by any single rank — the latency (alpha-cost)
    /// proxy. The paper ignores latency (Section II-C); the counter makes
    /// the trade-off of the bucket algorithms (bandwidth-optimal, `q-1`
    /// messages per collective) visible anyway.
    pub max_messages: u64,
    /// Total messages sent machine-wide.
    pub total_messages: u64,
}

impl CommSummary {
    /// Aggregates per-rank stats.
    pub fn from_ranks(stats: &[CommStats]) -> CommSummary {
        let mut s = CommSummary::default();
        for st in stats {
            s.max_words = s.max_words.max(st.total_words());
            s.total_words += st.total_words();
            s.max_sent = s.max_sent.max(st.words_sent);
            s.max_received = s.max_received.max(st.words_received);
            s.max_messages = s.max_messages.max(st.messages_sent);
            s.total_messages += st.messages_sent;
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_aggregates() {
        let stats = [
            CommStats {
                words_sent: 5,
                words_received: 3,
                messages_sent: 2,
            },
            CommStats {
                words_sent: 1,
                words_received: 10,
                messages_sent: 1,
            },
        ];
        let s = CommSummary::from_ranks(&stats);
        assert_eq!(s.max_words, 11);
        assert_eq!(s.total_words, 19);
        assert_eq!(s.max_sent, 5);
        assert_eq!(s.max_received, 10);
        assert_eq!(s.max_messages, 2);
        assert_eq!(s.total_messages, 3);
    }

    #[test]
    fn add_is_componentwise() {
        let a = CommStats {
            words_sent: 1,
            words_received: 2,
            messages_sent: 3,
        };
        let b = a;
        let c = a + b;
        assert_eq!(c.words_sent, 2);
        assert_eq!(c.words_received, 4);
        assert_eq!(c.messages_sent, 6);
    }
}
