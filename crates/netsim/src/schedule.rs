//! The *communication schedule* of the paper's parallel algorithms, as
//! data: which collectives each rank participates in, over which
//! communicator, and exactly how many words the bucket (ring) algorithms
//! of [`crate::collectives`] make it send and receive in each one.
//!
//! This is the contract between the word-counting simulator and any *real*
//! runtime that claims to execute the same algorithm: a run is faithful to
//! the schedule iff its measured per-rank traffic equals the prediction
//! collective by collective (the `mttkrp-dist` crate asserts exactly this).
//!
//! The predictions are pure arithmetic — nothing is executed — derived
//! from the ring algorithms' structure:
//!
//! - **All-Gather** over blocks of sizes `w_0..w_{q-1}`: rank `i` forwards
//!   the blocks originating at `i, i-1, ..., i-(q-2)` (all but block
//!   `i+1`), and receives every block but its own. So
//!   `sent = total - w_{i+1 mod q}`, `received = total - w_i`, in `q - 1`
//!   messages each way.
//! - **Reduce-Scatter** over segments `w_0..w_{q-1}`: rank `i` forwards
//!   partials of every segment but `i` and receives partials of every
//!   segment but `i - 1`. So `sent = total - w_i`,
//!   `received = total - w_{i-1 mod q}`, in `q - 1` messages each way.
//!
//! Both collapse to `(q - 1) * w` each way for balanced blocks — the
//! bandwidth-optimal bucket cost the paper assumes (Section V-C3).

use crate::grid::ProcessorGrid;
use crate::stats::CommStats;

// ---------------------------------------------------------------------------
// Block distributions
// ---------------------------------------------------------------------------

/// Half-open sub-range `idx` of `[0, len)` split into `parts` contiguous
/// pieces as evenly as possible (the first `len % parts` pieces get one
/// extra element). This is the block distribution every data layout in the
/// workspace uses — the canonical definition lives here so the simulator,
/// the schedule predictions, and the real runtimes all split identically.
///
/// # Panics
/// Panics if `parts == 0` or `idx >= parts`.
pub fn split_range(len: usize, parts: usize, idx: usize) -> (usize, usize) {
    assert!(parts > 0 && idx < parts, "bad split {idx}/{parts}");
    let base = len / parts;
    let rem = len % parts;
    let start = idx * base + idx.min(rem);
    let size = base + usize::from(idx < rem);
    (start, start + size)
}

/// The sizes of all pieces of `split_range(len, parts, _)`.
pub fn split_sizes(len: usize, parts: usize) -> Vec<usize> {
    (0..parts)
        .map(|i| {
            let (a, b) = split_range(len, parts, i);
            b - a
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Phases
// ---------------------------------------------------------------------------

/// One collective in an algorithm's communication schedule, named by its
/// role (the line of the paper's pseudocode it implements).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Algorithm 4 Line 3: All-Gather of the subtensor across the
    /// rank-dimension fiber.
    TensorAllGather,
    /// Algorithm 3 Line 4 / Algorithm 4 Line 5: All-Gather of the mode-`k`
    /// factor chunks.
    FactorAllGather {
        /// The tensor mode `k` whose factor block is gathered.
        mode: usize,
    },
    /// Algorithm 3 Line 7 / Algorithm 4 Line 8 / the matmul baseline's
    /// final step: Reduce-Scatter of the output contributions.
    OutputReduceScatter,
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Phase::TensorAllGather => write!(f, "all-gather(tensor)"),
            Phase::FactorAllGather { mode } => write!(f, "all-gather(A^({mode}))"),
            Phase::OutputReduceScatter => write!(f, "reduce-scatter(B)"),
        }
    }
}

/// Predicted traffic of one rank in one collective.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PhaseTraffic {
    /// Which collective.
    pub phase: Phase,
    /// Words this rank sends in it.
    pub words_sent: u64,
    /// Words this rank receives in it.
    pub words_received: u64,
    /// Point-to-point messages this rank sends in it (`q - 1` for a ring
    /// collective over `q > 1` ranks, `0` for a singleton).
    pub messages_sent: u64,
}

/// The full predicted schedule of one rank: its collectives in execution
/// order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RankSchedule {
    /// World rank.
    pub rank: usize,
    /// Collectives in the order the rank executes them.
    pub phases: Vec<PhaseTraffic>,
}

/// Sums a sequence of per-collective records into one [`CommStats`] — the
/// single definition used by both the schedule predictions here and the
/// `mttkrp-dist` transport's measured ledgers, so predicted and measured
/// totals can never drift in how they aggregate.
pub fn sum_phase_traffic(phases: &[PhaseTraffic]) -> CommStats {
    let mut s = CommStats::default();
    for p in phases {
        s.words_sent += p.words_sent;
        s.words_received += p.words_received;
        s.messages_sent += p.messages_sent;
    }
    s
}

impl RankSchedule {
    /// Sum of this rank's per-phase traffic.
    pub fn totals(&self) -> CommStats {
        sum_phase_traffic(&self.phases)
    }
}

/// The predicted communication schedule of a parallel MTTKRP: one
/// [`RankSchedule`] per world rank.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommSchedule {
    /// Per-rank schedules, indexed by world rank.
    pub ranks: Vec<RankSchedule>,
}

impl CommSchedule {
    /// Per-rank traffic totals, indexed by world rank — directly comparable
    /// to the [`CommStats`] a [`crate::SimMachine`] run reports.
    pub fn totals(&self) -> Vec<CommStats> {
        self.ranks.iter().map(RankSchedule::totals).collect()
    }

    /// Number of ranks in the schedule.
    pub fn num_ranks(&self) -> usize {
        self.ranks.len()
    }
}

// ---------------------------------------------------------------------------
// Ring-collective predictions
// ---------------------------------------------------------------------------

/// Predicted traffic of local rank `me` in a ring All-Gather over blocks of
/// the given sizes (in words).
pub fn all_gather_traffic(phase: Phase, sizes: &[usize], me: usize) -> PhaseTraffic {
    let q = sizes.len();
    assert!(me < q, "local rank out of range");
    if q == 1 {
        return PhaseTraffic {
            phase,
            words_sent: 0,
            words_received: 0,
            messages_sent: 0,
        };
    }
    let total: usize = sizes.iter().sum();
    PhaseTraffic {
        phase,
        words_sent: (total - sizes[(me + 1) % q]) as u64,
        words_received: (total - sizes[me]) as u64,
        messages_sent: (q - 1) as u64,
    }
}

/// Predicted traffic of local rank `me` in a ring Reduce-Scatter over
/// segments of the given sizes (in words).
pub fn reduce_scatter_traffic(phase: Phase, sizes: &[usize], me: usize) -> PhaseTraffic {
    let q = sizes.len();
    assert!(me < q, "local rank out of range");
    if q == 1 {
        return PhaseTraffic {
            phase,
            words_sent: 0,
            words_received: 0,
            messages_sent: 0,
        };
    }
    let total: usize = sizes.iter().sum();
    PhaseTraffic {
        phase,
        words_sent: (total - sizes[me]) as u64,
        words_received: (total - sizes[(me + q - 1) % q]) as u64,
        messages_sent: (q - 1) as u64,
    }
}

// ---------------------------------------------------------------------------
// Algorithm schedules
// ---------------------------------------------------------------------------

/// Asserts the block-distribution precondition shared by the schedule
/// predictions, the simulator runs, and the `mttkrp-dist` sharders: one
/// grid extent per mode, each dividing its tensor dimension. Public so
/// every layer validates identically — a distribution accepted by one
/// can never be rejected deeper in another.
pub fn check_grid(dims: &[usize], grid: &[usize]) {
    assert_eq!(grid.len(), dims.len(), "need one grid dimension per mode");
    for (k, (&g, &d)) in grid.iter().zip(dims).enumerate() {
        assert!(
            g >= 1 && d % g == 0,
            "grid dim {k} = {g} must divide I_{k} = {d}"
        );
    }
}

/// The schedule of Algorithm 3 (parallel stationary MTTKRP) for output mode
/// `mode` on the `N`-way grid `grid` (each `P_k` must divide `I_k`).
///
/// Per rank, in execution order: one `FactorAllGather { mode: k }` over the
/// mode-`k` hyperslice for every `k != mode` (ascending `k`), then one
/// `OutputReduceScatter` over the mode-`mode` hyperslice.
pub fn alg3_schedule(dims: &[usize], r: usize, mode: usize, grid: &[usize]) -> CommSchedule {
    check_grid(dims, grid);
    assert!(mode < dims.len(), "mode out of range");
    let pgrid = ProcessorGrid::new(grid);
    let ranks = (0..pgrid.num_ranks())
        .map(|me| {
            let mut phases = Vec::with_capacity(dims.len());
            for (k, (&ik, &pk)) in dims.iter().zip(grid).enumerate() {
                let comm = pgrid.hyperslice_comm(me, k);
                let my_idx = comm.local_index(me).expect("member of own hyperslice");
                let block_rows = ik / pk;
                let sizes: Vec<usize> = split_sizes(block_rows, comm.size())
                    .into_iter()
                    .map(|rows| rows * r)
                    .collect();
                phases.push(if k == mode {
                    reduce_scatter_traffic(Phase::OutputReduceScatter, &sizes, my_idx)
                } else {
                    all_gather_traffic(Phase::FactorAllGather { mode: k }, &sizes, my_idx)
                });
            }
            // Execution order: all-gathers for k != mode ascending, then the
            // reduce-scatter last.
            let rs = phases.remove(mode);
            phases.push(rs);
            RankSchedule { rank: me, phases }
        })
        .collect();
    CommSchedule { ranks }
}

/// The schedule of Algorithm 4 (parallel general MTTKRP) for output mode
/// `mode`, rank-dimension cut `p0` (must divide `r`) and mode grid `grid`
/// (each `P_k` must divide `I_k`); total ranks `p0 * prod(grid)`.
///
/// Per rank, in execution order: `TensorAllGather` over the rank-dimension
/// fiber, one `FactorAllGather { mode: k }` for every `k != mode`
/// (ascending), then `OutputReduceScatter`.
pub fn alg4_schedule(
    dims: &[usize],
    r: usize,
    mode: usize,
    p0: usize,
    grid: &[usize],
) -> CommSchedule {
    check_grid(dims, grid);
    assert!(mode < dims.len(), "mode out of range");
    assert!(
        p0 >= 1 && r.is_multiple_of(p0),
        "P_0 = {p0} must divide R = {r}"
    );
    let order = dims.len();
    let mut gdims = Vec::with_capacity(order + 1);
    gdims.push(p0);
    gdims.extend_from_slice(grid);
    let pgrid = ProcessorGrid::new(&gdims);
    let cols_per_part = r / p0;
    let sub_len: usize = dims.iter().zip(grid).map(|(&d, &g)| d / g).product();

    let ranks = (0..pgrid.num_ranks())
        .map(|me| {
            let mut phases = Vec::with_capacity(order + 1);
            // Line 3: subtensor all-gather across the dimension-0 fiber.
            let fiber = pgrid.fiber_comm(me, 0);
            let my_fiber_idx = fiber.local_index(me).expect("member of own fiber");
            let sizes = split_sizes(sub_len, fiber.size());
            phases.push(all_gather_traffic(
                Phase::TensorAllGather,
                &sizes,
                my_fiber_idx,
            ));
            // Lines 5 and 8: factor all-gathers and the output
            // reduce-scatter over {p' : p'_0 = p_0, p'_k = p_k}.
            for (k, (&ik, &pk)) in dims.iter().zip(grid).enumerate() {
                let varying: Vec<usize> = (0..=order).filter(|&j| j != 0 && j != k + 1).collect();
                let comm = pgrid.slice_comm(me, &varying);
                let my_idx = comm.local_index(me).expect("member of own slice");
                let block_rows = ik / pk;
                let sizes: Vec<usize> = split_sizes(block_rows, comm.size())
                    .into_iter()
                    .map(|rows| rows * cols_per_part)
                    .collect();
                phases.push(if k == mode {
                    reduce_scatter_traffic(Phase::OutputReduceScatter, &sizes, my_idx)
                } else {
                    all_gather_traffic(Phase::FactorAllGather { mode: k }, &sizes, my_idx)
                });
            }
            // Execution order: tensor gather, factor gathers ascending,
            // reduce-scatter last (phases[0] is the tensor gather; the mode
            // entry sits at offset mode + 1).
            let rs = phases.remove(mode + 1);
            phases.push(rs);
            RankSchedule { rank: me, phases }
        })
        .collect();
    CommSchedule { ranks }
}

/// The schedule of the 1D parallel matmul baseline for output mode `mode`
/// on `procs` ranks: a single `OutputReduceScatter` of the `I_mode x R`
/// partial products over the world communicator.
pub fn par_matmul_schedule(dims: &[usize], r: usize, mode: usize, procs: usize) -> CommSchedule {
    assert!(mode < dims.len(), "mode out of range");
    assert!(procs >= 1, "need at least one processor");
    let sizes: Vec<usize> = split_sizes(dims[mode], procs)
        .into_iter()
        .map(|rows| rows * r)
        .collect();
    let ranks = (0..procs)
        .map(|me| RankSchedule {
            rank: me,
            phases: vec![reduce_scatter_traffic(
                Phase::OutputReduceScatter,
                &sizes,
                me,
            )],
        })
        .collect();
    CommSchedule { ranks }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collectives;
    use crate::machine::SimMachine;

    // -- block splits (moved here from mttkrp-core, which re-exports) ------

    #[test]
    fn even_split() {
        assert_eq!(split_range(12, 4, 0), (0, 3));
        assert_eq!(split_range(12, 4, 3), (9, 12));
    }

    #[test]
    fn uneven_split_front_loaded() {
        // 10 into 4: sizes 3,3,2,2.
        assert_eq!(split_sizes(10, 4), vec![3, 3, 2, 2]);
        assert_eq!(split_range(10, 4, 1), (3, 6));
        assert_eq!(split_range(10, 4, 2), (6, 8));
    }

    #[test]
    fn pieces_partition_the_range() {
        for len in 0..20 {
            for parts in 1..8 {
                let mut covered = 0;
                for i in 0..parts {
                    let (a, b) = split_range(len, parts, i);
                    assert_eq!(a, covered);
                    covered = b;
                }
                assert_eq!(covered, len);
            }
        }
    }

    #[test]
    fn more_parts_than_elements_gives_empty_tails() {
        assert_eq!(split_sizes(2, 4), vec![1, 1, 0, 0]);
        assert_eq!(split_range(2, 4, 3), (2, 2));
    }

    #[test]
    #[should_panic]
    fn bad_index_panics() {
        let _ = split_range(5, 2, 2);
    }

    // -- ring predictions vs. measured collectives -------------------------

    #[test]
    fn all_gather_prediction_matches_measurement_uneven() {
        let sizes = [3usize, 1, 4, 2];
        let p = sizes.len();
        let res = SimMachine::new(p).run(|rank| {
            let world = rank.world();
            let me = rank.world_rank();
            let local = vec![me as f64; sizes[me]];
            collectives::all_gather(rank, &world, &local)
        });
        for me in 0..p {
            let predicted = all_gather_traffic(Phase::TensorAllGather, &sizes, me);
            assert_eq!(res.stats[me].words_sent, predicted.words_sent, "rank {me}");
            assert_eq!(res.stats[me].words_received, predicted.words_received);
            assert_eq!(res.stats[me].messages_sent, predicted.messages_sent);
        }
    }

    #[test]
    fn reduce_scatter_prediction_matches_measurement_uneven() {
        let sizes = [2usize, 5, 1];
        let p = sizes.len();
        let res = SimMachine::new(p).run(|rank| {
            let world = rank.world();
            let total: usize = sizes.iter().sum();
            let data = vec![1.0; total];
            collectives::reduce_scatter(rank, &world, &data, &sizes)
        });
        for me in 0..p {
            let predicted = reduce_scatter_traffic(Phase::OutputReduceScatter, &sizes, me);
            assert_eq!(res.stats[me].words_sent, predicted.words_sent, "rank {me}");
            assert_eq!(res.stats[me].words_received, predicted.words_received);
            assert_eq!(res.stats[me].messages_sent, predicted.messages_sent);
        }
    }

    #[test]
    fn singleton_collectives_are_free() {
        let ag = all_gather_traffic(Phase::TensorAllGather, &[7], 0);
        let rs = reduce_scatter_traffic(Phase::OutputReduceScatter, &[7], 0);
        for t in [ag, rs] {
            assert_eq!(t.words_sent, 0);
            assert_eq!(t.words_received, 0);
            assert_eq!(t.messages_sent, 0);
        }
    }

    // -- algorithm schedules ----------------------------------------------

    #[test]
    fn alg3_schedule_matches_eq14_balanced() {
        // dims 8^3, R = 4, grid 2x2x2: every collective is balanced, so
        // each rank's total is Eq. (14) = 36 words each way.
        let s = alg3_schedule(&[8, 8, 8], 4, 1, &[2, 2, 2]);
        assert_eq!(s.num_ranks(), 8);
        for rs in &s.ranks {
            assert_eq!(rs.phases.len(), 3);
            assert_eq!(rs.phases[0].phase, Phase::FactorAllGather { mode: 0 });
            assert_eq!(rs.phases[1].phase, Phase::FactorAllGather { mode: 2 });
            assert_eq!(rs.phases[2].phase, Phase::OutputReduceScatter);
            let t = rs.totals();
            assert_eq!(t.words_sent, 36);
            assert_eq!(t.words_received, 36);
        }
    }

    #[test]
    fn alg4_schedule_reduces_to_alg3_at_p0_1() {
        let dims = [8usize, 4, 8];
        let grid = [2usize, 1, 2];
        let a3 = alg3_schedule(&dims, 6, 0, &grid);
        let a4 = alg4_schedule(&dims, 6, 0, 1, &grid);
        assert_eq!(a3.num_ranks(), a4.num_ranks());
        for (r3, r4) in a3.ranks.iter().zip(&a4.ranks) {
            // Alg 4 has the extra (free) tensor all-gather up front.
            assert_eq!(r4.phases[0].phase, Phase::TensorAllGather);
            assert_eq!(r4.phases[0].words_sent, 0);
            assert_eq!(r3.phases[..], r4.phases[1..]);
        }
    }

    #[test]
    fn alg4_schedule_matches_eq18_balanced() {
        // dims 8^3, R = 8, P0 = 2, grid 2x2x2 (P = 16): tensor term
        // (P0-1) * I/P = 32; factor terms (4-1)*4 = 12 each (k != n), and
        // the reduce-scatter also 12 — Eq. (18) = 68 per rank each way.
        let s = alg4_schedule(&[8, 8, 8], 8, 0, 2, &[2, 2, 2]);
        assert_eq!(s.num_ranks(), 16);
        for rs in &s.ranks {
            let t = rs.totals();
            assert_eq!(t.words_sent, 68, "rank {}", rs.rank);
            assert_eq!(t.words_received, 68);
        }
    }

    #[test]
    fn par_matmul_schedule_is_flat_in_p() {
        // (1 - 1/P) * I_n * R each way.
        for procs in [2usize, 4, 8] {
            let s = par_matmul_schedule(&[8, 8, 8], 4, 0, procs);
            let expect = (8 * 4 / procs * (procs - 1)) as u64;
            for rs in &s.ranks {
                assert_eq!(rs.totals().words_received, expect);
            }
        }
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn non_dividing_grid_rejected() {
        let _ = alg3_schedule(&[5, 4, 4], 2, 0, &[2, 2, 2]);
    }
}
