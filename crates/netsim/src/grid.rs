//! Logical processor grids and their hyperslice subcommunicators.
//!
//! The paper's Algorithm 3 organizes `P = P_1 * ... * P_N` processors into an
//! `N`-way grid; Algorithm 4 uses an `(N+1)`-way grid `P = P_0 * P_1 * ... * P_N`.
//! Collectives run over *hyperslices*: the set of processors agreeing with
//! `p` in some subset of grid coordinates.
//!
//! Grid coordinates are linearized colexicographically (dimension 0
//! fastest), mirroring the tensor convention.

use crate::comm::Comm;

/// A logical multi-dimensional processor grid over world ranks `0..P`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProcessorGrid {
    dims: Vec<usize>,
}

impl ProcessorGrid {
    /// Creates a grid with the given extents; `P = dims.iter().product()`.
    ///
    /// # Panics
    /// Panics if `dims` is empty or contains zero.
    pub fn new(dims: &[usize]) -> ProcessorGrid {
        assert!(!dims.is_empty(), "grid must have at least one dimension");
        assert!(
            dims.iter().all(|&d| d > 0),
            "grid extents must be positive, got {dims:?}"
        );
        ProcessorGrid {
            dims: dims.to_vec(),
        }
    }

    /// Grid extents.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of grid dimensions.
    pub fn ndims(&self) -> usize {
        self.dims.len()
    }

    /// Total number of processors `P`.
    pub fn num_ranks(&self) -> usize {
        self.dims.iter().product()
    }

    /// Grid coordinates of a world rank (dimension 0 fastest).
    pub fn coords(&self, mut rank: usize) -> Vec<usize> {
        assert!(rank < self.num_ranks(), "rank out of range");
        let mut c = Vec::with_capacity(self.dims.len());
        for &d in &self.dims {
            c.push(rank % d);
            rank /= d;
        }
        c
    }

    /// World rank of grid coordinates.
    pub fn rank(&self, coords: &[usize]) -> usize {
        assert_eq!(coords.len(), self.dims.len(), "coordinate arity mismatch");
        let mut r = 0usize;
        let mut stride = 1usize;
        for (k, (&c, &d)) in coords.iter().zip(&self.dims).enumerate() {
            assert!(c < d, "coordinate {c} out of range in grid dim {k}");
            r += c * stride;
            stride *= d;
        }
        r
    }

    /// The *slice* through `rank` in which the coordinates listed in
    /// `varying` range over their full extents and all other coordinates are
    /// pinned to `rank`'s. Returns the member communicator.
    ///
    /// Examples (Algorithm 3, `N`-way grid): the All-Gather for mode `k`
    /// runs over `slice_comm(rank, all dims except k)`... more precisely the
    /// paper's hyperslice `{p' : p'_k = p_k}` is
    /// `slice_comm(rank, [0..N] \ {k})`, of size `P / P_k`.
    pub fn slice_comm(&self, rank: usize, varying: &[usize]) -> Comm {
        let base = self.coords(rank);
        for &v in varying {
            assert!(v < self.ndims(), "varying dimension {v} out of range");
        }
        assert!(
            varying.windows(2).all(|w| w[0] < w[1]),
            "varying dimensions must be strictly increasing"
        );
        // Enumerate members by iterating the varying coordinates
        // colexicographically; resulting world ranks are strictly increasing
        // because lower grid dims have smaller strides... that holds only
        // when iterating in colex order of the varying dims, which we do,
        // but interleaving with pinned higher dims can still reorder ranks.
        // Collect then sort to guarantee the Comm invariant.
        let count: usize = varying.iter().map(|&v| self.dims[v]).product();
        let mut members = Vec::with_capacity(count);
        let mut coords = base.clone();
        for mut lin in 0..count {
            for &v in varying {
                coords[v] = lin % self.dims[v];
                lin /= self.dims[v];
            }
            members.push(self.rank(&coords));
        }
        members.sort_unstable();
        // Salt the communicator id with the pinned coordinates so that
        // distinct slices over identical member sets (impossible here, but
        // cheap to guard) and distinct grids do not collide.
        let mut salt: u64 = 0x5eed;
        for (k, &c) in base.iter().enumerate() {
            if !varying.contains(&k) {
                salt = salt
                    .wrapping_mul(0x9E3779B97F4A7C15)
                    .wrapping_add((k as u64) << 32 | c as u64);
            }
        }
        Comm::subset(members, salt)
    }

    /// The 1-D *fiber* through `rank` along dimension `dim`:
    /// `{p' : p'_j = p_j for all j != dim}`, of size `P_dim`.
    pub fn fiber_comm(&self, rank: usize, dim: usize) -> Comm {
        self.slice_comm(rank, &[dim])
    }

    /// The hyperslice through `rank` *normal* to dimension `dim`:
    /// `{p' : p'_dim = p_dim}`, of size `P / P_dim`. This is the
    /// communicator for Algorithm 3's mode-`dim` All-Gather/Reduce-Scatter.
    pub fn hyperslice_comm(&self, rank: usize, dim: usize) -> Comm {
        let varying: Vec<usize> = (0..self.ndims()).filter(|&j| j != dim).collect();
        self.slice_comm(rank, &varying)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coords_roundtrip() {
        let g = ProcessorGrid::new(&[2, 3, 2]);
        for r in 0..12 {
            assert_eq!(g.rank(&g.coords(r)), r);
        }
    }

    #[test]
    fn colex_rank_order() {
        let g = ProcessorGrid::new(&[2, 3]);
        assert_eq!(g.coords(0), vec![0, 0]);
        assert_eq!(g.coords(1), vec![1, 0]);
        assert_eq!(g.coords(2), vec![0, 1]);
        assert_eq!(g.coords(5), vec![1, 2]);
    }

    #[test]
    fn fiber_members() {
        let g = ProcessorGrid::new(&[2, 3]);
        // Fiber along dim 1 through rank 1 = coords (1, *) = ranks 1, 3, 5.
        let c = g.fiber_comm(1, 1);
        assert_eq!(c.members(), &[1, 3, 5]);
        // Fiber along dim 0 through rank 4 = coords (*, 2) = ranks 4, 5.
        let c = g.fiber_comm(4, 0);
        assert_eq!(c.members(), &[4, 5]);
    }

    #[test]
    fn hyperslice_members() {
        let g = ProcessorGrid::new(&[2, 2, 2]);
        // Hyperslice normal to dim 2 through rank 0: all ranks with p_2 = 0,
        // i.e. ranks 0..4.
        let c = g.hyperslice_comm(0, 2);
        assert_eq!(c.members(), &[0, 1, 2, 3]);
        // Normal to dim 0 through rank 1: p_0 = 1 -> ranks 1, 3, 5, 7.
        let c = g.hyperslice_comm(1, 0);
        assert_eq!(c.members(), &[1, 3, 5, 7]);
    }

    #[test]
    fn slice_comm_consistent_across_members() {
        // Every member of a slice must construct an identical Comm.
        let g = ProcessorGrid::new(&[2, 3, 2]);
        let c0 = g.hyperslice_comm(0, 1); // p_1 = 0
        for &m in c0.members() {
            assert_eq!(g.hyperslice_comm(m, 1), c0);
        }
    }

    #[test]
    fn disjoint_slices_have_distinct_ids() {
        let g = ProcessorGrid::new(&[2, 2]);
        let a = g.fiber_comm(0, 0); // row p_1 = 0: ranks {0, 1}
        let b = g.fiber_comm(2, 0); // row p_1 = 1: ranks {2, 3}
        assert_ne!(a, b);
        assert_ne!(a.members(), b.members());
    }

    #[test]
    fn whole_grid_slice_is_world() {
        let g = ProcessorGrid::new(&[2, 3]);
        let all: Vec<usize> = (0..g.ndims()).collect();
        let c = g.slice_comm(4, &all);
        assert_eq!(c.members(), &[0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn singleton_slice() {
        let g = ProcessorGrid::new(&[2, 3]);
        let c = g.slice_comm(3, &[]);
        assert_eq!(c.members(), &[3]);
        assert_eq!(c.size(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_rank_panics() {
        let g = ProcessorGrid::new(&[2, 2]);
        let _ = g.coords(4);
    }
}
