//! The simulated distributed-memory machine: `P` ranks, one OS thread each.

use crate::comm::{Machinery, Rank};
use crate::stats::{CommStats, CommSummary};
use crossbeam::channel::unbounded;
use std::sync::Arc;

/// Result of running a rank program on all `P` ranks.
#[derive(Debug)]
pub struct RunResult<T> {
    /// Per-rank return values, indexed by world rank.
    pub outputs: Vec<T>,
    /// Per-rank communication counters, indexed by world rank.
    pub stats: Vec<CommStats>,
}

impl<T> RunResult<T> {
    /// Aggregated communication summary (max/total words over ranks).
    pub fn summary(&self) -> CommSummary {
        CommSummary::from_ranks(&self.stats)
    }
}

/// A `P`-processor distributed-memory machine.
///
/// [`SimMachine::run`] executes the same rank program (an SPMD closure) on
/// every rank concurrently, each on its own OS thread, and collects the
/// outputs and exact per-rank communication counts. A rank program that
/// panics propagates the panic to the caller.
pub struct SimMachine {
    p: usize,
}

impl SimMachine {
    /// Creates a machine with `p >= 1` processors.
    pub fn new(p: usize) -> SimMachine {
        assert!(p >= 1, "need at least one processor");
        SimMachine { p }
    }

    /// Number of processors `P`.
    pub fn num_ranks(&self) -> usize {
        self.p
    }

    /// Runs `program` on every rank and waits for all of them.
    ///
    /// The closure receives the rank handle; its return value and the
    /// rank's communication counters are collected into the [`RunResult`].
    /// Quiescence (no undelivered messages) is asserted on every rank.
    pub fn run<T, F>(&self, program: F) -> RunResult<T>
    where
        T: Send,
        F: Fn(&mut Rank) -> T + Send + Sync,
    {
        let p = self.p;
        let mut senders = Vec::with_capacity(p);
        let mut receivers = Vec::with_capacity(p);
        for _ in 0..p {
            let (s, r) = unbounded();
            senders.push(s);
            receivers.push(r);
        }
        let machinery = Arc::new(Machinery { senders });
        let program = &program;

        let mut results: Vec<Option<(T, CommStats)>> = (0..p).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(p);
            for (world_rank, receiver) in receivers.into_iter().enumerate() {
                let machinery = Arc::clone(&machinery);
                handles.push(scope.spawn(move || {
                    let mut rank = Rank::new(world_rank, p, machinery, receiver);
                    let out = program(&mut rank);
                    rank.assert_quiescent();
                    (out, rank.stats())
                }));
            }
            for (world_rank, handle) in handles.into_iter().enumerate() {
                match handle.join() {
                    Ok(pair) => results[world_rank] = Some(pair),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });

        let mut outputs = Vec::with_capacity(p);
        let mut stats = Vec::with_capacity(p);
        for r in results {
            let (out, st) = r.expect("rank produced no result");
            outputs.push(out);
            stats.push(st);
        }
        RunResult { outputs, stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_see_their_ids() {
        let machine = SimMachine::new(4);
        let res = machine.run(|rank| rank.world_rank() * 10);
        assert_eq!(res.outputs, vec![0, 10, 20, 30]);
        assert_eq!(res.summary().total_words, 0);
    }

    #[test]
    fn ring_shift_moves_data_and_counts() {
        let p = 5;
        let machine = SimMachine::new(p);
        let res = machine.run(|rank| {
            let world = rank.world();
            let me = rank.world_rank();
            let right = (me + 1) % p;
            let left = (me + p - 1) % p;
            let got = rank.sendrecv(&world, right, &[me as f64, me as f64], left);
            got[0]
        });
        for (me, &got) in res.outputs.iter().enumerate() {
            assert_eq!(got as usize, (me + p - 1) % p);
        }
        let s = res.summary();
        assert_eq!(s.max_words, 4); // 2 sent + 2 received per rank
        assert_eq!(s.total_words, (4 * p) as u64);
    }

    #[test]
    fn single_rank_machine_runs() {
        let machine = SimMachine::new(1);
        let res = machine.run(|rank| rank.num_ranks());
        assert_eq!(res.outputs, vec![1]);
    }

    #[test]
    fn rank_panic_propagates() {
        let machine = SimMachine::new(2);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            machine.run(|rank| {
                if rank.world_rank() == 1 {
                    panic!("deliberate failure injection");
                }
                // Rank 0 must not deadlock waiting: it just returns.
                0
            });
        }));
        assert!(r.is_err());
    }

    #[test]
    fn stats_are_per_rank() {
        let machine = SimMachine::new(3);
        let res = machine.run(|rank| {
            let world = rank.world();
            if rank.world_rank() == 0 {
                rank.send(&world, 1, &[1.0, 2.0]);
            } else if rank.world_rank() == 1 {
                let _ = rank.recv(&world, 0);
            }
        });
        assert_eq!(res.stats[0].words_sent, 2);
        assert_eq!(res.stats[1].words_received, 2);
        assert_eq!(res.stats[2].total_words(), 0);
    }
}
