//! Point-to-point messaging between simulated ranks, and communicators
//! (subsets of ranks) to address them with.
//!
//! Each rank owns one unbounded mailbox; messages are tagged with the
//! sending rank and a communicator id, and a per-rank reorder buffer lets a
//! rank receive selectively (by source and communicator) while preserving
//! the per-(sender, communicator) FIFO order that MPI guarantees.

use crate::stats::CommStats;
use crossbeam::channel::{Receiver, Sender};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

pub(crate) struct Message {
    pub from: usize,
    pub comm_id: u64,
    pub data: Vec<f64>,
}

/// Shared wiring of the simulated machine: one sender handle per rank.
pub(crate) struct Machinery {
    pub senders: Vec<Sender<Message>>,
}

/// A communicator: an ordered subset of world ranks, identified by a
/// deterministic id that every member computes identically.
///
/// `members[local] = world_rank`; local indices order all collectives.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Comm {
    id: u64,
    members: Vec<usize>,
}

impl Comm {
    /// The world communicator over `p` ranks.
    pub fn world(p: usize) -> Comm {
        Comm {
            id: fnv(&[u64::MAX, p as u64]),
            members: (0..p).collect(),
        }
    }

    /// A communicator over an explicit, strictly increasing list of world
    /// ranks. Every participating rank must construct it with the *same*
    /// list (and the same `salt`, which disambiguates distinct communicators
    /// over identical member sets).
    pub fn subset(members: Vec<usize>, salt: u64) -> Comm {
        assert!(!members.is_empty(), "communicator cannot be empty");
        assert!(
            members.windows(2).all(|w| w[0] < w[1]),
            "communicator members must be strictly increasing"
        );
        let mut words: Vec<u64> = Vec::with_capacity(members.len() + 1);
        words.push(salt);
        words.extend(members.iter().map(|&m| m as u64));
        Comm {
            id: fnv(&words),
            members,
        }
    }

    /// Number of ranks in this communicator.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// World ranks of the members, in local-index order.
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// Local index of a world rank, if it is a member.
    pub fn local_index(&self, world_rank: usize) -> Option<usize> {
        self.members.binary_search(&world_rank).ok()
    }

    /// World rank of a local index.
    pub fn world_rank(&self, local: usize) -> usize {
        self.members[local]
    }

    /// The deterministic communicator id (every member computes the same
    /// value). Exposed so external transports — e.g. the `mttkrp-dist`
    /// runtime — can tag messages with the same communicator identity the
    /// simulator uses.
    pub fn id(&self) -> u64 {
        self.id
    }
}

fn fnv(words: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

/// A rank's handle onto the simulated machine: its identity, mailbox, and
/// communication counters. Created by [`crate::machine::SimMachine::run`]
/// and passed to the per-rank closure.
pub struct Rank {
    world_rank: usize,
    p: usize,
    machinery: Arc<Machinery>,
    receiver: Receiver<Message>,
    pending: HashMap<(usize, u64), VecDeque<Vec<f64>>>,
    stats: CommStats,
}

impl Rank {
    pub(crate) fn new(
        world_rank: usize,
        p: usize,
        machinery: Arc<Machinery>,
        receiver: Receiver<Message>,
    ) -> Rank {
        Rank {
            world_rank,
            p,
            machinery,
            receiver,
            pending: HashMap::new(),
            stats: CommStats::default(),
        }
    }

    /// This rank's world rank in `[0, P)`.
    pub fn world_rank(&self) -> usize {
        self.world_rank
    }

    /// Total number of ranks `P`.
    pub fn num_ranks(&self) -> usize {
        self.p
    }

    /// The world communicator.
    pub fn world(&self) -> Comm {
        Comm::world(self.p)
    }

    /// Communication counters accumulated so far.
    pub fn stats(&self) -> CommStats {
        self.stats
    }

    /// Sends `data` to the rank with local index `dest` in `comm`.
    /// Cost: `data.len()` words at the sender (and later at the receiver).
    ///
    /// # Panics
    /// Panics if this rank is not a member of `comm`, or `dest` is out of
    /// range. Sending to oneself is allowed (received later; zero-copy loopback
    /// still counts words, mirroring an MPI self-send).
    pub fn send(&mut self, comm: &Comm, dest: usize, data: &[f64]) {
        assert!(
            comm.local_index(self.world_rank).is_some(),
            "rank {} is not a member of this communicator",
            self.world_rank
        );
        let dest_world = comm.world_rank(dest);
        self.stats.words_sent += data.len() as u64;
        self.stats.messages_sent += 1;
        self.machinery.senders[dest_world]
            .send(Message {
                from: self.world_rank,
                comm_id: comm.id(),
                data: data.to_vec(),
            })
            .expect("simulated network closed unexpectedly");
    }

    /// Receives the next message from local rank `src` on `comm` (blocking).
    /// Cost: message length in words at the receiver.
    pub fn recv(&mut self, comm: &Comm, src: usize) -> Vec<f64> {
        assert!(
            comm.local_index(self.world_rank).is_some(),
            "rank {} is not a member of this communicator",
            self.world_rank
        );
        let src_world = comm.world_rank(src);
        let key = (src_world, comm.id());
        loop {
            if let Some(queue) = self.pending.get_mut(&key) {
                if let Some(data) = queue.pop_front() {
                    self.stats.words_received += data.len() as u64;
                    return data;
                }
            }
            let msg = self
                .receiver
                .recv()
                .expect("simulated network closed while waiting for a message");
            self.pending
                .entry((msg.from, msg.comm_id))
                .or_default()
                .push_back(msg.data);
        }
    }

    /// Simultaneous exchange: send to `dest` and receive from `src` (both
    /// local indices in `comm`). The unbounded mailboxes make the send
    /// non-blocking, so this cannot deadlock.
    pub fn sendrecv(&mut self, comm: &Comm, dest: usize, data: &[f64], src: usize) -> Vec<f64> {
        self.send(comm, dest, data);
        self.recv(comm, src)
    }

    /// Asserts that no unconsumed messages remain (call at the end of a
    /// rank's program to catch protocol bugs).
    pub fn assert_quiescent(&mut self) {
        while let Ok(msg) = self.receiver.try_recv() {
            self.pending
                .entry((msg.from, msg.comm_id))
                .or_default()
                .push_back(msg.data);
        }
        let leftover: usize = self.pending.values().map(|q| q.len()).sum();
        assert_eq!(
            leftover, 0,
            "rank {} finished with {} unconsumed message(s)",
            self.world_rank, leftover
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;

    fn wire(p: usize) -> (Arc<Machinery>, Vec<Receiver<Message>>) {
        let mut senders = Vec::with_capacity(p);
        let mut receivers = Vec::with_capacity(p);
        for _ in 0..p {
            let (s, r) = unbounded();
            senders.push(s);
            receivers.push(r);
        }
        (Arc::new(Machinery { senders }), receivers)
    }

    #[test]
    fn comm_ids_deterministic_and_distinct() {
        let a = Comm::subset(vec![0, 1, 2], 7);
        let b = Comm::subset(vec![0, 1, 2], 7);
        let c = Comm::subset(vec![0, 1, 2], 8);
        let d = Comm::subset(vec![0, 1, 3], 7);
        assert_eq!(a.id(), b.id());
        assert_ne!(a.id(), c.id());
        assert_ne!(a.id(), d.id());
    }

    #[test]
    fn local_index_lookup() {
        let c = Comm::subset(vec![2, 5, 9], 0);
        assert_eq!(c.local_index(5), Some(1));
        assert_eq!(c.local_index(3), None);
        assert_eq!(c.world_rank(2), 9);
        assert_eq!(c.size(), 3);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_members_rejected() {
        let _ = Comm::subset(vec![3, 1], 0);
    }

    #[test]
    fn send_recv_pair_counts_words() {
        let (m, mut rx) = wire(2);
        let world = Comm::world(2);
        let mut r0 = Rank::new(0, 2, m.clone(), rx.remove(0));
        let mut r1 = Rank::new(1, 2, m, rx.remove(0));
        r0.send(&world, 1, &[1.0, 2.0, 3.0]);
        let got = r1.recv(&world, 0);
        assert_eq!(got, vec![1.0, 2.0, 3.0]);
        assert_eq!(r0.stats().words_sent, 3);
        assert_eq!(r1.stats().words_received, 3);
        r0.assert_quiescent();
        r1.assert_quiescent();
    }

    #[test]
    fn messages_on_different_comms_do_not_mix() {
        let (m, mut rx) = wire(2);
        let world = Comm::world(2);
        let sub = Comm::subset(vec![0, 1], 99);
        let mut r0 = Rank::new(0, 2, m.clone(), rx.remove(0));
        let mut r1 = Rank::new(1, 2, m, rx.remove(0));
        r0.send(&world, 1, &[1.0]);
        r0.send(&sub, 1, &[2.0]);
        // Receive in the opposite order of sending: selection by comm works.
        assert_eq!(r1.recv(&sub, 0), vec![2.0]);
        assert_eq!(r1.recv(&world, 0), vec![1.0]);
    }

    #[test]
    fn fifo_order_per_sender_per_comm() {
        let (m, mut rx) = wire(2);
        let world = Comm::world(2);
        let mut r0 = Rank::new(0, 2, m.clone(), rx.remove(0));
        let mut r1 = Rank::new(1, 2, m, rx.remove(0));
        r0.send(&world, 1, &[1.0]);
        r0.send(&world, 1, &[2.0]);
        assert_eq!(r1.recv(&world, 0), vec![1.0]);
        assert_eq!(r1.recv(&world, 0), vec![2.0]);
    }

    #[test]
    fn self_send_is_received() {
        let (m, mut rx) = wire(1);
        let world = Comm::world(1);
        let mut r0 = Rank::new(0, 1, m, rx.remove(0));
        r0.send(&world, 0, &[7.0]);
        assert_eq!(r0.recv(&world, 0), vec![7.0]);
        assert_eq!(r0.stats().words_sent, 1);
        assert_eq!(r0.stats().words_received, 1);
    }

    #[test]
    #[should_panic(expected = "unconsumed")]
    fn quiescence_check_catches_leftovers() {
        let (m, mut rx) = wire(2);
        let world = Comm::world(2);
        let mut r0 = Rank::new(0, 2, m.clone(), rx.remove(0));
        let mut r1 = Rank::new(1, 2, m, rx.remove(0));
        r0.send(&world, 1, &[1.0]);
        r1.assert_quiescent();
    }

    #[test]
    #[should_panic(expected = "not a member")]
    fn nonmember_send_panics() {
        let (m, mut rx) = wire(3);
        let sub = Comm::subset(vec![0, 1], 0);
        let mut r2 = Rank::new(2, 3, m, rx.remove(2));
        r2.send(&sub, 0, &[1.0]);
    }
}
