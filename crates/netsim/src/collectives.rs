//! Collective communication operations, implemented with the *bucket*
//! (ring) algorithms the paper assumes (Section V-C3): with `q` processors
//! each collective proceeds in `q - 1` steps, at each of which each
//! processor passes one block to its ring neighbor. The per-rank bandwidth
//! cost is exactly `sum of the other ranks' block sizes`, which is
//! `(q - 1) * w` for balanced blocks — bandwidth-optimal (Chan et al.).
//!
//! All collectives must be called by every member of the communicator
//! (SPMD); block sizes may be uneven.
//!
//! The ring algorithms themselves are generic over the transport
//! ([`PeerExchange`]): the simulator's [`Rank`] and any *real* runtime's
//! endpoint (e.g. `mttkrp-dist`) run the exact same routing and the same
//! deterministic reduction order — which is what makes a real execution
//! bitwise identical to the simulated one. There is exactly one
//! implementation of each ring; transports differ only in how a
//! `sendrecv` moves the words.

use crate::comm::{Comm, Rank};

/// A transport the ring collectives can run over: an identity plus a
/// simultaneous neighbor exchange. Implemented by the simulator's
/// [`Rank`] and by real runtimes' endpoints (e.g. `mttkrp-dist`).
///
/// `sendrecv` must deliver per-(sender, communicator) FIFO and must not
/// deadlock when every member of `comm` calls it concurrently (unbounded
/// or sufficiently buffered sends).
pub trait PeerExchange {
    /// This participant's world rank.
    fn world_rank(&self) -> usize;

    /// Sends `data` to local rank `dest` in `comm` and receives the next
    /// message from local rank `src`.
    fn sendrecv(&mut self, comm: &Comm, dest: usize, data: &[f64], src: usize) -> Vec<f64>;
}

impl PeerExchange for Rank {
    fn world_rank(&self) -> usize {
        Rank::world_rank(self)
    }

    fn sendrecv(&mut self, comm: &Comm, dest: usize, data: &[f64], src: usize) -> Vec<f64> {
        Rank::sendrecv(self, comm, dest, data, src)
    }
}

/// Ring All-Gather: every rank contributes `local`; returns the
/// concatenation of all contributions in local-index order.
///
/// Per-rank cost: sends `sum_{j != me} |block_j|`... more precisely each
/// rank forwards `q - 1` blocks and receives `q - 1` blocks, whose total
/// size is `total - |local|` words each way.
pub fn all_gather<T: PeerExchange>(rank: &mut T, comm: &Comm, local: &[f64]) -> Vec<f64> {
    let q = comm.size();
    let me = comm
        .local_index(rank.world_rank())
        .expect("caller must be a member of the communicator");
    if q == 1 {
        return local.to_vec();
    }
    let right = (me + 1) % q;
    let left = (me + q - 1) % q;

    let mut blocks: Vec<Option<Vec<f64>>> = vec![None; q];
    blocks[me] = Some(local.to_vec());
    // At step s we forward the block that originated at (me - s) mod q and
    // receive the block that originated at (me - s - 1) mod q.
    for s in 0..(q - 1) {
        let send_origin = (me + q - s % q) % q;
        let send_origin = send_origin % q;
        let outgoing = blocks[send_origin]
            .as_ref()
            .expect("ring invariant violated: block to forward not present")
            .clone();
        let incoming = rank.sendrecv(comm, right, &outgoing, left);
        let recv_origin = (me + q - (s + 1) % q) % q % q;
        blocks[recv_origin] = Some(incoming);
    }

    let mut out = Vec::new();
    for b in blocks {
        out.extend(b.expect("all-gather finished with a missing block"));
    }
    out
}

/// Ring Reduce-Scatter: `data` is the concatenation of `q` segments with
/// lengths `counts[0..q]` (in local-index order); every rank contributes a
/// full copy of `data`, and rank `i` returns the element-wise sum of all
/// contributions restricted to segment `i`.
///
/// The reduction order along the ring is deterministic, so results are
/// bitwise reproducible — across runs *and* across transports.
pub fn reduce_scatter<T: PeerExchange>(
    rank: &mut T,
    comm: &Comm,
    data: &[f64],
    counts: &[usize],
) -> Vec<f64> {
    let q = comm.size();
    assert_eq!(counts.len(), q, "need one segment count per rank");
    let total: usize = counts.iter().sum();
    assert_eq!(data.len(), total, "data length must equal sum of counts");
    let me = comm
        .local_index(rank.world_rank())
        .expect("caller must be a member of the communicator");

    let offsets: Vec<usize> = counts
        .iter()
        .scan(0usize, |acc, &c| {
            let o = *acc;
            *acc += c;
            Some(o)
        })
        .collect();
    let segment = |j: usize, buf: &[f64]| buf[offsets[j]..offsets[j] + counts[j]].to_vec();

    if q == 1 {
        return segment(0, data);
    }
    let right = (me + 1) % q;
    let left = (me + q - 1) % q;

    // Working copy of my contribution; segments accumulate partial sums as
    // they travel around the ring. The chain for segment j starts at rank
    // (j + 1) mod q and ends at rank j after q - 1 hops.
    let mut work: Vec<Vec<f64>> = (0..q).map(|j| segment(j, data)).collect();
    for s in 0..(q - 1) {
        // At step s, I hold the s-hop partial of segment (me - s - 1) mod q;
        // forward it, then receive and accumulate segment (me - s - 2) mod q.
        let send_seg = (me + q - (s + 1) % q) % q;
        let send_seg = send_seg % q;
        let outgoing = work[send_seg].clone();
        let incoming = rank.sendrecv(comm, right, &outgoing, left);
        let recv_seg = (me + 2 * q - (s + 2)) % q;
        assert_eq!(incoming.len(), counts[recv_seg], "segment size mismatch");
        for (w, x) in work[recv_seg].iter_mut().zip(&incoming) {
            *w += x;
        }
    }
    work[me].clone()
}

/// All-Reduce = Reduce-Scatter + All-Gather (both bucket algorithms), the
/// standard bandwidth-optimal composition. Segment sizes are balanced as
/// evenly as possible.
pub fn all_reduce<T: PeerExchange>(rank: &mut T, comm: &Comm, data: &[f64]) -> Vec<f64> {
    let q = comm.size();
    let n = data.len();
    let base = n / q;
    let rem = n % q;
    let counts: Vec<usize> = (0..q).map(|j| base + usize::from(j < rem)).collect();
    let mine = reduce_scatter(rank, comm, data, &counts);
    all_gather(rank, comm, &mine)
}

/// Binomial-tree Broadcast from local rank `root`.
///
/// Cost: `O(w log q)` total; the root sends at most `ceil(log2 q)` copies.
/// (The paper's algorithms don't need broadcast; provided for completeness
/// and used by tests/examples.)
pub fn broadcast(rank: &mut Rank, comm: &Comm, root: usize, data: &[f64]) -> Vec<f64> {
    let q = comm.size();
    let me = comm
        .local_index(rank.world_rank())
        .expect("caller must be a member of the communicator");
    if q == 1 {
        return data.to_vec();
    }
    // Work in root-relative coordinates: v = (me - root) mod q.
    let v = (me + q - root) % q;
    let mut buf: Option<Vec<f64>> = if v == 0 { Some(data.to_vec()) } else { None };

    // Round k (k = 0, 1, ...): ranks with v < 2^k and v + 2^k < q send to
    // v + 2^k.
    let mut gap = 1usize;
    while gap < q {
        if v < gap {
            let dest = v + gap;
            if dest < q {
                let payload = buf.as_ref().expect("broadcast invariant: holder has data");
                let dest_local = (dest + root) % q;
                let payload = payload.clone();
                rank.send(comm, dest_local, &payload);
            }
        } else if v < 2 * gap && buf.is_none() {
            let src = v - gap;
            let src_local = (src + root) % q;
            buf = Some(rank.recv(comm, src_local));
        }
        gap *= 2;
    }
    buf.expect("broadcast finished without data")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::SimMachine;

    #[test]
    fn all_gather_balanced() {
        let p = 4;
        let res = SimMachine::new(p).run(|rank| {
            let world = rank.world();
            let me = rank.world_rank() as f64;
            all_gather(rank, &world, &[me * 2.0, me * 2.0 + 1.0])
        });
        for out in &res.outputs {
            assert_eq!(out, &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        }
        // Bucket cost: each rank sends and receives (q-1)*w = 3*2 words.
        for st in &res.stats {
            assert_eq!(st.words_sent, 6);
            assert_eq!(st.words_received, 6);
        }
    }

    #[test]
    fn all_gather_uneven_blocks() {
        let p = 3;
        let res = SimMachine::new(p).run(|rank| {
            let world = rank.world();
            let me = rank.world_rank();
            let local: Vec<f64> = (0..=me).map(|i| (me * 10 + i) as f64).collect();
            all_gather(rank, &world, &local)
        });
        for out in &res.outputs {
            assert_eq!(out, &[0.0, 10.0, 11.0, 20.0, 21.0, 22.0]);
        }
        // Each rank receives total - own words.
        assert_eq!(res.stats[0].words_received, 5);
        assert_eq!(res.stats[1].words_received, 4);
        assert_eq!(res.stats[2].words_received, 3);
    }

    #[test]
    fn all_gather_singleton_is_free() {
        let res = SimMachine::new(1).run(|rank| {
            let world = rank.world();
            all_gather(rank, &world, &[1.0, 2.0])
        });
        assert_eq!(res.outputs[0], vec![1.0, 2.0]);
        assert_eq!(res.summary().total_words, 0);
    }

    #[test]
    fn reduce_scatter_sums_segments() {
        let p = 3;
        let counts = [2usize, 1, 2];
        let res = SimMachine::new(p).run(|rank| {
            let world = rank.world();
            let me = rank.world_rank() as f64;
            // Rank r contributes [r, r, r, r, r] (5 = 2+1+2 words).
            let data = vec![me; 5];
            reduce_scatter(rank, &world, &data, &counts)
        });
        // Sum over ranks of r = 0+1+2 = 3 in every position.
        assert_eq!(res.outputs[0], vec![3.0, 3.0]);
        assert_eq!(res.outputs[1], vec![3.0]);
        assert_eq!(res.outputs[2], vec![3.0, 3.0]);
    }

    #[test]
    fn reduce_scatter_cost_matches_bucket_bound() {
        // Balanced segments of w words: each rank sends exactly (q-1)*w.
        let p = 4;
        let w = 3;
        let res = SimMachine::new(p).run(move |rank| {
            let world = rank.world();
            let data = vec![1.0; p * w];
            let counts = vec![w; p];
            reduce_scatter(rank, &world, &data, &counts)
        });
        for st in &res.stats {
            assert_eq!(st.words_sent, ((p - 1) * w) as u64);
            assert_eq!(st.words_received, ((p - 1) * w) as u64);
        }
        for out in &res.outputs {
            assert_eq!(out, &vec![p as f64; w]);
        }
    }

    #[test]
    fn all_reduce_matches_serial_sum() {
        let p = 5;
        let n = 7;
        let res = SimMachine::new(p).run(move |rank| {
            let world = rank.world();
            let me = rank.world_rank();
            let data: Vec<f64> = (0..n).map(|i| (me * n + i) as f64).collect();
            all_reduce(rank, &world, &data)
        });
        let mut expect = vec![0.0; n];
        for r in 0..p {
            for (i, e) in expect.iter_mut().enumerate() {
                *e += (r * n + i) as f64;
            }
        }
        for out in &res.outputs {
            assert_eq!(out, &expect);
        }
    }

    #[test]
    fn broadcast_from_every_root() {
        let p = 6;
        for root in 0..p {
            let res = SimMachine::new(p).run(move |rank| {
                let world = rank.world();
                let data = if rank.world_rank() == root {
                    vec![42.0, root as f64]
                } else {
                    vec![]
                };
                broadcast(rank, &world, root, &data)
            });
            for out in &res.outputs {
                assert_eq!(out, &[42.0, root as f64]);
            }
        }
    }

    #[test]
    fn collectives_on_subcommunicator() {
        use crate::comm::Comm;
        let p = 4;
        // Even ranks form one group, odd ranks another.
        let res = SimMachine::new(p).run(move |rank| {
            let me = rank.world_rank();
            let members: Vec<usize> = (0..p).filter(|r| r % 2 == me % 2).collect();
            let comm = Comm::subset(members, 1);
            all_gather(rank, &comm, &[me as f64])
        });
        assert_eq!(res.outputs[0], vec![0.0, 2.0]);
        assert_eq!(res.outputs[1], vec![1.0, 3.0]);
        assert_eq!(res.outputs[2], vec![0.0, 2.0]);
        assert_eq!(res.outputs[3], vec![1.0, 3.0]);
    }

    #[test]
    fn concurrent_disjoint_collectives_do_not_interfere() {
        use crate::comm::Comm;
        let p = 6;
        let res = SimMachine::new(p).run(move |rank| {
            let me = rank.world_rank();
            let group = me / 3; // {0,1,2} and {3,4,5}
            let members: Vec<usize> = (group * 3..group * 3 + 3).collect();
            let comm = Comm::subset(members, 2);
            let summed = all_reduce(rank, &comm, &[me as f64]);
            summed[0]
        });
        assert_eq!(res.outputs[..3], [3.0, 3.0, 3.0]);
        assert_eq!(res.outputs[3..], [12.0, 12.0, 12.0]);
    }
}
