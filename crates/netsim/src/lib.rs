//! # mttkrp-netsim
//!
//! A simulator of the distributed-memory parallel machine model used by the
//! paper (Section II-C): `P` processors, each with its own local memory,
//! communicating by sends and receives over a network. The simulator runs
//! one OS thread per rank, moves real data over channels, and counts every
//! word (one word = one `f64`) sent and received by each rank — the exact
//! quantity the paper's communication lower bounds govern.
//!
//! Collectives use the *bucket* (ring) algorithms the paper assumes, so the
//! measured per-rank cost of an All-Gather or Reduce-Scatter over `q`
//! balanced blocks of `w` words is exactly `(q-1)·w` each way.
//!
//! ```
//! use mttkrp_netsim::{SimMachine, collectives};
//!
//! let machine = SimMachine::new(4);
//! let result = machine.run(|rank| {
//!     let world = rank.world();
//!     collectives::all_reduce(rank, &world, &[rank.world_rank() as f64])
//! });
//! assert_eq!(result.outputs[0], vec![6.0]); // 0+1+2+3
//! ```

pub mod collectives;
pub mod comm;
pub mod grid;
pub mod machine;
pub mod schedule;
pub mod stats;

pub use comm::{Comm, Rank};
pub use grid::ProcessorGrid;
pub use machine::{RunResult, SimMachine};
pub use schedule::{CommSchedule, Phase, PhaseTraffic, RankSchedule};
pub use stats::{CommStats, CommSummary};
