#![allow(clippy::needless_range_loop)]

//! Property-based tests for the distributed-machine simulator: collective
//! semantics and exact bucket cost accounting for arbitrary sizes.

use mttkrp_netsim::{collectives, Comm, ProcessorGrid, SimMachine};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_gather_concatenates_and_costs_exactly(p in 1usize..7, w in 0usize..5) {
        let res = SimMachine::new(p).run(move |rank| {
            let world = rank.world();
            let me = rank.world_rank();
            let local: Vec<f64> = (0..w).map(|i| (me * 100 + i) as f64).collect();
            collectives::all_gather(rank, &world, &local)
        });
        let mut expect = Vec::new();
        for r in 0..p {
            expect.extend((0..w).map(|i| (r * 100 + i) as f64));
        }
        for out in &res.outputs {
            prop_assert_eq!(out, &expect);
        }
        // Bucket cost: (p-1)*w each way per rank.
        for st in &res.stats {
            prop_assert_eq!(st.words_sent as usize, (p - 1) * w);
            prop_assert_eq!(st.words_received as usize, (p - 1) * w);
        }
    }

    #[test]
    fn reduce_scatter_sums_and_costs_exactly(
        p in 1usize..6,
        counts_frac in prop::collection::vec(0usize..4, 1..6),
    ) {
        // counts vector padded/cut to length p.
        let counts: Vec<usize> = (0..p).map(|i| counts_frac.get(i).copied().unwrap_or(1)).collect();
        let total: usize = counts.iter().sum();
        let counts2 = counts.clone();
        let res = SimMachine::new(p).run(move |rank| {
            let world = rank.world();
            let me = rank.world_rank();
            let data: Vec<f64> = (0..total).map(|i| (me * total + i) as f64).collect();
            collectives::reduce_scatter(rank, &world, &data, &counts2)
        });
        // Expected: elementwise sum over ranks, segmented.
        let mut offset = 0;
        for (i, &c) in counts.iter().enumerate() {
            let expect: Vec<f64> = (0..c)
                .map(|j| (0..p).map(|r| (r * total + offset + j) as f64).sum())
                .collect();
            prop_assert_eq!(&res.outputs[i], &expect);
            offset += c;
        }
        // Sends: sum of all segments except own (ring forwards each
        // other segment exactly once).
        for (i, st) in res.stats.iter().enumerate() {
            if p > 1 {
                let others: usize = total - counts[i];
                // sent = total - counts[me]; received = total - counts[me-1].
                prop_assert_eq!(st.words_sent as usize, others);
                let prev = (i + p - 1) % p;
                prop_assert_eq!(st.words_received as usize, total - counts[prev]);
            } else {
                prop_assert_eq!(st.total_words(), 0);
            }
        }
    }

    #[test]
    fn all_reduce_equals_serial_sum(p in 1usize..6, n in 0usize..7) {
        let res = SimMachine::new(p).run(move |rank| {
            let world = rank.world();
            let me = rank.world_rank() as f64;
            let data: Vec<f64> = (0..n).map(|i| me * 10.0 + i as f64).collect();
            collectives::all_reduce(rank, &world, &data)
        });
        let expect: Vec<f64> = (0..n)
            .map(|i| (0..p).map(|r| r as f64 * 10.0 + i as f64).sum())
            .collect();
        for out in &res.outputs {
            prop_assert_eq!(out, &expect);
        }
    }

    #[test]
    fn broadcast_delivers_from_any_root(p in 1usize..8, root_frac in 0.0f64..1.0, w in 0usize..4) {
        let root = ((p - 1) as f64 * root_frac) as usize;
        let res = SimMachine::new(p).run(move |rank| {
            let world = rank.world();
            let data: Vec<f64> = if rank.world_rank() == root {
                (0..w).map(|i| i as f64 + 0.5).collect()
            } else {
                vec![]
            };
            collectives::broadcast(rank, &world, root, &data)
        });
        let expect: Vec<f64> = (0..w).map(|i| i as f64 + 0.5).collect();
        for out in &res.outputs {
            prop_assert_eq!(out, &expect);
        }
    }

    #[test]
    fn word_conservation_on_random_point_to_point(
        p in 2usize..6,
        edges in prop::collection::vec((0usize..6, 0usize..6, 1usize..5), 1..10),
    ) {
        // Arbitrary send/recv pattern: total sent == total received.
        let edges: Vec<(usize, usize, usize)> = edges
            .into_iter()
            .map(|(a, b, w)| (a % p, b % p, w))
            .collect();
        let edges2 = edges.clone();
        let res = SimMachine::new(p).run(move |rank| {
            let world = rank.world();
            let me = rank.world_rank();
            // Deterministic order: all sends first (channels are buffered),
            // then receives in edge order.
            for &(src, dst, w) in &edges2 {
                if src == me {
                    rank.send(&world, dst, &vec![1.0; w]);
                }
            }
            for &(src, dst, w) in &edges2 {
                if dst == me {
                    let got = rank.recv(&world, src);
                    assert_eq!(got.len(), w);
                }
            }
        });
        let sent: u64 = res.stats.iter().map(|s| s.words_sent).sum();
        let recv: u64 = res.stats.iter().map(|s| s.words_received).sum();
        prop_assert_eq!(sent, recv);
        let expect: usize = edges.iter().map(|&(_, _, w)| w).sum();
        prop_assert_eq!(sent as usize, expect);
    }

    #[test]
    fn grid_coords_bijective(dims in prop::collection::vec(1usize..5, 1..5)) {
        let g = ProcessorGrid::new(&dims);
        let p = g.num_ranks();
        let mut seen = vec![false; p];
        for r in 0..p {
            let c = g.coords(r);
            let back = g.rank(&c);
            prop_assert_eq!(back, r);
            prop_assert!(!seen[r]);
            seen[r] = true;
        }
    }

    #[test]
    fn hyperslices_partition_the_grid(dims in prop::collection::vec(1usize..4, 2..4), dim_frac in 0.0f64..1.0) {
        let g = ProcessorGrid::new(&dims);
        let d = ((dims.len() - 1) as f64 * dim_frac) as usize;
        let p = g.num_ranks();
        // Each rank belongs to exactly one hyperslice normal to d, and the
        // slices partition [P].
        let mut counts = vec![0usize; p];
        for r in 0..p {
            let comm = g.hyperslice_comm(r, d);
            prop_assert!(comm.local_index(r).is_some());
            prop_assert_eq!(comm.size(), p / dims[d]);
            for &m in comm.members() {
                if m == r {
                    counts[r] += 1;
                }
            }
        }
        prop_assert!(counts.iter().all(|&c| c == 1));
    }

    #[test]
    fn subcommunicator_collectives_stay_inside(p in 2usize..7, split in 1usize..6) {
        // Two disjoint groups all-reduce independently; sums never leak.
        let cut = split.min(p - 1);
        let res = SimMachine::new(p).run(move |rank| {
            let me = rank.world_rank();
            let members: Vec<usize> = if me < cut {
                (0..cut).collect()
            } else {
                (cut..p).collect()
            };
            let comm = Comm::subset(members, 77);
            collectives::all_reduce(rank, &comm, &[1.0])[0]
        });
        for (r, &v) in res.outputs.iter().enumerate() {
            let expect = if r < cut { cut } else { p - cut } as f64;
            prop_assert_eq!(v, expect);
        }
    }
}
