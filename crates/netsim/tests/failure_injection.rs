//! Failure injection: protocol misuse must fail loudly (panic propagated
//! to the caller), never silently corrupt results or hang.

use mttkrp_netsim::{collectives, Comm, SimMachine};

fn must_panic(f: impl FnOnce() + std::panic::UnwindSafe) {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {})); // silence expected panic output
    let r = std::panic::catch_unwind(f);
    std::panic::set_hook(prev);
    assert!(r.is_err(), "expected the misuse to panic");
}

#[test]
fn mismatched_reduce_scatter_counts_detected() {
    // One rank disagrees on the segment sizes: the ring exchange sees a
    // wrong-size segment and asserts.
    must_panic(|| {
        SimMachine::new(2).run(|rank| {
            let world = rank.world();
            let counts = if rank.world_rank() == 0 {
                vec![2usize, 2]
            } else {
                vec![1usize, 3]
            };
            let data = vec![1.0; 4];
            collectives::reduce_scatter(rank, &world, &data, &counts)
        });
    });
}

#[test]
fn wrong_data_length_in_reduce_scatter_detected() {
    must_panic(|| {
        SimMachine::new(2).run(|rank| {
            let world = rank.world();
            collectives::reduce_scatter(rank, &world, &[1.0, 2.0, 3.0], &[1, 1])
        });
    });
}

#[test]
fn nonmember_collective_participation_detected() {
    must_panic(|| {
        SimMachine::new(3).run(|rank| {
            // Rank 2 tries to join a communicator it is not in.
            let comm = Comm::subset(vec![0, 1], 5);
            collectives::all_gather(rank, &comm, &[rank.world_rank() as f64])
        });
    });
}

#[test]
fn unconsumed_message_detected_at_exit() {
    must_panic(|| {
        SimMachine::new(2).run(|rank| {
            let world = rank.world();
            if rank.world_rank() == 0 {
                rank.send(&world, 1, &[1.0]);
            }
            // Rank 1 never receives: quiescence check fires.
        });
    });
}

#[test]
fn empty_communicator_rejected() {
    must_panic(|| {
        let _ = Comm::subset(vec![], 0);
    });
}

#[test]
fn wrong_grid_size_rejected() {
    must_panic(|| {
        let g = mttkrp_netsim::ProcessorGrid::new(&[2, 2]);
        let _ = g.rank(&[1, 2]); // coordinate out of range
    });
}

#[test]
fn collectives_still_work_after_failed_run() {
    // A panicked run must not poison subsequent machines (no global state).
    must_panic(|| {
        SimMachine::new(2).run(|rank| {
            if rank.world_rank() == 1 {
                panic!("injected");
            }
        });
    });
    let res = SimMachine::new(2).run(|rank| {
        let world = rank.world();
        collectives::all_reduce(rank, &world, &[1.0])[0]
    });
    assert_eq!(res.outputs, vec![2.0, 2.0]);
}
