//! The disabled fast path must not allocate: a span/counter/histogram call
//! while tracing is off is one relaxed atomic load and nothing else. This
//! test pins that down with a counting global allocator — if someone adds
//! an eager `format!` or `Vec` to an emission helper, it fails here, not in
//! a profile three PRs later.
//!
//! Lives in its own integration-test binary so the counting allocator
//! cannot perturb (or be perturbed by) the rest of the suite.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn disabled_hot_path_allocates_nothing() {
    assert!(!mttkrp_obs::enabled());
    // Warm up any lazily-initialized thread state outside the window.
    {
        let _s = mttkrp_obs::span("warmup");
        mttkrp_obs::counter_add("warmup", 1);
    }

    let before = allocations();
    for i in 0..10_000u64 {
        let mut s = mttkrp_obs::span("kernel");
        if s.is_active() {
            // Field values may allocate — but only behind the gate.
            s.record("backend", "native");
        }
        s.record("mode", i);
        mttkrp_obs::counter_add("exec.kernel_runs", 1);
        mttkrp_obs::gauge_add("serve.queue_depth", -1);
        mttkrp_obs::histogram_record("serve.request_exec_us", i);
        mttkrp_obs::histogram_record_duration(
            "serve.request_queued_us",
            std::time::Duration::from_micros(i),
        );
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "disabled-mode tracing must not allocate on the hot path"
    );
}

#[test]
fn enabled_path_still_works_under_the_counting_allocator() {
    let cap = mttkrp_obs::capture();
    {
        let _s = mttkrp_obs::span("request").with("kind", "alloc-test");
        mttkrp_obs::counter_add("runs", 1);
    }
    let rec = cap.finish();
    assert_eq!(rec.spans.len(), 1);
    assert_eq!(rec.metrics.len(), 1);
    // And enabling genuinely allocates (sanity check that the counter
    // counts), so the zero above is meaningful.
    assert!(allocations() > 0);
}
