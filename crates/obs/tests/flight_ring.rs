//! The flight recorder's core promise, asserted in a process of its own:
//! with full capture **off**, span closes still land in the ring, the ring
//! retains exactly the last N, and a later capture doesn't perturb the
//! sequence numbering.

use mttkrp_obs::{flight_snapshot, span, FLIGHT_CAPACITY};

#[test]
fn ring_retains_the_last_n_closes_without_a_capture() {
    assert!(!mttkrp_obs::enabled(), "this test owns the process");

    // Fewer than capacity: everything is retained, in close order.
    for _ in 0..5 {
        let _s = span("warm");
    }
    let snap = flight_snapshot();
    assert_eq!(snap.iter().filter(|r| r.name == "warm").count(), 5);
    for pair in snap.windows(2) {
        assert_eq!(pair[1].seq, pair[0].seq + 1, "gapless seqs");
    }

    // Overfill: only the newest FLIGHT_CAPACITY survive.
    for _ in 0..(2 * FLIGHT_CAPACITY) {
        let _s = span("flood");
    }
    let snap = flight_snapshot();
    assert_eq!(snap.len(), FLIGHT_CAPACITY);
    assert!(
        snap.iter().all(|r| r.name == "flood"),
        "the warmup closes were overwritten"
    );
    let last_seq = snap.last().unwrap().seq;
    assert_eq!(
        snap.first().unwrap().seq,
        last_seq - (FLIGHT_CAPACITY as u64 - 1),
        "exactly the trailing window"
    );

    // Nested spans close inner-first; the ring sees that order.
    {
        let _outer = span("outer");
        let _inner = span("inner");
    }
    let snap = flight_snapshot();
    let tail: Vec<&str> = snap.iter().rev().take(2).map(|r| r.name.as_str()).collect();
    assert_eq!(tail, ["outer", "inner"], "outer closed last");

    // A capture running afterwards keeps feeding the same ring.
    let cap = mttkrp_obs::capture();
    {
        let _s = span("captured");
    }
    drop(cap);
    let snap = flight_snapshot();
    assert_eq!(snap.last().unwrap().name, "captured");
    assert_eq!(snap.last().unwrap().seq, last_seq + 3);
}
