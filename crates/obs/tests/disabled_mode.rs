//! Property: with tracing disabled, *no* sequence of emission calls leaves
//! any observable residue — the next capture starts from a perfectly clean
//! slate. This is what makes it safe to leave instrumentation compiled into
//! every layer unconditionally.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn disabled_emissions_leave_no_residue(
        ops in prop::collection::vec((0u8..5, 0u64..1_000_000), 0..64),
    ) {
        prop_assert!(!mttkrp_obs::enabled());
        // Fire an arbitrary interleaving of every emission helper.
        for &(kind, v) in &ops {
            match kind {
                0 => {
                    let mut s = mttkrp_obs::span("kernel");
                    prop_assert!(!s.is_active());
                    prop_assert!(s.id().is_none());
                    s.record("mode", v);
                }
                1 => mttkrp_obs::counter_add("prop.counter", v),
                2 => mttkrp_obs::gauge_add("prop.gauge", v as i64 - 500_000),
                3 => mttkrp_obs::histogram_record("prop.hist", v),
                _ => mttkrp_obs::histogram_record_duration(
                    "prop.hist_us",
                    std::time::Duration::from_micros(v),
                ),
            }
        }
        // A capture opened afterwards sees exactly nothing.
        let rec = mttkrp_obs::capture().finish();
        prop_assert!(rec.spans.is_empty(), "spans leaked: {}", rec.spans.len());
        prop_assert!(rec.metrics.is_empty(), "metrics leaked: {}", rec.metrics.len());
    }
}
