//! Export: JSONL out, JSONL back in, schema validation, and the human
//! summaries (span tree with self/total times, metric table).
//!
//! ## The JSONL schema
//!
//! One self-describing object per line, discriminated by `"type"`:
//!
//! ```text
//! {"type":"meta","version":1,"spans":N,"metrics":N,
//!  "proc":H16,"trace":H32,["remote_proc":H16,"remote_span":N]}
//! {"type":"span","id":N,"parent":N|null,"name":S,"thread":N,
//!  "start_us":N,"dur_us":N,"fields":{...}}
//! {"type":"counter","name":S,"value":N}
//! {"type":"gauge","name":S,"value":N}
//! {"type":"histogram","name":S,"count":N,"sum":N,"min":N,"max":N,
//!  "buckets":[N;65]}
//! ```
//!
//! Field values are JSON numbers/booleans/strings; a non-finite float is
//! written as `null`. `H16`/`H32` are 16/32-digit hex *strings*: process
//! and trace ids use all 64/128 bits, which JSON's f64 numbers cannot
//! carry exactly. [`validate_line`] checks exactly this shape and is what
//! CI runs over every emitted line.
//!
//! ## Concatenated multi-process traces
//!
//! [`parse_trace`] accepts several JSONL streams concatenated into one
//! text (what `mttkrp_cli report --merge` feeds it): every `meta` line
//! starts a new *segment* with its own span-id namespace. Ids are
//! re-based per segment (duplicate raw ids across processes are expected,
//! not a schema error), and the segments are stitched into one tree:
//! a segment whose meta carries `remote_proc`/`remote_span` hangs its
//! roots under that span, and any span with `remote_proc`/`remote_span`
//! *fields* (a serve request span) is re-parented the same way.

use crate::json::{self, JsonValue};
use crate::metrics::{HistogramSnapshot, MetricSnapshot, MetricValue, HISTOGRAM_BUCKETS};
use crate::span::{FieldValue, SpanRecord};
use crate::TraceContext;
use std::collections::{BTreeMap, HashMap};

/// Everything one capture recorded: spans in completion order plus a final
/// metrics snapshot. Produced by [`crate::Capture::finish`].
#[derive(Clone, Debug, Default)]
pub struct Recording {
    /// Completed spans, in the order they closed.
    pub spans: Vec<SpanRecord>,
    /// Final metric values, sorted by name.
    pub metrics: Vec<MetricSnapshot>,
    /// The recording process's id ([`crate::proc_id`]; 0 in hand-built
    /// recordings).
    pub proc: u64,
    /// The 128-bit trace id (hi, lo) this capture belongs to.
    pub trace: (u64, u64),
    /// The remote parent adopted via [`crate::adopt_remote_context`], if
    /// any: this recording's roots belong under that (proc, span).
    pub remote: Option<TraceContext>,
}

impl Recording {
    /// Serializes the recording to JSONL (meta line first, then spans, then
    /// metrics). Every produced line passes [`validate_line`].
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let remote = match &self.remote {
            Some(r) => format!(
                ",\"remote_proc\":\"{:016x}\",\"remote_span\":{}",
                r.proc, r.parent_span
            ),
            None => String::new(),
        };
        out.push_str(&format!(
            "{{\"type\":\"meta\",\"version\":1,\"spans\":{},\"metrics\":{},\"proc\":\"{:016x}\",\"trace\":\"{:016x}{:016x}\"{remote}}}\n",
            self.spans.len(),
            self.metrics.len(),
            self.proc,
            self.trace.0,
            self.trace.1,
        ));
        for s in &self.spans {
            out.push_str(&span_line(s));
            out.push('\n');
        }
        for m in &self.metrics {
            out.push_str(&metric_line(m));
            out.push('\n');
        }
        out
    }

    /// Writes [`Recording::to_jsonl`] to `path`.
    pub fn write_jsonl(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_jsonl())
    }

    /// The spans as owned [`SpanNode`]s (the form the tree/drift helpers
    /// consume, shared with traces re-read from disk).
    pub fn nodes(&self) -> Vec<SpanNode> {
        self.spans.iter().map(SpanNode::from_record).collect()
    }

    /// A human summary: the span tree followed by every metric.
    pub fn summary(&self) -> String {
        let mut out = tree_summary(&self.nodes());
        if !self.metrics.is_empty() {
            out.push('\n');
            out.push_str(&metrics_summary(&self.metrics, usize::MAX));
        }
        out
    }
}

/// One span in parsed/owned form: what [`Recording::nodes`] yields and what
/// [`parse_trace`] reconstructs from a JSONL file. The tree and drift
/// helpers operate on these.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanNode {
    /// Capture-unique id.
    pub id: u64,
    /// Enclosing span's id, `None` for a root.
    pub parent: Option<u64>,
    /// Span name.
    pub name: String,
    /// Thread ordinal.
    pub thread: u64,
    /// Microseconds from capture start to open.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Typed fields, in recording order.
    pub fields: Vec<(String, FieldValue)>,
}

impl SpanNode {
    fn from_record(r: &SpanRecord) -> SpanNode {
        SpanNode {
            id: r.id,
            parent: r.parent,
            name: r.name.to_string(),
            thread: r.thread,
            start_us: r.start_us,
            dur_us: r.dur_us,
            fields: r
                .fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        }
    }

    /// First field named `key`, if any.
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Field `key` as a float (numbers of any variant coerce).
    pub fn field_f64(&self, key: &str) -> Option<f64> {
        match self.field(key)? {
            FieldValue::U64(v) => Some(*v as f64),
            FieldValue::I64(v) => Some(*v as f64),
            FieldValue::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// Field `key` as an unsigned integer.
    pub fn field_u64(&self, key: &str) -> Option<u64> {
        match self.field(key)? {
            FieldValue::U64(v) => Some(*v),
            FieldValue::I64(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// Field `key` as a string.
    pub fn field_str(&self, key: &str) -> Option<&str> {
        match self.field(key)? {
            FieldValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Field `key` as a boolean.
    pub fn field_bool(&self, key: &str) -> Option<bool> {
        match self.field(key)? {
            FieldValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Identity of one per-process segment of a (possibly concatenated) JSONL
/// trace — one entry per `meta` line seen by [`parse_trace`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceSegment {
    /// The segment's process id (0 for traces written before the ops
    /// plane, which carried no identity).
    pub proc: u64,
    /// The 128-bit trace id as 32 hex digits (empty when absent).
    pub trace: String,
    /// The remote `(proc, span)` this segment's roots hang under, if its
    /// meta line adopted one.
    pub remote: Option<(u64, u64)>,
    /// How many spans the segment contributed.
    pub spans: usize,
}

/// A trace re-read from JSONL: the file-side mirror of a [`Recording`].
/// For concatenated multi-process input, span ids have been re-based and
/// cross-process parent links resolved (see the module docs).
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Spans, in file order, with ids unique across all segments.
    pub spans: Vec<SpanNode>,
    /// Metrics, in file order (concatenated input: all segments' metrics).
    pub metrics: Vec<MetricSnapshot>,
    /// One entry per `meta` line (empty for meta-less fragments).
    pub segments: Vec<TraceSegment>,
}

impl Trace {
    /// The distinct 32-hex trace ids across segments, in first-seen order.
    pub fn trace_ids(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for seg in &self.segments {
            if !seg.trace.is_empty() && !out.contains(&seg.trace.as_str()) {
                out.push(&seg.trace);
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

fn json_number_f64(v: f64) -> String {
    if v.is_finite() {
        // `{:?}` prints the shortest roundtrip form, which for finite floats
        // is valid JSON.
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

fn field_value_json(v: &FieldValue) -> String {
    match v {
        FieldValue::U64(v) => v.to_string(),
        FieldValue::I64(v) => v.to_string(),
        FieldValue::F64(v) => json_number_f64(*v),
        FieldValue::Bool(b) => b.to_string(),
        FieldValue::Str(s) => format!("\"{}\"", json::escape(s)),
    }
}

fn span_line(s: &SpanRecord) -> String {
    let parent = match s.parent {
        Some(p) => p.to_string(),
        None => "null".to_string(),
    };
    let fields: Vec<String> = s
        .fields
        .iter()
        .map(|(k, v)| format!("\"{}\":{}", json::escape(k), field_value_json(v)))
        .collect();
    format!(
        "{{\"type\":\"span\",\"id\":{},\"parent\":{},\"name\":\"{}\",\"thread\":{},\"start_us\":{},\"dur_us\":{},\"fields\":{{{}}}}}",
        s.id,
        parent,
        json::escape(s.name),
        s.thread,
        s.start_us,
        s.dur_us,
        fields.join(",")
    )
}

/// Serializes metric snapshots as schema-valid JSONL (one
/// counter/gauge/histogram object per line) — the `STATS` scrape payload.
/// Parse back with [`parse_trace`].
pub fn metrics_to_jsonl(metrics: &[MetricSnapshot]) -> String {
    let mut out = String::new();
    for m in metrics {
        out.push_str(&metric_line(m));
        out.push('\n');
    }
    out
}

fn metric_line(m: &MetricSnapshot) -> String {
    let name = json::escape(&m.name);
    match &m.value {
        MetricValue::Counter(v) => {
            format!("{{\"type\":\"counter\",\"name\":\"{name}\",\"value\":{v}}}")
        }
        MetricValue::Gauge(v) => {
            format!("{{\"type\":\"gauge\",\"name\":\"{name}\",\"value\":{v}}}")
        }
        MetricValue::Histogram(h) => {
            let buckets: Vec<String> = h.buckets.iter().map(|b| b.to_string()).collect();
            format!(
                "{{\"type\":\"histogram\",\"name\":\"{name}\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[{}]}}",
                h.count,
                h.sum,
                h.min,
                h.max,
                buckets.join(",")
            )
        }
    }
}

// ---------------------------------------------------------------------------
// Validation + parse-back
// ---------------------------------------------------------------------------

fn need_u64(v: &JsonValue, what: &str) -> Result<u64, String> {
    v.get(what)
        .ok_or_else(|| format!("missing \"{what}\""))?
        .as_u64()
        .ok_or_else(|| format!("\"{what}\" must be a non-negative integer"))
}

fn need_str<'a>(v: &'a JsonValue, what: &str) -> Result<&'a str, String> {
    v.get(what)
        .ok_or_else(|| format!("missing \"{what}\""))?
        .as_str()
        .ok_or_else(|| format!("\"{what}\" must be a string"))
}

/// Validates one JSONL line against the trace schema. `Ok(())` when the
/// line is a well-formed meta/span/counter/gauge/histogram object.
pub fn validate_line(line: &str) -> Result<(), String> {
    let v = json::parse(line)?;
    if v.as_object().is_none() {
        return Err("line is not a JSON object".to_string());
    }
    match need_str(&v, "type")? {
        "meta" => {
            need_u64(&v, "version")?;
            // Identity fields are optional (pre-ops-plane traces lack
            // them) but must be well-formed hex strings when present.
            for (key, digits) in [("proc", 16), ("trace", 32)] {
                if let Some(value) = v.get(key) {
                    let s = value
                        .as_str()
                        .ok_or_else(|| format!("\"{key}\" must be a hex string"))?;
                    if s.len() != digits || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
                        return Err(format!("\"{key}\" must be {digits} hex digits"));
                    }
                }
            }
            if let Some(value) = v.get("remote_proc") {
                let s = value
                    .as_str()
                    .ok_or("\"remote_proc\" must be a hex string")?;
                if s.len() != 16 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
                    return Err("\"remote_proc\" must be 16 hex digits".to_string());
                }
                need_u64(&v, "remote_span")?;
            }
            Ok(())
        }
        "span" => {
            let id = need_u64(&v, "id")?;
            if id == 0 {
                return Err("span ids start at 1".to_string());
            }
            match v.get("parent") {
                Some(JsonValue::Null) => {}
                Some(p) => {
                    p.as_u64().ok_or("\"parent\" must be null or an id")?;
                }
                None => return Err("missing \"parent\"".to_string()),
            }
            if need_str(&v, "name")?.is_empty() {
                return Err("span name must be non-empty".to_string());
            }
            need_u64(&v, "thread")?;
            need_u64(&v, "start_us")?;
            need_u64(&v, "dur_us")?;
            let fields = v.get("fields").ok_or("missing \"fields\"")?;
            let members = fields.as_object().ok_or("\"fields\" must be an object")?;
            for (key, value) in members {
                match value {
                    JsonValue::Null
                    | JsonValue::Bool(_)
                    | JsonValue::Number(_)
                    | JsonValue::String(_) => {}
                    _ => return Err(format!("field \"{key}\" must be scalar or null")),
                }
            }
            Ok(())
        }
        "counter" => {
            need_str(&v, "name")?;
            need_u64(&v, "value")?;
            Ok(())
        }
        "gauge" => {
            need_str(&v, "name")?;
            let value = v.get("value").ok_or("missing \"value\"")?;
            match value.as_f64() {
                Some(n) if n.fract() == 0.0 => Ok(()),
                _ => Err("gauge \"value\" must be an integer".to_string()),
            }
        }
        "histogram" => {
            need_str(&v, "name")?;
            need_u64(&v, "count")?;
            need_u64(&v, "sum")?;
            need_u64(&v, "min")?;
            need_u64(&v, "max")?;
            let buckets = v
                .get("buckets")
                .ok_or("missing \"buckets\"")?
                .as_array()
                .ok_or("\"buckets\" must be an array")?;
            if buckets.len() != HISTOGRAM_BUCKETS {
                return Err(format!(
                    "\"buckets\" must have {HISTOGRAM_BUCKETS} entries, got {}",
                    buckets.len()
                ));
            }
            for b in buckets {
                b.as_u64()
                    .ok_or("bucket counts must be non-negative integers")?;
            }
            Ok(())
        }
        other => Err(format!("unknown line type \"{other}\"")),
    }
}

/// Validates every non-empty line of a JSONL document; returns how many
/// lines were checked, or the first failure annotated with its line number.
pub fn validate(text: &str) -> Result<usize, String> {
    let mut checked = 0;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        validate_line(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        checked += 1;
    }
    Ok(checked)
}

fn field_from_json(v: &JsonValue) -> FieldValue {
    match v {
        JsonValue::Bool(b) => FieldValue::Bool(*b),
        JsonValue::String(s) => FieldValue::Str(s.clone()),
        JsonValue::Null => FieldValue::F64(f64::NAN),
        JsonValue::Number(n) => {
            if n.fract() == 0.0 && *n >= 0.0 && *n <= u64::MAX as f64 {
                FieldValue::U64(*n as u64)
            } else if n.fract() == 0.0 && *n < 0.0 && *n >= i64::MIN as f64 {
                FieldValue::I64(*n as i64)
            } else {
                FieldValue::F64(*n)
            }
        }
        _ => FieldValue::F64(f64::NAN),
    }
}

/// Parses a JSONL trace (as written by [`Recording::to_jsonl`]) back into
/// spans and metrics, validating each line along the way.
///
/// Accepts *concatenated* multi-process streams: every `meta` line opens a
/// new segment whose span ids are re-based to stay unique, and remote
/// parent declarations (meta `remote_proc`/`remote_span`, or the same pair
/// as span fields) are resolved into real parent links — so the result is
/// one well-formed tree even when the raw files reuse ids.
pub fn parse_trace(text: &str) -> Result<Trace, String> {
    struct Seg {
        meta: Option<TraceSegment>,
        base: u64,
        span_start: usize,
    }
    let mut trace = Trace::default();
    let mut segs: Vec<Seg> = vec![Seg {
        meta: None,
        base: 0,
        span_start: 0,
    }];
    // Highest raw id (or parent reference) seen in the current segment:
    // the next segment's ids are shifted past it.
    let mut max_raw: u64 = 0;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let fail = |e: String| format!("line {}: {e}", i + 1);
        validate_line(line).map_err(fail)?;
        let v = json::parse(line).map_err(fail)?;
        match v.get("type").and_then(|t| t.as_str()) {
            Some("meta") => {
                let hex = |key: &str| {
                    v.get(key)
                        .and_then(|s| s.as_str())
                        .and_then(|s| u64::from_str_radix(s, 16).ok())
                };
                let base = segs.last().unwrap().base + max_raw;
                max_raw = 0;
                let remote = hex("remote_proc").map(|p| {
                    (
                        p,
                        v.get("remote_span").and_then(|s| s.as_u64()).unwrap_or(0),
                    )
                });
                segs.push(Seg {
                    meta: Some(TraceSegment {
                        proc: hex("proc").unwrap_or(0),
                        trace: v
                            .get("trace")
                            .and_then(|s| s.as_str())
                            .unwrap_or("")
                            .to_string(),
                        remote,
                        spans: 0,
                    }),
                    base,
                    span_start: trace.spans.len(),
                });
            }
            Some("span") => {
                let base = segs.last().unwrap().base;
                let fields = v
                    .get("fields")
                    .and_then(|f| f.as_object())
                    .unwrap_or(&[])
                    .iter()
                    .map(|(k, fv)| (k.clone(), field_from_json(fv)))
                    .collect();
                let raw_id = need_u64(&v, "id").map_err(fail)?;
                let raw_parent = v.get("parent").and_then(|p| p.as_u64());
                max_raw = max_raw.max(raw_id).max(raw_parent.unwrap_or(0));
                trace.spans.push(SpanNode {
                    id: raw_id + base,
                    parent: raw_parent.map(|p| p + base),
                    name: need_str(&v, "name").map_err(fail)?.to_string(),
                    thread: need_u64(&v, "thread").map_err(fail)?,
                    start_us: need_u64(&v, "start_us").map_err(fail)?,
                    dur_us: need_u64(&v, "dur_us").map_err(fail)?,
                    fields,
                });
            }
            Some("counter") => trace.metrics.push(MetricSnapshot {
                name: need_str(&v, "name").map_err(fail)?.to_string(),
                value: MetricValue::Counter(need_u64(&v, "value").map_err(fail)?),
            }),
            Some("gauge") => trace.metrics.push(MetricSnapshot {
                name: need_str(&v, "name").map_err(fail)?.to_string(),
                value: MetricValue::Gauge(
                    v.get("value").and_then(|n| n.as_f64()).unwrap_or(0.0) as i64
                ),
            }),
            Some("histogram") => {
                let buckets = v
                    .get("buckets")
                    .and_then(|b| b.as_array())
                    .unwrap_or(&[])
                    .iter()
                    .map(|b| b.as_u64().unwrap_or(0))
                    .collect();
                trace.metrics.push(MetricSnapshot {
                    name: need_str(&v, "name").map_err(fail)?.to_string(),
                    value: MetricValue::Histogram(HistogramSnapshot {
                        count: need_u64(&v, "count").map_err(fail)?,
                        sum: need_u64(&v, "sum").map_err(fail)?,
                        min: need_u64(&v, "min").map_err(fail)?,
                        max: need_u64(&v, "max").map_err(fail)?,
                        buckets,
                    }),
                });
            }
            _ => {}
        }
    }
    // Where does each process's id namespace start? First segment claiming
    // a proc id wins (collisions across 64 random bits are negligible).
    let mut proc_base: HashMap<u64, u64> = HashMap::new();
    for seg in &segs {
        if let Some(meta) = &seg.meta {
            if meta.proc != 0 {
                proc_base.entry(meta.proc).or_insert(seg.base);
            }
        }
    }
    // Segment-level stitching: a segment that adopted a remote context
    // hangs all its roots under the remote span.
    let total = trace.spans.len();
    for (si, seg) in segs.iter().enumerate() {
        let end = segs.get(si + 1).map(|s| s.span_start).unwrap_or(total);
        let Some((rproc, rspan)) = seg.meta.as_ref().and_then(|m| m.remote) else {
            continue;
        };
        if rspan == 0 {
            continue;
        }
        if let Some(&tbase) = proc_base.get(&rproc) {
            for s in &mut trace.spans[seg.span_start..end] {
                if s.parent.is_none() {
                    s.parent = Some(rspan + tbase);
                }
            }
        }
    }
    // Span-level stitching: a span carrying remote_proc/remote_span fields
    // (a serve request span) re-parents under that remote span.
    let mut relinks = Vec::new();
    for (idx, s) in trace.spans.iter().enumerate() {
        let (Some(rproc), Some(rspan)) = (s.field_str("remote_proc"), s.field_u64("remote_span"))
        else {
            continue;
        };
        if rspan == 0 {
            continue;
        }
        if let Ok(p) = u64::from_str_radix(rproc, 16) {
            if let Some(&tbase) = proc_base.get(&p) {
                relinks.push((idx, rspan + tbase));
            }
        }
    }
    for (idx, parent) in relinks {
        trace.spans[idx].parent = Some(parent);
    }
    // Record the per-meta segments (span counts from the recorded starts).
    let starts: Vec<usize> = segs.iter().map(|s| s.span_start).collect();
    for (si, seg) in segs.into_iter().enumerate() {
        if let Some(mut meta) = seg.meta {
            let end = starts.get(si + 1).copied().unwrap_or(total);
            meta.spans = end - seg.span_start;
            trace.segments.push(meta);
        }
    }
    Ok(trace)
}

/// Stitches several per-process JSONL streams (client, server, rank
/// children) into one parsed trace: concatenation plus the segment-aware
/// [`parse_trace`]. The result is one span tree per trace id, with remote
/// parent links resolved across processes.
pub fn merge_traces<S: AsRef<str>>(texts: &[S]) -> Result<Trace, String> {
    let mut joined = String::new();
    for t in texts {
        joined.push_str(t.as_ref());
        if !joined.ends_with('\n') {
            joined.push('\n');
        }
    }
    parse_trace(&joined)
}

// ---------------------------------------------------------------------------
// Summaries
// ---------------------------------------------------------------------------

fn fmt_us(us: u64) -> String {
    if us >= 10_000_000 {
        format!("{:.2}s", us as f64 / 1e6)
    } else if us >= 10_000 {
        format!("{:.1}ms", us as f64 / 1e3)
    } else {
        format!("{us}us")
    }
}

/// Renders the span tree aggregated by name-path: one row per distinct
/// root→…→name path, with occurrence count, total time, and self time
/// (total minus direct children). Spans with the same path — e.g. eight
/// worker-thread `request` roots — aggregate into one row.
pub fn tree_summary(nodes: &[SpanNode]) -> String {
    let by_id: HashMap<u64, &SpanNode> = nodes.iter().map(|n| (n.id, n)).collect();
    let mut child_dur: HashMap<u64, u64> = HashMap::new();
    for n in nodes {
        if let Some(p) = n.parent {
            if by_id.contains_key(&p) {
                *child_dur.entry(p).or_default() += n.dur_us;
            }
        }
    }
    // (count, total_us, self_us), keyed by the name path from the root.
    // BTreeMap order puts each parent path directly above its children.
    let mut agg: BTreeMap<Vec<&str>, (u64, u64, u64)> = BTreeMap::new();
    for n in nodes {
        let mut path = vec![n.name.as_str()];
        let mut cur = n.parent;
        while let Some(pid) = cur {
            match by_id.get(&pid) {
                Some(p) => {
                    path.push(p.name.as_str());
                    cur = p.parent;
                }
                None => break, // parent never closed: treat as root
            }
        }
        path.reverse();
        let self_us = n
            .dur_us
            .saturating_sub(child_dur.get(&n.id).copied().unwrap_or(0));
        let slot = agg.entry(path).or_insert((0, 0, 0));
        slot.0 += 1;
        slot.1 += n.dur_us;
        slot.2 += self_us;
    }
    let mut out = format!(
        "{:<44} {:>7} {:>10} {:>10}\n",
        "span", "count", "total", "self"
    );
    if agg.is_empty() {
        out.push_str("  (no spans recorded)\n");
        return out;
    }
    for (path, (count, total, self_us)) in &agg {
        let label = format!(
            "{}{}",
            "  ".repeat(path.len().saturating_sub(1)),
            path.last().copied().unwrap_or("?")
        );
        out.push_str(&format!(
            "{label:<44} {count:>7} {:>10} {:>10}\n",
            fmt_us(*total),
            fmt_us(*self_us)
        ));
    }
    out
}

/// Renders up to `top` metrics (they arrive sorted by name): counters and
/// gauges as single values, histograms with count/mean/p50/p99/max.
pub fn metrics_summary(metrics: &[MetricSnapshot], top: usize) -> String {
    let mut out = String::from("metric\n");
    if metrics.is_empty() {
        out.push_str("  (no metrics recorded)\n");
        return out;
    }
    for m in metrics.iter().take(top) {
        match &m.value {
            MetricValue::Counter(v) => out.push_str(&format!("  {:<42} {v}\n", m.name)),
            MetricValue::Gauge(v) => out.push_str(&format!("  {:<42} {v} (gauge)\n", m.name)),
            MetricValue::Histogram(h) => out.push_str(&format!(
                "  {:<42} count={} mean={:.1} p50={} p99={} max={}\n",
                m.name,
                h.count,
                h.mean(),
                h.quantile(0.5),
                h.quantile(0.99),
                h.max
            )),
        }
    }
    if metrics.len() > top {
        out.push_str(&format!("  … {} more\n", metrics.len() - top));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{capture, counter_add, gauge_add, histogram_record, span};

    fn sample_recording() -> Recording {
        let cap = capture();
        {
            let _root = span("request").with("kind", "test").with("w", 1.5f64);
            {
                let _child = span("kernel").with("backend", "native");
            }
            counter_add("runs", 2);
            gauge_add("depth", -1);
            histogram_record("lat_us", 300);
        }
        cap.finish()
    }

    #[test]
    fn every_emitted_line_validates_and_roundtrips() {
        let rec = sample_recording();
        let jsonl = rec.to_jsonl();
        assert_eq!(validate(&jsonl).unwrap(), 1 + 2 + 3); // meta + spans + metrics
        let trace = parse_trace(&jsonl).unwrap();
        assert_eq!(trace.spans.len(), 2);
        assert_eq!(trace.metrics.len(), 3);
        let request = trace.spans.iter().find(|s| s.name == "request").unwrap();
        assert_eq!(request.parent, None);
        assert_eq!(request.field_str("kind"), Some("test"));
        assert_eq!(request.field_f64("w"), Some(1.5));
        let kernel = trace.spans.iter().find(|s| s.name == "kernel").unwrap();
        assert_eq!(kernel.parent, Some(request.id));
        assert_eq!(
            trace
                .metrics
                .iter()
                .map(|m| m.name.as_str())
                .collect::<Vec<_>>(),
            ["depth", "lat_us", "runs"]
        );
    }

    #[test]
    fn non_finite_floats_export_as_null() {
        let cap = capture();
        {
            let _s = span("planner").with("bad", f64::NAN);
        }
        let jsonl = cap.finish().to_jsonl();
        assert!(jsonl.contains("\"bad\":null"), "{jsonl}");
        validate(&jsonl).unwrap();
        let trace = parse_trace(&jsonl).unwrap();
        assert!(trace.spans[0].field_f64("bad").unwrap().is_nan());
    }

    #[test]
    fn validate_rejects_schema_violations() {
        for bad in [
            "not json",
            "[1,2,3]",
            r#"{"type":"mystery"}"#,
            r#"{"type":"span","id":0,"parent":null,"name":"x","thread":1,"start_us":0,"dur_us":0,"fields":{}}"#,
            r#"{"type":"span","id":1,"name":"x","thread":1,"start_us":0,"dur_us":0,"fields":{}}"#,
            r#"{"type":"span","id":1,"parent":null,"name":"","thread":1,"start_us":0,"dur_us":0,"fields":{}}"#,
            r#"{"type":"span","id":1,"parent":null,"name":"x","thread":1,"start_us":0,"dur_us":0,"fields":{"a":[1]}}"#,
            r#"{"type":"counter","name":"c","value":-1}"#,
            r#"{"type":"gauge","name":"g","value":1.5}"#,
            r#"{"type":"histogram","name":"h","count":0,"sum":0,"min":0,"max":0,"buckets":[0,0]}"#,
        ] {
            assert!(validate_line(bad).is_err(), "accepted {bad}");
        }
        assert!(validate_line(r#"{"type":"gauge","name":"g","value":-3}"#).is_ok());
    }

    #[test]
    fn tree_summary_aggregates_same_paths() {
        let cap = capture();
        for _ in 0..3 {
            let _root = span("request");
            let _sweep = span("sweep");
        }
        let nodes = cap.finish().nodes();
        let tree = tree_summary(&nodes);
        let request_row = tree
            .lines()
            .find(|l| l.trim_start().starts_with("request"))
            .unwrap();
        assert!(request_row.contains(" 3 "), "{tree}");
        let sweep_row = tree.lines().find(|l| l.contains("  sweep")).unwrap();
        assert!(sweep_row.contains(" 3 "), "{tree}");
        // The sweep row is indented under request.
        assert!(tree.find("request").unwrap() < tree.find("  sweep").unwrap());
    }

    #[test]
    fn merge_stitches_processes_and_rebases_duplicate_ids() {
        let trace_id = "00112233445566778899aabbccddeeff";
        // Three processes, all reusing raw span ids 1/2: a client root, a
        // server whose request span carries remote fields pointing at the
        // client, and a rank child whose meta adopted the server's context.
        let client = format!(
            "{{\"type\":\"meta\",\"version\":1,\"spans\":1,\"metrics\":0,\"proc\":\"00000000000000aa\",\"trace\":\"{trace_id}\"}}\n\
             {{\"type\":\"span\",\"id\":1,\"parent\":null,\"name\":\"request\",\"thread\":1,\"start_us\":0,\"dur_us\":100,\"fields\":{{}}}}\n"
        );
        let server = format!(
            "{{\"type\":\"meta\",\"version\":1,\"spans\":2,\"metrics\":0,\"proc\":\"00000000000000bb\",\"trace\":\"5555555555555555aaaaaaaaaaaaaaaa\"}}\n\
             {{\"type\":\"span\",\"id\":2,\"parent\":1,\"name\":\"kernel\",\"thread\":1,\"start_us\":2,\"dur_us\":10,\"fields\":{{}}}}\n\
             {{\"type\":\"span\",\"id\":1,\"parent\":null,\"name\":\"request\",\"thread\":1,\"start_us\":1,\"dur_us\":50,\"fields\":{{\"remote_trace\":\"{trace_id}\",\"remote_proc\":\"00000000000000aa\",\"remote_span\":1}}}}\n"
        );
        let rank = format!(
            "{{\"type\":\"meta\",\"version\":1,\"spans\":1,\"metrics\":0,\"proc\":\"00000000000000cc\",\"trace\":\"{trace_id}\",\"remote_proc\":\"00000000000000bb\",\"remote_span\":2}}\n\
             {{\"type\":\"span\",\"id\":1,\"parent\":null,\"name\":\"rank\",\"thread\":1,\"start_us\":3,\"dur_us\":5,\"fields\":{{\"rank\":0}}}}\n"
        );
        let merged = merge_traces(&[client, server, rank]).unwrap();
        assert_eq!(merged.spans.len(), 4);
        assert_eq!(merged.segments.len(), 3);
        // Duplicate raw ids across processes are not an error and come out
        // globally unique.
        let mut ids: Vec<u64> = merged.spans.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 4, "rebased ids must be unique");
        // Walk each leaf up: everything reaches the client root.
        let by_id: HashMap<u64, &SpanNode> = merged.spans.iter().map(|s| (s.id, s)).collect();
        let client_root = merged
            .spans
            .iter()
            .find(|s| s.name == "request" && s.field("remote_proc").is_none())
            .unwrap();
        let rank_span = merged.spans.iter().find(|s| s.name == "rank").unwrap();
        let mut cur = rank_span;
        let mut hops = 0;
        while let Some(p) = cur.parent {
            cur = by_id[&p];
            hops += 1;
            assert!(hops < 10);
        }
        assert_eq!(cur.id, client_root.id, "rank chain reaches the client root");
        // The server request span itself re-parented under the client.
        let server_req = merged
            .spans
            .iter()
            .find(|s| s.name == "request" && s.field("remote_proc").is_some())
            .unwrap();
        assert_eq!(server_req.parent, Some(client_root.id));
        assert_eq!(merged.trace_ids()[0], trace_id);
    }

    #[test]
    fn adopted_capture_emits_remote_meta_that_merges_back() {
        use crate::TraceContext;
        let upstream = TraceContext {
            trace_hi: 0x1111_2222_3333_4444,
            trace_lo: 0x5555_6666_7777_8888,
            proc: 0xabcd,
            parent_span: 7,
        };
        let cap = capture();
        crate::adopt_remote_context(upstream);
        {
            let _s = span("rank");
        }
        let rec = cap.finish();
        assert_eq!(rec.remote, Some(upstream));
        assert_eq!(rec.trace, (upstream.trace_hi, upstream.trace_lo));
        let jsonl = rec.to_jsonl();
        assert!(
            jsonl.contains("\"remote_proc\":\"000000000000abcd\""),
            "{jsonl}"
        );
        let trace = parse_trace(&jsonl).unwrap();
        assert_eq!(trace.segments[0].remote, Some((0xabcd, 7)));
        assert_eq!(trace.segments[0].trace, upstream.trace_hex());
        // No segment owns proc 0xabcd here, so the root stays a root.
        assert_eq!(trace.spans[0].parent, None);
    }

    #[test]
    fn summary_mentions_metrics() {
        let rec = sample_recording();
        let s = rec.summary();
        assert!(s.contains("request"), "{s}");
        assert!(s.contains("runs"), "{s}");
        assert!(s.contains("count=1"), "{s}");
    }
}
