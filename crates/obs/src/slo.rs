//! Service-level objectives over the history ring: declarative latency
//! targets, error-budget accounting, and multi-window **burn rates**.
//!
//! A spec like "p99 of `serve.request_exec_us` under 50 ms, target
//! 99%" defines an error budget of `1 − target` (here 1%): the fraction
//! of requests allowed to exceed the threshold. Evaluation merges a
//! look-back span of ring windows ([`crate::timeseries::merge_windows`])
//! into one distribution and computes
//!
//! ```text
//! bad_fraction = bad_events / total_events
//! burn_rate    = bad_fraction / (1 − target)
//! ```
//!
//! A burn rate of 1.0 means the service is consuming budget exactly as
//! fast as the target allows; 10.0 means ten times too fast. Each spec
//! is evaluated over *several* look-backs (short + long) and only flags a
//! breach when **every** look-back burns above 1.0 — the classic
//! multi-window guard against paging on a single noisy window.
//!
//! Bad events are counted from histogram buckets with per-bucket linear
//! apportioning (a bucket straddling the threshold contributes the
//! fraction of its value range above it). That rule is *linear in bucket
//! counts*, which makes the budget math exactly conservative under
//! window merges: the bad-event count of a merged span equals the sum of
//! the per-window counts, no matter how the span is partitioned — pinned
//! by a property test below.

use crate::metrics::{split_labeled_name, HistogramSnapshot, MetricsRegistry};
use crate::timeseries::{merge_windows, WindowSnapshot};

/// One declarative objective: "at least `target` of `metric` events stay
/// at or under `threshold_us`, judged over each of `lookbacks` windows".
#[derive(Clone, Debug, PartialEq)]
pub struct SloSpec {
    /// Short identifier, used in `obs.slo.<name>.*` gauge names.
    pub name: String,
    /// Histogram to judge — a plain name (`serve.request_exec_us`) or a
    /// labeled family, which aggregates every `metric{label}` member.
    pub metric: String,
    /// Latency threshold in microseconds; events above it are "bad".
    pub threshold_us: u64,
    /// Fraction of events that must be good, e.g. `0.99`. The error
    /// budget is `1 − target`.
    pub target: f64,
    /// Look-back spans in ring windows, shortest first (e.g. `[6, 30]`).
    /// A breach requires every span to burn above 1.0.
    pub lookbacks: Vec<usize>,
}

impl SloSpec {
    /// A two-window (short + long look-back) latency objective.
    pub fn latency(
        name: &str,
        metric: &str,
        threshold_us: u64,
        target: f64,
        short: usize,
        long: usize,
    ) -> SloSpec {
        SloSpec {
            name: name.to_string(),
            metric: metric.to_string(),
            threshold_us,
            target: target.clamp(0.0, 1.0),
            lookbacks: vec![short, long],
        }
    }

    /// The error budget `1 − target` (floored at a tiny positive value so
    /// a `target` of 1.0 yields huge-but-finite burn rates).
    pub fn budget(&self) -> f64 {
        (1.0 - self.target).max(1e-9)
    }
}

/// One look-back span's burn accounting for one spec.
#[derive(Clone, Debug, PartialEq)]
pub struct ObjectiveStatus {
    /// How many ring windows this span merged.
    pub lookback: usize,
    /// Events observed in the span.
    pub total: u64,
    /// Events (linearly apportioned) above the threshold.
    pub bad: f64,
    /// `bad / total` (0 when the span is empty).
    pub bad_fraction: f64,
    /// `bad_fraction / budget`; 1.0 = consuming budget exactly at the
    /// allowed rate.
    pub burn_rate: f64,
    /// `1 − burn_rate`, clamped to `[-1, 1]` for reporting: the share of
    /// this span's budget still unspent (negative = overspent).
    pub budget_remaining: f64,
}

/// One spec's evaluation across all its look-backs.
#[derive(Clone, Debug, PartialEq)]
pub struct SloStatus {
    /// The spec's `name`.
    pub name: String,
    /// The judged histogram (or family).
    pub metric: String,
    /// Threshold in microseconds.
    pub threshold_us: u64,
    /// The spec's target fraction.
    pub target: f64,
    /// Per-look-back burn accounting, same order as the spec.
    pub windows: Vec<ObjectiveStatus>,
    /// True when every non-empty look-back burns above 1.0 (and at least
    /// one saw traffic).
    pub breached: bool,
}

/// All specs evaluated against one history snapshot.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SloReport {
    /// One entry per spec, same order as evaluated.
    pub objectives: Vec<SloStatus>,
}

impl SloReport {
    /// Whether any objective breached.
    pub fn any_breached(&self) -> bool {
        self.objectives.iter().any(|o| o.breached)
    }

    /// The worst (smallest) `budget_remaining` across every objective and
    /// look-back, or 1.0 when nothing has traffic — the single number
    /// `top` paints as "SLO budget".
    pub fn worst_budget_remaining(&self) -> f64 {
        self.objectives
            .iter()
            .flat_map(|o| o.windows.iter())
            .filter(|w| w.total > 0)
            .map(|w| w.budget_remaining)
            .fold(1.0, f64::min)
    }

    /// Publishes the report as `obs.slo.*` gauges (parts-per-million, so
    /// the integer gauge schema carries the fractions):
    /// `obs.slo.<name>.burn_ppm.<lookback>`,
    /// `obs.slo.<name>.budget_remaining_ppm` (worst look-back), and
    /// `obs.slo.<name>.breached`.
    pub fn publish(&self, registry: &MetricsRegistry) {
        for o in &self.objectives {
            let mut worst = 1.0f64;
            for w in &o.windows {
                registry.gauge_set(
                    &format!("obs.slo.{}.burn_ppm.{}", o.name, w.lookback),
                    to_ppm(w.burn_rate),
                );
                if w.total > 0 {
                    worst = worst.min(w.budget_remaining);
                }
            }
            registry.gauge_set(
                &format!("obs.slo.{}.budget_remaining_ppm", o.name),
                to_ppm(worst),
            );
            registry.gauge_set(
                &format!("obs.slo.{}.breached", o.name),
                i64::from(o.breached),
            );
        }
    }
}

fn to_ppm(v: f64) -> i64 {
    (v.clamp(-1000.0, 1000.0) * 1e6).round() as i64
}

/// Events in `h` strictly above `threshold`, apportioning each straddling
/// bucket by the fraction of its value range above the threshold. Linear
/// in bucket counts, hence exactly additive under snapshot merges.
pub fn bad_events(h: &HistogramSnapshot, threshold: u64) -> f64 {
    let mut bad = 0.0f64;
    for (idx, &count) in h.buckets.iter().enumerate() {
        if count == 0 {
            continue;
        }
        let (lo, hi) = if idx == 0 {
            (0u64, 0u64)
        } else if idx >= 64 {
            (1u64 << 63, u64::MAX)
        } else {
            (1u64 << (idx - 1), (1u64 << idx) - 1)
        };
        if hi <= threshold {
            continue;
        }
        if lo > threshold {
            bad += count as f64;
            continue;
        }
        // lo <= threshold < hi: the integers (threshold, hi] are bad.
        let width = (hi - lo) as f64 + 1.0;
        let above = (hi - threshold) as f64;
        bad += count as f64 * (above / width);
    }
    bad
}

/// Sums `metric` (and, when it is a family, every `metric{label}`
/// member) out of one merged window.
fn family_histogram(window: &WindowSnapshot, metric: &str) -> HistogramSnapshot {
    let mut out = HistogramSnapshot::default();
    for (name, h) in &window.histograms {
        let matches =
            name == metric || split_labeled_name(name).is_some_and(|(family, _)| family == metric);
        if matches {
            out.merge(h);
        }
    }
    out
}

/// Evaluates every spec against the ring's resident windows (oldest
/// first, as [`crate::timeseries::TimeSeriesRing::windows`] returns
/// them). A look-back of `n` judges the newest `n` windows.
pub fn evaluate(specs: &[SloSpec], windows: &[WindowSnapshot]) -> SloReport {
    let mut report = SloReport::default();
    for spec in specs {
        let budget = spec.budget();
        let mut statuses = Vec::with_capacity(spec.lookbacks.len());
        for &lookback in &spec.lookbacks {
            let span_start = windows.len().saturating_sub(lookback.max(1));
            let merged = merge_windows(&windows[span_start..]);
            let h = family_histogram(&merged, &spec.metric);
            let total = h.count;
            let bad = bad_events(&h, spec.threshold_us);
            let bad_fraction = if total == 0 { 0.0 } else { bad / total as f64 };
            let burn_rate = bad_fraction / budget;
            statuses.push(ObjectiveStatus {
                lookback,
                total,
                bad,
                bad_fraction,
                burn_rate,
                budget_remaining: (1.0 - burn_rate).clamp(-1.0, 1.0),
            });
        }
        let saw_traffic = statuses.iter().any(|s| s.total > 0);
        let breached = saw_traffic
            && statuses.iter().all(|s| s.total == 0 || s.burn_rate > 1.0)
            && statuses.iter().any(|s| s.total > 0 && s.burn_rate > 1.0);
        report.objectives.push(SloStatus {
            name: spec.name.clone(),
            metric: spec.metric.clone(),
            threshold_us: spec.threshold_us,
            target: spec.target,
            windows: statuses,
            breached,
        });
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;
    use crate::timeseries::TimeSeriesRing;

    fn hist(values: &[u64]) -> HistogramSnapshot {
        let reg = MetricsRegistry::new();
        for &v in values {
            reg.histogram_record("h", v);
        }
        reg.histogram("h")
    }

    #[test]
    fn bad_events_counts_whole_buckets_and_apportions_straddlers() {
        // 2048 is the upper bound of bucket [1024, 2047]'s neighbor:
        // everything at 4096 is fully above a 2048 threshold.
        let h = hist(&[100, 100, 4096, 4096, 4096]);
        assert_eq!(bad_events(&h, 2048), 3.0);
        // Threshold inside the [64,127] bucket: 100 lands there; the
        // fraction above 100 is (127-100)/64 of each event.
        let h = hist(&[100; 64]);
        let expect = 64.0 * (27.0 / 64.0);
        assert!((bad_events(&h, 100) - expect).abs() < 1e-9);
        // Nothing is above u64::MAX; everything is above 0 except 0s.
        assert_eq!(bad_events(&hist(&[5, 9]), u64::MAX), 0.0);
        assert_eq!(bad_events(&hist(&[0, 0, 7]), 0), 1.0);
    }

    #[test]
    fn burn_rate_flags_only_multi_window_breaches() {
        let reg = MetricsRegistry::new();
        let ring = TimeSeriesRing::new(16);
        // Three healthy windows, then one terrible one.
        for _ in 0..3 {
            for _ in 0..100 {
                reg.histogram_record("exec", 10);
            }
            ring.sample(&reg);
        }
        for _ in 0..100 {
            reg.histogram_record("exec", 10_000);
        }
        ring.sample(&reg);

        let spec = SloSpec::latency("exec_p99", "exec", 1000, 0.99, 1, 4);
        let report = evaluate(std::slice::from_ref(&spec), &ring.windows());
        let o = &report.objectives[0];
        // Short window: 100% bad, burn 100x. Long window: 25% bad,
        // burn 25x. Both above 1.0 → breach.
        assert!(o.windows[0].burn_rate > 50.0, "{:?}", o.windows[0]);
        assert!(o.windows[1].burn_rate > 10.0, "{:?}", o.windows[1]);
        assert!(o.breached);
        assert!(report.any_breached());
        assert!(report.worst_budget_remaining() < 0.0);

        // Only the long window burning (bad traffic aged out of the
        // short one) must NOT breach.
        for _ in 0..100 {
            reg.histogram_record("exec", 10);
        }
        ring.sample(&reg);
        let report = evaluate(&[spec], &ring.windows());
        let o = &report.objectives[0];
        assert!(o.windows[0].burn_rate < 1.0);
        assert!(o.windows[1].burn_rate > 1.0);
        assert!(!o.breached);
    }

    #[test]
    fn labeled_families_aggregate_into_one_objective() {
        let reg = MetricsRegistry::new();
        let ring = TimeSeriesRing::new(4);
        reg.histogram_record_labeled("exec", "small", 10);
        reg.histogram_record_labeled("exec", "large", 90_000);
        ring.sample(&reg);
        let spec = SloSpec::latency("exec", "exec", 1000, 0.5, 1, 1);
        let report = evaluate(&[spec], &ring.windows());
        let w = &report.objectives[0].windows[0];
        assert_eq!(w.total, 2, "both family members counted");
        assert!((w.bad - 1.0).abs() < 1e-9);
    }

    #[test]
    fn publish_surfaces_ppm_gauges() {
        let reg = MetricsRegistry::new();
        let ring = TimeSeriesRing::new(4);
        for _ in 0..100 {
            reg.histogram_record("exec", 10);
        }
        ring.sample(&reg);
        let spec = SloSpec::latency("exec_p99", "exec", 1000, 0.99, 1, 4);
        evaluate(&[spec], &ring.windows()).publish(&reg);
        assert_eq!(reg.gauge_value("obs.slo.exec_p99.breached"), 0);
        assert_eq!(
            reg.gauge_value("obs.slo.exec_p99.budget_remaining_ppm"),
            1_000_000
        );
        assert_eq!(reg.gauge_value("obs.slo.exec_p99.burn_ppm.1"), 0);
    }

    /// Property: bad-event counting is exactly additive under arbitrary
    /// window merges, so the error budget is conserved no matter how a
    /// history span is partitioned. Deterministic LCG, many random
    /// partitions and thresholds.
    #[test]
    fn burn_math_conserves_budget_across_arbitrary_merges() {
        let mut state = 0x2545F491_4F6CDD1Du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _trial in 0..50 {
            // Random windowed traffic over one histogram.
            let n_windows = (next() % 9 + 2) as usize;
            let windows: Vec<HistogramSnapshot> = (0..n_windows)
                .map(|_| {
                    let reg = MetricsRegistry::new();
                    for _ in 0..(next() % 200) {
                        reg.histogram_record("h", next() % 1_000_000);
                    }
                    reg.histogram("h")
                })
                .collect();
            // The whole span merged at once.
            let mut whole = HistogramSnapshot::default();
            for w in &windows {
                whole.merge(w);
            }
            // A random coarser partition of the same span, each part
            // merged, bad events summed part by part.
            let threshold = next() % 2_000_000;
            let mut sum_by_window = 0.0f64;
            let mut sum_by_partition = 0.0f64;
            let mut part = HistogramSnapshot::default();
            for (i, w) in windows.iter().enumerate() {
                sum_by_window += bad_events(w, threshold);
                part.merge(w);
                let cut_here = next() % 2 == 0 || i == n_windows - 1;
                if cut_here {
                    sum_by_partition += bad_events(&part, threshold);
                    part = HistogramSnapshot::default();
                }
            }
            let direct = bad_events(&whole, threshold);
            let tol = 1e-9 * direct.max(1.0);
            assert!(
                (sum_by_window - direct).abs() <= tol,
                "per-window sum {sum_by_window} != whole-span {direct}"
            );
            assert!(
                (sum_by_partition - direct).abs() <= tol,
                "partition sum {sum_by_partition} != whole-span {direct}"
            );
            // Totals conserve too, so bad_fraction and burn rate agree.
            let total: u64 = windows.iter().map(|w| w.count).sum();
            assert_eq!(total, whole.count);
        }
    }
}
