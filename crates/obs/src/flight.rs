//! The flight recorder: a fixed-size, always-on ring of span closes.
//!
//! Full capture ([`crate::capture`]) is opt-in and serialized; the flight
//! recorder is neither. Every [`Span`](crate::Span) close — whether tracing
//! is enabled or not — deposits one fixed-size [`FlightRecord`] into a
//! static ring of [`FLIGHT_CAPACITY`] slots, so a wedged or just-crashed
//! process can always explain its recent past (the serve layer dumps the
//! ring over a `TRACE_DUMP` frame, and the CLI dumps it on panic).
//!
//! The ring is lock-light: one short, allocation-free critical section per
//! span close over a `const`-initialized array (std mutexes don't allocate),
//! which keeps both the zero-allocation guarantee of the disabled path and
//! the `obs_overhead_gate` ≤ 1.10x budget intact.

use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// How many span-close events the ring retains (the newest
/// `FLIGHT_CAPACITY` survive; older ones are overwritten).
pub const FLIGHT_CAPACITY: usize = 256;

/// One span close, as retained by the ring and shipped over `TRACE_DUMP`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlightRecord {
    /// Process-wide close ordinal, starting at 1 (gaps never occur; a dump
    /// whose smallest `seq` is > 1 has wrapped).
    pub seq: u64,
    /// The span's static name.
    pub name: String,
    /// Small per-process thread ordinal (see [`crate::SpanRecord::thread`]).
    pub thread: u64,
    /// Microseconds from the *process* epoch (first flight event or span)
    /// to the span's close. Note: a different timebase than the capture
    /// epoch used by [`crate::SpanRecord::start_us`].
    pub end_us: u64,
    /// Span duration in microseconds.
    pub dur_us: u64,
}

/// A ring slot. `seq == 0` marks a never-written slot.
#[derive(Clone, Copy)]
struct Slot {
    seq: u64,
    name: &'static str,
    thread: u64,
    end_us: u64,
    dur_us: u64,
}

const EMPTY: Slot = Slot {
    seq: 0,
    name: "",
    thread: 0,
    end_us: 0,
    dur_us: 0,
};

struct Ring {
    slots: [Slot; FLIGHT_CAPACITY],
    /// Index of the next slot to overwrite.
    next: usize,
    /// Last sequence number handed out.
    seq: u64,
}

static RING: Mutex<Ring> = Mutex::new(Ring {
    slots: [EMPTY; FLIGHT_CAPACITY],
    next: 0,
    seq: 0,
});

/// The process-wide monotonic epoch the flight timebase counts from.
static PROCESS_EPOCH: OnceLock<Instant> = OnceLock::new();

/// Microseconds since the process epoch (lazily pinned on first use).
pub(crate) fn process_micros() -> u64 {
    PROCESS_EPOCH
        .get_or_init(Instant::now)
        .elapsed()
        .as_micros() as u64
}

/// Deposits one span close into the ring. Allocation-free.
pub(crate) fn push(name: &'static str, thread: u64, end_us: u64, dur_us: u64) {
    let mut ring = RING.lock().unwrap_or_else(|e| e.into_inner());
    ring.seq += 1;
    let seq = ring.seq;
    let next = ring.next;
    ring.slots[next] = Slot {
        seq,
        name,
        thread,
        end_us,
        dur_us,
    };
    ring.next = (next + 1) % FLIGHT_CAPACITY;
}

/// Snapshots the ring, oldest close first. At most [`FLIGHT_CAPACITY`]
/// records; fewer if the process has closed fewer spans.
pub fn flight_snapshot() -> Vec<FlightRecord> {
    let ring = RING.lock().unwrap_or_else(|e| e.into_inner());
    let mut out = Vec::with_capacity(FLIGHT_CAPACITY);
    for i in 0..FLIGHT_CAPACITY {
        let slot = &ring.slots[(ring.next + i) % FLIGHT_CAPACITY];
        if slot.seq == 0 {
            continue; // never written
        }
        out.push(FlightRecord {
            seq: slot.seq,
            name: slot.name.to_string(),
            thread: slot.thread,
            end_us: slot.end_us,
            dur_us: slot.dur_us,
        });
    }
    out
}

/// Serializes flight records as JSONL, one
/// `{"type":"flight","seq":..,"name":..,"thread":..,"end_us":..,"dur_us":..}`
/// object per line (the `TRACE_DUMP` payload format).
pub fn flight_to_jsonl(records: &[FlightRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&format!(
            "{{\"type\":\"flight\",\"seq\":{},\"name\":\"{}\",\"thread\":{},\"end_us\":{},\"dur_us\":{}}}\n",
            r.seq,
            crate::json::escape(&r.name),
            r.thread,
            r.end_us,
            r.dur_us,
        ));
    }
    out
}

/// Parses the output of [`flight_to_jsonl`] (blank lines ignored).
pub fn flight_from_jsonl(text: &str) -> Result<Vec<FlightRecord>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = crate::json::parse(line).map_err(|e| format!("flight line {}: {e}", lineno + 1))?;
        if v.as_object().is_none() {
            return Err(format!("flight line {}: not an object", lineno + 1));
        }
        let num = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(|v| v.as_u64())
                .ok_or_else(|| format!("flight line {}: missing number {key:?}", lineno + 1))
        };
        let name = v
            .get("name")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("flight line {}: missing string \"name\"", lineno + 1))?;
        out.push(FlightRecord {
            seq: num("seq")?,
            name: name.to_string(),
            thread: num("thread")?,
            end_us: num("end_us")?,
            dur_us: num("dur_us")?,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_roundtrip() {
        let records = vec![
            FlightRecord {
                seq: 1,
                name: "kernel".to_string(),
                thread: 2,
                end_us: 123,
                dur_us: 45,
            },
            FlightRecord {
                seq: 2,
                name: "net.connection".to_string(),
                thread: 1,
                end_us: 200,
                dur_us: 77,
            },
        ];
        let text = flight_to_jsonl(&records);
        assert_eq!(flight_from_jsonl(&text).unwrap(), records);
    }

    #[test]
    fn snapshot_orders_by_seq_and_caps_at_capacity() {
        // Hold a capture so span emission serializes with other tests'
        // captures (the ring is fed in enabled mode too; the disabled-mode
        // path is asserted by the `flight_ring` integration test, which
        // owns its whole process).
        let cap = crate::capture();
        for _ in 0..(FLIGHT_CAPACITY + 10) {
            let _s = crate::span("flight.fill");
        }
        drop(cap);
        let snap = flight_snapshot();
        assert_eq!(snap.len(), FLIGHT_CAPACITY, "full ring caps at capacity");
        for pair in snap.windows(2) {
            assert_eq!(pair[1].seq, pair[0].seq + 1, "seqs are gapless");
        }
        assert!(snap.iter().any(|r| r.name == "flight.fill"));
    }
}
