//! Time-series history: a fixed-capacity, allocation-bounded ring of
//! periodic [`MetricsRegistry`] **delta** windows.
//!
//! A registry snapshot is cumulative — great for "how many ever", useless
//! for "what is my p99 *right now* vs five minutes ago". The
//! [`TimeSeriesRing`] closes that gap: a lightweight ticker calls
//! [`TimeSeriesRing::sample`] every interval, and each call produces one
//! [`WindowSnapshot`] holding what happened *since the previous sample*:
//!
//! - **counters** as per-window deltas (divide by `dur_us` for a rate),
//! - **gauges** as the level at window close,
//! - **histograms** as per-window bucket deltas — exactly mergeable
//!   ([`HistogramSnapshot::merge`]), so any span of windows can be
//!   collapsed into one distribution without revisiting raw values.
//!
//! The ring holds at most its capacity of windows; older windows are
//! dropped (and counted in [`TimeSeriesRing::dropped`]), so a long-lived
//! server's history memory is bounded no matter how long it runs. Window
//! sequence numbers are monotone and contiguous, which is what lets a
//! scraper prove it lost nothing at wrap.
//!
//! ## JSONL
//!
//! [`history_to_jsonl`] serializes a window span in the *existing* trace
//! schema — each window opens with three marker gauges
//! (`obs.window.seq`, `obs.window.start_us`, `obs.window.dur_us`)
//! followed by its metric lines — so history payloads pass
//! [`crate::validate`] and re-parse through [`crate::parse_trace`]
//! unchanged; [`windows_from_jsonl`] splits the parsed metric stream back
//! into windows at the markers. (The `obs.window.*` names are reserved
//! for these markers; don't use them as real metrics.)

use crate::metrics::{HistogramSnapshot, MetricSnapshot, MetricValue, MetricsRegistry};
use std::collections::{HashMap, VecDeque};
use std::sync::Mutex;
use std::time::Instant;

/// Marker gauge carrying a window's sequence number in history JSONL.
pub const WINDOW_SEQ: &str = "obs.window.seq";
/// Marker gauge carrying a window's open time (µs since ring creation).
pub const WINDOW_START_US: &str = "obs.window.start_us";
/// Marker gauge carrying a window's length in microseconds.
pub const WINDOW_DUR_US: &str = "obs.window.dur_us";

/// What one sampling interval recorded: counter deltas, gauge levels, and
/// per-window histogram deltas, plus when the window ran.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WindowSnapshot {
    /// Monotone window number (contiguous across the ring's life, so a
    /// gap proves windows were dropped at wrap).
    pub seq: u64,
    /// Microseconds from ring creation to this window's open (the
    /// previous sample, or ring creation for window 0).
    pub start_us: u64,
    /// Window length in microseconds.
    pub dur_us: u64,
    /// Counter deltas this window, sorted by name (zero deltas omitted).
    pub counters: Vec<(String, u64)>,
    /// Gauge levels at window close, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// Per-window histogram deltas, sorted by name (empty deltas
    /// omitted). Each is exactly mergeable across windows.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl WindowSnapshot {
    /// The counter's delta this window (`0` when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// The gauge's level at window close (`None` when absent).
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// The histogram's per-window delta (`None` when absent).
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }
}

struct RingState {
    windows: VecDeque<WindowSnapshot>,
    /// Cumulative values at the previous sample, by name — what turns the
    /// next cumulative snapshot into a delta.
    last: HashMap<String, MetricValue>,
    next_seq: u64,
    last_sample_us: u64,
    dropped: u64,
}

/// The history ring: see the [module docs](self).
///
/// All methods take `&self` (one internal mutex); the ring is shared
/// between a sampling ticker and scrapers behind an `Arc`. Registry
/// *writers* never touch the ring's lock — they only touch the registry's
/// atomics — so sampling cannot stall the request path.
pub struct TimeSeriesRing {
    capacity: usize,
    epoch: Instant,
    inner: Mutex<RingState>,
}

impl std::fmt::Debug for TimeSeriesRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimeSeriesRing")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .finish()
    }
}

impl TimeSeriesRing {
    /// An empty ring holding at most `capacity` windows.
    ///
    /// # Panics
    /// Panics if `capacity` is zero (a ring that can hold nothing).
    pub fn new(capacity: usize) -> TimeSeriesRing {
        assert!(capacity >= 1, "a history ring needs at least one slot");
        TimeSeriesRing {
            capacity,
            epoch: Instant::now(),
            inner: Mutex::new(RingState {
                windows: VecDeque::with_capacity(capacity),
                last: HashMap::new(),
                next_seq: 0,
                last_sample_us: 0,
                dropped: 0,
            }),
        }
    }

    /// Closes one window: snapshots `registry`, turns it into deltas
    /// against the previous sample, and appends the window (dropping the
    /// oldest at capacity). Returns a copy of the appended window.
    pub fn sample(&self, registry: &MetricsRegistry) -> WindowSnapshot {
        let snapshot = registry.snapshot();
        let now_us = self.epoch.elapsed().as_micros() as u64;
        let mut state = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut window = WindowSnapshot {
            seq: state.next_seq,
            start_us: state.last_sample_us,
            dur_us: now_us.saturating_sub(state.last_sample_us),
            ..WindowSnapshot::default()
        };
        for m in snapshot {
            match &m.value {
                MetricValue::Counter(cur) => {
                    let prev = match state.last.get(&m.name) {
                        Some(MetricValue::Counter(p)) => *p,
                        _ => 0,
                    };
                    let delta = cur.saturating_sub(prev);
                    if delta > 0 {
                        window.counters.push((m.name.clone(), delta));
                    }
                }
                MetricValue::Gauge(level) => {
                    window.gauges.push((m.name.clone(), *level));
                }
                MetricValue::Histogram(cur) => {
                    let delta = match state.last.get(&m.name) {
                        Some(MetricValue::Histogram(prev)) => histogram_delta(prev, cur),
                        _ => cur.clone(),
                    };
                    if !delta.is_empty() {
                        window.histograms.push((m.name.clone(), delta));
                    }
                }
            }
            state.last.insert(m.name.clone(), m.value);
        }
        state.next_seq += 1;
        state.last_sample_us = now_us;
        if state.windows.len() == self.capacity {
            state.windows.pop_front();
            state.dropped += 1;
        }
        state.windows.push_back(window.clone());
        window
    }

    /// The resident windows, oldest first.
    pub fn windows(&self) -> Vec<WindowSnapshot> {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .windows
            .iter()
            .cloned()
            .collect()
    }

    /// Resident window count (at most the capacity).
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .windows
            .len()
    }

    /// Whether no window has been sampled yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The fixed capacity this ring was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Windows dropped at wrap over the ring's lifetime.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).dropped
    }

    /// The resident history as schema-valid JSONL
    /// ([`history_to_jsonl`]) — the `STATS_HISTORY` scrape payload.
    pub fn to_jsonl(&self) -> String {
        history_to_jsonl(&self.windows())
    }
}

/// The exact per-window difference of two cumulative snapshots of the
/// same histogram: counts, sums, and buckets subtract; the window's
/// min/max are recovered from its lowest/highest non-empty delta bucket
/// (tightened by the cumulative min/max when they fall inside it).
fn histogram_delta(prev: &HistogramSnapshot, cur: &HistogramSnapshot) -> HistogramSnapshot {
    let buckets: Vec<u64> = cur
        .buckets
        .iter()
        .zip(&prev.buckets)
        .map(|(c, p)| c.saturating_sub(*p))
        .collect();
    let lowest = buckets.iter().position(|&b| b > 0);
    let highest = buckets.iter().rposition(|&b| b > 0);
    let (min, max) = match (lowest, highest) {
        (Some(lo), Some(hi)) => {
            let lo_bounds = bucket_range(lo);
            let hi_bounds = bucket_range(hi);
            (
                cur.min.clamp(lo_bounds.0, lo_bounds.1),
                cur.max.clamp(hi_bounds.0, hi_bounds.1),
            )
        }
        _ => (0, 0),
    };
    HistogramSnapshot {
        count: cur.count.saturating_sub(prev.count),
        sum: cur.sum.saturating_sub(prev.sum),
        min,
        max,
        buckets,
    }
}

/// The inclusive value range of log2 bucket `idx` (bucket 0 holds 0).
fn bucket_range(idx: usize) -> (u64, u64) {
    if idx == 0 {
        (0, 0)
    } else if idx >= 64 {
        (1u64 << 63, u64::MAX)
    } else {
        (1u64 << (idx - 1), (1u64 << idx) - 1)
    }
}

/// Serializes windows as trace-schema JSONL: per window, the three
/// `obs.window.*` marker gauges, then counter/gauge/histogram lines.
/// Every produced line passes [`crate::validate_line`].
pub fn history_to_jsonl(windows: &[WindowSnapshot]) -> String {
    let mut out = String::new();
    for w in windows {
        let mut metrics: Vec<MetricSnapshot> = vec![
            MetricSnapshot {
                name: WINDOW_SEQ.to_string(),
                value: MetricValue::Gauge(w.seq as i64),
            },
            MetricSnapshot {
                name: WINDOW_START_US.to_string(),
                value: MetricValue::Gauge(w.start_us as i64),
            },
            MetricSnapshot {
                name: WINDOW_DUR_US.to_string(),
                value: MetricValue::Gauge(w.dur_us as i64),
            },
        ];
        for (name, v) in &w.counters {
            metrics.push(MetricSnapshot {
                name: name.clone(),
                value: MetricValue::Counter(*v),
            });
        }
        for (name, v) in &w.gauges {
            metrics.push(MetricSnapshot {
                name: name.clone(),
                value: MetricValue::Gauge(*v),
            });
        }
        for (name, h) in &w.histograms {
            metrics.push(MetricSnapshot {
                name: name.clone(),
                value: MetricValue::Histogram(h.clone()),
            });
        }
        out.push_str(&crate::export::metrics_to_jsonl(&metrics));
    }
    out
}

/// Parses history JSONL (as written by [`history_to_jsonl`]) back into
/// windows: the text re-parses through [`crate::parse_trace`] (so every
/// line is schema-checked), and the metric stream is split into windows
/// at the `obs.window.seq` markers.
pub fn windows_from_jsonl(text: &str) -> Result<Vec<WindowSnapshot>, String> {
    let trace = crate::parse_trace(text)?;
    windows_from_metrics(&trace.metrics)
}

/// Splits an already-parsed metric stream (e.g. from a decoded
/// `STATS_HISTORY` frame) into windows at the `obs.window.seq` markers.
pub fn windows_from_metrics(metrics: &[MetricSnapshot]) -> Result<Vec<WindowSnapshot>, String> {
    let mut out: Vec<WindowSnapshot> = Vec::new();
    for m in metrics {
        if m.name == WINDOW_SEQ {
            let seq = match m.value {
                MetricValue::Gauge(v) if v >= 0 => v as u64,
                _ => return Err(format!("bad {WINDOW_SEQ} marker")),
            };
            out.push(WindowSnapshot {
                seq,
                ..WindowSnapshot::default()
            });
            continue;
        }
        let Some(window) = out.last_mut() else {
            return Err(format!("metric {:?} before the first {WINDOW_SEQ}", m.name));
        };
        match (&m.name[..], &m.value) {
            (WINDOW_START_US, MetricValue::Gauge(v)) => window.start_us = (*v).max(0) as u64,
            (WINDOW_DUR_US, MetricValue::Gauge(v)) => window.dur_us = (*v).max(0) as u64,
            (_, MetricValue::Counter(v)) => window.counters.push((m.name.clone(), *v)),
            (_, MetricValue::Gauge(v)) => window.gauges.push((m.name.clone(), *v)),
            (_, MetricValue::Histogram(h)) => window.histograms.push((m.name.clone(), h.clone())),
        }
    }
    for pair in out.windows(2) {
        if pair[1].seq <= pair[0].seq {
            return Err(format!(
                "window sequence not monotone: {} then {}",
                pair[0].seq, pair[1].seq
            ));
        }
    }
    Ok(out)
}

/// Collapses a span of windows into one: counter deltas add, histogram
/// deltas merge exactly, gauges keep the last window's level, and the
/// time range covers first open to last close. This is the "any span of
/// history is one distribution" operation SLO evaluation builds on.
pub fn merge_windows(windows: &[WindowSnapshot]) -> WindowSnapshot {
    let mut out = WindowSnapshot::default();
    let Some(first) = windows.first() else {
        return out;
    };
    out.seq = windows.last().map(|w| w.seq).unwrap_or(first.seq);
    out.start_us = first.start_us;
    out.dur_us = windows.iter().map(|w| w.dur_us).sum();
    let mut counters: HashMap<&str, u64> = HashMap::new();
    let mut histograms: HashMap<&str, HistogramSnapshot> = HashMap::new();
    for w in windows {
        for (name, v) in &w.counters {
            *counters.entry(name).or_default() += v;
        }
        for (name, h) in &w.histograms {
            histograms.entry(name).or_default().merge(h);
        }
        for (name, v) in &w.gauges {
            match out.gauges.iter_mut().find(|(n, _)| n == name) {
                Some(slot) => slot.1 = *v,
                None => out.gauges.push((name.clone(), *v)),
            }
        }
    }
    out.counters = counters
        .into_iter()
        .map(|(n, v)| (n.to_string(), v))
        .collect();
    out.counters.sort();
    out.histograms = histograms
        .into_iter()
        .map(|(n, h)| (n.to_string(), h))
        .collect();
    out.histograms.sort_by(|a, b| a.0.cmp(&b.0));
    out.gauges.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn windows_carry_deltas_not_cumulative_values() {
        let reg = MetricsRegistry::new();
        let ring = TimeSeriesRing::new(8);
        reg.counter_add("req", 5);
        reg.gauge_set("depth", 3);
        reg.histogram_record("lat", 100);
        reg.histogram_record("lat", 200);
        let w0 = ring.sample(&reg);
        assert_eq!(w0.counter("req"), 5);
        assert_eq!(w0.gauge("depth"), Some(3));
        assert_eq!(w0.histogram("lat").unwrap().count, 2);

        reg.counter_add("req", 2);
        reg.gauge_set("depth", 1);
        reg.histogram_record("lat", 400);
        let w1 = ring.sample(&reg);
        assert_eq!(w1.counter("req"), 2, "delta, not cumulative 7");
        assert_eq!(w1.gauge("depth"), Some(1));
        let lat = w1.histogram("lat").unwrap();
        assert_eq!(lat.count, 1, "only this window's record");
        assert_eq!(lat.sum, 400);
        assert!(lat.min >= 256 && lat.max <= 511, "{lat:?}");

        // A quiet window still exists (gauges only).
        let w2 = ring.sample(&reg);
        assert_eq!(w2.counter("req"), 0);
        assert!(w2.histogram("lat").is_none());
        assert_eq!(w2.seq, 2);
    }

    #[test]
    fn merged_window_histograms_equal_the_cumulative_distribution() {
        let reg = MetricsRegistry::new();
        let ring = TimeSeriesRing::new(16);
        let mut recorded = Vec::new();
        for chunk in [vec![1u64, 7, 300], vec![42, 42], vec![], vec![9000, 3]] {
            for &v in &chunk {
                reg.histogram_record("lat", v);
                recorded.push(v);
            }
            ring.sample(&reg);
        }
        let merged = merge_windows(&ring.windows());
        let merged_lat = merged.histogram("lat").unwrap();
        let cumulative = reg.histogram("lat");
        assert_eq!(merged_lat.count, cumulative.count);
        assert_eq!(merged_lat.sum, cumulative.sum);
        assert_eq!(merged_lat.buckets, cumulative.buckets);
    }

    #[test]
    fn wrap_drops_oldest_but_keeps_sequence_contiguous() {
        let reg = MetricsRegistry::new();
        let ring = TimeSeriesRing::new(4);
        for i in 0..10 {
            reg.counter_add("ticks", i + 1);
            ring.sample(&reg);
        }
        let windows = ring.windows();
        assert_eq!(windows.len(), 4);
        assert_eq!(ring.dropped(), 6);
        let seqs: Vec<u64> = windows.iter().map(|w| w.seq).collect();
        assert_eq!(seqs, [6, 7, 8, 9], "contiguous, newest at the back");
        // Deltas survive the wrap: window i recorded exactly i+1 ticks.
        for w in &windows {
            assert_eq!(w.counter("ticks"), w.seq + 1);
        }
    }

    #[test]
    fn history_jsonl_roundtrips_through_validate_and_parse() {
        let reg = MetricsRegistry::new();
        let ring = TimeSeriesRing::new(8);
        reg.counter_add("req", 3);
        reg.gauge_set("depth", -2);
        reg.histogram_record_labeled("lat", "16x16x16:r8", 77);
        ring.sample(&reg);
        reg.counter_add("req", 1);
        ring.sample(&reg);

        let jsonl = ring.to_jsonl();
        crate::validate(&jsonl).expect("history lines are schema-valid");
        let parsed = windows_from_jsonl(&jsonl).unwrap();
        let original = ring.windows();
        assert_eq!(parsed.len(), original.len());
        for (p, o) in parsed.iter().zip(&original) {
            assert_eq!((p.seq, p.start_us, p.dur_us), (o.seq, o.start_us, o.dur_us));
            assert_eq!(p.counters, o.counters);
            assert_eq!(p.gauges, o.gauges);
            assert_eq!(p.histograms, o.histograms);
        }
        assert_eq!(parsed[0].histogram("lat{16x16x16:r8}").unwrap().count, 1);
    }

    #[test]
    fn windows_from_jsonl_rejects_torn_history() {
        assert!(windows_from_jsonl("{\"type\":\"counter\",\"name\":\"x\",\"value\":1}").is_err());
        let out_of_order = format!(
            "{{\"type\":\"gauge\",\"name\":\"{WINDOW_SEQ}\",\"value\":5}}\n\
             {{\"type\":\"gauge\",\"name\":\"{WINDOW_SEQ}\",\"value\":4}}\n"
        );
        assert!(windows_from_jsonl(&out_of_order).is_err());
        assert_eq!(windows_from_jsonl("").unwrap(), vec![]);
    }

    #[test]
    fn concurrent_writers_ticker_and_scraper_lose_no_windows() {
        // Request threads hammer the registry while a ticker samples and
        // a scraper reads: every window must come out monotone and the
        // summed deltas must equal what the writers wrote.
        let reg = Arc::new(MetricsRegistry::new());
        let ring = Arc::new(TimeSeriesRing::new(64));
        let writers = 4;
        let per_writer = 2000u64;
        std::thread::scope(|scope| {
            for _ in 0..writers {
                let reg = Arc::clone(&reg);
                scope.spawn(move || {
                    for i in 0..per_writer {
                        reg.counter_add("req", 1);
                        reg.histogram_record("lat", i % 1000);
                    }
                });
            }
            let ticker = {
                let reg = Arc::clone(&reg);
                let ring = Arc::clone(&ring);
                scope.spawn(move || {
                    for _ in 0..30 {
                        ring.sample(&reg);
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    }
                })
            };
            // Scrape concurrently: every observed history must be
            // internally monotone and contiguous.
            let scraper = {
                let ring = Arc::clone(&ring);
                scope.spawn(move || {
                    for _ in 0..20 {
                        let windows = ring.windows();
                        for pair in windows.windows(2) {
                            assert_eq!(pair[1].seq, pair[0].seq + 1, "lost a window");
                        }
                        let jsonl = history_to_jsonl(&windows);
                        crate::validate(&jsonl).unwrap();
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    }
                })
            };
            ticker.join().unwrap();
            scraper.join().unwrap();
        });
        // One final sample closes the last partial window; the ring now
        // accounts for every write.
        ring.sample(&reg);
        let merged = merge_windows(&ring.windows());
        assert_eq!(merged.counter("req"), writers as u64 * per_writer);
        assert_eq!(
            merged.histogram("lat").unwrap().count,
            writers as u64 * per_writer
        );
    }
}
