//! Spans: RAII wall-time intervals with ids, parents, and typed fields.
//!
//! Parenting is a thread-local stack: a span opened while another span is
//! open on the *same thread* becomes its child. Worker threads that open a
//! span with no enclosing one produce a root — which is exactly how the
//! serve layer models "one root span per request".

use crate::{flight, Collector, TraceContext};
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A typed span-field value (the JSONL exporter maps each variant onto the
/// corresponding JSON type).
#[derive(Clone, Debug, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer (counts, word totals, ids).
    U64(u64),
    /// Signed integer (deltas, gauges).
    I64(i64),
    /// Float (modeled costs, fits).
    F64(f64),
    /// Boolean (cache hit, converged).
    Bool(bool),
    /// Text (algorithm labels, phase names, backend names).
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> FieldValue {
        FieldValue::U64(v)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> FieldValue {
        FieldValue::U64(v as u64)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> FieldValue {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> FieldValue {
        FieldValue::I64(v)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> FieldValue {
        FieldValue::F64(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> FieldValue {
        FieldValue::Bool(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> FieldValue {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> FieldValue {
        FieldValue::Str(v)
    }
}

/// One completed span, as stored in a [`Recording`](crate::Recording).
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Capture-unique id (monotonically assigned, starting at 1).
    pub id: u64,
    /// Id of the enclosing span on the same thread, `None` for a root.
    pub parent: Option<u64>,
    /// Static span name (`"planner"`, `"kernel"`, `"collective"`,
    /// `"request"`, `"factorize"`, `"sweep"`, `"mode"`).
    pub name: &'static str,
    /// Small per-process thread ordinal (1-based, assigned on first use).
    pub thread: u64,
    /// Microseconds from the capture's start to the span's open.
    pub start_us: u64,
    /// Span duration in microseconds.
    pub dur_us: u64,
    /// Typed key/value fields, in recording order.
    pub fields: Vec<(&'static str, FieldValue)>,
}

/// Per-process thread ordinals: small and stable for a trace, unlike the
/// opaque [`std::thread::ThreadId`].
static NEXT_THREAD: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static THREAD_ORDINAL: Cell<u64> = const { Cell::new(0) };
    /// Ids of this thread's open spans, innermost last.
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    /// Trace-id override installed by [`Span::adopt`]: spans (and outgoing
    /// contexts) on this thread belong to the adopted remote trace until
    /// the adopting span closes.
    static CURRENT_TRACE: Cell<Option<(u64, u64)>> = const { Cell::new(None) };
}

fn thread_ordinal() -> u64 {
    THREAD_ORDINAL.with(|c| {
        let mut t = c.get();
        if t == 0 {
            t = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
            c.set(t);
        }
        t
    })
}

/// The innermost open span id on this thread (the parent a new span or an
/// outgoing [`TraceContext`] would get), if any.
pub fn current_span_id() -> Option<u64> {
    SPAN_STACK.with(|s| s.borrow().last().copied())
}

/// The trace-id override installed by [`Span::adopt`] on this thread.
pub(crate) fn current_trace_override() -> Option<(u64, u64)> {
    CURRENT_TRACE.with(|c| c.get())
}

struct ActiveSpan {
    collector: Arc<Collector>,
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    start: Instant,
    start_us: u64,
    fields: Vec<(&'static str, FieldValue)>,
    /// `Some(previous)` when this span installed a trace override via
    /// [`Span::adopt`]; restored on drop.
    trace_restore: Option<Option<(u64, u64)>>,
}

/// An open span: closes (and records itself) on drop. Obtained from
/// [`crate::span()`]. When tracing is disabled the span is inert —
/// allocating and recording nothing — except that its close still deposits
/// one fixed-size event into the always-on flight recorder
/// (see [`crate::flight_snapshot`]).
pub struct Span {
    inner: Option<ActiveSpan>,
    /// Set when inert: just enough to feed the flight recorder on drop.
    flight: Option<(&'static str, Instant)>,
}

impl Span {
    pub(crate) fn noop(name: &'static str) -> Span {
        Span {
            inner: None,
            flight: Some((name, Instant::now())),
        }
    }

    pub(crate) fn enter(collector: Arc<Collector>, name: &'static str) -> Span {
        let id = collector.next_id();
        let parent = SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let parent = stack.last().copied();
            stack.push(id);
            parent
        });
        let start_us = collector.micros_since_epoch();
        Span {
            inner: Some(ActiveSpan {
                collector,
                id,
                parent,
                name,
                start: Instant::now(),
                start_us,
                fields: Vec::new(),
                trace_restore: None,
            }),
            flight: None,
        }
    }

    /// Whether this span is actually recording. Check before computing
    /// expensive field values (e.g. formatted labels).
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }

    /// This span's id, if recording (for tests and cross-references).
    pub fn id(&self) -> Option<u64> {
        self.inner.as_ref().map(|a| a.id)
    }

    /// Records a key/value field. No-op when inert.
    pub fn record(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        if let Some(active) = self.inner.as_mut() {
            active.fields.push((key, value.into()));
        }
    }

    /// Builder-style [`Span::record`].
    pub fn with(mut self, key: &'static str, value: impl Into<FieldValue>) -> Span {
        self.record(key, value);
        self
    }

    /// Adopts a remote parent: records the remote trace/proc/span as fields
    /// (`remote_trace`/`remote_proc` as hex strings — they do not fit JSON's
    /// f64 numbers exactly — and `remote_span` as an id), and switches this
    /// thread onto the remote trace id until this span closes. The trace
    /// merger ([`crate::merge_traces`]) re-parents this span under the
    /// remote span. No-op when inert.
    pub fn adopt(&mut self, ctx: TraceContext) {
        let Some(active) = self.inner.as_mut() else {
            return;
        };
        active.fields.push((
            "remote_trace",
            FieldValue::Str(format!("{:016x}{:016x}", ctx.trace_hi, ctx.trace_lo)),
        ));
        active
            .fields
            .push(("remote_proc", FieldValue::Str(format!("{:016x}", ctx.proc))));
        active
            .fields
            .push(("remote_span", FieldValue::U64(ctx.parent_span)));
        let prev = CURRENT_TRACE.with(|c| c.replace(Some((ctx.trace_hi, ctx.trace_lo))));
        if active.trace_restore.is_none() {
            active.trace_restore = Some(prev);
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(active) = self.inner.take() else {
            // Inert span: the only close-time work is the flight deposit.
            if let Some((name, start)) = self.flight.take() {
                let dur_us = start.elapsed().as_micros() as u64;
                flight::push(name, thread_ordinal(), flight::process_micros(), dur_us);
            }
            return;
        };
        let dur_us = active.start.elapsed().as_micros() as u64;
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Almost always the innermost; tolerate out-of-order drops
            // (e.g. a guard moved across scopes) by removing wherever it is.
            if stack.last() == Some(&active.id) {
                stack.pop();
            } else if let Some(pos) = stack.iter().rposition(|&id| id == active.id) {
                stack.remove(pos);
            }
        });
        if let Some(prev) = active.trace_restore {
            CURRENT_TRACE.with(|c| c.set(prev));
        }
        let thread = thread_ordinal();
        flight::push(active.name, thread, flight::process_micros(), dur_us);
        active.collector.push_span(SpanRecord {
            id: active.id,
            parent: active.parent,
            name: active.name,
            thread,
            start_us: active.start_us,
            dur_us,
            fields: active.fields,
        });
    }
}

#[cfg(test)]
mod tests {
    use crate::{capture, span};

    #[test]
    fn parents_follow_the_thread_local_stack() {
        let cap = capture();
        let root_id;
        {
            let root = span("request");
            root_id = root.id().unwrap();
            {
                let _a = span("sweep");
                let _b = span("mode");
            }
            let _c = span("sweep");
        }
        let rec = cap.finish();
        let by_name = |n: &str| rec.spans.iter().find(|s| s.name == n).unwrap();
        assert_eq!(by_name("request").parent, None);
        assert_eq!(by_name("mode").parent, Some(by_name("sweep").id));
        assert_eq!(by_name("sweep").parent, Some(root_id));
        // Both sweeps share the root parent.
        for s in rec.spans.iter().filter(|s| s.name == "sweep") {
            assert_eq!(s.parent, Some(root_id));
        }
    }

    #[test]
    fn spans_on_spawned_threads_are_roots() {
        let cap = capture();
        let _main_root = span("request");
        std::thread::spawn(|| {
            let _worker = span("kernel");
        })
        .join()
        .unwrap();
        drop(_main_root);
        let rec = cap.finish();
        let kernel = rec.spans.iter().find(|s| s.name == "kernel").unwrap();
        let request = rec.spans.iter().find(|s| s.name == "request").unwrap();
        assert_eq!(kernel.parent, None, "other thread, no inherited parent");
        assert_ne!(kernel.thread, request.thread);
    }

    #[test]
    fn concurrent_emission_keeps_every_parent_consistent() {
        // N threads each build a 3-deep chain; interleaving must corrupt
        // neither ids (all unique) nor parent links (each chain intact).
        let cap = capture();
        let threads = 8;
        let chains = 25;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    for _ in 0..chains {
                        let outer = span("request");
                        let outer_id = outer.id().unwrap();
                        let mid = span("sweep");
                        assert_eq!(mid.inner.as_ref().unwrap().parent, Some(outer_id));
                        let _inner = span("mode");
                    }
                });
            }
        });
        let rec = cap.finish();
        assert_eq!(rec.spans.len(), threads * chains * 3);
        let mut ids: Vec<u64> = rec.spans.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), threads * chains * 3, "span ids must be unique");
        for s in &rec.spans {
            if let Some(p) = s.parent {
                let parent = rec.spans.iter().find(|t| t.id == p).unwrap();
                assert_eq!(
                    parent.thread, s.thread,
                    "stack parenting is per-thread, so parents share the thread"
                );
                assert!(parent.start_us <= s.start_us + 1);
            } else {
                assert_eq!(s.name, "request", "only chain heads are roots");
            }
        }
    }

    #[test]
    fn fields_are_typed_and_ordered() {
        let cap = capture();
        {
            let mut s = span("planner").with("algorithm", "alg2(b=16)");
            s.record("cache_hit", false);
            s.record("modeled_words", 123.5f64);
            s.record("candidates", 3usize);
        }
        let rec = cap.finish();
        let fields = &rec.spans[0].fields;
        assert_eq!(fields[0].0, "algorithm");
        assert_eq!(fields[1].1, crate::FieldValue::Bool(false));
        assert_eq!(fields[3].1, crate::FieldValue::U64(3));
    }
}
