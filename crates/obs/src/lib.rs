//! # mttkrp-obs
//!
//! One tracing + metrics spine for the whole MTTKRP workspace, from the
//! kernel to the serving layer — with no external dependencies (the
//! workspace builds offline, so no `tracing`/`prometheus`; this crate *is*
//! the core they would provide).
//!
//! Three pieces:
//!
//! 1. **Spans** ([`span()`], [`Span`]) — RAII wall-time intervals with ids,
//!    parents (a thread-local stack), and typed key/value fields. The
//!    planner, every kernel execution, each distributed collective, each
//!    serve request, and each CP-ALS sweep emit one.
//! 2. **Metrics** ([`MetricsRegistry`]) — counters, gauges, and log2-bucket
//!    histograms behind atomics. A registry can be owned (the serve layer
//!    keeps one per server) and every global helper ([`counter_add`],
//!    [`gauge_add`], [`histogram_record`]) also feeds the active capture.
//! 3. **Export** ([`Recording`], [`validate`]) — JSONL (one self-describing
//!    object per line) plus a human summary (span tree with self/total
//!    times, top metrics), and a [`DriftReport`] comparing the paper's
//!    *modeled* communication words (Eqs. 12/14/18 via `netsim`) against
//!    the words the transport *measured* — the model-vs-reality tripwire.
//!
//! ## The disabled fast path
//!
//! Tracing is **off by default**. Every emission helper first does one
//! relaxed atomic load and returns: no allocation, no locking, no clock
//! read. The `obs_overhead_gate` binary in `mttkrp-bench` asserts that a
//! kernel run with this crate compiled in but disabled is within noise of
//! a raw run, and a test in this crate asserts the disabled hot path
//! allocates nothing at all.
//!
//! ## Capturing
//!
//! ```
//! let cap = mttkrp_obs::capture();
//! {
//!     let _root = mttkrp_obs::span("request").with("kind", "demo");
//!     let _child = mttkrp_obs::span("kernel");
//!     mttkrp_obs::counter_add("demo.runs", 1);
//! }
//! let rec = cap.finish();
//! assert_eq!(rec.spans.len(), 2);
//! assert_eq!(rec.spans[1].parent, None);           // "request" is the root
//! assert_eq!(rec.spans[0].parent, Some(rec.spans[1].id)); // "kernel" nests
//! for line in rec.to_jsonl().lines() {
//!     mttkrp_obs::validate_line(line).unwrap();    // every line is schema-valid
//! }
//! ```
//!
//! [`capture`] installs a fresh global collector and returns a guard;
//! guards serialize (a process has one capture at a time), so concurrent
//! tests queue instead of corrupting each other's recordings.

#![deny(missing_docs)]

pub mod drift;
pub mod export;
pub mod json;
pub mod metrics;
pub mod span;

pub use drift::{DriftRecord, DriftReport};
pub use export::{metrics_summary, parse_trace, tree_summary, Recording, SpanNode, Trace};
pub use metrics::{HistogramSnapshot, MetricSnapshot, MetricValue, MetricsRegistry};
pub use span::{FieldValue, Span, SpanRecord};

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};
use std::time::Instant;

/// Re-exported line validators (see [`export`]).
pub use export::{validate, validate_line};

// ---------------------------------------------------------------------------
// Global capture state
// ---------------------------------------------------------------------------

/// The one-word gate every hot-path helper checks first. Relaxed is enough:
/// a capture that races with an emission may miss that one event, which is
/// exactly the semantics of "tracing was not yet on".
static ENABLED: AtomicBool = AtomicBool::new(false);

/// The active collector, installed by [`capture`].
static COLLECTOR: RwLock<Option<Arc<Collector>>> = RwLock::new(None);

/// Serializes captures: one recording at a time per process, so tests that
/// trace can run under the default multi-threaded harness without
/// interleaving each other's events.
static CAPTURE_LOCK: Mutex<()> = Mutex::new(());

/// Whether a capture is active. The disabled branch is the hot path: one
/// relaxed atomic load, nothing else.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

pub(crate) struct Collector {
    epoch: Instant,
    next_id: AtomicU64,
    spans: Mutex<Vec<SpanRecord>>,
    metrics: MetricsRegistry,
}

impl Collector {
    fn new() -> Collector {
        Collector {
            epoch: Instant::now(),
            next_id: AtomicU64::new(1),
            spans: Mutex::new(Vec::new()),
            metrics: MetricsRegistry::new(),
        }
    }

    pub(crate) fn next_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    pub(crate) fn micros_since_epoch(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    pub(crate) fn push_span(&self, record: SpanRecord) {
        self.spans
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(record);
    }

    pub(crate) fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    fn snapshot(&self) -> Recording {
        let spans = self.spans.lock().unwrap_or_else(|e| e.into_inner()).clone();
        Recording {
            spans,
            metrics: self.metrics.snapshot(),
        }
    }
}

pub(crate) fn current_collector() -> Option<Arc<Collector>> {
    COLLECTOR
        .read()
        .unwrap_or_else(|e| e.into_inner())
        .as_ref()
        .cloned()
}

/// A live capture: tracing is enabled while this guard exists. Obtain one
/// with [`capture`]; turn it into the recorded data with
/// [`Capture::finish`] (or just drop it to discard the recording).
pub struct Capture {
    collector: Arc<Collector>,
    _serial: MutexGuard<'static, ()>,
}

/// Starts capturing: installs a fresh collector, enables every emission
/// helper, and returns the guard that owns the recording.
///
/// Captures serialize process-wide — a second concurrent `capture()` blocks
/// until the first guard drops — so traced tests compose under the default
/// parallel test harness.
pub fn capture() -> Capture {
    let serial = CAPTURE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let collector = Arc::new(Collector::new());
    *COLLECTOR.write().unwrap_or_else(|e| e.into_inner()) = Some(Arc::clone(&collector));
    ENABLED.store(true, Ordering::SeqCst);
    Capture {
        collector,
        _serial: serial,
    }
}

fn uninstall() {
    ENABLED.store(false, Ordering::SeqCst);
    *COLLECTOR.write().unwrap_or_else(|e| e.into_inner()) = None;
}

impl Capture {
    /// Stops capturing and returns everything recorded: spans in completion
    /// order plus a snapshot of every metric.
    pub fn finish(self) -> Recording {
        uninstall();
        self.collector.snapshot()
    }
}

impl Drop for Capture {
    fn drop(&mut self) {
        uninstall();
    }
}

// ---------------------------------------------------------------------------
// Emission helpers (the instrumentation surface the other crates call)
// ---------------------------------------------------------------------------

/// Opens a span named `name`, parented under the current thread's innermost
/// open span. Returns a no-op guard (allocating nothing) when tracing is
/// disabled — check [`Span::is_active`] before computing expensive field
/// values.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span::noop();
    }
    match current_collector() {
        Some(collector) => Span::enter(collector, name),
        None => Span::noop(),
    }
}

/// Adds `v` to the capture's counter `name`. No-op (one atomic load) when
/// tracing is disabled.
#[inline]
pub fn counter_add(name: &str, v: u64) {
    if !enabled() {
        return;
    }
    if let Some(c) = current_collector() {
        c.metrics().counter_add(name, v);
    }
}

/// Adds `delta` (possibly negative) to the capture's gauge `name`. No-op
/// when tracing is disabled.
#[inline]
pub fn gauge_add(name: &str, delta: i64) {
    if !enabled() {
        return;
    }
    if let Some(c) = current_collector() {
        c.metrics().gauge_add(name, delta);
    }
}

/// Records `v` into the capture's histogram `name`. No-op when tracing is
/// disabled.
#[inline]
pub fn histogram_record(name: &str, v: u64) {
    if !enabled() {
        return;
    }
    if let Some(c) = current_collector() {
        c.metrics().histogram_record(name, v);
    }
}

/// Records a duration (as integer microseconds) into histogram `name`.
#[inline]
pub fn histogram_record_duration(name: &str, d: std::time::Duration) {
    if !enabled() {
        return;
    }
    histogram_record(name, d.as_micros() as u64);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_and_spans_are_inert() {
        assert!(!enabled());
        let s = span("nothing");
        assert!(!s.is_active());
        counter_add("nothing.count", 1);
        let rec = capture().finish();
        assert!(rec.spans.is_empty());
        assert!(rec.metrics.is_empty());
    }

    #[test]
    fn capture_records_spans_and_metrics() {
        let cap = capture();
        assert!(enabled());
        {
            let _root = span("request").with("kind", "test");
            {
                let mut child = span("kernel");
                child.record("mode", 2u64);
                counter_add("runs", 3);
                histogram_record("lat_us", 7);
            }
            gauge_add("depth", 5);
            gauge_add("depth", -2);
        }
        let rec = cap.finish();
        assert!(!enabled());
        // Spans complete child-first.
        assert_eq!(rec.spans[0].name, "kernel");
        assert_eq!(rec.spans[1].name, "request");
        assert_eq!(rec.spans[0].parent, Some(rec.spans[1].id));
        assert_eq!(rec.spans[1].parent, None);
        let names: Vec<_> = rec.metrics.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, ["depth", "lat_us", "runs"]); // sorted
    }

    #[test]
    fn sequential_captures_are_isolated() {
        let first = {
            let cap = capture();
            counter_add("x", 1);
            cap.finish()
        };
        let second = {
            let cap = capture();
            {
                let _s = span("fresh");
            }
            cap.finish()
        };
        assert_eq!(first.metrics.len(), 1);
        assert!(first.spans.is_empty());
        assert!(second.metrics.is_empty());
        assert_eq!(second.spans.len(), 1);
    }

    #[test]
    fn dropped_capture_disables_tracing() {
        {
            let _cap = capture();
            assert!(enabled());
        }
        assert!(!enabled());
    }
}
