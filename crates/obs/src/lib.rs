//! # mttkrp-obs
//!
//! One tracing + metrics spine for the whole MTTKRP workspace, from the
//! kernel to the serving layer — with no external dependencies (the
//! workspace builds offline, so no `tracing`/`prometheus`; this crate *is*
//! the core they would provide).
//!
//! Three pieces:
//!
//! 1. **Spans** ([`span()`], [`Span`]) — RAII wall-time intervals with ids,
//!    parents (a thread-local stack), and typed key/value fields. The
//!    planner, every kernel execution, each distributed collective, each
//!    serve request, and each CP-ALS sweep emit one.
//! 2. **Metrics** ([`MetricsRegistry`]) — counters, gauges, and log2-bucket
//!    histograms behind atomics. A registry can be owned (the serve layer
//!    keeps one per server) and every global helper ([`counter_add`],
//!    [`gauge_add`], [`histogram_record`]) also feeds the active capture.
//! 3. **Export** ([`Recording`], [`validate`]) — JSONL (one self-describing
//!    object per line) plus a human summary (span tree with self/total
//!    times, top metrics), and a [`DriftReport`] comparing the paper's
//!    *modeled* communication words (Eqs. 12/14/18 via `netsim`) against
//!    the words the transport *measured* — the model-vs-reality tripwire.
//!
//! ## The disabled fast path
//!
//! Tracing is **off by default**. Every emission helper first does one
//! relaxed atomic load and returns: no allocation, no locking, no clock
//! read. The `obs_overhead_gate` binary in `mttkrp-bench` asserts that a
//! kernel run with this crate compiled in but disabled is within noise of
//! a raw run, and a test in this crate asserts the disabled hot path
//! allocates nothing at all.
//!
//! ## Capturing
//!
//! ```
//! let cap = mttkrp_obs::capture();
//! {
//!     let _root = mttkrp_obs::span("request").with("kind", "demo");
//!     let _child = mttkrp_obs::span("kernel");
//!     mttkrp_obs::counter_add("demo.runs", 1);
//! }
//! let rec = cap.finish();
//! assert_eq!(rec.spans.len(), 2);
//! assert_eq!(rec.spans[1].parent, None);           // "request" is the root
//! assert_eq!(rec.spans[0].parent, Some(rec.spans[1].id)); // "kernel" nests
//! for line in rec.to_jsonl().lines() {
//!     mttkrp_obs::validate_line(line).unwrap();    // every line is schema-valid
//! }
//! ```
//!
//! [`capture`] installs a fresh global collector and returns a guard;
//! guards serialize (a process has one capture at a time), so concurrent
//! tests queue instead of corrupting each other's recordings.

#![deny(missing_docs)]

pub mod drift;
pub mod export;
pub mod flight;
pub mod json;
pub mod metrics;
pub mod slo;
pub mod span;
pub mod timeseries;

pub use drift::{DriftRecord, DriftReport};
pub use export::{
    merge_traces, metrics_summary, metrics_to_jsonl, parse_trace, tree_summary, Recording,
    SpanNode, Trace,
};
pub use flight::{
    flight_from_jsonl, flight_snapshot, flight_to_jsonl, FlightRecord, FLIGHT_CAPACITY,
};
pub use metrics::{
    split_labeled_name, HistogramSnapshot, MetricSnapshot, MetricValue, MetricsRegistry,
    MAX_LABELS_PER_FAMILY, OVERFLOW_LABEL,
};
pub use slo::{ObjectiveStatus, SloReport, SloSpec};
pub use span::{current_span_id, FieldValue, Span, SpanRecord};
pub use timeseries::{TimeSeriesRing, WindowSnapshot};

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, RwLock};
use std::time::Instant;

/// Re-exported line validators (see [`export`]).
pub use export::{validate, validate_line};

// ---------------------------------------------------------------------------
// Cross-process trace identity
// ---------------------------------------------------------------------------

/// The identity a span tree carries across a process boundary: a 128-bit
/// trace id, the sending process's id, and the id of the span the remote
/// tree should hang under. Serialized as four u64 header words on both wire
/// codecs (see the dist `wire` module) and as a hex string on the CLI
/// (`--trace-context`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceContext {
    /// High 64 bits of the 128-bit trace id.
    pub trace_hi: u64,
    /// Low 64 bits of the 128-bit trace id.
    pub trace_lo: u64,
    /// The sending process's id (see [`proc_id`]): span ids are only unique
    /// per process, so `parent_span` means nothing without this.
    pub proc: u64,
    /// The span (in the sending process's id namespace) the receiver's
    /// tree parents under. `0` when the sender had no open span.
    pub parent_span: u64,
}

impl TraceContext {
    /// The four wire words, in header order.
    pub fn to_words(self) -> [u64; 4] {
        [self.trace_hi, self.trace_lo, self.proc, self.parent_span]
    }

    /// Rebuilds a context from [`TraceContext::to_words`].
    pub fn from_words(w: [u64; 4]) -> TraceContext {
        TraceContext {
            trace_hi: w[0],
            trace_lo: w[1],
            proc: w[2],
            parent_span: w[3],
        }
    }

    /// The 128-bit trace id as 32 hex digits.
    pub fn trace_hex(&self) -> String {
        format!("{:016x}{:016x}", self.trace_hi, self.trace_lo)
    }

    /// Parses the [`std::fmt::Display`] form
    /// (`<32-hex trace>/<16-hex proc>/<decimal parent-span>`).
    pub fn parse(s: &str) -> Result<TraceContext, String> {
        let parts: Vec<&str> = s.split('/').collect();
        if parts.len() != 3 || parts[0].len() != 32 {
            return Err(format!(
                "bad trace context {s:?}: want <32-hex-trace>/<16-hex-proc>/<parent-span>"
            ));
        }
        let hex =
            |h: &str| u64::from_str_radix(h, 16).map_err(|e| format!("bad hex in {s:?}: {e}"));
        Ok(TraceContext {
            trace_hi: hex(&parts[0][..16])?,
            trace_lo: hex(&parts[0][16..])?,
            proc: hex(parts[1])?,
            parent_span: parts[2]
                .parse()
                .map_err(|e| format!("bad parent span in {s:?}: {e}"))?,
        })
    }
}

impl std::fmt::Display for TraceContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{:016x}/{}",
            self.trace_hex(),
            self.proc,
            self.parent_span
        )
    }
}

/// This process's trace identity: a random-looking nonzero u64, stable for
/// the process lifetime. Span ids are only unique within one capture of one
/// process; the (proc, span-id) pair is what crosses the wire.
pub fn proc_id() -> u64 {
    static PROC_ID: OnceLock<u64> = OnceLock::new();
    *PROC_ID.get_or_init(|| mix64(0x70726f63 /* "proc" */))
}

/// A SplitMix64-style mixer over process id + wall clock + a salt — enough
/// entropy to make cross-process id collisions negligible without a PRNG
/// dependency.
fn mix64(salt: u64) -> u64 {
    let pid = std::process::id() as u64;
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let mut x = pid
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(nanos)
        .wrapping_add(salt);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (x ^ (x >> 31)) | 1 // nonzero
}

// ---------------------------------------------------------------------------
// Global capture state
// ---------------------------------------------------------------------------

/// The one-word gate every hot-path helper checks first. Relaxed is enough:
/// a capture that races with an emission may miss that one event, which is
/// exactly the semantics of "tracing was not yet on".
static ENABLED: AtomicBool = AtomicBool::new(false);

/// The active collector, installed by [`capture`].
static COLLECTOR: RwLock<Option<Arc<Collector>>> = RwLock::new(None);

/// Serializes captures: one recording at a time per process, so tests that
/// trace can run under the default multi-threaded harness without
/// interleaving each other's events.
static CAPTURE_LOCK: Mutex<()> = Mutex::new(());

/// Whether a capture is active. The disabled branch is the hot path: one
/// relaxed atomic load, nothing else.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

pub(crate) struct Collector {
    epoch: Instant,
    next_id: AtomicU64,
    spans: Mutex<Vec<SpanRecord>>,
    metrics: MetricsRegistry,
    /// The 128-bit trace id this capture mints (replaced when a remote
    /// context is adopted: then this process is part of the caller's trace).
    trace: Mutex<(u64, u64)>,
    /// The remote parent adopted for the whole capture, if any.
    remote: Mutex<Option<TraceContext>>,
}

impl Collector {
    fn new() -> Collector {
        // A per-capture salt so back-to-back captures on a coarse clock
        // still mint distinct trace ids.
        static CAPTURE_SALT: AtomicU64 = AtomicU64::new(0);
        let salt = CAPTURE_SALT.fetch_add(2, Ordering::Relaxed);
        Collector {
            epoch: Instant::now(),
            next_id: AtomicU64::new(1),
            spans: Mutex::new(Vec::new()),
            metrics: MetricsRegistry::new(),
            trace: Mutex::new((mix64(salt ^ 0x7472), mix64(salt.wrapping_add(1) ^ 0x6c6f))),
            remote: Mutex::new(None),
        }
    }

    pub(crate) fn trace(&self) -> (u64, u64) {
        *self.trace.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub(crate) fn next_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    pub(crate) fn micros_since_epoch(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    pub(crate) fn push_span(&self, record: SpanRecord) {
        self.spans
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(record);
    }

    pub(crate) fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    fn snapshot(&self) -> Recording {
        let spans = self.spans.lock().unwrap_or_else(|e| e.into_inner()).clone();
        Recording {
            spans,
            metrics: self.metrics.snapshot(),
            proc: proc_id(),
            trace: self.trace(),
            remote: *self.remote.lock().unwrap_or_else(|e| e.into_inner()),
        }
    }
}

pub(crate) fn current_collector() -> Option<Arc<Collector>> {
    COLLECTOR
        .read()
        .unwrap_or_else(|e| e.into_inner())
        .as_ref()
        .cloned()
}

/// A live capture: tracing is enabled while this guard exists. Obtain one
/// with [`capture`]; turn it into the recorded data with
/// [`Capture::finish`] (or just drop it to discard the recording).
pub struct Capture {
    collector: Arc<Collector>,
    _serial: MutexGuard<'static, ()>,
}

/// Starts capturing: installs a fresh collector, enables every emission
/// helper, and returns the guard that owns the recording.
///
/// Captures serialize process-wide — a second concurrent `capture()` blocks
/// until the first guard drops — so traced tests compose under the default
/// parallel test harness.
pub fn capture() -> Capture {
    let serial = CAPTURE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let collector = Arc::new(Collector::new());
    *COLLECTOR.write().unwrap_or_else(|e| e.into_inner()) = Some(Arc::clone(&collector));
    ENABLED.store(true, Ordering::SeqCst);
    Capture {
        collector,
        _serial: serial,
    }
}

fn uninstall() {
    ENABLED.store(false, Ordering::SeqCst);
    *COLLECTOR.write().unwrap_or_else(|e| e.into_inner()) = None;
}

impl Capture {
    /// Stops capturing and returns everything recorded: spans in completion
    /// order plus a snapshot of every metric.
    pub fn finish(self) -> Recording {
        uninstall();
        self.collector.snapshot()
    }
}

impl Drop for Capture {
    fn drop(&mut self) {
        uninstall();
    }
}

// ---------------------------------------------------------------------------
// Emission helpers (the instrumentation surface the other crates call)
// ---------------------------------------------------------------------------

/// Opens a span named `name`, parented under the current thread's innermost
/// open span. Returns a no-op guard (allocating nothing) when tracing is
/// disabled — check [`Span::is_active`] before computing expensive field
/// values.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span::noop(name);
    }
    match current_collector() {
        Some(collector) => Span::enter(collector, name),
        None => Span::noop(name),
    }
}

/// The context an outgoing request should carry: the active trace id (the
/// capture's own, or the adopted/thread-local remote one), this process's
/// id, and the innermost open span on this thread as the parent. `None`
/// when tracing is disabled — callers simply send an untraced frame.
pub fn current_context() -> Option<TraceContext> {
    if !enabled() {
        return None;
    }
    let collector = current_collector()?;
    let (trace_hi, trace_lo) = span::current_trace_override()
        .or_else(|| {
            collector
                .remote
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .map(|r| (r.trace_hi, r.trace_lo))
        })
        .unwrap_or_else(|| collector.trace());
    Some(TraceContext {
        trace_hi,
        trace_lo,
        proc: proc_id(),
        parent_span: span::current_span_id().unwrap_or(0),
    })
}

/// Joins the active capture to a remote trace: the capture's meta line
/// records the remote (proc, span) pair and the whole recording switches to
/// the remote trace id, so [`merge_traces`] parents this process's root
/// spans under the remote span. Used by rank child processes, which receive
/// their context once at launch. No-op when tracing is disabled.
pub fn adopt_remote_context(ctx: TraceContext) {
    if !enabled() {
        return;
    }
    if let Some(collector) = current_collector() {
        *collector.trace.lock().unwrap_or_else(|e| e.into_inner()) = (ctx.trace_hi, ctx.trace_lo);
        *collector.remote.lock().unwrap_or_else(|e| e.into_inner()) = Some(ctx);
    }
}

/// Adds `v` to the capture's counter `name`. No-op (one atomic load) when
/// tracing is disabled.
#[inline]
pub fn counter_add(name: &str, v: u64) {
    if !enabled() {
        return;
    }
    if let Some(c) = current_collector() {
        c.metrics().counter_add(name, v);
    }
}

/// Adds `delta` (possibly negative) to the capture's gauge `name`. No-op
/// when tracing is disabled.
#[inline]
pub fn gauge_add(name: &str, delta: i64) {
    if !enabled() {
        return;
    }
    if let Some(c) = current_collector() {
        c.metrics().gauge_add(name, delta);
    }
}

/// Sets the capture's gauge `name` to the absolute value `v`
/// ([`MetricsRegistry::gauge_set`]). No-op when tracing is disabled.
#[inline]
pub fn gauge_set(name: &str, v: i64) {
    if !enabled() {
        return;
    }
    if let Some(c) = current_collector() {
        c.metrics().gauge_set(name, v);
    }
}

/// Records `v` into the capture's histogram `name`. No-op when tracing is
/// disabled.
#[inline]
pub fn histogram_record(name: &str, v: u64) {
    if !enabled() {
        return;
    }
    if let Some(c) = current_collector() {
        c.metrics().histogram_record(name, v);
    }
}

/// Records a duration (as integer microseconds) into histogram `name`.
#[inline]
pub fn histogram_record_duration(name: &str, d: std::time::Duration) {
    if !enabled() {
        return;
    }
    histogram_record(name, d.as_micros() as u64);
}

/// Records `v` into the capture's labeled histogram family
/// ([`MetricsRegistry::histogram_record_labeled`]): the composed metric
/// is `family{label}`, bounded at [`MAX_LABELS_PER_FAMILY`] labels per
/// family. No-op when tracing is disabled.
#[inline]
pub fn histogram_record_labeled(family: &str, label: &str, v: u64) {
    if !enabled() {
        return;
    }
    if let Some(c) = current_collector() {
        c.metrics().histogram_record_labeled(family, label, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_and_spans_are_inert() {
        assert!(!enabled());
        let s = span("nothing");
        assert!(!s.is_active());
        counter_add("nothing.count", 1);
        let rec = capture().finish();
        assert!(rec.spans.is_empty());
        assert!(rec.metrics.is_empty());
    }

    #[test]
    fn capture_records_spans_and_metrics() {
        let cap = capture();
        assert!(enabled());
        {
            let _root = span("request").with("kind", "test");
            {
                let mut child = span("kernel");
                child.record("mode", 2u64);
                counter_add("runs", 3);
                histogram_record("lat_us", 7);
            }
            gauge_add("depth", 5);
            gauge_add("depth", -2);
        }
        let rec = cap.finish();
        assert!(!enabled());
        // Spans complete child-first.
        assert_eq!(rec.spans[0].name, "kernel");
        assert_eq!(rec.spans[1].name, "request");
        assert_eq!(rec.spans[0].parent, Some(rec.spans[1].id));
        assert_eq!(rec.spans[1].parent, None);
        let names: Vec<_> = rec.metrics.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, ["depth", "lat_us", "runs"]); // sorted
    }

    #[test]
    fn sequential_captures_are_isolated() {
        let first = {
            let cap = capture();
            counter_add("x", 1);
            cap.finish()
        };
        let second = {
            let cap = capture();
            {
                let _s = span("fresh");
            }
            cap.finish()
        };
        assert_eq!(first.metrics.len(), 1);
        assert!(first.spans.is_empty());
        assert!(second.metrics.is_empty());
        assert_eq!(second.spans.len(), 1);
    }

    #[test]
    fn dropped_capture_disables_tracing() {
        {
            let _cap = capture();
            assert!(enabled());
        }
        assert!(!enabled());
    }

    #[test]
    fn trace_context_display_roundtrips() {
        let ctx = TraceContext {
            trace_hi: 0xdead_beef_0000_0001,
            trace_lo: 2,
            proc: proc_id(),
            parent_span: 42,
        };
        assert_eq!(TraceContext::parse(&ctx.to_string()).unwrap(), ctx);
        assert_eq!(TraceContext::from_words(ctx.to_words()), ctx);
        assert!(TraceContext::parse("nope").is_err());
        assert!(TraceContext::parse("abc/def/1").is_err());
    }

    #[test]
    fn current_context_tracks_span_stack_and_adoption() {
        assert_eq!(current_context(), None, "no context when disabled");
        let cap = capture();
        let outside = current_context().unwrap();
        assert_eq!(outside.parent_span, 0, "no open span yet");
        assert_eq!(outside.proc, proc_id());
        let (root_ctx, adopted_ctx) = {
            let root = span("request");
            let root_id = root.id().unwrap();
            let ctx = current_context().unwrap();
            assert_eq!(ctx.parent_span, root_id);
            assert_eq!(
                (ctx.trace_hi, ctx.trace_lo),
                (outside.trace_hi, outside.trace_lo)
            );
            // Adopting a remote context switches this thread's trace id.
            let mut inner = span("net.request");
            inner.adopt(TraceContext {
                trace_hi: 0xaaaa,
                trace_lo: 0xbbbb,
                proc: 0xcccc,
                parent_span: 9,
            });
            let adopted = current_context().unwrap();
            assert_eq!((adopted.trace_hi, adopted.trace_lo), (0xaaaa, 0xbbbb));
            assert_eq!(adopted.parent_span, inner.id().unwrap());
            drop(inner);
            // The override dies with the adopting span.
            let restored = current_context().unwrap();
            assert_eq!(
                (restored.trace_hi, restored.trace_lo),
                (outside.trace_hi, outside.trace_lo)
            );
            (ctx, adopted)
        };
        let rec = cap.finish();
        let req = rec.spans.iter().find(|s| s.name == "net.request").unwrap();
        assert_eq!(req.id, adopted_ctx.parent_span);
        assert!(req
            .fields
            .iter()
            .any(|(k, v)| *k == "remote_span" && *v == FieldValue::U64(9)));
        assert_eq!(
            rec.spans
                .iter()
                .filter(|s| s.id == root_ctx.parent_span)
                .count(),
            1
        );
    }
}
