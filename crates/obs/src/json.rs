//! A minimal JSON reader/escaper — just enough to validate and re-read the
//! JSONL this crate writes (the workspace builds offline, so no `serde`).

/// A parsed JSON value. Numbers are `f64` (the trace's integers — ids,
/// microseconds, word counts — all fit exactly below 2^53).
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Number(f64),
    /// A string (escapes decoded).
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in source order (duplicate keys are kept as-is).
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup on an object (first match), `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(members) => Some(members),
            _ => None,
        }
    }
}

/// Escapes `s` for embedding inside a JSON string literal (quotes not
/// included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Parses one complete JSON document from `s` (trailing whitespace allowed,
/// trailing garbage rejected).
pub fn parse(s: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        chars: s.char_indices().peekable(),
        src: s,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if let Some((i, c)) = p.chars.peek() {
        return Err(format!("trailing character '{c}' at byte {i}"));
    }
    Ok(v)
}

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    src: &'a str,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.chars.peek(), Some((_, c)) if c.is_ascii_whitespace()) {
            self.chars.next();
        }
    }

    fn expect(&mut self, want: char) -> Result<(), String> {
        match self.chars.next() {
            Some((_, c)) if c == want => Ok(()),
            Some((i, c)) => Err(format!("expected '{want}' at byte {i}, found '{c}'")),
            None => Err(format!("expected '{want}', found end of input")),
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.chars.peek().copied() {
            Some((_, '{')) => self.object(),
            Some((_, '[')) => self.array(),
            Some((_, '"')) => Ok(JsonValue::String(self.string()?)),
            Some((_, 't')) => self.literal("true", JsonValue::Bool(true)),
            Some((_, 'f')) => self.literal("false", JsonValue::Bool(false)),
            Some((_, 'n')) => self.literal("null", JsonValue::Null),
            Some((_, c)) if c == '-' || c.is_ascii_digit() => self.number(),
            Some((i, c)) => Err(format!("unexpected '{c}' at byte {i}")),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        for want in word.chars() {
            match self.chars.next() {
                Some((_, c)) if c == want => {}
                _ => return Err(format!("malformed literal (expected '{word}')")),
            }
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = match self.chars.peek() {
            Some((i, _)) => *i,
            None => return Err("unexpected end of input in number".to_string()),
        };
        let mut end = start;
        while let Some((i, c)) = self.chars.peek().copied() {
            if c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E') {
                end = i + c.len_utf8();
                self.chars.next();
            } else {
                break;
            }
        }
        self.src[start..end]
            .parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|e| format!("bad number '{}': {e}", &self.src[start..end]))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.chars.next() {
                Some((_, '"')) => return Ok(out),
                Some((_, '\\')) => match self.chars.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, '/')) => out.push('/'),
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 'r')) => out.push('\r'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, 'b')) => out.push('\u{8}'),
                    Some((_, 'f')) => out.push('\u{c}'),
                    Some((_, 'u')) => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .chars
                                .next()
                                .and_then(|(_, c)| c.to_digit(16))
                                .ok_or("bad \\u escape")?;
                            code = code * 16 + d;
                        }
                        // Unpaired surrogates are replaced, not fatal: the
                        // validator's job is schema shape, not Unicode law.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    Some((i, c)) => return Err(format!("bad escape '\\{c}' at byte {i}")),
                    None => return Err("unterminated string".to_string()),
                },
                Some((_, c)) => out.push(c),
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if matches!(self.chars.peek(), Some((_, ']'))) {
            self.chars.next();
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.chars.next() {
                Some((_, ',')) => {}
                Some((_, ']')) => return Ok(JsonValue::Array(items)),
                Some((i, c)) => return Err(format!("expected ',' or ']' at byte {i}, got '{c}'")),
                None => return Err("unterminated array".to_string()),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect('{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if matches!(self.chars.peek(), Some((_, '}'))) {
            self.chars.next();
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.chars.next() {
                Some((_, ',')) => {}
                Some((_, '}')) => return Ok(JsonValue::Object(members)),
                Some((i, c)) => return Err(format!("expected ',' or '}}' at byte {i}, got '{c}'")),
                None => return Err("unterminated object".to_string()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_trace_shapes() {
        let v = parse(
            r#"{"type":"span","id":3,"parent":null,"name":"kernel","thread":1,
                "start_us":12,"dur_us":34,"fields":{"cache_hit":true,"w":-1.5e2}}"#,
        )
        .unwrap();
        assert_eq!(v.get("type").unwrap().as_str(), Some("span"));
        assert_eq!(v.get("id").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("parent"), Some(&JsonValue::Null));
        let fields = v.get("fields").unwrap();
        assert_eq!(fields.get("cache_hit").unwrap().as_bool(), Some(true));
        assert_eq!(fields.get("w").unwrap().as_f64(), Some(-150.0));
    }

    #[test]
    fn roundtrips_escapes() {
        let original = "a\"b\\c\nd\te\u{1}f";
        let json = format!("\"{}\"", escape(original));
        assert_eq!(parse(&json).unwrap().as_str(), Some(original));
    }

    #[test]
    fn arrays_and_empties() {
        let v = parse("[1, [], {}, \"x\", null]").unwrap();
        let items = v.as_array().unwrap();
        assert_eq!(items.len(), 5);
        assert_eq!(items[0].as_u64(), Some(1));
        assert_eq!(items[1], JsonValue::Array(vec![]));
        assert_eq!(items[2], JsonValue::Object(vec![]));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "1 2", "\"unterminated"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn as_u64_rejects_negatives_and_fractions() {
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_f64(), Some(1.5));
    }
}
