//! The modeled-vs-measured drift gate.
//!
//! The planner prices every distributed algorithm with the paper's
//! communication lower bounds (Eqs. 12/14/18, via `netsim`'s per-phase
//! schedules); the transport layer *counts* the words each rank actually
//! moved. This module compares the two, pair by pair, and turns "the model
//! quietly stopped matching reality" into a nonzero exit code.

use crate::export::SpanNode;

/// One modeled/measured pair, e.g. the words rank 2 sent during
/// `all-gather(A^(k))`.
#[derive(Clone, Debug, PartialEq)]
pub struct DriftRecord {
    /// What is being compared (phase, rank, direction).
    pub name: String,
    /// The cost model's prediction, in words.
    pub modeled: f64,
    /// What the transport counted, in words.
    pub measured: f64,
}

impl DriftRecord {
    /// Relative error `|measured - modeled| / max(|modeled|, |measured|, 1)`.
    /// The `1` floor keeps zero-word phases (model and reality both idle)
    /// from dividing by zero and makes sub-word noise negligible.
    pub fn rel_error(&self) -> f64 {
        let denom = self.modeled.abs().max(self.measured.abs()).max(1.0);
        (self.measured - self.modeled).abs() / denom
    }
}

/// A set of [`DriftRecord`]s judged against one tolerance.
#[derive(Clone, Debug)]
pub struct DriftReport {
    records: Vec<DriftRecord>,
    tolerance: f64,
}

impl DriftReport {
    /// An empty report with the given relative-error tolerance.
    pub fn new(tolerance: f64) -> DriftReport {
        DriftReport {
            records: Vec::new(),
            tolerance,
        }
    }

    /// Builds a report from every `collective` span in `spans`, pairing the
    /// `modeled_sent`/`measured_sent` and `modeled_recv`/`measured_recv`
    /// fields (tagged by `phase` and `rank`) that the dist layer records.
    pub fn from_spans(spans: &[SpanNode], tolerance: f64) -> DriftReport {
        let mut report = DriftReport::new(tolerance);
        for s in spans.iter().filter(|s| s.name == "collective") {
            let phase = s.field_str("phase").unwrap_or("?");
            let rank = s.field_u64("rank").unwrap_or(0);
            for (direction, modeled_key, measured_key) in [
                ("sent", "modeled_sent", "measured_sent"),
                ("recv", "modeled_recv", "measured_recv"),
            ] {
                if let (Some(modeled), Some(measured)) =
                    (s.field_f64(modeled_key), s.field_f64(measured_key))
                {
                    report.push(format!("{phase} rank{rank} {direction}"), modeled, measured);
                }
            }
        }
        report
    }

    /// Adds one modeled/measured pair.
    pub fn push(&mut self, name: impl Into<String>, modeled: f64, measured: f64) {
        self.records.push(DriftRecord {
            name: name.into(),
            modeled,
            measured,
        });
    }

    /// The records, in insertion order.
    pub fn records(&self) -> &[DriftRecord] {
        &self.records
    }

    /// The tolerance this report gates against.
    pub fn tolerance(&self) -> f64 {
        self.tolerance
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no pairs were collected.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// `true` when every pair's relative error is within tolerance. An
    /// empty report is trivially ok (nothing drifted, nothing measured).
    pub fn ok(&self) -> bool {
        self.records.iter().all(|r| r.rel_error() <= self.tolerance)
    }

    /// The pair with the largest relative error, if any.
    pub fn worst(&self) -> Option<&DriftRecord> {
        self.records
            .iter()
            .max_by(|a, b| a.rel_error().total_cmp(&b.rel_error()))
    }

    /// An aligned text table: one row per pair, a `DRIFT` marker on rows
    /// beyond tolerance, and a verdict line.
    pub fn table(&self) -> String {
        let mut out = format!(
            "{:<36} {:>12} {:>12} {:>9}\n",
            "collective", "modeled", "measured", "rel err"
        );
        for r in &self.records {
            let marker = if r.rel_error() > self.tolerance {
                "  DRIFT"
            } else {
                ""
            };
            out.push_str(&format!(
                "{:<36} {:>12.0} {:>12.0} {:>9.5}{}\n",
                r.name,
                r.modeled,
                r.measured,
                r.rel_error(),
                marker
            ));
        }
        if self.records.is_empty() {
            out.push_str("(no modeled/measured pairs found)\n");
        }
        out.push_str(&format!(
            "drift gate: {} pairs, tolerance {:.4} -> {}\n",
            self.records.len(),
            self.tolerance,
            if self.ok() { "OK" } else { "FAIL" }
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{capture, span};

    #[test]
    fn rel_error_has_a_unit_floor() {
        let exact = DriftRecord {
            name: "x".into(),
            modeled: 640.0,
            measured: 640.0,
        };
        assert_eq!(exact.rel_error(), 0.0);
        let both_zero = DriftRecord {
            name: "idle".into(),
            modeled: 0.0,
            measured: 0.0,
        };
        assert_eq!(both_zero.rel_error(), 0.0);
        let off = DriftRecord {
            name: "y".into(),
            modeled: 100.0,
            measured: 110.0,
        };
        assert!((off.rel_error() - 10.0 / 110.0).abs() < 1e-12);
    }

    #[test]
    fn gate_trips_beyond_tolerance() {
        let mut report = DriftReport::new(0.01);
        report.push("all-gather rank0 sent", 1000.0, 1000.0);
        assert!(report.ok());
        report.push("reduce-scatter rank1 recv", 1000.0, 1100.0);
        assert!(!report.ok());
        assert_eq!(report.worst().unwrap().name, "reduce-scatter rank1 recv");
        let table = report.table();
        assert!(table.contains("DRIFT"), "{table}");
        assert!(table.contains("FAIL"), "{table}");
    }

    #[test]
    fn from_spans_pairs_collective_fields() {
        let cap = capture();
        {
            let _c = span("collective")
                .with("phase", "all-gather(tensor)")
                .with("rank", 2u64)
                .with("modeled_sent", 640u64)
                .with("measured_sent", 640u64)
                .with("modeled_recv", 320u64)
                .with("measured_recv", 321u64);
            let _other = span("kernel"); // ignored: not a collective
        }
        let nodes = cap.finish().nodes();
        let report = DriftReport::from_spans(&nodes, 0.01);
        assert_eq!(report.len(), 2);
        assert!(report.ok(), "1/321 is within 1%");
        assert_eq!(report.records()[0].name, "all-gather(tensor) rank2 sent");
        let strict = DriftReport::from_spans(&nodes, 0.0001);
        assert!(!strict.ok());
    }

    #[test]
    fn empty_report_is_ok_but_says_so() {
        let report = DriftReport::new(0.01);
        assert!(report.ok());
        assert!(report.table().contains("no modeled/measured pairs"));
    }
}
