//! Counters, gauges, and log2-bucket histograms behind atomics.
//!
//! A [`MetricsRegistry`] can be owned directly (the serve layer keeps one
//! per server and derives its public stats snapshot from it) or reached
//! through the global capture helpers ([`crate::counter_add`] and friends).
//! All update paths are lock-free after the first touch of a name: the
//! registry map takes a read lock to find the metric's `Arc`, and every
//! mutation from there is a single atomic RMW.

use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Log2 bucket count: bucket 0 holds the value 0, bucket `k >= 1` holds
/// values in `[2^(k-1), 2^k - 1]`, up to `k = 64`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Most distinct labels one histogram family
/// ([`MetricsRegistry::histogram_record_labeled`]) will hold before new
/// labels collapse into the [`OVERFLOW_LABEL`] member. Generous for the
/// real label sources (shape families, plan algorithms) while keeping a
/// scrape's size — and the registry's memory — bounded.
pub const MAX_LABELS_PER_FAMILY: usize = 32;

/// The overflow member's label: values for labels past the
/// [`MAX_LABELS_PER_FAMILY`] bound land in `family{other}`.
pub const OVERFLOW_LABEL: &str = "other";

/// Splits a composed labeled-metric name (`family{label}`) back into
/// `(family, label)`; `None` for plain unlabeled names.
pub fn split_labeled_name(name: &str) -> Option<(&str, &str)> {
    let open = name.find('{')?;
    let label = name[open + 1..].strip_suffix('}')?;
    Some((&name[..open], label))
}

fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Histogram {
    fn new() -> Histogram {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

enum Metric {
    Counter(AtomicU64),
    Gauge(AtomicI64),
    // Boxed: the bucket array dwarfs the atomics, and most entries are
    // counters — keep their allocations small.
    Histogram(Box<Histogram>),
}

/// A point-in-time copy of one histogram: totals plus the full log2 bucket
/// array, so snapshots from different sources (threads, ranks, runs) can be
/// [merged](HistogramSnapshot::merge) exactly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (`0` when empty).
    pub min: u64,
    /// Largest recorded value (`0` when empty).
    pub max: u64,
    /// Log2 bucket counts (length [`HISTOGRAM_BUCKETS`]).
    pub buckets: Vec<u64>,
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot::empty()
    }
}

impl HistogramSnapshot {
    /// A snapshot with nothing recorded.
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: vec![0; HISTOGRAM_BUCKETS],
        }
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean recorded value (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Folds `other` into `self`: counts and sums add, min/max combine,
    /// buckets add element-wise. Merging snapshots is exact — the merged
    /// result equals the snapshot one histogram would have produced had it
    /// seen both value streams (the property the test suite asserts).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        self.min = if self.count == 0 {
            other.min
        } else {
            self.min.min(other.min)
        };
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
    }

    /// Approximate quantile `q` in `[0, 1]`, with linear interpolation
    /// *inside* the target bucket: the cumulative count locates the first
    /// bucket that reaches `q * count`, and the target's position among
    /// that bucket's members picks a proportional point in the bucket's
    /// `[2^(k-1), 2^k - 1]` value range, clamped to the observed
    /// `[min, max]`. A log2 bucket spans a factor of two, so the old
    /// upper-bound answer ([`HistogramSnapshot::quantile_upper_bound`])
    /// overstated latency by up to 2x; interpolation assumes values are
    /// uniform within the bucket, which halves the worst-case error
    /// without any extra storage.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= target {
                let (lo, hi) = bucket_bounds(idx);
                // The target is the `rank`-th of this bucket's `c` members
                // (1-based). Interpolate at the midpoint of its uniform
                // sub-interval so a single-member bucket answers the
                // bucket's middle, not its floor or ceiling.
                let rank = target - seen;
                let width = (hi - lo) as f64;
                let frac = (rank as f64 - 0.5) / c as f64;
                let v = lo + (width * frac).round() as u64;
                return v.clamp(self.min, self.max);
            }
            seen += c;
        }
        self.max
    }

    /// The pre-interpolation quantile: the *upper bound* of the first
    /// bucket whose cumulative count reaches `q * count`, clamped to the
    /// observed `[min, max]`. Kept as the conservative ("never
    /// understate") answer; [`HistogramSnapshot::quantile`] interpolates
    /// within the bucket instead.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_bounds(idx).1.clamp(self.min, self.max);
            }
        }
        self.max
    }
}

/// The inclusive `[lo, hi]` value range of log2 bucket `idx`.
fn bucket_bounds(idx: usize) -> (u64, u64) {
    if idx == 0 {
        (0, 0)
    } else if idx >= 64 {
        (1u64 << 63, u64::MAX)
    } else {
        (1u64 << (idx - 1), (1u64 << idx) - 1)
    }
}

/// One named metric in a snapshot.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricSnapshot {
    /// Dotted metric name, e.g. `serve.request_exec_us`.
    pub name: String,
    /// The value at snapshot time.
    pub value: MetricValue,
}

/// The value of one snapshot entry.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// Monotone counter.
    Counter(u64),
    /// Up/down gauge.
    Gauge(i64),
    /// Distribution.
    Histogram(HistogramSnapshot),
}

/// A named collection of counters, gauges, and histograms.
///
/// Names are dotted strings; the first update under a name fixes its kind,
/// and later updates of a different kind are ignored (observability must
/// never panic the program it observes).
///
/// ```
/// use mttkrp_obs::{MetricsRegistry, MetricValue};
///
/// let reg = MetricsRegistry::new();
/// reg.counter_add("serve.requests", 2);
/// reg.gauge_add("serve.queue_depth", 3);
/// reg.gauge_add("serve.queue_depth", -1);
/// reg.histogram_record("serve.exec_us", 120);
///
/// assert_eq!(reg.counter_value("serve.requests"), 2);
/// assert_eq!(reg.gauge_value("serve.queue_depth"), 2);
/// assert_eq!(reg.histogram("serve.exec_us").count, 1);
/// assert_eq!(reg.snapshot().len(), 3);
/// ```
#[derive(Default)]
pub struct MetricsRegistry {
    inner: RwLock<HashMap<String, Arc<Metric>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry {
            inner: RwLock::new(HashMap::new()),
        }
    }

    fn metric(&self, name: &str, make: impl FnOnce() -> Metric) -> Arc<Metric> {
        if let Some(m) = self
            .inner
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
        {
            return Arc::clone(m);
        }
        let mut map = self.inner.write().unwrap_or_else(|e| e.into_inner());
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(make())),
        )
    }

    /// Adds `v` to counter `name` (created at zero on first touch).
    pub fn counter_add(&self, name: &str, v: u64) {
        if let Metric::Counter(c) = &*self.metric(name, || Metric::Counter(AtomicU64::new(0))) {
            c.fetch_add(v, Ordering::Relaxed);
        }
    }

    /// Raises counter `name` to at least `v` (`fetch_max`) — for
    /// high-watermark counters like a largest-batch size.
    pub fn counter_max(&self, name: &str, v: u64) {
        if let Metric::Counter(c) = &*self.metric(name, || Metric::Counter(AtomicU64::new(0))) {
            c.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Adds `delta` (possibly negative) to gauge `name`.
    pub fn gauge_add(&self, name: &str, delta: i64) {
        if let Metric::Gauge(g) = &*self.metric(name, || Metric::Gauge(AtomicI64::new(0))) {
            g.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Sets gauge `name` to the absolute value `v` — a single atomic
    /// store, unlike the read-then-`gauge_add` dance callers used to fake
    /// it with, which races against concurrent movers. This is what level
    /// publishers (SLO budget gauges, a queue-depth ticker) want.
    pub fn gauge_set(&self, name: &str, v: i64) {
        if let Metric::Gauge(g) = &*self.metric(name, || Metric::Gauge(AtomicI64::new(0))) {
            g.store(v, Ordering::Relaxed);
        }
    }

    /// Records `v` into histogram `name`.
    pub fn histogram_record(&self, name: &str, v: u64) {
        if let Metric::Histogram(h) =
            &*self.metric(name, || Metric::Histogram(Box::new(Histogram::new())))
        {
            h.record(v);
        }
    }

    /// Records `v` into the labeled histogram family `family` under
    /// `label` — the composed metric name is `family{label}` (e.g.
    /// `serve.exec_us{16x16x16:r8:m0}`), so per-shape / per-algorithm
    /// latency breakdowns ride the existing snapshot, merge, and JSONL
    /// machinery unchanged.
    ///
    /// Cardinality is bounded: a family holds at most
    /// [`MAX_LABELS_PER_FAMILY`] distinct labels; past that, new labels
    /// collapse into the `family{other}` overflow member so a hostile or
    /// high-entropy label stream cannot grow the registry without bound.
    pub fn histogram_record_labeled(&self, family: &str, label: &str, v: u64) {
        let name = format!("{family}{{{label}}}");
        let exists = self
            .inner
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .contains_key(&name);
        if exists {
            self.histogram_record(&name, v);
            return;
        }
        // First sighting of this label: admit it only while the family is
        // under its cardinality bound (counted under the write lock so
        // racing first-sightings cannot both sneak past the cap).
        let mut map = self.inner.write().unwrap_or_else(|e| e.into_inner());
        let prefix = format!("{family}{{");
        let members = map.keys().filter(|k| k.starts_with(&prefix)).count();
        let admitted = if members < MAX_LABELS_PER_FAMILY || map.contains_key(&name) {
            name
        } else {
            format!("{family}{{{OVERFLOW_LABEL}}}")
        };
        let metric = Arc::clone(
            map.entry(admitted)
                .or_insert_with(|| Metric::Histogram(Box::new(Histogram::new())).into()),
        );
        drop(map);
        if let Metric::Histogram(h) = &*metric {
            h.record(v);
        }
    }

    /// Current value of counter `name` (`0` if absent or not a counter).
    pub fn counter_value(&self, name: &str) -> u64 {
        match self
            .inner
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .map(Arc::clone)
        {
            Some(m) => match &*m {
                Metric::Counter(c) => c.load(Ordering::Relaxed),
                _ => 0,
            },
            None => 0,
        }
    }

    /// Current value of gauge `name` (`0` if absent or not a gauge).
    pub fn gauge_value(&self, name: &str) -> i64 {
        match self
            .inner
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .map(Arc::clone)
        {
            Some(m) => match &*m {
                Metric::Gauge(g) => g.load(Ordering::Relaxed),
                _ => 0,
            },
            None => 0,
        }
    }

    /// Snapshot of histogram `name` (empty if absent or not a histogram).
    pub fn histogram(&self, name: &str) -> HistogramSnapshot {
        match self
            .inner
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .map(Arc::clone)
        {
            Some(m) => match &*m {
                Metric::Histogram(h) => h.snapshot(),
                _ => HistogramSnapshot::empty(),
            },
            None => HistogramSnapshot::empty(),
        }
    }

    /// A snapshot of every metric, sorted by name.
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        let map = self.inner.read().unwrap_or_else(|e| e.into_inner());
        let mut out: Vec<MetricSnapshot> = map
            .iter()
            .map(|(name, m)| MetricSnapshot {
                name: name.clone(),
                value: match &**m {
                    Metric::Counter(c) => MetricValue::Counter(c.load(Ordering::Relaxed)),
                    Metric::Gauge(g) => MetricValue::Gauge(g.load(Ordering::Relaxed)),
                    Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                },
            })
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("metrics", &self.snapshot().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn counters_gauges_histograms_coexist() {
        let reg = MetricsRegistry::new();
        reg.counter_add("c", 5);
        reg.counter_add("c", 2);
        reg.counter_max("c.max", 4);
        reg.counter_max("c.max", 2);
        reg.gauge_add("g", -3);
        for v in [1u64, 2, 3, 1000] {
            reg.histogram_record("h", v);
        }
        assert_eq!(reg.counter_value("c"), 7);
        assert_eq!(reg.counter_value("c.max"), 4);
        assert_eq!(reg.gauge_value("g"), -3);
        let h = reg.histogram("h");
        assert_eq!((h.count, h.sum, h.min, h.max), (4, 1006, 1, 1000));
        assert!((h.mean() - 251.5).abs() < 1e-12);
    }

    #[test]
    fn kind_mismatch_is_ignored_not_fatal() {
        let reg = MetricsRegistry::new();
        reg.counter_add("x", 1);
        reg.gauge_add("x", 5); // wrong kind: ignored
        reg.histogram_record("x", 9); // wrong kind: ignored
        assert_eq!(reg.counter_value("x"), 1);
        assert_eq!(reg.gauge_value("x"), 0);
        assert!(reg.histogram("x").is_empty());
    }

    #[test]
    fn merge_equals_single_stream() {
        // The merge of per-thread snapshots must equal the snapshot of one
        // histogram that saw every value.
        let values: Vec<Vec<u64>> = vec![
            vec![0, 1, 5, 900, 17],
            vec![2, 2, 2, u64::MAX / 3],
            vec![],
            vec![1 << 40, 3],
        ];
        let whole = MetricsRegistry::new();
        let mut merged = HistogramSnapshot::empty();
        for stream in &values {
            let part = MetricsRegistry::new();
            for &v in stream {
                whole.histogram_record("h", v);
                part.histogram_record("h", v);
            }
            merged.merge(&part.histogram("h"));
        }
        assert_eq!(merged, whole.histogram("h"));
    }

    #[test]
    fn merge_is_commutative() {
        let a0 = {
            let r = MetricsRegistry::new();
            r.histogram_record("h", 4);
            r.histogram_record("h", 99);
            r.histogram("h")
        };
        let b0 = {
            let r = MetricsRegistry::new();
            r.histogram_record("h", 0);
            r.histogram("h")
        };
        let mut ab = a0.clone();
        ab.merge(&b0);
        let mut ba = b0.clone();
        ba.merge(&a0);
        assert_eq!(ab, ba);
        assert_eq!((ab.count, ab.min, ab.max), (3, 0, 99));
    }

    #[test]
    fn quantiles_track_the_distribution() {
        let reg = MetricsRegistry::new();
        for v in 1..=1000u64 {
            reg.histogram_record("h", v);
        }
        let h = reg.histogram("h");
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        // Log2 buckets: correct to within a factor of two.
        assert!((500..=1000).contains(&p50), "p50 = {p50}");
        assert!((990..=1000).contains(&p99), "p99 = {p99}");
        assert_eq!(h.quantile(0.0), h.min);
        assert_eq!(h.quantile(1.0), 1000);
        assert_eq!(HistogramSnapshot::empty().quantile(0.5), 0);
    }

    #[test]
    fn quantile_interpolates_within_the_bucket() {
        // 1000 uniform values land p50 at ~500, deep inside the 512-wide
        // [512, 1023] bucket where the upper-bound answer said 1000.
        let reg = MetricsRegistry::new();
        for v in 1..=1000u64 {
            reg.histogram_record("h", v);
        }
        let h = reg.histogram("h");
        // Pinned: the old behavior answers the bucket's upper bound...
        assert_eq!(h.quantile_upper_bound(0.5), 511);
        assert_eq!(h.quantile_upper_bound(0.99), 1000); // 1023 clamped to max
                                                        // ...the interpolated behavior answers near the true quantile.
        assert_eq!(h.quantile(0.5), 500);
        assert!(
            (995..=1000).contains(&h.quantile(0.99)),
            "{}",
            h.quantile(0.99)
        );
        // The conservative answer never understates the interpolated one.
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            assert!(h.quantile(q) <= h.quantile_upper_bound(q), "q={q}");
        }
        // A single repeated value is answered exactly by both.
        let one = MetricsRegistry::new();
        for _ in 0..10 {
            one.histogram_record("h", 300);
        }
        assert_eq!(one.histogram("h").quantile(0.5), 300);
        assert_eq!(one.histogram("h").quantile_upper_bound(0.5), 300);
        assert_eq!(HistogramSnapshot::empty().quantile_upper_bound(0.9), 0);
    }

    #[test]
    fn gauge_set_is_absolute() {
        let reg = MetricsRegistry::new();
        reg.gauge_add("g", 7);
        reg.gauge_set("g", -2);
        assert_eq!(reg.gauge_value("g"), -2);
        reg.gauge_set("g", 41);
        reg.gauge_add("g", 1);
        assert_eq!(reg.gauge_value("g"), 42);
        // Kind mismatch stays non-fatal.
        reg.counter_add("c", 1);
        reg.gauge_set("c", 99);
        assert_eq!(reg.counter_value("c"), 1);
    }

    #[test]
    fn labeled_families_compose_names_and_bound_cardinality() {
        let reg = MetricsRegistry::new();
        reg.histogram_record_labeled("lat", "a:r8", 10);
        reg.histogram_record_labeled("lat", "a:r8", 20);
        reg.histogram_record_labeled("lat", "b:r4", 5);
        assert_eq!(reg.histogram("lat{a:r8}").count, 2);
        assert_eq!(reg.histogram("lat{b:r4}").count, 1);
        assert_eq!(split_labeled_name("lat{a:r8}"), Some(("lat", "a:r8")));
        assert_eq!(split_labeled_name("lat"), None);
        // Past the cardinality bound, new labels collapse into `other`.
        let reg = MetricsRegistry::new();
        for i in 0..MAX_LABELS_PER_FAMILY + 10 {
            reg.histogram_record_labeled("lat", &format!("shape{i}"), i as u64);
        }
        let labeled = reg
            .snapshot()
            .into_iter()
            .filter(|m| m.name.starts_with("lat{"))
            .count();
        assert_eq!(labeled, MAX_LABELS_PER_FAMILY + 1); // cap + overflow member
        assert_eq!(reg.histogram(&format!("lat{{{OVERFLOW_LABEL}}}")).count, 10);
    }

    #[test]
    fn concurrent_updates_lose_nothing() {
        let reg = Arc::new(MetricsRegistry::new());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let reg = Arc::clone(&reg);
                scope.spawn(move || {
                    for i in 0..1000u64 {
                        reg.counter_add("n", 1);
                        reg.histogram_record("h", i);
                    }
                });
            }
        });
        assert_eq!(reg.counter_value("n"), 8000);
        assert_eq!(reg.histogram("h").count, 8000);
    }
}
