//! The serving engine: a batcher thread, a worker pool, a shared plan
//! cache, and a stats ledger.

use crate::queue::{
    BatchQueue, FactorizeHooks, Pending, PendingFactorize, ResponseHandle, Submitter, Work,
};
use crate::request::{
    FactorizeRequest, FactorizeResponse, MttkrpRequest, MttkrpResponse, RequestTiming,
};
use crossbeam::channel::{unbounded, Receiver, Sender};
use mttkrp_exec::{CacheStats, Executor, MachineSpec, Plan, PlanCache, PlanKey, Planner};
use mttkrp_obs::{HistogramSnapshot, MetricsRegistry};
use mttkrp_tensor::Matrix;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// How a [`Server`] is sized.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Default machine requests are planned for (a request can override it).
    pub machine: MachineSpec,
    /// Worker threads executing batches.
    pub workers: usize,
    /// Plan-cache capacity (plans, not bytes).
    pub cache_capacity: usize,
    /// Largest batch the queue will form.
    pub max_batch: usize,
    /// Backend override applied to factorizations that arrive over the
    /// network front door (which cannot name a backend on the wire —
    /// where a run executes is server policy). `Auto` (the default)
    /// leaves each request's own choice untouched, so in-process callers
    /// never see this.
    pub backend: mttkrp_als::BackendChoice,
}

impl Default for ServerConfig {
    /// Detected host machine, two workers, 128 cached plans, batches of up
    /// to 32 requests, no backend override.
    fn default() -> ServerConfig {
        ServerConfig {
            machine: MachineSpec::detect(),
            workers: 2,
            cache_capacity: 128,
            max_batch: 32,
            backend: mttkrp_als::BackendChoice::Auto,
        }
    }
}

/// Metric names the server writes. One source of truth: the bespoke
/// `Counters` struct of atomics this module used to carry is gone — every
/// number now lives in the server's [`MetricsRegistry`], and
/// [`Server::stats`] is a thin read-only view over it.
pub(crate) mod metric {
    pub const REQUESTS_SUBMITTED: &str = "serve.requests_submitted";
    pub const REQUESTS_SERVED: &str = "serve.requests_served";
    pub const FACTORIZATIONS_SUBMITTED: &str = "serve.factorizations_submitted";
    pub const FACTORIZATIONS_SERVED: &str = "serve.factorizations_served";
    pub const FACTORIZATIONS_CANCELLED: &str = "serve.factorizations_cancelled";
    pub const BATCHES: &str = "serve.batches";
    pub const LARGEST_BATCH: &str = "serve.largest_batch";
    pub const QUEUE_DEPTH: &str = "serve.queue_depth";
    pub const BATCH_SIZE: &str = "serve.batch_size";
    pub const REQUEST_QUEUED_US: &str = "serve.request_queued_us";
    pub const REQUEST_EXEC_US: &str = "serve.request_exec_us";
    pub const BACKEND_RUNS_PREFIX: &str = "serve.backend_runs.";
    /// Labeled histogram family: exec latency per problem-shape family
    /// (members look like `serve.exec_us.shape{8x8x8:r4:m0}`; cardinality
    /// is bounded by `mttkrp_obs::MAX_LABELS_PER_FAMILY`).
    pub const EXEC_US_BY_SHAPE: &str = "serve.exec_us.shape";
    /// Labeled histogram family: exec latency per chosen plan algorithm.
    pub const EXEC_US_BY_ALG: &str = "serve.exec_us.alg";
    /// Labeled histogram family: queue latency per problem-shape family.
    pub const QUEUED_US_BY_SHAPE: &str = "serve.queued_us.shape";
}

/// The label a problem shape files its latency under: `dims:rank:mode`,
/// e.g. `64x64x64:r16:m1` (factorizations, which sweep every mode, use
/// `m*`).
pub(crate) fn shape_label(dims: &[u64], rank: u64, mode: Option<usize>) -> String {
    let dims = dims
        .iter()
        .map(|d| d.to_string())
        .collect::<Vec<_>>()
        .join("x");
    match mode {
        Some(m) => format!("{dims}:r{rank}:m{m}"),
        None => format!("{dims}:r{rank}:m*"),
    }
}

/// Bumps a counter in the server's registry and mirrors it into the active
/// trace capture, if one is on.
pub(crate) fn counter_add(metrics: &MetricsRegistry, name: &str, v: u64) {
    metrics.counter_add(name, v);
    mttkrp_obs::counter_add(name, v);
}

/// Moves a gauge in the server's registry and the active capture.
pub(crate) fn gauge_add(metrics: &MetricsRegistry, name: &str, delta: i64) {
    metrics.gauge_add(name, delta);
    mttkrp_obs::gauge_add(name, delta);
}

/// Records into a histogram in the server's registry and the active capture.
pub(crate) fn histogram_record(metrics: &MetricsRegistry, name: &str, v: u64) {
    metrics.histogram_record(name, v);
    mttkrp_obs::histogram_record(name, v);
}

/// Records into a labeled histogram family (`family{label}`) in the
/// server's registry and the active capture.
pub(crate) fn histogram_record_labeled(
    metrics: &MetricsRegistry,
    family: &str,
    label: &str,
    v: u64,
) {
    metrics.histogram_record_labeled(family, label, v);
    mttkrp_obs::histogram_record_labeled(family, label, v);
}

/// A point-in-time snapshot of everything a [`Server`] has done.
#[derive(Clone, Debug)]
pub struct ServerStats {
    /// MTTKRP requests accepted by [`Server::submit`].
    pub requests_submitted: u64,
    /// MTTKRP requests fully executed and answered.
    pub requests_served: u64,
    /// Factorization requests accepted by [`Server::submit_factorize`].
    pub factorizations_submitted: u64,
    /// Factorizations fully executed and answered.
    pub factorizations_served: u64,
    /// Batches dispatched to the worker pool.
    pub batches: u64,
    /// Size of the largest batch formed so far.
    pub largest_batch: u64,
    /// Plan-cache accounting (hits, misses, evictions, residency).
    pub cache: CacheStats,
    /// Executions per backend name (e.g. `native`, `sim`), sorted by name.
    pub backend_runs: Vec<(String, u64)>,
    /// Requests currently in flight (submitted but not yet answered).
    pub queue_depth: i64,
    /// Distribution of per-request execution latency, in microseconds.
    pub exec_us: HistogramSnapshot,
    /// Worker threads the server runs.
    pub workers: usize,
    /// Ops-plane scrapes (`STATS`/`HEALTH`/`TRACE_DUMP` frames) answered
    /// by the network front door. Zero for an in-process server.
    pub scrapes: u64,
    /// Bytes read off sockets by the front door (whole frames).
    pub bytes_in: u64,
    /// Bytes written to sockets by the front door (whole frames).
    pub bytes_out: u64,
}

impl ServerStats {
    /// Mean requests per dispatched batch (`0.0` before the first batch).
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.requests_served as f64 / self.batches as f64
        }
    }
}

impl std::fmt::Display for ServerStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "requests submitted   {}", self.requests_submitted)?;
        writeln!(f, "requests served      {}", self.requests_served)?;
        if self.factorizations_submitted > 0 {
            writeln!(
                f,
                "factorizations       {} submitted, {} served",
                self.factorizations_submitted, self.factorizations_served
            )?;
        }
        writeln!(
            f,
            "batches formed       {} (mean size {:.2}, largest {})",
            self.batches,
            self.mean_batch_size(),
            self.largest_batch
        )?;
        let hit_rate = match self.cache.hit_rate() {
            Some(rate) => format!("{:.1}% hit rate", 100.0 * rate),
            None => "no lookups yet".to_string(),
        };
        writeln!(
            f,
            "plan cache           {} hits / {} misses ({hit_rate}), {}/{} resident, {} evicted",
            self.cache.hits,
            self.cache.misses,
            self.cache.len,
            self.cache.capacity,
            self.cache.evictions
        )?;
        if self.cache.measurements > 0 || self.cache.reranks > 0 {
            writeln!(
                f,
                "plan feedback        {} measurement(s) recorded, {} evidence re-rank(s)",
                self.cache.measurements, self.cache.reranks
            )?;
        }
        for (backend, runs) in &self.backend_runs {
            writeln!(f, "backend {backend:<12} {runs} run(s)")?;
        }
        if !self.exec_us.is_empty() {
            writeln!(
                f,
                "exec latency         mean {:.0} us, p50 {:.0} us, p99 {:.0} us, max {} us",
                self.exec_us.mean(),
                self.exec_us.quantile(0.5),
                self.exec_us.quantile(0.99),
                self.exec_us.max
            )?;
        }
        if self.scrapes > 0 || self.bytes_in > 0 || self.bytes_out > 0 {
            writeln!(
                f,
                "net ops plane        {} scrape(s), {} B in, {} B out",
                self.scrapes, self.bytes_in, self.bytes_out
            )?;
        }
        writeln!(f, "queue depth          {}", self.queue_depth)?;
        write!(f, "workers              {}", self.workers)
    }
}

/// A batch with its plan resolved, ready for a worker.
struct DispatchedBatch {
    plan: Arc<Plan>,
    cache_hit: bool,
    requests: Vec<Pending>,
}

/// What the batcher hands the worker pool: a plan-resolved MTTKRP batch,
/// or a whole factorization (whose per-mode plans the worker resolves
/// through the shared cache as it sweeps).
enum Dispatch {
    Batch(DispatchedBatch),
    Factorize(PendingFactorize),
}

/// A long-lived MTTKRP service: submit requests, get
/// [`MttkrpResponse`]s back — and, since the `mttkrp-als` engine landed,
/// whole CP-ALS factorizations ([`Server::submit_factorize`], answered
/// with [`FactorizeResponse`]s) alongside the single MTTKRPs.
///
/// Internally: a [`BatchQueue`] coalesces same-shape requests, one batcher
/// thread resolves each batch's plan through a shared [`PlanCache`]
/// (repeated shapes skip the planner's candidate sweep), and a pool of
/// worker threads runs each batch on the plan's natural
/// [`Executor`] — native hardware for sequential plans, the word-exact
/// simulator for distributed ones. Factorizations ride the same queue and
/// worker pool and resolve their `N`-per-sweep MTTKRP plans through the
/// same shared cache, so a repeated shape is planned once whether it
/// arrives as a single kernel or a whole factorization. Results are
/// *identical* to calling [`mttkrp_exec::plan_and_execute`] (or
/// [`mttkrp_als::cp_als_with_cache`]) per request; batching changes where
/// the work runs and what it costs to plan, never the numbers.
///
/// Shutdown is graceful: [`Server::shutdown`] (or drop) stops accepting
/// new work, drains every queued request through the workers, answers all
/// of them, and joins the threads.
pub struct Server {
    submitter: Option<Submitter>,
    batcher: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    cache: Arc<PlanCache>,
    metrics: Arc<MetricsRegistry>,
    config: ServerConfig,
}

impl Server {
    /// Starts the batcher and worker threads and returns the running server.
    ///
    /// # Panics
    /// Panics if `workers` is zero (nothing would ever execute).
    pub fn start(config: ServerConfig) -> Server {
        assert!(config.workers >= 1, "need at least one worker");
        let (submitter, queue) = BatchQueue::new(config.machine.clone(), config.max_batch);
        let cache = Arc::new(PlanCache::new(config.cache_capacity));
        let metrics = Arc::new(MetricsRegistry::new());
        let (batch_tx, batch_rx) = unbounded::<Dispatch>();

        let batcher = {
            let cache = Arc::clone(&cache);
            let metrics = Arc::clone(&metrics);
            std::thread::spawn(move || run_batcher(queue, batch_tx, cache, metrics))
        };
        let workers = (0..config.workers)
            .map(|_| {
                let rx = batch_rx.clone();
                let cache = Arc::clone(&cache);
                let metrics = Arc::clone(&metrics);
                std::thread::spawn(move || run_worker(rx, cache, metrics))
            })
            .collect();
        drop(batch_rx);

        Server {
            submitter: Some(submitter),
            batcher: Some(batcher),
            workers,
            cache,
            metrics,
            config,
        }
    }

    /// Submits a request; its response arrives on the returned handle.
    pub fn submit(&self, request: MttkrpRequest) -> ResponseHandle {
        // Count before handing off: the pipeline can serve the request
        // before this thread resumes, and a stats() snapshot must never
        // show served > submitted.
        counter_add(&self.metrics, metric::REQUESTS_SUBMITTED, 1);
        gauge_add(&self.metrics, metric::QUEUE_DEPTH, 1);
        self.submitter
            .as_ref()
            .expect("server already shut down")
            .submit(request)
            .expect("serving threads are alive while the server exists")
    }

    /// Submit-and-wait convenience: blocks until the response arrives.
    pub fn call(&self, request: MttkrpRequest) -> MttkrpResponse {
        self.submit(request).wait()
    }

    /// Submits a whole CP-ALS factorization; its [`FactorizeResponse`]
    /// arrives on the returned handle. The run resolves its per-mode
    /// MTTKRP plans through the server's shared plan cache, so repeated
    /// factorizations of the same shape skip the planner's candidate
    /// sweep entirely.
    pub fn submit_factorize(&self, request: FactorizeRequest) -> ResponseHandle<FactorizeResponse> {
        counter_add(&self.metrics, metric::FACTORIZATIONS_SUBMITTED, 1);
        gauge_add(&self.metrics, metric::QUEUE_DEPTH, 1);
        self.submitter
            .as_ref()
            .expect("server already shut down")
            .submit_factorize(request)
            .expect("serving threads are alive while the server exists")
    }

    /// Submit-and-wait convenience for factorizations.
    pub fn call_factorize(&self, request: FactorizeRequest) -> FactorizeResponse {
        self.submit_factorize(request).wait()
    }

    /// [`Server::submit_factorize`] with streaming hooks: `hooks.on_sweep`
    /// fires on the worker thread after every completed [`AlsSweep`]
    /// (final sweep included), and firing a clone of `hooks.cancel` stops
    /// the run at the next sweep boundary, freeing the worker. The
    /// response still arrives on the returned handle either way, with
    /// [`AlsRun::cancelled`](mttkrp_als::AlsRun::cancelled) set when the
    /// cancel won. This is the in-process seam under the network front
    /// door's streaming `Factorize` ([`crate::net`]).
    ///
    /// [`AlsSweep`]: mttkrp_als::AlsSweep
    pub fn submit_factorize_streaming(
        &self,
        request: FactorizeRequest,
        hooks: FactorizeHooks,
    ) -> ResponseHandle<FactorizeResponse> {
        counter_add(&self.metrics, metric::FACTORIZATIONS_SUBMITTED, 1);
        gauge_add(&self.metrics, metric::QUEUE_DEPTH, 1);
        self.submitter
            .as_ref()
            .expect("server already shut down")
            .submit_factorize_with_hooks(request, hooks)
            .expect("serving threads are alive while the server exists")
    }

    /// The shared plan cache (e.g. to warm it up before a burst).
    pub fn cache(&self) -> &PlanCache {
        &self.cache
    }

    /// The server's metrics registry: every counter, gauge, and histogram
    /// the serving pipeline writes, by name (`serve.*`).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// An owning handle on the registry, for threads that outlive a
    /// borrow of the server (the net module's admission permits).
    pub(crate) fn metrics_handle(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.metrics)
    }

    /// Point-in-time snapshot of the server's accounting — a thin view
    /// over [`Server::metrics`] (plus the plan cache's own ledger).
    pub fn stats(&self) -> ServerStats {
        let m = &self.metrics;
        let backend_runs: Vec<(String, u64)> = m
            .snapshot()
            .into_iter()
            .filter_map(|snap| {
                let name = snap
                    .name
                    .strip_prefix(metric::BACKEND_RUNS_PREFIX)?
                    .to_string();
                match snap.value {
                    mttkrp_obs::MetricValue::Counter(runs) => Some((name, runs)),
                    _ => None,
                }
            })
            .collect(); // snapshot() is name-sorted, so this stays sorted
        ServerStats {
            requests_submitted: m.counter_value(metric::REQUESTS_SUBMITTED),
            requests_served: m.counter_value(metric::REQUESTS_SERVED),
            factorizations_submitted: m.counter_value(metric::FACTORIZATIONS_SUBMITTED),
            factorizations_served: m.counter_value(metric::FACTORIZATIONS_SERVED),
            batches: m.counter_value(metric::BATCHES),
            largest_batch: m.counter_value(metric::LARGEST_BATCH),
            cache: self.cache.stats(),
            backend_runs,
            queue_depth: m.gauge_value(metric::QUEUE_DEPTH),
            exec_us: m.histogram(metric::REQUEST_EXEC_US),
            workers: self.config.workers,
            scrapes: m.counter_value(crate::net::listener::metric::SCRAPES),
            bytes_in: m.counter_value(crate::net::listener::metric::BYTES_IN),
            bytes_out: m.counter_value(crate::net::listener::metric::BYTES_OUT),
        }
    }

    /// Graceful shutdown: stop accepting requests, drain and answer
    /// everything already submitted, join all threads, and return the
    /// final stats.
    pub fn shutdown(mut self) -> ServerStats {
        self.join_threads();
        self.stats()
    }

    fn join_threads(&mut self) {
        // Dropping the submitter disconnects the request channel; the
        // batcher drains what is queued, then drops the batch channel; the
        // workers drain the remaining batches, answer them, and exit.
        self.submitter.take();
        if let Some(b) = self.batcher.take() {
            b.join().expect("batcher thread panicked");
        }
        for w in self.workers.drain(..) {
            w.join().expect("worker thread panicked");
        }
    }
}

impl Drop for Server {
    /// Dropping a running server performs the same graceful drain as
    /// [`Server::shutdown`].
    fn drop(&mut self) {
        self.join_threads();
    }
}

fn run_batcher(
    queue: BatchQueue,
    batch_tx: Sender<Dispatch>,
    cache: Arc<PlanCache>,
    metrics: Arc<MetricsRegistry>,
) {
    while let Some(work) = queue.next_work() {
        for unit in work {
            let batch = match unit {
                Work::Factorize(pending) => {
                    // A factorization's per-mode plans are resolved by the
                    // worker as it sweeps (through the same shared cache);
                    // there is nothing to pre-plan here.
                    if batch_tx.send(Dispatch::Factorize(pending)).is_err() {
                        return; // workers are gone; nothing left to answer
                    }
                    continue;
                }
                Work::Batch(batch) => batch,
            };
            let problem = batch.key.problem.problem();
            let mode = batch.key.problem.mode;
            let planner = Planner::new(batch.key.machine.clone());
            let (plan, cache_hit) = planner.plan_cached_with_status(&problem, mode, &cache);
            counter_add(&metrics, metric::BATCHES, 1);
            metrics.counter_max(metric::LARGEST_BATCH, batch.requests.len() as u64);
            histogram_record(&metrics, metric::BATCH_SIZE, batch.requests.len() as u64);
            if batch_tx
                .send(Dispatch::Batch(DispatchedBatch {
                    plan,
                    cache_hit,
                    requests: batch.requests,
                }))
                .is_err()
            {
                return; // workers are gone; nothing left to answer
            }
        }
    }
}

fn run_worker(rx: Receiver<Dispatch>, cache: Arc<PlanCache>, metrics: Arc<MetricsRegistry>) {
    while let Ok(dispatch) = rx.recv() {
        let batch = match dispatch {
            Dispatch::Factorize(pending) => {
                run_factorization(pending, &cache, &metrics);
                continue;
            }
            Dispatch::Batch(batch) => batch,
        };
        // One executor per batch: plan reuse also amortizes backend setup
        // (e.g. the native backend's thread pool) across the whole batch.
        let executor = Executor::for_plan(&batch.plan);
        let batch_size = batch.requests.len();
        // Per-request exec times feed the plan cache's measured profiles:
        // the ground truth the planner's near-tie re-rank weighs against
        // its analytic prior on later lookups of this key.
        let plan_key = PlanKey::for_plan(&batch.plan);
        let plan_id = batch.plan.algorithm.label();
        let shape = shape_label(
            &plan_key.problem.dims,
            plan_key.problem.rank,
            Some(plan_key.problem.mode),
        );
        for pending in batch.requests {
            let mut span = mttkrp_obs::span("request");
            if span.is_active() {
                span.record("kind", "mttkrp");
                span.record("batch_size", batch_size);
                span.record("cache_hit", batch.cache_hit);
                if let Some(ctx) = pending.request.ctx {
                    span.adopt(ctx);
                }
            }
            let refs: Vec<&Matrix> = pending.request.factors.iter().collect();
            let queued = pending.submitted.elapsed();
            let start = Instant::now();
            let report =
                executor.execute(&batch.plan, &pending.request.tensor, &refs, batch.plan.mode);
            let exec = start.elapsed();
            cache.record_measurement(&plan_key, &plan_id, exec.as_secs_f64());
            if span.is_active() {
                span.record("queued_us", queued.as_micros() as u64);
                span.record("backend", report.backend);
            }
            drop(span);
            counter_add(&metrics, metric::REQUESTS_SERVED, 1);
            gauge_add(&metrics, metric::QUEUE_DEPTH, -1);
            histogram_record(
                &metrics,
                metric::REQUEST_QUEUED_US,
                queued.as_micros() as u64,
            );
            histogram_record(&metrics, metric::REQUEST_EXEC_US, exec.as_micros() as u64);
            // Per-shape and per-algorithm breakdowns: what the SLO layer
            // and the `top` dashboard slice latency by.
            histogram_record_labeled(
                &metrics,
                metric::EXEC_US_BY_SHAPE,
                &shape,
                exec.as_micros() as u64,
            );
            histogram_record_labeled(
                &metrics,
                metric::EXEC_US_BY_ALG,
                &plan_id,
                exec.as_micros() as u64,
            );
            histogram_record_labeled(
                &metrics,
                metric::QUEUED_US_BY_SHAPE,
                &shape,
                queued.as_micros() as u64,
            );
            let backend_metric = format!("{}{}", metric::BACKEND_RUNS_PREFIX, report.backend);
            counter_add(&metrics, &backend_metric, 1);
            // The submitter may have dropped its handle; that only means
            // nobody is listening, not that the work was wasted.
            let _ = pending.reply.send(MttkrpResponse {
                report,
                plan: Arc::clone(&batch.plan),
                cache_hit: batch.cache_hit,
                batch_size,
                timing: RequestTiming { queued, exec },
            });
        }
    }
}

/// Runs one whole CP-ALS factorization on a worker thread, resolving every
/// per-mode MTTKRP plan through the server's shared cache. Under tracing
/// the engine's `factorize` span (and everything below it) nests under the
/// `request` span opened here.
fn run_factorization(pending: PendingFactorize, cache: &PlanCache, metrics: &MetricsRegistry) {
    let queued = pending.submitted.elapsed();
    let mut span = mttkrp_obs::span("request");
    if span.is_active() {
        span.record("kind", "factorize");
        span.record("queued_us", queued.as_micros() as u64);
        if let Some(ctx) = pending.request.ctx {
            span.adopt(ctx);
        }
    }
    let FactorizeHooks {
        mut on_sweep,
        cancel,
    } = pending.hooks;
    let start = Instant::now();
    let run = mttkrp_als::cp_als_with_hooks(
        &pending.request.tensor,
        &pending.request.config,
        cache,
        &mut |sweep| {
            if let Some(cb) = on_sweep.as_mut() {
                cb(sweep)
            }
        },
        &cancel,
    );
    let exec = start.elapsed();
    if span.is_active() {
        span.record("cancelled", run.cancelled);
    }
    drop(span);
    if run.cancelled {
        counter_add(metrics, metric::FACTORIZATIONS_CANCELLED, 1);
    }
    counter_add(metrics, metric::FACTORIZATIONS_SERVED, 1);
    gauge_add(metrics, metric::QUEUE_DEPTH, -1);
    histogram_record(
        metrics,
        metric::REQUEST_QUEUED_US,
        queued.as_micros() as u64,
    );
    histogram_record(metrics, metric::REQUEST_EXEC_US, exec.as_micros() as u64);
    // A factorization sweeps every mode, so its shape family is `m*` and
    // its "algorithm" is the whole CP-ALS engine.
    let dims: Vec<u64> = pending
        .request
        .tensor
        .shape()
        .dims()
        .iter()
        .map(|&d| d as u64)
        .collect();
    let shape = shape_label(&dims, pending.request.config.rank as u64, None);
    histogram_record_labeled(
        metrics,
        metric::EXEC_US_BY_SHAPE,
        &shape,
        exec.as_micros() as u64,
    );
    histogram_record_labeled(
        metrics,
        metric::EXEC_US_BY_ALG,
        "cp-als",
        exec.as_micros() as u64,
    );
    histogram_record_labeled(
        metrics,
        metric::QUEUED_US_BY_SHAPE,
        &shape,
        queued.as_micros() as u64,
    );
    let _ = pending.reply.send(FactorizeResponse {
        run,
        timing: RequestTiming { queued, exec },
    });
}
