//! The serving engine: a batcher thread, a worker pool, a shared plan
//! cache, and a stats ledger.

use crate::queue::{BatchQueue, Pending, PendingFactorize, ResponseHandle, Submitter, Work};
use crate::request::{
    FactorizeRequest, FactorizeResponse, MttkrpRequest, MttkrpResponse, RequestTiming,
};
use crossbeam::channel::{unbounded, Receiver, Sender};
use mttkrp_exec::{CacheStats, Executor, MachineSpec, Plan, PlanCache, Planner};
use mttkrp_tensor::Matrix;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// How a [`Server`] is sized.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Default machine requests are planned for (a request can override it).
    pub machine: MachineSpec,
    /// Worker threads executing batches.
    pub workers: usize,
    /// Plan-cache capacity (plans, not bytes).
    pub cache_capacity: usize,
    /// Largest batch the queue will form.
    pub max_batch: usize,
}

impl Default for ServerConfig {
    /// Detected host machine, two workers, 128 cached plans, batches of up
    /// to 32 requests.
    fn default() -> ServerConfig {
        ServerConfig {
            machine: MachineSpec::detect(),
            workers: 2,
            cache_capacity: 128,
            max_batch: 32,
        }
    }
}

/// Shared mutable counters, written by the batcher and the workers.
#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    served: AtomicU64,
    factorizations_submitted: AtomicU64,
    factorizations_served: AtomicU64,
    batches: AtomicU64,
    largest_batch: AtomicU64,
    backend_runs: Mutex<HashMap<&'static str, u64>>,
}

/// A point-in-time snapshot of everything a [`Server`] has done.
#[derive(Clone, Debug)]
pub struct ServerStats {
    /// MTTKRP requests accepted by [`Server::submit`].
    pub requests_submitted: u64,
    /// MTTKRP requests fully executed and answered.
    pub requests_served: u64,
    /// Factorization requests accepted by [`Server::submit_factorize`].
    pub factorizations_submitted: u64,
    /// Factorizations fully executed and answered.
    pub factorizations_served: u64,
    /// Batches dispatched to the worker pool.
    pub batches: u64,
    /// Size of the largest batch formed so far.
    pub largest_batch: u64,
    /// Plan-cache accounting (hits, misses, evictions, residency).
    pub cache: CacheStats,
    /// Executions per backend name (e.g. `native`, `sim`), sorted by name.
    pub backend_runs: Vec<(String, u64)>,
    /// Worker threads the server runs.
    pub workers: usize,
}

impl ServerStats {
    /// Mean requests per dispatched batch (`0.0` before the first batch).
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.requests_served as f64 / self.batches as f64
        }
    }
}

impl std::fmt::Display for ServerStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "requests submitted   {}", self.requests_submitted)?;
        writeln!(f, "requests served      {}", self.requests_served)?;
        if self.factorizations_submitted > 0 {
            writeln!(
                f,
                "factorizations       {} submitted, {} served",
                self.factorizations_submitted, self.factorizations_served
            )?;
        }
        writeln!(
            f,
            "batches formed       {} (mean size {:.2}, largest {})",
            self.batches,
            self.mean_batch_size(),
            self.largest_batch
        )?;
        writeln!(
            f,
            "plan cache           {} hits / {} misses ({:.1}% hit rate), {}/{} resident, {} evicted",
            self.cache.hits,
            self.cache.misses,
            100.0 * self.cache.hit_rate(),
            self.cache.len,
            self.cache.capacity,
            self.cache.evictions
        )?;
        for (backend, runs) in &self.backend_runs {
            writeln!(f, "backend {backend:<12} {runs} run(s)")?;
        }
        write!(f, "workers              {}", self.workers)
    }
}

/// A batch with its plan resolved, ready for a worker.
struct DispatchedBatch {
    plan: Arc<Plan>,
    cache_hit: bool,
    requests: Vec<Pending>,
}

/// What the batcher hands the worker pool: a plan-resolved MTTKRP batch,
/// or a whole factorization (whose per-mode plans the worker resolves
/// through the shared cache as it sweeps).
enum Dispatch {
    Batch(DispatchedBatch),
    Factorize(PendingFactorize),
}

/// A long-lived MTTKRP service: submit requests, get
/// [`MttkrpResponse`]s back — and, since the `mttkrp-als` engine landed,
/// whole CP-ALS factorizations ([`Server::submit_factorize`], answered
/// with [`FactorizeResponse`]s) alongside the single MTTKRPs.
///
/// Internally: a [`BatchQueue`] coalesces same-shape requests, one batcher
/// thread resolves each batch's plan through a shared [`PlanCache`]
/// (repeated shapes skip the planner's candidate sweep), and a pool of
/// worker threads runs each batch on the plan's natural
/// [`Executor`] — native hardware for sequential plans, the word-exact
/// simulator for distributed ones. Factorizations ride the same queue and
/// worker pool and resolve their `N`-per-sweep MTTKRP plans through the
/// same shared cache, so a repeated shape is planned once whether it
/// arrives as a single kernel or a whole factorization. Results are
/// *identical* to calling [`mttkrp_exec::plan_and_execute`] (or
/// [`mttkrp_als::cp_als_with_cache`]) per request; batching changes where
/// the work runs and what it costs to plan, never the numbers.
///
/// Shutdown is graceful: [`Server::shutdown`] (or drop) stops accepting
/// new work, drains every queued request through the workers, answers all
/// of them, and joins the threads.
pub struct Server {
    submitter: Option<Submitter>,
    batcher: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    cache: Arc<PlanCache>,
    counters: Arc<Counters>,
    config: ServerConfig,
}

impl Server {
    /// Starts the batcher and worker threads and returns the running server.
    ///
    /// # Panics
    /// Panics if `workers` is zero (nothing would ever execute).
    pub fn start(config: ServerConfig) -> Server {
        assert!(config.workers >= 1, "need at least one worker");
        let (submitter, queue) = BatchQueue::new(config.machine.clone(), config.max_batch);
        let cache = Arc::new(PlanCache::new(config.cache_capacity));
        let counters = Arc::new(Counters::default());
        let (batch_tx, batch_rx) = unbounded::<Dispatch>();

        let batcher = {
            let cache = Arc::clone(&cache);
            let counters = Arc::clone(&counters);
            std::thread::spawn(move || run_batcher(queue, batch_tx, cache, counters))
        };
        let workers = (0..config.workers)
            .map(|_| {
                let rx = batch_rx.clone();
                let cache = Arc::clone(&cache);
                let counters = Arc::clone(&counters);
                std::thread::spawn(move || run_worker(rx, cache, counters))
            })
            .collect();
        drop(batch_rx);

        Server {
            submitter: Some(submitter),
            batcher: Some(batcher),
            workers,
            cache,
            counters,
            config,
        }
    }

    /// Submits a request; its response arrives on the returned handle.
    pub fn submit(&self, request: MttkrpRequest) -> ResponseHandle {
        // Count before handing off: the pipeline can serve the request
        // before this thread resumes, and a stats() snapshot must never
        // show served > submitted.
        self.counters.submitted.fetch_add(1, Ordering::Relaxed);
        self.submitter
            .as_ref()
            .expect("server already shut down")
            .submit(request)
            .expect("serving threads are alive while the server exists")
    }

    /// Submit-and-wait convenience: blocks until the response arrives.
    pub fn call(&self, request: MttkrpRequest) -> MttkrpResponse {
        self.submit(request).wait()
    }

    /// Submits a whole CP-ALS factorization; its [`FactorizeResponse`]
    /// arrives on the returned handle. The run resolves its per-mode
    /// MTTKRP plans through the server's shared plan cache, so repeated
    /// factorizations of the same shape skip the planner's candidate
    /// sweep entirely.
    pub fn submit_factorize(&self, request: FactorizeRequest) -> ResponseHandle<FactorizeResponse> {
        self.counters
            .factorizations_submitted
            .fetch_add(1, Ordering::Relaxed);
        self.submitter
            .as_ref()
            .expect("server already shut down")
            .submit_factorize(request)
            .expect("serving threads are alive while the server exists")
    }

    /// Submit-and-wait convenience for factorizations.
    pub fn call_factorize(&self, request: FactorizeRequest) -> FactorizeResponse {
        self.submit_factorize(request).wait()
    }

    /// The shared plan cache (e.g. to warm it up before a burst).
    pub fn cache(&self) -> &PlanCache {
        &self.cache
    }

    /// Point-in-time snapshot of the server's accounting.
    pub fn stats(&self) -> ServerStats {
        let runs = self
            .counters
            .backend_runs
            .lock()
            .expect("backend-run map poisoned");
        let mut backend_runs: Vec<(String, u64)> = runs
            .iter()
            .map(|(name, count)| (name.to_string(), *count))
            .collect();
        backend_runs.sort();
        ServerStats {
            requests_submitted: self.counters.submitted.load(Ordering::Relaxed),
            requests_served: self.counters.served.load(Ordering::Relaxed),
            factorizations_submitted: self
                .counters
                .factorizations_submitted
                .load(Ordering::Relaxed),
            factorizations_served: self.counters.factorizations_served.load(Ordering::Relaxed),
            batches: self.counters.batches.load(Ordering::Relaxed),
            largest_batch: self.counters.largest_batch.load(Ordering::Relaxed),
            cache: self.cache.stats(),
            backend_runs,
            workers: self.config.workers,
        }
    }

    /// Graceful shutdown: stop accepting requests, drain and answer
    /// everything already submitted, join all threads, and return the
    /// final stats.
    pub fn shutdown(mut self) -> ServerStats {
        self.join_threads();
        self.stats()
    }

    fn join_threads(&mut self) {
        // Dropping the submitter disconnects the request channel; the
        // batcher drains what is queued, then drops the batch channel; the
        // workers drain the remaining batches, answer them, and exit.
        self.submitter.take();
        if let Some(b) = self.batcher.take() {
            b.join().expect("batcher thread panicked");
        }
        for w in self.workers.drain(..) {
            w.join().expect("worker thread panicked");
        }
    }
}

impl Drop for Server {
    /// Dropping a running server performs the same graceful drain as
    /// [`Server::shutdown`].
    fn drop(&mut self) {
        self.join_threads();
    }
}

fn run_batcher(
    queue: BatchQueue,
    batch_tx: Sender<Dispatch>,
    cache: Arc<PlanCache>,
    counters: Arc<Counters>,
) {
    while let Some(work) = queue.next_work() {
        for unit in work {
            let batch = match unit {
                Work::Factorize(pending) => {
                    // A factorization's per-mode plans are resolved by the
                    // worker as it sweeps (through the same shared cache);
                    // there is nothing to pre-plan here.
                    if batch_tx.send(Dispatch::Factorize(pending)).is_err() {
                        return; // workers are gone; nothing left to answer
                    }
                    continue;
                }
                Work::Batch(batch) => batch,
            };
            let problem = batch.key.problem.problem();
            let mode = batch.key.problem.mode;
            let planner = Planner::new(batch.key.machine.clone());
            let (plan, cache_hit) = planner.plan_cached_with_status(&problem, mode, &cache);
            counters.batches.fetch_add(1, Ordering::Relaxed);
            counters
                .largest_batch
                .fetch_max(batch.requests.len() as u64, Ordering::Relaxed);
            if batch_tx
                .send(Dispatch::Batch(DispatchedBatch {
                    plan,
                    cache_hit,
                    requests: batch.requests,
                }))
                .is_err()
            {
                return; // workers are gone; nothing left to answer
            }
        }
    }
}

fn run_worker(rx: Receiver<Dispatch>, cache: Arc<PlanCache>, counters: Arc<Counters>) {
    while let Ok(dispatch) = rx.recv() {
        let batch = match dispatch {
            Dispatch::Factorize(pending) => {
                run_factorization(pending, &cache, &counters);
                continue;
            }
            Dispatch::Batch(batch) => batch,
        };
        // One executor per batch: plan reuse also amortizes backend setup
        // (e.g. the native backend's thread pool) across the whole batch.
        let executor = Executor::for_plan(&batch.plan);
        let batch_size = batch.requests.len();
        for pending in batch.requests {
            let refs: Vec<&Matrix> = pending.request.factors.iter().collect();
            let queued = pending.submitted.elapsed();
            let start = Instant::now();
            let report =
                executor.execute(&batch.plan, &pending.request.tensor, &refs, batch.plan.mode);
            let exec = start.elapsed();
            counters.served.fetch_add(1, Ordering::Relaxed);
            *counters
                .backend_runs
                .lock()
                .expect("backend-run map poisoned")
                .entry(report.backend)
                .or_insert(0) += 1;
            // The submitter may have dropped its handle; that only means
            // nobody is listening, not that the work was wasted.
            let _ = pending.reply.send(MttkrpResponse {
                report,
                plan: Arc::clone(&batch.plan),
                cache_hit: batch.cache_hit,
                batch_size,
                timing: RequestTiming { queued, exec },
            });
        }
    }
}

/// Runs one whole CP-ALS factorization on a worker thread, resolving every
/// per-mode MTTKRP plan through the server's shared cache.
fn run_factorization(pending: PendingFactorize, cache: &PlanCache, counters: &Counters) {
    let queued = pending.submitted.elapsed();
    let start = Instant::now();
    let run =
        mttkrp_als::cp_als_with_cache(&pending.request.tensor, &pending.request.config, cache);
    let exec = start.elapsed();
    counters
        .factorizations_served
        .fetch_add(1, Ordering::Relaxed);
    let _ = pending.reply.send(FactorizeResponse {
        run,
        timing: RequestTiming { queued, exec },
    });
}
