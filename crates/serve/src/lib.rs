//! # mttkrp-serve
//!
//! A plan-cached, request-batching serving front-end over
//! [`mttkrp_exec`]: the workspace's answer to "call the planner as a
//! long-lived service, not a CLI one-shot".
//!
//! Three ideas, three types:
//!
//! 1. **[`PlanCache`]** (re-exported from `mttkrp_exec`) — planning is pure
//!    model evaluation, but the `grid_opt` candidate sweeps are not free,
//!    and serving traffic repeats the same handful of shapes. The cache
//!    keys plans on `(problem shape, mode, machine)` with LRU eviction and
//!    hit/miss counters; repeated shapes skip the sweep entirely.
//! 2. **[`BatchQueue`]** — requests arrive on a channel and are coalesced
//!    by shape: every request in a batch shares one plan and one executor.
//!    Batching is opportunistic (drain-what's-queued), so an idle server
//!    adds no latency and a bursty one amortizes planning and backend
//!    setup across the burst.
//! 3. **[`Server`]** — the engine: one batcher thread, a worker pool of
//!    [`mttkrp_exec::Executor`]s, per-request timing, a
//!    [`Server::stats`] snapshot, and graceful shutdown that drains and
//!    answers every accepted request.
//!
//! The server speaks two request types: single MTTKRPs
//! ([`MttkrpRequest`], batched by shape) and whole CP-ALS factorizations
//! ([`FactorizeRequest`], executed by the `mttkrp-als` engine on the same
//! worker pool). Both resolve plans through the one shared [`PlanCache`],
//! so a repeated shape is planned exactly once no matter which request
//! type carries it.
//!
//! Batching never changes results: a served response's output is
//! bit-identical to a direct [`mttkrp_exec::plan_and_execute`] call with
//! the same operands and machine, and a served factorization is
//! bit-identical to [`mttkrp_als::cp_als_with_cache`] (enforced by the
//! crate's tests).
//!
//! ## Quickstart
//!
//! ```
//! use mttkrp_exec::MachineSpec;
//! use mttkrp_serve::{MttkrpRequest, Server, ServerConfig};
//! use mttkrp_tensor::{mttkrp_reference, DenseTensor, Matrix, Shape};
//! use std::sync::Arc;
//!
//! let server = Server::start(ServerConfig {
//!     machine: MachineSpec::shared(2, 1 << 12),
//!     workers: 2,
//!     ..ServerConfig::default()
//! });
//!
//! let x = Arc::new(DenseTensor::random(Shape::new(&[8, 8, 8]), 1));
//! let factors = Arc::new((0..3).map(|k| Matrix::random(8, 4, k)).collect::<Vec<_>>());
//! let response = server.call(MttkrpRequest::new(x.clone(), factors.clone(), 0));
//!
//! let refs: Vec<&Matrix> = factors.iter().collect();
//! let oracle = mttkrp_reference(&x, &refs, 0);
//! assert!(response.report.output.max_abs_diff(&oracle) < 1e-12);
//!
//! let stats = server.shutdown(); // drains, answers, joins
//! assert_eq!(stats.requests_served, 1);
//! ```

#![deny(missing_docs)]

pub mod net;
pub mod queue;
pub mod request;
pub mod server;

pub use mttkrp_exec::{CacheStats, PlanCache, PlanKey, ProblemKey};
pub use net::{Client, ClientError, NetConfig, NetServer, StreamControl};
pub use queue::{
    Batch, BatchKey, BatchQueue, FactorizeHooks, Pending, PendingFactorize, ResponseHandle,
    Submitter, Work,
};
pub use request::{
    FactorizeRequest, FactorizeResponse, MttkrpRequest, MttkrpResponse, RequestTiming,
};
pub use server::{Server, ServerConfig, ServerStats};
