//! The network front door: a TCP listener in front of the [`Server`],
//! speaking `mttkrp-dist`'s length-prefixed wire framing.
//!
//! Everything behind the listener already batches, caches, and drains —
//! this module only moves requests and responses across sockets, and adds
//! the two things a *public* front door needs that an in-process API does
//! not:
//!
//! 1. **Bounded admission.** A configurable in-flight cap
//!    ([`NetConfig::max_in_flight`]). At the cap (or while the server is
//!    draining), a request is answered with a `retry-after` frame instead
//!    of queueing unboundedly; shed counters and an in-flight gauge land
//!    on the server's existing
//!    [`MetricsRegistry`](mttkrp_obs::MetricsRegistry).
//! 2. **Streaming factorizations.** A `Factorize` client receives one
//!    frame per completed [`AlsSweep`](mttkrp_als::AlsSweep) (fit and fit
//!    delta) and can send a cancel frame — or simply vanish — to stop the
//!    run at the next sweep boundary and free the worker.
//!
//! The protocol rides the exact frame format of
//! [`mod@mttkrp_dist::transport::wire`], with request/response kinds in the
//! reserved control-id space (see [`protocol`] for the frame table) — so
//! the codec's hardening (length-prefix validation, payload caps,
//! truncation detection) is inherited, not re-implemented.
//!
//! Served bytes are *bit-identical* to in-process calls: the wire encodes
//! every `f64` with `to_le_bytes`, so a socket client's MTTKRP output and
//! fitted factors equal [`Server::call`] / [`Server::call_factorize`]
//! results bit for bit (asserted by this crate's soak tests).
//!
//! ```no_run
//! use mttkrp_serve::net::{Client, NetConfig, NetServer};
//! use mttkrp_tensor::{DenseTensor, Matrix, Shape};
//!
//! let server = NetServer::start(NetConfig::default()).unwrap();
//! let mut client = Client::connect(server.addr()).unwrap();
//!
//! let x = DenseTensor::random(Shape::new(&[8, 8, 8]), 1);
//! let factors: Vec<Matrix> = (0..3).map(|k| Matrix::random(8, 4, k)).collect();
//! let reply = client.mttkrp(&x, &factors, 0).unwrap();
//! assert_eq!(reply.output.rows(), 8);
//!
//! drop(client);
//! server.shutdown();
//! ```

pub mod client;
pub mod listener;
pub mod protocol;

pub use client::{Client, ClientError, StreamControl};
pub use listener::{NetConfig, NetServer};
pub use protocol::{
    FactorizeSpec, HealthSnapshot, ProtocolError, RemoteFactorize, RemoteMttkrp, SweepUpdate,
    PROTOCOL_VERSION,
};

#[allow(unused_imports)] // rustdoc links
use crate::Server;
