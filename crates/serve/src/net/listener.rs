//! The socket listener: accepts connections, decodes request frames,
//! enforces bounded admission, and multiplexes tagged replies back.
//!
//! ## Admission / backpressure state machine
//!
//! Every decoded request passes through exactly one of three gates:
//!
//! ```text
//!              ┌── draining? ──────────► retry-after frame (shed)
//! request ──►──┤
//!              ├── in_flight == cap? ──► retry-after frame (shed)
//!              │
//!              └── else ───────────────► permit acquired, submitted
//!                                        (permit released when the
//!                                         reply frame is written)
//! ```
//!
//! Nothing queues beyond the cap: the `Server`'s internal queue depth is
//! bounded by `max_in_flight`, and a client told to retry knows *when*
//! ([`NetConfig::retry_after_ms`]). Sheds and in-flight occupancy land on
//! the server's [`MetricsRegistry`] (`serve.net.*`).
//!
//! ## Shutdown
//!
//! [`NetServer::shutdown`] drains: the draining flag flips (new requests
//! and new connections shed with retry-after), in-flight requests finish
//! and their replies are written, then sockets close, handler threads
//! join, and the inner [`Server`] performs its own graceful drain.

use crate::net::protocol::{self, ProtocolError};
use crate::queue::FactorizeHooks;
use crate::server::{counter_add, gauge_add, metric as metric_names};
use crate::{Server, ServerConfig, ServerStats};
use mttkrp_als::CancelFlag;
use mttkrp_dist::transport::wire::{self, Frame, WireError};
use mttkrp_exec::MachineSpec;
use mttkrp_obs::timeseries::TimeSeriesRing;
use mttkrp_obs::{MetricsRegistry, SloSpec};
use std::collections::HashMap;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Metric names the front door writes into the server's registry.
pub mod metric {
    /// Connections accepted over the listener's lifetime.
    pub const CONNECTIONS: &str = "serve.net.connections";
    /// Currently open connections (gauge).
    pub const OPEN_CONNECTIONS: &str = "serve.net.open_connections";
    /// Requests admitted past the in-flight cap.
    pub const REQUESTS: &str = "serve.net.requests";
    /// Requests shed with a retry-after frame (cap reached, or draining).
    pub const SHED: &str = "serve.net.shed";
    /// Admitted requests not yet answered (gauge; bounded by the cap).
    pub const IN_FLIGHT: &str = "serve.net.in_flight";
    /// Malformed or out-of-place frames answered with a typed error.
    pub const PROTOCOL_ERRORS: &str = "serve.net.protocol_errors";
    /// Per-sweep progress frames streamed to factorize clients.
    pub const SWEEPS_STREAMED: &str = "serve.net.sweeps_streamed";
    /// Admission decisions taken (always equals `REQUESTS + SHED`; the
    /// scrape lock makes the identity hold at *every* `STATS` snapshot,
    /// not just at drain).
    pub const REQUEST_ATTEMPTS: &str = "serve.net.request_attempts";
    /// Ops-plane scrapes (`STATS`/`STATS_HISTORY`/`HEALTH`/`TRACE_DUMP`)
    /// answered.
    pub const SCRAPES: &str = "serve.net.scrapes";
    /// History windows sampled by the listener's ticker.
    pub const HISTORY_WINDOWS: &str = "serve.net.history_windows";
    /// Bytes read off sockets (whole decoded frames).
    pub const BYTES_IN: &str = "serve.net.bytes_in";
    /// Bytes written to sockets (whole encoded frames).
    pub const BYTES_OUT: &str = "serve.net.bytes_out";
}

/// How a [`NetServer`] is sized.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Address to bind (`"127.0.0.1:0"` picks a free port; see
    /// [`NetServer::addr`] for what was bound).
    pub bind: String,
    /// The inner serving engine's sizing.
    pub server: ServerConfig,
    /// Admission cap: at most this many requests in flight at once;
    /// request `cap + 1` is shed with a retry-after frame.
    pub max_in_flight: usize,
    /// The advisory delay, in milliseconds, shed clients are told to wait.
    pub retry_after_ms: u64,
    /// Time-series ring capacity: how many sampling windows of metric
    /// history `STATS_HISTORY` can serve (memory is bounded by this).
    pub history_windows: usize,
    /// The sampling ticker's interval in milliseconds: one history
    /// window (and one SLO evaluation) per tick.
    pub sample_interval_ms: u64,
    /// Latency objectives the ticker evaluates against the ring each
    /// window, published as `obs.slo.*` gauges.
    pub slos: Vec<SloSpec>,
}

impl Default for NetConfig {
    /// Loopback on a free port, the default [`ServerConfig`], 64 requests
    /// in flight, 50 ms retry hint, 240 history windows sampled every
    /// 250 ms (a one-minute look-back), and a default pair of latency
    /// SLOs on exec and queue time.
    fn default() -> NetConfig {
        NetConfig {
            bind: "127.0.0.1:0".to_string(),
            server: ServerConfig::default(),
            max_in_flight: 64,
            retry_after_ms: 50,
            history_windows: 240,
            sample_interval_ms: 250,
            slos: vec![
                // 99% of requests execute in under 50 ms, judged over the
                // last ~2 s and ~30 s of windows.
                SloSpec::latency("exec", metric_names::REQUEST_EXEC_US, 50_000, 0.99, 8, 120),
                // 95% of requests spend under 10 ms queued.
                SloSpec::latency(
                    "queue",
                    metric_names::REQUEST_QUEUED_US,
                    10_000,
                    0.95,
                    8,
                    120,
                ),
            ],
        }
    }
}

/// Locks without propagating poisoning: the front door never trusts a
/// peer enough to let one failed thread wedge every other connection.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The bounded-admission ledger: a counted semaphore whose permits are
/// released when a reply frame has been handed to the socket, plus a
/// condvar so shutdown can wait for zero occupancy.
struct Admission {
    cap: usize,
    in_flight: Mutex<usize>,
    idle: Condvar,
    metrics: Arc<MetricsRegistry>,
}

impl Admission {
    fn try_acquire(self: &Arc<Admission>) -> Option<Permit> {
        let mut n = lock(&self.in_flight);
        if *n >= self.cap {
            return None;
        }
        *n += 1;
        gauge_add(&self.metrics, metric::IN_FLIGHT, 1);
        Some(Permit {
            admission: Arc::clone(self),
        })
    }

    /// Blocks until no permits are outstanding.
    fn wait_idle(&self) {
        let mut n = lock(&self.in_flight);
        while *n > 0 {
            n = self
                .idle
                .wait(n)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

/// One admitted request's slot; dropping it (after the reply is written)
/// frees the slot and wakes a draining shutdown.
struct Permit {
    admission: Arc<Admission>,
}

impl Drop for Permit {
    fn drop(&mut self) {
        let mut n = lock(&self.admission.in_flight);
        *n -= 1;
        gauge_add(&self.admission.metrics, metric::IN_FLIGHT, -1);
        if *n == 0 {
            self.admission.idle.notify_all();
        }
    }
}

/// State every connection handler shares with the listener.
struct Shared {
    admission: Arc<Admission>,
    draining: AtomicBool,
    machine: MachineSpec,
    retry_after_ms: u64,
    metrics: Arc<MetricsRegistry>,
    /// Open connections by id, so shutdown can unblock their readers.
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_conn_id: AtomicU64,
    handlers: Mutex<Vec<JoinHandle<()>>>,
    /// When the listener started (the `HEALTH` uptime epoch).
    started: Instant,
    /// Serializes admission-counter updates against `STATS` snapshots, so
    /// a scrape can never observe `attempts != admissions + sheds`
    /// mid-update.
    scrape_lock: Mutex<()>,
    /// Backend override for factorizations arriving over the wire
    /// ([`crate::ServerConfig::backend`]); `Auto` leaves requests as
    /// decoded.
    backend: mttkrp_als::BackendChoice,
    /// The time-series ring the sampling ticker fills and
    /// `STATS_HISTORY` serves. Scrapes read a consistent copy under the
    /// ring's own lock; a mid-run kill can never tear a window.
    history: TimeSeriesRing,
}

/// One connection's write half: the socket, serialized, plus this
/// connection's outbound byte tally (the registry-level
/// [`metric::BYTES_OUT`] is bumped too; the per-connection tally lands on
/// the `net.connection` span at close).
struct ConnWriter {
    stream: Mutex<TcpStream>,
    bytes_out: AtomicU64,
    metrics: Arc<MetricsRegistry>,
}

/// A TCP front door over a [`Server`]: accepts many concurrent
/// connections speaking the [`protocol`](mod@crate::net::protocol) framing,
/// answers MTTKRP and (optionally streaming) Factorize requests
/// bit-identically to the in-process API, sheds load beyond
/// [`NetConfig::max_in_flight`] with retry-after frames, and drains
/// gracefully on [`NetServer::shutdown`].
pub struct NetServer {
    server: Option<Arc<Server>>,
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    stop_accept: Arc<AtomicBool>,
    ticker: Option<JoinHandle<()>>,
    stop_ticker: Arc<AtomicBool>,
}

impl NetServer {
    /// Binds the listener and starts the inner [`Server`] plus the accept
    /// thread. Returns an error only if the bind itself fails.
    pub fn start(config: NetConfig) -> std::io::Result<NetServer> {
        assert!(
            config.max_in_flight >= 1,
            "need at least one in-flight slot"
        );
        let listener = TcpListener::bind(&config.bind)?;
        let addr = listener.local_addr()?;
        let server = Arc::new(Server::start(config.server.clone()));
        let metrics = server.metrics_handle();
        let shared = Arc::new(Shared {
            admission: Arc::new(Admission {
                cap: config.max_in_flight,
                in_flight: Mutex::new(0),
                idle: Condvar::new(),
                metrics: Arc::clone(&metrics),
            }),
            draining: AtomicBool::new(false),
            machine: config.server.machine.clone(),
            retry_after_ms: config.retry_after_ms,
            metrics,
            conns: Mutex::new(HashMap::new()),
            next_conn_id: AtomicU64::new(0),
            handlers: Mutex::new(Vec::new()),
            started: Instant::now(),
            scrape_lock: Mutex::new(()),
            backend: config.server.backend,
            history: TimeSeriesRing::new(config.history_windows.max(1)),
        });
        let stop_accept = Arc::new(AtomicBool::new(false));
        let acceptor = {
            let server = Arc::clone(&server);
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop_accept);
            std::thread::spawn(move || run_acceptor(listener, server, shared, stop))
        };
        let stop_ticker = Arc::new(AtomicBool::new(false));
        let ticker = {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop_ticker);
            let interval = Duration::from_millis(config.sample_interval_ms.max(1));
            let slos = config.slos.clone();
            std::thread::spawn(move || run_ticker(shared, slos, interval, stop))
        };
        Ok(NetServer {
            server: Some(server),
            shared,
            addr,
            acceptor: Some(acceptor),
            stop_accept,
            ticker: Some(ticker),
            stop_ticker,
        })
    }

    /// The address actually bound (resolves a `:0` port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The inner serving engine (its cache, metrics, and stats are the
    /// front door's too — `serve.net.*` metrics live in the same
    /// registry).
    pub fn server(&self) -> &Server {
        self.server.as_ref().expect("net server already shut down")
    }

    /// Point-in-time snapshot of the inner server's accounting.
    pub fn stats(&self) -> ServerStats {
        self.server().stats()
    }

    /// The shared metrics registry (`serve.*` and `serve.net.*`).
    pub fn metrics(&self) -> &MetricsRegistry {
        self.server().metrics()
    }

    /// The listener's time-series history ring — what a `STATS_HISTORY`
    /// scrape serializes.
    pub fn history(&self) -> &TimeSeriesRing {
        &self.shared.history
    }

    /// Graceful drain: new requests and connections shed with
    /// retry-after, every admitted request is answered and its reply
    /// written, then sockets close, threads join, and the inner server
    /// shuts down. Returns the final stats.
    pub fn shutdown(mut self) -> ServerStats {
        self.drain();
        let server = self
            .server
            .take()
            .expect("drain leaves the server in place");
        let stats = server.stats();
        // Handlers are joined, so this is the last handle; dropping it
        // performs the inner server's own graceful drain (a no-op by now).
        drop(server);
        stats
    }

    fn drain(&mut self) {
        if self.acceptor.is_none() {
            return;
        }
        // 1. Shed everything new; 2. wait for the last reply to be
        // written; 3. stop accepting (a self-connect unblocks `accept`);
        // 4. unblock every connection's reader and join the handlers.
        self.shared.draining.store(true, Ordering::Release);
        self.shared.admission.wait_idle();
        // Stop the history ticker; its final iteration closes one last
        // window so the drain itself is on the record.
        self.stop_ticker.store(true, Ordering::Release);
        if let Some(t) = self.ticker.take() {
            t.join().expect("history ticker panicked");
        }
        self.stop_accept.store(true, Ordering::Release);
        let _ = TcpStream::connect(self.addr);
        if let Some(a) = self.acceptor.take() {
            a.join().expect("acceptor thread panicked");
        }
        for (_, conn) in lock(&self.shared.conns).drain() {
            let _ = conn.shutdown(Shutdown::Both);
        }
        let handlers: Vec<JoinHandle<()>> = lock(&self.shared.handlers).drain(..).collect();
        for h in handlers {
            h.join().expect("connection handler panicked");
        }
    }
}

impl Drop for NetServer {
    /// Dropping a running front door performs the same graceful drain as
    /// [`NetServer::shutdown`].
    fn drop(&mut self) {
        self.drain();
    }
}

fn run_acceptor(
    listener: TcpListener,
    server: Arc<Server>,
    shared: Arc<Shared>,
    stop: Arc<AtomicBool>,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if stop.load(Ordering::Acquire) {
                    return;
                }
                continue;
            }
        };
        if stop.load(Ordering::Acquire) {
            return; // the self-connect (or a last-instant client)
        }
        counter_add(&shared.metrics, metric::CONNECTIONS, 1);
        let id = shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            lock(&shared.conns).insert(id, clone);
        }
        let handler = {
            let server = Arc::clone(&server);
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || handle_connection(id, stream, server, shared))
        };
        lock(&shared.handlers).push(handler);
    }
}

/// The history ticker: every `interval` it closes one delta window over
/// the server's registry and re-evaluates the configured SLOs against
/// the ring, publishing `obs.slo.*` gauges back into the same registry —
/// so the *next* window (and any plain `STATS` scrape) carries burn
/// rates and budget remaining. A draining listener gets one final
/// sample, so the shutdown itself lands on the record and the ring is
/// never left mid-window.
fn run_ticker(shared: Arc<Shared>, slos: Vec<SloSpec>, interval: Duration, stop: Arc<AtomicBool>) {
    loop {
        shared.history.sample(&shared.metrics);
        counter_add(&shared.metrics, metric::HISTORY_WINDOWS, 1);
        if !slos.is_empty() {
            mttkrp_obs::slo::evaluate(&slos, &shared.history.windows()).publish(&shared.metrics);
        }
        if stop.load(Ordering::Acquire) {
            return;
        }
        // Sleep in small slices so a drain isn't held up by a long
        // interval; a stop mid-sleep still gets its final sample above.
        let mut waited = Duration::ZERO;
        while waited < interval && !stop.load(Ordering::Acquire) {
            let step = interval
                .saturating_sub(waited)
                .min(Duration::from_millis(10));
            std::thread::sleep(step);
            waited += step;
        }
    }
}

/// Writes one frame, serialized against the connection's other writers
/// (streamed sweeps, concurrent replies). Write failures mean the peer is
/// gone; the reader will notice on its own.
fn send(writer: &Arc<ConnWriter>, frame: &Frame) {
    let mut w = lock(&writer.stream);
    if wire::write_frame(&mut *w, frame).is_ok() {
        let n = wire::frame_wire_bytes(frame) as u64;
        writer.bytes_out.fetch_add(n, Ordering::Relaxed);
        counter_add(&writer.metrics, metric::BYTES_OUT, n);
    }
}

/// Sheds or admits one decoded request: a permit, or `None` after a
/// retry-after frame has been sent. Counter updates happen under the
/// scrape lock, as one unit, so `attempts == admissions + sheds` at every
/// `STATS` snapshot.
fn admit(shared: &Shared, tag: u32, writer: &Arc<ConnWriter>) -> Option<Permit> {
    let admitted = if shared.draining.load(Ordering::Acquire) {
        None
    } else {
        shared.admission.try_acquire()
    };
    {
        let _sync = lock(&shared.scrape_lock);
        counter_add(&shared.metrics, metric::REQUEST_ATTEMPTS, 1);
        if admitted.is_some() {
            counter_add(&shared.metrics, metric::REQUESTS, 1);
        } else {
            counter_add(&shared.metrics, metric::SHED, 1);
        }
    }
    if admitted.is_none() {
        send(
            writer,
            &protocol::encode_retry_after(tag, shared.retry_after_ms),
        );
    }
    admitted
}

/// Answers a malformed payload with a typed error, keeping the connection
/// (the frame itself was well-formed, so the stream is still in sync).
fn reject(shared: &Shared, writer: &Arc<ConnWriter>, tag: u32, error: &ProtocolError) {
    counter_add(&shared.metrics, metric::PROTOCOL_ERRORS, 1);
    send(writer, &protocol::encode_error(tag, &error.to_string()));
}

fn handle_connection(id: u64, mut reader: TcpStream, server: Arc<Server>, shared: Arc<Shared>) {
    let mut span = mttkrp_obs::span("net.connection");
    if span.is_active() {
        span.record("conn", id);
    }
    gauge_add(&shared.metrics, metric::OPEN_CONNECTIONS, 1);
    let mut requests = 0u64;
    let mut bytes_in = 0u64;
    let mut bytes_out = 0u64;
    if let Ok(writer) = reader.try_clone() {
        let writer = Arc::new(ConnWriter {
            stream: Mutex::new(writer),
            bytes_out: AtomicU64::new(0),
            metrics: Arc::clone(&shared.metrics),
        });
        (requests, bytes_in) = serve_frames(&mut reader, &writer, &server, &shared);
        bytes_out = writer.bytes_out.load(Ordering::Relaxed);
    }
    if span.is_active() {
        span.record("requests", requests);
        span.record("bytes_in", bytes_in);
        span.record("bytes_out", bytes_out);
    }
    gauge_add(&shared.metrics, metric::OPEN_CONNECTIONS, -1);
    lock(&shared.conns).remove(&id);
}

/// The connection's read loop: handshake, then requests until the peer
/// says FIN, vanishes, or desynchronizes the stream. Returns how many
/// requests were admitted and how many bytes were read.
fn serve_frames(
    reader: &mut TcpStream,
    writer: &Arc<ConnWriter>,
    server: &Arc<Server>,
    shared: &Arc<Shared>,
) -> (u64, u64) {
    // In-flight factorizations by tag, so a cancel frame — or the peer
    // vanishing — can stop their runs at the next sweep boundary.
    let inflight: Arc<Mutex<HashMap<u32, CancelFlag>>> = Arc::default();
    let mut requests = 0u64;
    let mut bytes_in = 0u64;

    // Handshake: exactly one hello, answered with ours (or a retry-after
    // when the server is draining — the client should come back later).
    match wire::read_frame(reader) {
        Ok(frame) => {
            let n = wire::frame_wire_bytes(&frame) as u64;
            bytes_in += n;
            counter_add(&shared.metrics, metric::BYTES_IN, n);
            match protocol::decode_hello(&frame) {
                Ok(protocol::PROTOCOL_VERSION) => {
                    if shared.draining.load(Ordering::Acquire) {
                        {
                            let _sync = lock(&shared.scrape_lock);
                            counter_add(&shared.metrics, metric::REQUEST_ATTEMPTS, 1);
                            counter_add(&shared.metrics, metric::SHED, 1);
                        }
                        send(
                            writer,
                            &protocol::encode_retry_after(0, shared.retry_after_ms),
                        );
                        return (0, bytes_in);
                    }
                    send(writer, &protocol::encode_hello());
                }
                Ok(version) => {
                    reject(
                        shared,
                        writer,
                        frame.from,
                        &ProtocolError::Malformed(format!(
                            "unsupported protocol version {version} (this server speaks {})",
                            protocol::PROTOCOL_VERSION
                        )),
                    );
                    return (0, bytes_in);
                }
                Err(e) => {
                    reject(shared, writer, frame.from, &e);
                    return (0, bytes_in);
                }
            }
        }
        Err(_) => return (0, 0), // never said hello; nothing to answer
    }

    loop {
        let frame = match wire::read_frame(reader) {
            Ok(frame) => frame,
            Err(WireError::Io(_)) => break, // peer gone (EOF, reset, ...)
            Err(e) => {
                // Garbage framing: the stream position can no longer be
                // trusted. A typed error is the best-effort goodbye.
                reject(shared, writer, 0, &ProtocolError::Wire(e));
                break;
            }
        };
        let n = wire::frame_wire_bytes(&frame) as u64;
        bytes_in += n;
        counter_add(&shared.metrics, metric::BYTES_IN, n);
        let tag = frame.from;
        match frame.comm_id {
            wire::CTRL_FIN => break, // orderly goodbye
            wire::CTRL_CANCEL => {
                if let Some(flag) = lock(&inflight).get(&tag) {
                    flag.cancel();
                }
            }
            // Ops-plane scrapes: answered inline by this reader, never
            // admitted — a scrape cannot be shed and cannot displace work.
            wire::CTRL_STATS => {
                let text = {
                    let _sync = lock(&shared.scrape_lock);
                    counter_add(&shared.metrics, metric::SCRAPES, 1);
                    let mut text = mttkrp_obs::metrics_to_jsonl(&shared.metrics.snapshot());
                    // The plan cache keeps its own ledger (it is shared
                    // exec-layer state, not a serve.* metric); mirror it
                    // into the scrape so a remote client can see hit/miss
                    // behavior — e.g. CI asserting a warm-started server
                    // replays its shape list without a single miss.
                    let cache = server.cache().stats();
                    for (name, value) in [
                        ("exec.plan_cache.hits", cache.hits),
                        ("exec.plan_cache.misses", cache.misses),
                        ("exec.plan_cache.evictions", cache.evictions),
                        ("exec.plan_cache.measurements", cache.measurements),
                        ("exec.plan_cache.reranks", cache.reranks),
                        ("exec.plan_cache.resident", cache.len as u64),
                    ] {
                        text.push_str(&format!(
                            "{{\"type\":\"counter\",\"name\":\"{name}\",\"value\":{value}}}\n"
                        ));
                    }
                    text
                };
                send(writer, &protocol::encode_stats_response(tag, &text));
            }
            wire::CTRL_STATS_HISTORY => {
                let text = {
                    let _sync = lock(&shared.scrape_lock);
                    counter_add(&shared.metrics, metric::SCRAPES, 1);
                    shared.history.to_jsonl()
                };
                send(writer, &protocol::encode_stats_history_response(tag, &text));
            }
            wire::CTRL_HEALTH => {
                counter_add(&shared.metrics, metric::SCRAPES, 1);
                let health = protocol::HealthSnapshot {
                    uptime_ms: shared.started.elapsed().as_millis() as u64,
                    open_connections: shared.metrics.gauge_value(metric::OPEN_CONNECTIONS).max(0)
                        as u64,
                    in_flight: *lock(&shared.admission.in_flight) as u64,
                    draining: shared.draining.load(Ordering::Acquire),
                    admission_cap: shared.admission.cap as u64,
                };
                send(writer, &protocol::encode_health_response(tag, &health));
            }
            wire::CTRL_TRACE_DUMP => {
                counter_add(&shared.metrics, metric::SCRAPES, 1);
                let text = mttkrp_obs::flight_to_jsonl(&mttkrp_obs::flight_snapshot());
                send(writer, &protocol::encode_trace_dump_response(tag, &text));
            }
            wire::CTRL_MTTKRP_REQ => match protocol::decode_mttkrp_request(&frame) {
                Err(e) => reject(shared, writer, tag, &e),
                Ok(request) => {
                    if let Some(permit) = admit(shared, tag, writer) {
                        requests += 1;
                        let handle = server.submit(request.with_context(frame.trace));
                        let writer = Arc::clone(writer);
                        std::thread::spawn(move || {
                            let response = handle.wait();
                            send(&writer, &protocol::encode_mttkrp_response(tag, &response));
                            drop(permit); // reply written: slot free
                        });
                    }
                }
            },
            wire::CTRL_FACTORIZE_REQ => {
                match protocol::decode_factorize_request(&frame, &shared.machine) {
                    Err(e) => reject(shared, writer, tag, &e),
                    Ok((mut request, stream_sweeps)) => {
                        if let Some(permit) = admit(shared, tag, writer) {
                            requests += 1;
                            request.ctx = frame.trace;
                            // Where a wire run executes is server policy.
                            if shared.backend != mttkrp_als::BackendChoice::Auto {
                                request.config.backend = shared.backend;
                            }
                            let mut hooks = FactorizeHooks::default();
                            lock(&inflight).insert(tag, hooks.cancel.clone());
                            if stream_sweeps {
                                let writer = Arc::clone(writer);
                                let metrics = Arc::clone(&shared.metrics);
                                hooks.on_sweep = Some(Box::new(move |sweep| {
                                    counter_add(&metrics, metric::SWEEPS_STREAMED, 1);
                                    send(&writer, &protocol::encode_sweep(tag, sweep));
                                }));
                            }
                            let handle = server.submit_factorize_streaming(request, hooks);
                            let writer = Arc::clone(writer);
                            let inflight = Arc::clone(&inflight);
                            std::thread::spawn(move || {
                                let response = handle.wait();
                                send(
                                    &writer,
                                    &protocol::encode_factorize_response(tag, &response.run),
                                );
                                lock(&inflight).remove(&tag);
                                drop(permit); // reply written: slot free
                            });
                        }
                    }
                }
            }
            other => {
                // HELLO replay, a response kind aimed at the server, an
                // unknown control id, a poison frame: typed error, then
                // hang up — the peer does not speak the protocol.
                reject(
                    shared,
                    writer,
                    tag,
                    &ProtocolError::Unexpected {
                        expected: "a request, cancel, or FIN frame",
                        got: other,
                    },
                );
                break;
            }
        }
    }

    // Reader done (FIN, EOF, reset, or desync): any factorization still
    // running for this connection has no audience — cancel it so the
    // worker is freed at its next sweep boundary.
    for flag in lock(&inflight).values() {
        flag.cancel();
    }
    (requests, bytes_in)
}
