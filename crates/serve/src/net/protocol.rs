//! Payload encodings of the serving protocol: how requests, responses,
//! streamed sweeps, errors, and retry-after signals map onto
//! [`mod@mttkrp_dist::transport::wire`] frames.
//!
//! ## Frame table
//!
//! | frame kind            | `comm_id`             | payload words |
//! |-----------------------|-----------------------|---------------|
//! | hello (both ways)     | [`wire::CTRL_HELLO`]  | `[version]` |
//! | MTTKRP request        | [`wire::CTRL_MTTKRP_REQ`] | `[mode, order, dims.., rank, X.., A0.., A1.., ..]` |
//! | MTTKRP response       | [`wire::CTRL_MTTKRP_RESP`] | `[rows, cols, cache_hit, batch_size, B..]` |
//! | Factorize request     | [`wire::CTRL_FACTORIZE_REQ`] | `[order, dims.., rank, max_sweeps, tol, seed, ridge, stream, X..]` |
//! | streamed sweep        | [`wire::CTRL_SWEEP`]  | `[sweep, fit, delta_fit or NaN]` |
//! | Factorize response    | [`wire::CTRL_FACTORIZE_RESP`] | `[converged, cancelled, sweeps, fit, rank, order, dims.., λ.., A0.., ..]` |
//! | cancel                | [`wire::CTRL_CANCEL`] | `[]` |
//! | typed error           | [`wire::CTRL_ERROR`]  | [`wire::encode_text`] words |
//! | retry-after           | [`wire::CTRL_RETRY_AFTER`] | `[retry_after_ms]` |
//! | stats scrape          | [`wire::CTRL_STATS`]  | request `[]`; reply [`wire::encode_text`] of metrics JSONL |
//! | health probe          | [`wire::CTRL_HEALTH`] | request `[]`; reply `[uptime_ms, open_connections, in_flight, draining, admission_cap]` |
//! | flight-recorder dump  | [`wire::CTRL_TRACE_DUMP`] | request `[]`; reply [`wire::encode_text`] of flight JSONL |
//! | stats history scrape  | [`wire::CTRL_STATS_HISTORY`] | request `[]`; reply [`wire::encode_text`] of history JSONL (window-marked metric lines) |
//!
//! The **ops-plane** kinds (stats, stats history, health, trace dump) are answered
//! inline by the connection's reader without taking an admission permit:
//! a scrape can never be shed, and a scrape can never displace work.
//!
//! Every frame's `from` field carries the client-chosen **request tag**
//! (echoed verbatim on replies), which is what lets one connection keep
//! several requests in flight and match streamed sweeps to the right run.
//!
//! All counts and dimensions travel as exact small integers in `f64`
//! (word counts here are far below 2^53); tensor and factor data travel
//! as raw `f64` words, bit-preserved end to end by the codec's
//! `to_le_bytes`/`from_le_bytes`. Decoders trust nothing: every length is
//! cross-checked against the actual word count, every integer is
//! validated as finite, integral, and nonnegative, and malformed payloads come back
//! as [`ProtocolError`] — never a panic on the server.

use crate::request::{FactorizeRequest, MttkrpRequest, MttkrpResponse};
use mttkrp_als::{AlsConfig, AlsSweep};
use mttkrp_dist::transport::wire::{self, Frame, WireError};
use mttkrp_exec::MachineSpec;
use mttkrp_tensor::{DenseTensor, KruskalTensor, Matrix, Shape};
use std::sync::Arc;

/// Version word both sides exchange in their hello frames. Bumped on any
/// incompatible payload change; a mismatch is a typed error, not a
/// misparse.
pub const PROTOCOL_VERSION: u64 = 1;

/// Why a well-framed payload is not a valid protocol message.
#[derive(Debug, PartialEq)]
pub enum ProtocolError {
    /// The frame layer itself rejected the bytes.
    Wire(WireError),
    /// The payload does not decode as the kind its `comm_id` claims.
    Malformed(String),
    /// A frame kind that is not legal at this point of the exchange.
    Unexpected {
        /// What the receiver was prepared to handle.
        expected: &'static str,
        /// The offending frame's `comm_id`.
        got: u64,
    },
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Wire(e) => write!(f, "wire error: {e}"),
            ProtocolError::Malformed(why) => write!(f, "malformed payload: {why}"),
            ProtocolError::Unexpected { expected, got } => {
                write!(f, "unexpected frame kind {got:#x} (expected {expected})")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<WireError> for ProtocolError {
    fn from(e: WireError) -> ProtocolError {
        ProtocolError::Wire(e)
    }
}

/// A streamed per-sweep progress update, as a client sees it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SweepUpdate {
    /// 1-based sweep number.
    pub sweep: usize,
    /// Relative fit after this sweep.
    pub fit: f64,
    /// Fit change versus the previous sweep (`None` on the first).
    pub delta_fit: Option<f64>,
}

/// A served MTTKRP result, as a client sees it. The `output` bits equal
/// the in-process [`MttkrpResponse`]'s output exactly.
#[derive(Clone, Debug)]
pub struct RemoteMttkrp {
    /// The MTTKRP output matrix `B`.
    pub output: Matrix,
    /// Whether the server found the plan in its cache.
    pub cache_hit: bool,
    /// How many requests shared the batch this one rode in.
    pub batch_size: usize,
}

/// A served factorization result, as a client sees it. Factor and weight
/// bits equal the in-process
/// [`FactorizeResponse`](crate::FactorizeResponse)'s model exactly.
#[derive(Clone, Debug)]
pub struct RemoteFactorize {
    /// The fitted CP model (unit-norm factor columns, weights in
    /// `weights`).
    pub model: KruskalTensor,
    /// Whether the fit tolerance was met within the sweep budget.
    pub converged: bool,
    /// Whether a cancel (frame or vanished client) ended the run early.
    pub cancelled: bool,
    /// Sweeps actually performed.
    pub sweeps: usize,
    /// Final relative fit.
    pub fit: f64,
}

/// The client-side factorization knobs that travel on the wire. The
/// machine and backend are deliberately *not* here: where a run executes
/// is the server's policy (its configured [`MachineSpec`]), exactly as an
/// MTTKRP request without an override is planned for the server's default
/// machine.
#[derive(Clone, Copy, Debug)]
pub struct FactorizeSpec {
    /// CP rank `R`.
    pub rank: usize,
    /// Sweep budget.
    pub max_sweeps: usize,
    /// Fit-delta stopping tolerance.
    pub tol: f64,
    /// Seed of the deterministic initial factors.
    pub seed: u64,
    /// Ridge safeguard for rank-deficient sweeps.
    pub ridge: f64,
}

impl FactorizeSpec {
    /// The on-wire spec of an [`AlsConfig`] (drops machine and backend —
    /// server policy).
    pub fn of(config: &AlsConfig) -> FactorizeSpec {
        FactorizeSpec {
            rank: config.rank,
            max_sweeps: config.max_sweeps,
            tol: config.tol,
            seed: config.seed,
            ridge: config.ridge,
        }
    }

    /// Materializes the spec into an [`AlsConfig`] planned for `machine`
    /// (the server's default) with the `Auto` backend.
    pub fn into_config(self, machine: &MachineSpec) -> AlsConfig {
        let mut config = AlsConfig::new(self.rank)
            .with_sweeps(self.max_sweeps)
            .with_tol(self.tol)
            .with_seed(self.seed)
            .with_machine(machine.clone());
        config.ridge = self.ridge;
        config
    }
}

/// Reads one payload word at a time with honest out-of-bounds errors — no
/// index arithmetic a malformed length can knock off the rails.
struct Cursor<'a> {
    words: &'a [f64],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(words: &'a [f64]) -> Cursor<'a> {
        Cursor { words, at: 0 }
    }

    fn take(&mut self, what: &str) -> Result<f64, ProtocolError> {
        let w = self
            .words
            .get(self.at)
            .copied()
            .ok_or_else(|| ProtocolError::Malformed(format!("payload ends before {what}")))?;
        self.at += 1;
        Ok(w)
    }

    /// A small nonnegative integer (`<= 2^53`, exactly representable).
    fn take_int(&mut self, what: &str) -> Result<u64, ProtocolError> {
        let w = self.take(what)?;
        if !w.is_finite() || w < 0.0 || w.fract() != 0.0 || w > (1u64 << 53) as f64 {
            return Err(ProtocolError::Malformed(format!(
                "{what} is not a small nonnegative integer: {w}"
            )));
        }
        Ok(w as u64)
    }

    fn take_usize(&mut self, what: &str) -> Result<usize, ProtocolError> {
        Ok(self.take_int(what)? as usize)
    }

    fn take_finite(&mut self, what: &str) -> Result<f64, ProtocolError> {
        let w = self.take(what)?;
        if !w.is_finite() {
            return Err(ProtocolError::Malformed(format!(
                "{what} is not finite: {w}"
            )));
        }
        Ok(w)
    }

    fn take_bool(&mut self, what: &str) -> Result<bool, ProtocolError> {
        match self.take_int(what)? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(ProtocolError::Malformed(format!(
                "{what} is not a 0/1 flag: {other}"
            ))),
        }
    }

    fn take_slice(&mut self, n: usize, what: &str) -> Result<&'a [f64], ProtocolError> {
        let end = self.at.checked_add(n).filter(|&e| e <= self.words.len());
        let Some(end) = end else {
            return Err(ProtocolError::Malformed(format!(
                "payload too short for {what}: need {n} more words, have {}",
                self.words.len() - self.at
            )));
        };
        let s = &self.words[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn finish(self, kind: &str) -> Result<(), ProtocolError> {
        if self.at == self.words.len() {
            Ok(())
        } else {
            Err(ProtocolError::Malformed(format!(
                "{kind} payload has {} trailing word(s)",
                self.words.len() - self.at
            )))
        }
    }
}

/// Decodes `[order, dims...]` and cross-checks the element count the dims
/// imply against what could possibly remain in the payload.
fn take_dims(c: &mut Cursor<'_>) -> Result<(Vec<usize>, usize), ProtocolError> {
    let order = c.take_usize("order")?;
    if !(2..=16).contains(&order) {
        return Err(ProtocolError::Malformed(format!(
            "tensor order {order} outside the supported 2..=16"
        )));
    }
    let mut dims = Vec::with_capacity(order);
    let mut elements = 1usize;
    for k in 0..order {
        let d = c.take_usize("dimension")?;
        if d == 0 {
            return Err(ProtocolError::Malformed(format!("dimension {k} is zero")));
        }
        elements = elements
            .checked_mul(d)
            .filter(|&e| e <= wire::MAX_PAYLOAD_WORDS)
            .ok_or_else(|| {
                ProtocolError::Malformed("tensor element count exceeds the wire limit".into())
            })?;
        dims.push(d);
    }
    Ok((dims, elements))
}

// ---------------------------------------------------------------------------
// Hello / cancel / error / retry-after
// ---------------------------------------------------------------------------

/// The hello either side opens with: `[PROTOCOL_VERSION]`.
pub fn encode_hello() -> Frame {
    Frame::data(0, wire::CTRL_HELLO, vec![PROTOCOL_VERSION as f64])
}

/// Decodes a hello; returns the peer's protocol version.
pub fn decode_hello(frame: &Frame) -> Result<u64, ProtocolError> {
    expect_kind(frame, wire::CTRL_HELLO, "hello")?;
    let mut c = Cursor::new(&frame.payload);
    let version = c.take_int("protocol version")?;
    c.finish("hello")?;
    Ok(version)
}

/// A cancel for the in-flight request tagged `tag`.
pub fn encode_cancel(tag: u32) -> Frame {
    Frame::data(tag as usize, wire::CTRL_CANCEL, Vec::new())
}

/// A typed error reply for `tag`.
pub fn encode_error(tag: u32, message: &str) -> Frame {
    Frame::data(tag as usize, wire::CTRL_ERROR, wire::encode_text(message))
}

/// Decodes a typed error's message.
pub fn decode_error(frame: &Frame) -> Result<String, ProtocolError> {
    expect_kind(frame, wire::CTRL_ERROR, "error")?;
    Ok(wire::decode_text(&frame.payload)?)
}

/// A load-shed reply for `tag`: try again in `retry_after_ms`.
pub fn encode_retry_after(tag: u32, retry_after_ms: u64) -> Frame {
    Frame::data(
        tag as usize,
        wire::CTRL_RETRY_AFTER,
        vec![retry_after_ms as f64],
    )
}

/// Decodes a retry-after's advisory delay, in milliseconds.
pub fn decode_retry_after(frame: &Frame) -> Result<u64, ProtocolError> {
    expect_kind(frame, wire::CTRL_RETRY_AFTER, "retry-after")?;
    let mut c = Cursor::new(&frame.payload);
    let ms = c.take_int("retry_after_ms")?;
    c.finish("retry-after")?;
    Ok(ms)
}

// ---------------------------------------------------------------------------
// Ops plane: stats / health / trace dump
// ---------------------------------------------------------------------------

/// A point-in-time liveness snapshot, as a `HEALTH` reply carries it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HealthSnapshot {
    /// Milliseconds since the listener started.
    pub uptime_ms: u64,
    /// Currently open connections.
    pub open_connections: u64,
    /// Admitted requests not yet answered.
    pub in_flight: u64,
    /// Whether the server is draining (shedding all new work).
    pub draining: bool,
    /// The admission cap `in_flight` is bounded by.
    pub admission_cap: u64,
}

/// A stats scrape request: `[]` under [`wire::CTRL_STATS`].
pub fn encode_stats_request(tag: u32) -> Frame {
    Frame::data(tag as usize, wire::CTRL_STATS, Vec::new())
}

/// A stats reply: the registry snapshot as metrics JSONL
/// ([`mttkrp_obs::metrics_to_jsonl`]) in [`wire::encode_text`] words.
pub fn encode_stats_response(tag: u32, metrics_jsonl: &str) -> Frame {
    Frame::data(
        tag as usize,
        wire::CTRL_STATS,
        wire::encode_text(metrics_jsonl),
    )
}

/// Decodes a stats reply back into metric snapshots.
pub fn decode_stats_response(
    frame: &Frame,
) -> Result<Vec<mttkrp_obs::MetricSnapshot>, ProtocolError> {
    expect_kind(frame, wire::CTRL_STATS, "stats response")?;
    let text = wire::decode_text(&frame.payload)?;
    let trace = mttkrp_obs::parse_trace(&text)
        .map_err(|e| ProtocolError::Malformed(format!("stats payload: {e}")))?;
    Ok(trace.metrics)
}

/// A stats-history scrape request: `[]` under
/// [`wire::CTRL_STATS_HISTORY`].
pub fn encode_stats_history_request(tag: u32) -> Frame {
    Frame::data(tag as usize, wire::CTRL_STATS_HISTORY, Vec::new())
}

/// A stats-history reply: the listener's time-series ring as history
/// JSONL ([`mttkrp_obs::timeseries::history_to_jsonl`]) in
/// [`wire::encode_text`] words.
pub fn encode_stats_history_response(tag: u32, history_jsonl: &str) -> Frame {
    Frame::data(
        tag as usize,
        wire::CTRL_STATS_HISTORY,
        wire::encode_text(history_jsonl),
    )
}

/// Decodes a stats-history reply back into delta windows (oldest first).
pub fn decode_stats_history_response(
    frame: &Frame,
) -> Result<Vec<mttkrp_obs::WindowSnapshot>, ProtocolError> {
    expect_kind(frame, wire::CTRL_STATS_HISTORY, "stats history response")?;
    let text = wire::decode_text(&frame.payload)?;
    mttkrp_obs::timeseries::windows_from_jsonl(&text)
        .map_err(|e| ProtocolError::Malformed(format!("history payload: {e}")))
}

/// A health probe request: `[]` under [`wire::CTRL_HEALTH`].
pub fn encode_health_request(tag: u32) -> Frame {
    Frame::data(tag as usize, wire::CTRL_HEALTH, Vec::new())
}

/// A health reply:
/// `[uptime_ms, open_connections, in_flight, draining, admission_cap]`.
pub fn encode_health_response(tag: u32, health: &HealthSnapshot) -> Frame {
    Frame::data(
        tag as usize,
        wire::CTRL_HEALTH,
        vec![
            health.uptime_ms as f64,
            health.open_connections as f64,
            health.in_flight as f64,
            health.draining as u8 as f64,
            health.admission_cap as f64,
        ],
    )
}

/// Decodes a health reply.
pub fn decode_health_response(frame: &Frame) -> Result<HealthSnapshot, ProtocolError> {
    expect_kind(frame, wire::CTRL_HEALTH, "health response")?;
    let mut c = Cursor::new(&frame.payload);
    let health = HealthSnapshot {
        uptime_ms: c.take_int("uptime_ms")?,
        open_connections: c.take_int("open_connections")?,
        in_flight: c.take_int("in_flight")?,
        draining: c.take_bool("draining")?,
        admission_cap: c.take_int("admission_cap")?,
    };
    c.finish("health response")?;
    Ok(health)
}

/// A flight-recorder dump request: `[]` under [`wire::CTRL_TRACE_DUMP`].
pub fn encode_trace_dump_request(tag: u32) -> Frame {
    Frame::data(tag as usize, wire::CTRL_TRACE_DUMP, Vec::new())
}

/// A flight dump reply: the ring as flight JSONL
/// ([`mttkrp_obs::flight_to_jsonl`]) in [`wire::encode_text`] words.
pub fn encode_trace_dump_response(tag: u32, flight_jsonl: &str) -> Frame {
    Frame::data(
        tag as usize,
        wire::CTRL_TRACE_DUMP,
        wire::encode_text(flight_jsonl),
    )
}

/// Decodes a flight dump reply back into flight records.
pub fn decode_trace_dump_response(
    frame: &Frame,
) -> Result<Vec<mttkrp_obs::FlightRecord>, ProtocolError> {
    expect_kind(frame, wire::CTRL_TRACE_DUMP, "trace dump response")?;
    let text = wire::decode_text(&frame.payload)?;
    mttkrp_obs::flight_from_jsonl(&text)
        .map_err(|e| ProtocolError::Malformed(format!("flight payload: {e}")))
}

fn expect_kind(frame: &Frame, kind: u64, name: &'static str) -> Result<(), ProtocolError> {
    if frame.comm_id == kind && !frame.poison {
        Ok(())
    } else {
        Err(ProtocolError::Unexpected {
            expected: name,
            got: frame.comm_id,
        })
    }
}

// ---------------------------------------------------------------------------
// MTTKRP request / response
// ---------------------------------------------------------------------------

/// Encodes an MTTKRP request:
/// `[mode, order, dims.., rank, X (row-major).., factors (row-major, per mode)..]`.
pub fn encode_mttkrp_request(
    tag: u32,
    tensor: &DenseTensor,
    factors: &[Matrix],
    mode: usize,
) -> Frame {
    let rank = factors[0].cols();
    let mut p = Vec::with_capacity(
        3 + tensor.order()
            + tensor.data().len()
            + factors.iter().map(|f| f.data().len()).sum::<usize>(),
    );
    p.push(mode as f64);
    p.push(tensor.order() as f64);
    p.extend(tensor.shape().dims().iter().map(|&d| d as f64));
    p.push(rank as f64);
    p.extend_from_slice(tensor.data());
    for f in factors {
        p.extend_from_slice(f.data());
    }
    Frame::data(tag as usize, wire::CTRL_MTTKRP_REQ, p)
}

/// Decodes an MTTKRP request into the server's request type. Structural
/// validation (dims/rank/mode consistency, exact payload length) happens
/// here, so construction cannot panic a server thread.
pub fn decode_mttkrp_request(frame: &Frame) -> Result<MttkrpRequest, ProtocolError> {
    expect_kind(frame, wire::CTRL_MTTKRP_REQ, "mttkrp request")?;
    let mut c = Cursor::new(&frame.payload);
    let mode = c.take_usize("mode")?;
    let (dims, elements) = take_dims(&mut c)?;
    let rank = c.take_usize("rank")?;
    if rank == 0 {
        return Err(ProtocolError::Malformed("rank is zero".into()));
    }
    if mode >= dims.len() {
        return Err(ProtocolError::Malformed(format!(
            "mode {mode} out of range for a {}-mode tensor",
            dims.len()
        )));
    }
    if dims.iter().any(|&d| d.checked_mul(rank).is_none()) {
        return Err(ProtocolError::Malformed("factor size overflows".into()));
    }
    let x = c.take_slice(elements, "tensor data")?.to_vec();
    let mut factors = Vec::with_capacity(dims.len());
    for &d in &dims {
        let data = c.take_slice(d * rank, "factor data")?.to_vec();
        factors.push(Matrix::from_rows_vec(d, rank, data));
    }
    c.finish("mttkrp request")?;
    let tensor = DenseTensor::from_vec(Shape::new(&dims), x);
    Ok(MttkrpRequest::new(
        Arc::new(tensor),
        Arc::new(factors),
        mode,
    ))
}

/// Encodes an MTTKRP response: `[rows, cols, cache_hit, batch_size, B..]`.
pub fn encode_mttkrp_response(tag: u32, response: &MttkrpResponse) -> Frame {
    let b = &response.report.output;
    let mut p = Vec::with_capacity(4 + b.data().len());
    p.push(b.rows() as f64);
    p.push(b.cols() as f64);
    p.push(response.cache_hit as u8 as f64);
    p.push(response.batch_size as f64);
    p.extend_from_slice(b.data());
    Frame::data(tag as usize, wire::CTRL_MTTKRP_RESP, p)
}

/// Decodes an MTTKRP response.
pub fn decode_mttkrp_response(frame: &Frame) -> Result<RemoteMttkrp, ProtocolError> {
    expect_kind(frame, wire::CTRL_MTTKRP_RESP, "mttkrp response")?;
    let mut c = Cursor::new(&frame.payload);
    let rows = c.take_usize("rows")?;
    let cols = c.take_usize("cols")?;
    let cache_hit = c.take_bool("cache_hit")?;
    let batch_size = c.take_usize("batch_size")?;
    let n = rows
        .checked_mul(cols)
        .filter(|&n| n <= wire::MAX_PAYLOAD_WORDS)
        .ok_or_else(|| ProtocolError::Malformed("output size overflows".into()))?;
    let data = c.take_slice(n, "output data")?.to_vec();
    c.finish("mttkrp response")?;
    Ok(RemoteMttkrp {
        output: Matrix::from_rows_vec(rows, cols, data),
        cache_hit,
        batch_size,
    })
}

// ---------------------------------------------------------------------------
// Factorize request / sweep / response
// ---------------------------------------------------------------------------

/// Encodes a factorization request:
/// `[order, dims.., rank, max_sweeps, tol, seed, ridge, stream, X..]`.
/// `stream` asks the server to send one [`SweepUpdate`] frame per sweep.
pub fn encode_factorize_request(
    tag: u32,
    tensor: &DenseTensor,
    spec: &FactorizeSpec,
    stream: bool,
) -> Frame {
    let mut p = Vec::with_capacity(7 + tensor.order() + tensor.data().len());
    p.push(tensor.order() as f64);
    p.extend(tensor.shape().dims().iter().map(|&d| d as f64));
    p.push(spec.rank as f64);
    p.push(spec.max_sweeps as f64);
    p.push(spec.tol);
    p.push(spec.seed as f64);
    p.push(spec.ridge);
    p.push(stream as u8 as f64);
    p.extend_from_slice(tensor.data());
    Frame::data(tag as usize, wire::CTRL_FACTORIZE_REQ, p)
}

/// Decodes a factorization request against the server's default
/// `machine`. Returns the request plus whether the client asked for
/// streamed sweeps. Every input the engine would panic on (zero/non-finite
/// tensor, zero rank or sweeps) is rejected here as a typed error instead.
pub fn decode_factorize_request(
    frame: &Frame,
    machine: &MachineSpec,
) -> Result<(FactorizeRequest, bool), ProtocolError> {
    expect_kind(frame, wire::CTRL_FACTORIZE_REQ, "factorize request")?;
    let mut c = Cursor::new(&frame.payload);
    let (dims, elements) = take_dims(&mut c)?;
    let rank = c.take_usize("rank")?;
    let max_sweeps = c.take_usize("max_sweeps")?;
    let tol = c.take_finite("tol")?;
    let seed = c.take_int("seed")?;
    let ridge = c.take_finite("ridge")?;
    let stream = c.take_bool("stream flag")?;
    if rank == 0 {
        return Err(ProtocolError::Malformed("rank is zero".into()));
    }
    if max_sweeps == 0 {
        return Err(ProtocolError::Malformed("max_sweeps is zero".into()));
    }
    if tol < 0.0 || ridge < 0.0 {
        return Err(ProtocolError::Malformed(
            "tol/ridge must be nonnegative".into(),
        ));
    }
    // The fitted model (rank columns per mode, plus weights) must itself
    // fit in one reply frame — and this bound is what keeps a hostile
    // `rank` from making the server allocate unbounded factor matrices.
    let response_words = rank
        .checked_mul(dims.iter().sum::<usize>() + 1)
        .and_then(|n| n.checked_add(6 + dims.len()))
        .filter(|&n| n <= wire::MAX_PAYLOAD_WORDS);
    if response_words.is_none() {
        return Err(ProtocolError::Malformed(
            "fitted model would exceed the wire frame limit".into(),
        ));
    }
    let x = c.take_slice(elements, "tensor data")?.to_vec();
    c.finish("factorize request")?;
    let norm_sq: f64 = x.iter().map(|&v| v * v).sum();
    if !norm_sq.is_finite() {
        return Err(ProtocolError::Malformed(
            "tensor has non-finite values (or a norm overflow)".into(),
        ));
    }
    if norm_sq == 0.0 {
        return Err(ProtocolError::Malformed(
            "cannot fit a CP model to the zero tensor".into(),
        ));
    }
    let spec = FactorizeSpec {
        rank,
        max_sweeps,
        tol,
        seed,
        ridge,
    };
    let tensor = DenseTensor::from_vec(Shape::new(&dims), x);
    let request = FactorizeRequest::new(Arc::new(tensor), spec.into_config(machine));
    Ok((request, stream))
}

/// Encodes one streamed sweep: `[sweep, fit, delta_fit or NaN]`. `NaN`
/// marks the first sweep's missing delta and survives the wire exactly
/// (bit-preserved, never compared).
pub fn encode_sweep(tag: u32, sweep: &AlsSweep) -> Frame {
    Frame::data(
        tag as usize,
        wire::CTRL_SWEEP,
        vec![
            sweep.sweep as f64,
            sweep.fit,
            sweep.delta_fit.unwrap_or(f64::NAN),
        ],
    )
}

/// Decodes a streamed sweep.
pub fn decode_sweep(frame: &Frame) -> Result<SweepUpdate, ProtocolError> {
    expect_kind(frame, wire::CTRL_SWEEP, "sweep")?;
    let mut c = Cursor::new(&frame.payload);
    let sweep = c.take_usize("sweep number")?;
    let fit = c.take("fit")?;
    let delta = c.take("delta_fit")?;
    c.finish("sweep")?;
    Ok(SweepUpdate {
        sweep,
        fit,
        delta_fit: (!delta.is_nan()).then_some(delta),
    })
}

/// Encodes the final factorization reply:
/// `[converged, cancelled, sweeps, fit, rank, order, dims.., weights..,
/// factors (row-major, per mode)..]`.
pub fn encode_factorize_response(tag: u32, run: &mttkrp_als::AlsRun) -> Frame {
    let model = &run.model;
    let dims = model.shape().dims().to_vec();
    let rank = model.weights.len();
    let mut p = Vec::with_capacity(
        6 + dims.len() + rank + model.factors.iter().map(|f| f.data().len()).sum::<usize>(),
    );
    p.push(run.converged as u8 as f64);
    p.push(run.cancelled as u8 as f64);
    p.push(run.sweeps() as f64);
    p.push(run.fit());
    p.push(rank as f64);
    p.push(dims.len() as f64);
    p.extend(dims.iter().map(|&d| d as f64));
    p.extend_from_slice(&model.weights);
    for f in &model.factors {
        p.extend_from_slice(f.data());
    }
    Frame::data(tag as usize, wire::CTRL_FACTORIZE_RESP, p)
}

/// Decodes the final factorization reply.
pub fn decode_factorize_response(frame: &Frame) -> Result<RemoteFactorize, ProtocolError> {
    expect_kind(frame, wire::CTRL_FACTORIZE_RESP, "factorize response")?;
    let mut c = Cursor::new(&frame.payload);
    let converged = c.take_bool("converged")?;
    let cancelled = c.take_bool("cancelled")?;
    let sweeps = c.take_usize("sweeps")?;
    let fit = c.take("fit")?;
    let rank = c.take_usize("rank")?;
    if rank == 0 {
        return Err(ProtocolError::Malformed("rank is zero".into()));
    }
    let (dims, _) = take_dims(&mut c)?;
    if dims.iter().any(|&d| d.checked_mul(rank).is_none()) {
        return Err(ProtocolError::Malformed("factor size overflows".into()));
    }
    let weights = c.take_slice(rank, "weights")?.to_vec();
    let mut factors = Vec::with_capacity(dims.len());
    for &d in &dims {
        let data = c.take_slice(d * rank, "factor data")?.to_vec();
        factors.push(Matrix::from_rows_vec(d, rank, data));
    }
    c.finish("factorize response")?;
    let mut model = KruskalTensor::from_factors(factors);
    model.weights = weights;
    Ok(RemoteFactorize {
        model,
        converged,
        cancelled,
        sweeps,
        fit,
    })
}
