//! A blocking socket client for the network front door.
//!
//! One request in flight at a time, framed exactly like the server
//! expects (see [`protocol`](mod@crate::net::protocol)). The interesting
//! call is [`Client::factorize_streaming`]: the closure sees every
//! per-sweep progress frame and can return [`StreamControl::Cancel`] to
//! stop the run at the next sweep boundary — the server frees its worker
//! and still sends the (partial) fitted model back.

use crate::net::protocol::{
    self, FactorizeSpec, HealthSnapshot, ProtocolError, RemoteFactorize, RemoteMttkrp, SweepUpdate,
};
use mttkrp_dist::transport::wire::{self, Frame, WireError};
use mttkrp_obs::{FlightRecord, MetricSnapshot, WindowSnapshot};
use mttkrp_tensor::{DenseTensor, Matrix};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// How long a client waits on a read before giving up. Generous: a
/// factorization sweep on a large tensor can take a while between frames.
const READ_TIMEOUT: Duration = Duration::from_secs(60);

/// What a streaming factorize closure wants next.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamControl {
    /// Keep sweeping.
    Continue,
    /// Send a cancel frame; the run stops at the next sweep boundary and
    /// the partial model comes back with `cancelled = true`.
    Cancel,
}

/// Everything that can go wrong on the client side of the wire.
#[derive(Debug)]
pub enum ClientError {
    /// The socket itself failed (connect, read timeout, reset, ...).
    Io(std::io::Error),
    /// A frame failed to decode at the codec layer.
    Wire(WireError),
    /// A frame decoded but violated the request/response protocol.
    Protocol(ProtocolError),
    /// The server answered with a typed error frame (its message).
    Server(String),
    /// The server shed the request; retry after the advised delay.
    RetryAfter(Duration),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "socket error: {e}"),
            ClientError::Wire(e) => write!(f, "wire error: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Server(msg) => write!(f, "server error: {msg}"),
            ClientError::RetryAfter(after) => {
                write!(
                    f,
                    "server at capacity: retry after {} ms",
                    after.as_millis()
                )
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> ClientError {
        ClientError::Wire(e)
    }
}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> ClientError {
        ClientError::Protocol(e)
    }
}

/// A connected front-door client. One request in flight at a time;
/// every reply is tag-checked against the request that asked for it.
/// Dropping the client sends a best-effort FIN so the server's reader
/// sees an orderly goodbye.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    next_tag: u32,
}

impl Client {
    /// Connects and handshakes. Fails with [`ClientError::RetryAfter`]
    /// if the server is draining, or [`ClientError::Server`] on a
    /// protocol-version mismatch.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let mut stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        stream.set_read_timeout(Some(READ_TIMEOUT))?;
        wire::write_frame(&mut stream, &protocol::encode_hello()).map_err(ClientError::Io)?;
        let frame = wire::read_frame(&mut stream)?;
        match frame.comm_id {
            wire::CTRL_RETRY_AFTER => {
                let ms = protocol::decode_retry_after(&frame)?;
                Err(ClientError::RetryAfter(Duration::from_millis(ms)))
            }
            wire::CTRL_ERROR => Err(ClientError::Server(protocol::decode_error(&frame)?)),
            _ => {
                let version = protocol::decode_hello(&frame)?;
                if version != protocol::PROTOCOL_VERSION {
                    return Err(ClientError::Protocol(ProtocolError::Malformed(format!(
                        "server speaks protocol version {version}, this client speaks {}",
                        protocol::PROTOCOL_VERSION
                    ))));
                }
                Ok(Client {
                    stream,
                    next_tag: 1,
                })
            }
        }
    }

    /// Overrides the default 60 s read timeout (`None` blocks forever).
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.stream.set_read_timeout(timeout)?;
        Ok(())
    }

    /// One MTTKRP round trip. The returned matrix is bit-identical to an
    /// in-process [`Server::call`](crate::Server::call) with the same
    /// operands.
    ///
    /// # Panics
    ///
    /// Panics if `factors` is empty (there is no rank to encode).
    pub fn mttkrp(
        &mut self,
        tensor: &DenseTensor,
        factors: &[Matrix],
        mode: usize,
    ) -> Result<RemoteMttkrp, ClientError> {
        let tag = self.fresh_tag();
        let request = protocol::encode_mttkrp_request(tag, tensor, factors, mode)
            .with_trace(mttkrp_obs::current_context());
        wire::write_frame(&mut self.stream, &request).map_err(ClientError::Io)?;
        let frame = self.read_reply(tag)?;
        if frame.comm_id != wire::CTRL_MTTKRP_RESP {
            return Err(ClientError::Protocol(ProtocolError::Unexpected {
                expected: "an MTTKRP response frame",
                got: frame.comm_id,
            }));
        }
        Ok(protocol::decode_mttkrp_response(&frame)?)
    }

    /// One whole CP-ALS factorization round trip (no streaming: the only
    /// reply is the final fitted model).
    pub fn factorize(
        &mut self,
        tensor: &DenseTensor,
        spec: &FactorizeSpec,
    ) -> Result<RemoteFactorize, ClientError> {
        self.run_factorize(tensor, spec, false, |_| StreamControl::Continue)
    }

    /// A streaming factorization: `on_sweep` sees one [`SweepUpdate`] per
    /// completed ALS sweep, in order, and may return
    /// [`StreamControl::Cancel`] to stop the run at the next sweep
    /// boundary. The final reply arrives either way (with
    /// [`RemoteFactorize::cancelled`] set when the cancel won).
    pub fn factorize_streaming(
        &mut self,
        tensor: &DenseTensor,
        spec: &FactorizeSpec,
        on_sweep: impl FnMut(&SweepUpdate) -> StreamControl,
    ) -> Result<RemoteFactorize, ClientError> {
        self.run_factorize(tensor, spec, true, on_sweep)
    }

    fn run_factorize(
        &mut self,
        tensor: &DenseTensor,
        spec: &FactorizeSpec,
        stream: bool,
        mut on_sweep: impl FnMut(&SweepUpdate) -> StreamControl,
    ) -> Result<RemoteFactorize, ClientError> {
        let tag = self.fresh_tag();
        let request = protocol::encode_factorize_request(tag, tensor, spec, stream)
            .with_trace(mttkrp_obs::current_context());
        wire::write_frame(&mut self.stream, &request).map_err(ClientError::Io)?;
        let mut cancel_sent = false;
        loop {
            let frame = self.read_reply(tag)?;
            match frame.comm_id {
                wire::CTRL_SWEEP => {
                    let update = protocol::decode_sweep(&frame)?;
                    if on_sweep(&update) == StreamControl::Cancel && !cancel_sent {
                        wire::write_frame(&mut self.stream, &protocol::encode_cancel(tag))
                            .map_err(ClientError::Io)?;
                        cancel_sent = true;
                    }
                }
                wire::CTRL_FACTORIZE_RESP => {
                    return Ok(protocol::decode_factorize_response(&frame)?);
                }
                other => {
                    return Err(ClientError::Protocol(ProtocolError::Unexpected {
                        expected: "a sweep or factorize response frame",
                        got: other,
                    }));
                }
            }
        }
    }

    /// Scrapes the server's metrics registry over a `STATS` frame.
    /// Answered inline by the connection's reader — never shed, never
    /// counted against the admission cap.
    pub fn stats(&mut self) -> Result<Vec<MetricSnapshot>, ClientError> {
        let tag = self.fresh_tag();
        wire::write_frame(&mut self.stream, &protocol::encode_stats_request(tag))
            .map_err(ClientError::Io)?;
        let frame = self.expect_reply(tag, wire::CTRL_STATS, "a stats response frame")?;
        Ok(protocol::decode_stats_response(&frame)?)
    }

    /// Scrapes the server's time-series history over a `STATS_HISTORY`
    /// frame: the listener's ring of per-window metric deltas (oldest
    /// first). Like `stats`, answered inline by the server's reader — a
    /// history scrape can't be shed by load.
    pub fn stats_history(&mut self) -> Result<Vec<WindowSnapshot>, ClientError> {
        let tag = self.fresh_tag();
        wire::write_frame(
            &mut self.stream,
            &protocol::encode_stats_history_request(tag),
        )
        .map_err(ClientError::Io)?;
        let frame = self.expect_reply(
            tag,
            wire::CTRL_STATS_HISTORY,
            "a stats history response frame",
        )?;
        Ok(protocol::decode_stats_history_response(&frame)?)
    }

    /// Probes liveness over a `HEALTH` frame: uptime, open connections,
    /// in-flight occupancy, draining flag, admission cap.
    pub fn health(&mut self) -> Result<HealthSnapshot, ClientError> {
        let tag = self.fresh_tag();
        wire::write_frame(&mut self.stream, &protocol::encode_health_request(tag))
            .map_err(ClientError::Io)?;
        let frame = self.expect_reply(tag, wire::CTRL_HEALTH, "a health response frame")?;
        Ok(protocol::decode_health_response(&frame)?)
    }

    /// Dumps the server's flight recorder (the last
    /// [`mttkrp_obs::FLIGHT_CAPACITY`] span closes, capture on or off)
    /// over a `TRACE_DUMP` frame.
    pub fn trace_dump(&mut self) -> Result<Vec<FlightRecord>, ClientError> {
        let tag = self.fresh_tag();
        wire::write_frame(&mut self.stream, &protocol::encode_trace_dump_request(tag))
            .map_err(ClientError::Io)?;
        let frame = self.expect_reply(tag, wire::CTRL_TRACE_DUMP, "a trace dump response frame")?;
        Ok(protocol::decode_trace_dump_response(&frame)?)
    }

    fn expect_reply(
        &mut self,
        tag: u32,
        kind: u64,
        expected: &'static str,
    ) -> Result<Frame, ClientError> {
        let frame = self.read_reply(tag)?;
        if frame.comm_id != kind {
            return Err(ClientError::Protocol(ProtocolError::Unexpected {
                expected,
                got: frame.comm_id,
            }));
        }
        Ok(frame)
    }

    /// Reads one reply frame, translating the protocol-wide kinds
    /// (typed error, retry-after) and rejecting replies tagged for a
    /// different request.
    fn read_reply(&mut self, tag: u32) -> Result<Frame, ClientError> {
        let frame = wire::read_frame(&mut self.stream)?;
        match frame.comm_id {
            wire::CTRL_ERROR => Err(ClientError::Server(protocol::decode_error(&frame)?)),
            wire::CTRL_RETRY_AFTER => {
                let ms = protocol::decode_retry_after(&frame)?;
                Err(ClientError::RetryAfter(Duration::from_millis(ms)))
            }
            _ if frame.from != tag => Err(ClientError::Protocol(ProtocolError::Malformed(
                format!("reply tagged {} for request tagged {tag}", frame.from),
            ))),
            _ => Ok(frame),
        }
    }

    fn fresh_tag(&mut self) -> u32 {
        let tag = self.next_tag;
        self.next_tag = self.next_tag.wrapping_add(1).max(1);
        tag
    }
}

impl Drop for Client {
    /// Best-effort FIN so the server sees an orderly goodbye instead of
    /// a vanished peer.
    fn drop(&mut self) {
        let _ = wire::write_frame(&mut self.stream, &Frame::fin(0));
    }
}
