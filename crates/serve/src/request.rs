//! Request and response types for the serving layer: single MTTKRPs
//! ([`MttkrpRequest`]) and whole CP-ALS factorizations
//! ([`FactorizeRequest`]).

use mttkrp_als::{AlsConfig, AlsRun};
use mttkrp_core::Problem;
use mttkrp_exec::{ExecReport, MachineSpec, Plan};
use mttkrp_obs::TraceContext;
use mttkrp_tensor::{validate_operands, DenseTensor, Matrix};
use std::sync::Arc;
use std::time::Duration;

/// One MTTKRP to compute: operands, output mode, and (optionally) a machine
/// override.
///
/// Operands are held behind `Arc` so a request is cheap to move across the
/// server's channels and so many requests can share the same tensor or
/// factor set without copying. Two requests with equal *shape* (dimensions,
/// rank, mode, machine) are the same planning problem — the server batches
/// them together and plans once — even when their data differ.
#[derive(Clone, Debug)]
pub struct MttkrpRequest {
    /// The dense input tensor `X`.
    pub tensor: Arc<DenseTensor>,
    /// One `I_k x R` factor matrix per mode (`factors[mode]` is ignored, as
    /// everywhere in the workspace).
    pub factors: Arc<Vec<Matrix>>,
    /// Output mode `n`.
    pub mode: usize,
    /// Machine to plan for; `None` means the server's default machine.
    pub machine: Option<MachineSpec>,
    /// Remote trace context to adopt: set (from the frame's trace header)
    /// when a traced client submitted this over the wire, so the server's
    /// `request` span joins the client's trace instead of starting one.
    pub ctx: Option<TraceContext>,
}

impl MttkrpRequest {
    /// A request for the server's default machine.
    ///
    /// # Panics
    /// Panics if the operands are malformed (wrong factor count, mismatched
    /// row counts or ranks, mode out of range) — validation happens here,
    /// on the caller's thread, so the server's workers never see an
    /// inconsistent request.
    pub fn new(tensor: Arc<DenseTensor>, factors: Arc<Vec<Matrix>>, mode: usize) -> MttkrpRequest {
        let refs: Vec<&Matrix> = factors.iter().collect();
        validate_operands(&tensor, &refs, mode);
        MttkrpRequest {
            tensor,
            factors,
            mode,
            machine: None,
            ctx: None,
        }
    }

    /// The same request planned for an explicit machine instead of the
    /// server's default.
    pub fn with_machine(mut self, machine: MachineSpec) -> MttkrpRequest {
        self.machine = Some(machine);
        self
    }

    /// The same request carrying a remote trace context to adopt.
    pub fn with_context(mut self, ctx: Option<TraceContext>) -> MttkrpRequest {
        self.ctx = ctx;
        self
    }

    /// The planning-level [`Problem`] this request poses.
    pub fn problem(&self) -> Problem {
        Problem::from_shape(self.tensor.shape(), self.factors[0].cols())
    }
}

/// Per-request latency breakdown, measured by the server.
#[derive(Clone, Copy, Debug)]
pub struct RequestTiming {
    /// Time from submission until a worker started executing the request.
    pub queued: Duration,
    /// Time the kernel itself took on the backend.
    pub exec: Duration,
}

/// What the server returns for one request.
#[derive(Debug)]
pub struct MttkrpResponse {
    /// The backend's execution report (output matrix + observed cost).
    pub report: ExecReport,
    /// The shared plan the request ran under — "why this algorithm?" is
    /// answerable from the response alone via [`Plan::explain`].
    pub plan: Arc<Plan>,
    /// Whether the plan came out of the plan cache (`false` exactly when
    /// this batch triggered a fresh candidate sweep).
    pub cache_hit: bool,
    /// How many requests were coalesced into the batch this one rode in.
    pub batch_size: usize,
    /// Latency breakdown.
    pub timing: RequestTiming,
}

/// One whole CP-ALS factorization to compute: a tensor plus the
/// [`AlsConfig`] describing rank, stopping policy, machine, and backend.
///
/// Unlike [`MttkrpRequest`] (whose machine defaults to the server's),
/// a factorization's machine lives inside its `config` — the config *is*
/// the complete description of the run. The server executes it with
/// [`mttkrp_als::cp_als_with_cache`] against the server's shared
/// [`PlanCache`](mttkrp_exec::PlanCache), so repeated factorizations of
/// the same shape skip the planner's candidate sweep entirely.
#[derive(Clone, Debug)]
pub struct FactorizeRequest {
    /// The dense input tensor `X`.
    pub tensor: Arc<DenseTensor>,
    /// How to factorize it (rank, sweeps, tolerance, machine, backend).
    pub config: AlsConfig,
    /// Remote trace context to adopt (see [`MttkrpRequest::ctx`]).
    pub ctx: Option<TraceContext>,
}

impl FactorizeRequest {
    /// A factorization request.
    ///
    /// # Panics
    /// Panics if the tensor has fewer than two modes, contains non-finite
    /// values, or is identically zero (CP-ALS cannot fit the zero tensor) —
    /// the engine's own [`mttkrp_als::validate_input`] runs here, on the
    /// caller's thread, so the server's workers never see a request that
    /// would panic mid-run.
    pub fn new(tensor: Arc<DenseTensor>, config: AlsConfig) -> FactorizeRequest {
        mttkrp_als::validate_input(&tensor);
        FactorizeRequest {
            tensor,
            config,
            ctx: None,
        }
    }

    /// The same request carrying a remote trace context to adopt.
    pub fn with_context(mut self, ctx: Option<TraceContext>) -> FactorizeRequest {
        self.ctx = ctx;
        self
    }

    /// The planning-level [`Problem`] each of this factorization's
    /// per-mode MTTKRPs poses.
    pub fn problem(&self) -> Problem {
        Problem::from_shape(self.tensor.shape(), self.config.rank)
    }
}

/// What the server returns for one factorization request.
#[derive(Debug)]
pub struct FactorizeResponse {
    /// The full CP-ALS run: fitted model, per-sweep trace, per-mode plans,
    /// and the [`AlsRun::explain`] / [`AlsRun::to_json`] reports.
    pub run: AlsRun,
    /// Latency breakdown (`exec` covers the whole factorization).
    pub timing: RequestTiming,
}

#[cfg(test)]
mod tests {
    use super::*;
    use mttkrp_tensor::Shape;

    fn operands(dims: &[usize], r: usize) -> (Arc<DenseTensor>, Arc<Vec<Matrix>>) {
        let shape = Shape::new(dims);
        let x = Arc::new(DenseTensor::random(shape, 3));
        let factors = Arc::new(
            dims.iter()
                .enumerate()
                .map(|(k, &d)| Matrix::random(d, r, k as u64))
                .collect::<Vec<_>>(),
        );
        (x, factors)
    }

    #[test]
    fn problem_reflects_operands() {
        let (x, f) = operands(&[4, 5, 6], 3);
        let req = MttkrpRequest::new(x, f, 1);
        assert_eq!(req.problem(), Problem::new(&[4, 5, 6], 3));
        assert!(req.machine.is_none());
    }

    #[test]
    #[should_panic]
    fn malformed_operands_rejected_at_construction() {
        let (x, _) = operands(&[4, 5, 6], 3);
        let (_, wrong) = operands(&[4, 5], 3);
        let _ = MttkrpRequest::new(x, wrong, 0);
    }

    #[test]
    fn factorize_problem_reflects_config_rank() {
        let (x, _) = operands(&[4, 5, 6], 3);
        let req = FactorizeRequest::new(x, AlsConfig::new(2));
        assert_eq!(req.problem(), Problem::new(&[4, 5, 6], 2));
    }

    #[test]
    #[should_panic(expected = "zero tensor")]
    fn factorize_rejects_the_zero_tensor() {
        let x = Arc::new(DenseTensor::zeros(Shape::new(&[3, 3, 3])));
        let _ = FactorizeRequest::new(x, AlsConfig::new(1));
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn factorize_rejects_non_finite_tensors_on_the_caller_thread() {
        // A NaN would otherwise pass the zero-check (NaN != 0.0 is true)
        // and panic a server *worker* sweeps later, poisoning shutdown.
        let mut x = DenseTensor::random(Shape::new(&[3, 3, 3]), 1);
        x.data_mut()[0] = f64::NAN;
        let _ = FactorizeRequest::new(Arc::new(x), AlsConfig::new(1));
    }
}
