//! Request and response types for the serving layer.

use mttkrp_core::Problem;
use mttkrp_exec::{ExecReport, MachineSpec, Plan};
use mttkrp_tensor::{validate_operands, DenseTensor, Matrix};
use std::sync::Arc;
use std::time::Duration;

/// One MTTKRP to compute: operands, output mode, and (optionally) a machine
/// override.
///
/// Operands are held behind `Arc` so a request is cheap to move across the
/// server's channels and so many requests can share the same tensor or
/// factor set without copying. Two requests with equal *shape* (dimensions,
/// rank, mode, machine) are the same planning problem — the server batches
/// them together and plans once — even when their data differ.
#[derive(Clone, Debug)]
pub struct MttkrpRequest {
    /// The dense input tensor `X`.
    pub tensor: Arc<DenseTensor>,
    /// One `I_k x R` factor matrix per mode (`factors[mode]` is ignored, as
    /// everywhere in the workspace).
    pub factors: Arc<Vec<Matrix>>,
    /// Output mode `n`.
    pub mode: usize,
    /// Machine to plan for; `None` means the server's default machine.
    pub machine: Option<MachineSpec>,
}

impl MttkrpRequest {
    /// A request for the server's default machine.
    ///
    /// # Panics
    /// Panics if the operands are malformed (wrong factor count, mismatched
    /// row counts or ranks, mode out of range) — validation happens here,
    /// on the caller's thread, so the server's workers never see an
    /// inconsistent request.
    pub fn new(tensor: Arc<DenseTensor>, factors: Arc<Vec<Matrix>>, mode: usize) -> MttkrpRequest {
        let refs: Vec<&Matrix> = factors.iter().collect();
        validate_operands(&tensor, &refs, mode);
        MttkrpRequest {
            tensor,
            factors,
            mode,
            machine: None,
        }
    }

    /// The same request planned for an explicit machine instead of the
    /// server's default.
    pub fn with_machine(mut self, machine: MachineSpec) -> MttkrpRequest {
        self.machine = Some(machine);
        self
    }

    /// The planning-level [`Problem`] this request poses.
    pub fn problem(&self) -> Problem {
        Problem::from_shape(self.tensor.shape(), self.factors[0].cols())
    }
}

/// Per-request latency breakdown, measured by the server.
#[derive(Clone, Copy, Debug)]
pub struct RequestTiming {
    /// Time from submission until a worker started executing the request.
    pub queued: Duration,
    /// Time the kernel itself took on the backend.
    pub exec: Duration,
}

/// What the server returns for one request.
#[derive(Debug)]
pub struct MttkrpResponse {
    /// The backend's execution report (output matrix + observed cost).
    pub report: ExecReport,
    /// The shared plan the request ran under — "why this algorithm?" is
    /// answerable from the response alone via [`Plan::explain`].
    pub plan: Arc<Plan>,
    /// Whether the plan came out of the plan cache (`false` exactly when
    /// this batch triggered a fresh candidate sweep).
    pub cache_hit: bool,
    /// How many requests were coalesced into the batch this one rode in.
    pub batch_size: usize,
    /// Latency breakdown.
    pub timing: RequestTiming,
}

#[cfg(test)]
mod tests {
    use super::*;
    use mttkrp_tensor::Shape;

    fn operands(dims: &[usize], r: usize) -> (Arc<DenseTensor>, Arc<Vec<Matrix>>) {
        let shape = Shape::new(dims);
        let x = Arc::new(DenseTensor::random(shape, 3));
        let factors = Arc::new(
            dims.iter()
                .enumerate()
                .map(|(k, &d)| Matrix::random(d, r, k as u64))
                .collect::<Vec<_>>(),
        );
        (x, factors)
    }

    #[test]
    fn problem_reflects_operands() {
        let (x, f) = operands(&[4, 5, 6], 3);
        let req = MttkrpRequest::new(x, f, 1);
        assert_eq!(req.problem(), Problem::new(&[4, 5, 6], 3));
        assert!(req.machine.is_none());
    }

    #[test]
    #[should_panic]
    fn malformed_operands_rejected_at_construction() {
        let (x, _) = operands(&[4, 5, 6], 3);
        let (_, wrong) = operands(&[4, 5], 3);
        let _ = MttkrpRequest::new(x, wrong, 0);
    }
}
